//! # Geosphere
//!
//! Facade crate re-exporting the whole Geosphere workspace under one name.
//! See the README for the architecture and the per-crate docs for detail.

#![forbid(unsafe_code)]

pub use geosphere_core as core;
pub use gs_channel as channel;
pub use gs_coding as coding;
pub use gs_linalg as linalg;
pub use gs_modulation as modulation;
pub use gs_phy as phy;
pub use gs_prof as prof;
pub use gs_runtime as runtime;
pub use gs_sim as sim;
pub use gs_telemetry as telemetry;
