//! Detector operation counters (the paper's complexity metrics, §5.3).
//!
//! The paper's primary complexity measure is the number of **partial
//! Euclidean distance (PED) calculations**, "since the dominant part of the
//! additional computation is partial Euclidean distance calculations, this
//! metric tracks overall complexity accurately". The secondary measure is
//! **visited nodes** — identical across all Schnorr–Euchner decoders, which
//! the paper uses to argue Geosphere keeps one-node-per-cycle hardware
//! throughput.

use std::ops::{Add, AddAssign};

/// Operation counts accumulated during one or more detections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Exact partial Euclidean distance computations (the paper's primary
    /// complexity metric).
    pub ped_calcs: u64,
    /// Tree nodes the search descended into (including leaves).
    pub visited_nodes: u64,
    /// Slicing operations (nearest-point quantizations).
    pub slices: u64,
    /// Geometric lower-bound table lookups (Eq. 9).
    pub bound_checks: u64,
    /// Branches excluded by the geometric bound alone, with no exact PED.
    pub bound_prunes: u64,
    /// Complex multiplications performed by linear front-ends (ZF/MMSE
    /// filtering); lets the ZF-vs-sphere comparison of §5.3 be made in one
    /// unit.
    pub complex_mults: u64,
}

impl DetectorStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        DetectorStats::default()
    }

    /// Merges counts from another detection.
    pub fn merge(&mut self, other: &DetectorStats) {
        *self += *other;
    }
}

impl Add for DetectorStats {
    type Output = DetectorStats;
    fn add(self, o: DetectorStats) -> DetectorStats {
        DetectorStats {
            ped_calcs: self.ped_calcs + o.ped_calcs,
            visited_nodes: self.visited_nodes + o.visited_nodes,
            slices: self.slices + o.slices,
            bound_checks: self.bound_checks + o.bound_checks,
            bound_prunes: self.bound_prunes + o.bound_prunes,
            complex_mults: self.complex_mults + o.complex_mults,
        }
    }
}

impl AddAssign for DetectorStats {
    fn add_assign(&mut self, o: DetectorStats) {
        *self = *self + o;
    }
}

/// Averages a stats accumulator over `n` detections (e.g. per subcarrier,
/// as the paper reports).
#[derive(Clone, Copy, Debug, Default)]
pub struct AverageStats {
    /// Average exact PED calculations.
    pub ped_calcs: f64,
    /// Average visited nodes.
    pub visited_nodes: f64,
    /// Average slicing operations.
    pub slices: f64,
    /// Average geometric-bound lookups.
    pub bound_checks: f64,
    /// Average bound-only prunes.
    pub bound_prunes: f64,
    /// Average complex multiplications.
    pub complex_mults: f64,
}

impl AverageStats {
    /// Divides accumulated totals by the number of detections.
    pub fn from_total(total: DetectorStats, n: u64) -> Self {
        let n = n.max(1) as f64;
        AverageStats {
            ped_calcs: total.ped_calcs as f64 / n,
            visited_nodes: total.visited_nodes as f64 / n,
            slices: total.slices as f64 / n,
            bound_checks: total.bound_checks as f64 / n,
            bound_prunes: total.bound_prunes as f64 / n,
            complex_mults: total.complex_mults as f64 / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_merge() {
        let a = DetectorStats { ped_calcs: 3, visited_nodes: 2, ..Default::default() };
        let b = DetectorStats { ped_calcs: 5, slices: 1, ..Default::default() };
        let c = a + b;
        assert_eq!(c.ped_calcs, 8);
        assert_eq!(c.visited_nodes, 2);
        assert_eq!(c.slices, 1);
        let mut d = a;
        d.merge(&b);
        assert_eq!(d, c);
    }

    #[test]
    fn averaging() {
        let total = DetectorStats { ped_calcs: 100, visited_nodes: 40, ..Default::default() };
        let avg = AverageStats::from_total(total, 10);
        assert!((avg.ped_calcs - 10.0).abs() < 1e-12);
        assert!((avg.visited_nodes - 4.0).abs() < 1e-12);
    }

    #[test]
    fn average_of_zero_detections_is_safe() {
        let avg = AverageStats::from_total(DetectorStats::default(), 0);
        assert_eq!(avg.ped_calcs, 0.0);
    }
}
