//! The common MIMO detection interface.
//!
//! A detector receives the **grid-domain** channel (the physical channel
//! with the constellation's power normalization folded in) and the received
//! vector, and returns hard symbol decisions on the odd-integer grid plus
//! operation counts. All decoders in this crate — linear, SIC, sphere,
//! K-best — implement this one trait, which is what lets the evaluation
//! harness sweep them uniformly.

use crate::stats::DetectorStats;
use gs_linalg::{Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};
use std::any::Any;

/// The result of detecting one received vector.
#[derive(Clone, Debug)]
pub struct Detection {
    /// Hard symbol decisions, one per transmit stream, grid domain.
    pub symbols: Vec<GridPoint>,
    /// Operation counts for this detection.
    pub stats: DetectorStats,
}

/// Opaque per-worker scratch for the allocation-free batched detection
/// entry points ([`MimoDetector::detect_batch_with`]).
///
/// Each detector family stores its own concrete state inside — the sphere
/// decoders a [`SearchWorkspace`](crate::SearchWorkspace), the linear/SIC
/// detectors a [`FilterCache`](crate::FilterCache) — and retrieves it with
/// [`DetectorWorkspace::get_or_insert`]. A workspace created by one
/// detector type and later handed to another is simply re-seeded (one
/// warmup allocation), so long-lived receivers can hold a single
/// `DetectorWorkspace` regardless of which detector runs.
/// (The contents are `Send + Sync`: workspaces sit inside shared frame
/// slots that concurrent shard workers read around — see `gs-runtime` —
/// and every detector's scratch is plain owned data anyway.)
#[derive(Default)]
pub struct DetectorWorkspace {
    inner: Option<Box<dyn Any + Send + Sync>>,
}

impl DetectorWorkspace {
    /// Creates an empty workspace; the owning detector seeds it on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows the contained `T`, replacing whatever is inside (nothing, or
    /// another detector's state) with `make()` when it is not already a `T`.
    pub fn get_or_insert<T: Send + Sync + 'static>(&mut self, make: impl FnOnce() -> T) -> &mut T {
        let needs_seed = !matches!(&self.inner, Some(b) if b.is::<T>());
        if needs_seed {
            self.inner = Some(Box::new(make()));
        }
        self.inner
            .as_mut()
            .expect("workspace just seeded")
            .downcast_mut::<T>()
            .expect("workspace holds the requested type")
    }
}

/// A hard-output MIMO detector.
///
/// `Send + Sync` is part of the contract: detection is a pure function of
/// `(h, y, c)` with no interior mutability, which is what lets
/// [`BatchDetector`](crate::BatchDetector) share one detector across a
/// worker pool by reference.
pub trait MimoDetector: Send + Sync {
    /// Detects the transmitted symbol vector.
    ///
    /// * `h` — grid-domain channel (`na × nc`): `y = h·s + w` with `s`
    ///   entries on the odd-integer constellation grid.
    /// * `y` — received vector (`na` entries).
    /// * `c` — the constellation every stream uses.
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection;

    /// Detects every job of a batch, in job order.
    ///
    /// The default routes through a fresh workspace and
    /// [`MimoDetector::detect_batch_with`], whose own default loops
    /// [`MimoDetector::detect`] — so detectors that override the `_with`
    /// pair (per-channel preprocessing: QR in the sphere decoders, filter
    /// caching in the linear/SIC detectors) get whole-batch amortization
    /// here for free, with bit-identical per-job results.
    fn detect_batch(&self, batch: &crate::batch::DetectionBatch) -> Vec<Detection> {
        let mut ws = self.make_batch_workspace();
        let mut out = Vec::with_capacity(batch.jobs.len());
        self.detect_batch_with(batch, &mut ws, &mut out);
        out
    }

    /// Detects the jobs selected by `indices` (results in `indices` order).
    ///
    /// This is the scattered-dispatch form [`crate::BatchDetector`] uses to
    /// hand workers channel-grouped job subsets without materializing a
    /// cloned, reordered job list. Like [`MimoDetector::detect_batch`], the
    /// default delegates to the `_with` form, so one override serves both.
    fn detect_batch_indexed(
        &self,
        batch: &crate::batch::DetectionBatch,
        indices: &[usize],
    ) -> Vec<Detection> {
        let mut ws = self.make_batch_workspace();
        let mut out = Vec::with_capacity(indices.len());
        self.detect_batch_indexed_with(batch, indices, &mut ws, &mut out);
        out
    }

    /// Creates a reusable opaque workspace for the `_with` batch entry
    /// points. The default is empty (the default `_with` implementations
    /// need no state); detectors with per-channel preprocessing return a
    /// workspace that their overrides recognize and reuse.
    fn make_batch_workspace(&self) -> DetectorWorkspace {
        DetectorWorkspace::new()
    }

    /// Detects every job of a batch into a recycled output vector, reusing
    /// `ws` across calls — the allocation-free counterpart of
    /// [`MimoDetector::detect_batch`], bit-identical to it.
    ///
    /// `out` is cleared and refilled in job order. The default loops
    /// [`MimoDetector::detect`]; detectors with per-channel preprocessing
    /// override this (and [`MimoDetector::detect_batch_indexed_with`]) so
    /// that a warmed workspace makes the whole call allocation-free.
    fn detect_batch_with(
        &self,
        batch: &crate::batch::DetectionBatch,
        ws: &mut DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        let _ = ws;
        out.clear();
        out.extend(
            batch.jobs.iter().map(|job| self.detect(&batch.channels[job.channel], &job.y, batch.c)),
        );
    }

    /// Detects the jobs selected by `indices` into a recycled output vector
    /// (results in `indices` order), reusing `ws` across calls — the
    /// allocation-free counterpart of
    /// [`MimoDetector::detect_batch_indexed`], bit-identical to it.
    fn detect_batch_indexed_with(
        &self,
        batch: &crate::batch::DetectionBatch,
        indices: &[usize],
        ws: &mut DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        let _ = ws;
        out.clear();
        out.extend(indices.iter().map(|&ix| {
            let job = &batch.jobs[ix];
            self.detect(&batch.channels[job.channel], &job.y, batch.c)
        }));
    }

    /// A short display name ("ZF", "Geosphere", "ETH-SD", …).
    fn name(&self) -> &'static str;
}

/// Computes `y = h·s + noise`-free transmit hypothesis `h·s` for a grid
/// symbol vector — shared by the exhaustive detector and the tests.
pub fn apply_channel(h: &Matrix, s: &[GridPoint]) -> Vec<Complex> {
    let mut out = Vec::with_capacity(h.rows());
    apply_channel_into(h, s, &mut out);
    out
}

/// [`apply_channel`] into a reused output buffer (cleared first) —
/// bit-identical, without the per-call symbol-vector and output
/// allocations. The frame planner's per-(symbol, subcarrier) inner loop
/// runs on this.
pub fn apply_channel_into(h: &Matrix, s: &[GridPoint], out: &mut Vec<Complex>) {
    assert_eq!(s.len(), h.cols(), "symbol count must match channel columns");
    out.clear();
    for r in 0..h.rows() {
        let mut acc = Complex::ZERO;
        for (c, p) in s.iter().enumerate() {
            acc += h[(r, c)] * p.to_complex();
        }
        out.push(acc);
    }
}

/// Squared residual `‖y − h·s‖²` of a hypothesis.
pub fn residual_norm_sqr(h: &Matrix, y: &[Complex], s: &[GridPoint]) -> f64 {
    gs_linalg::vec_dist_sqr(y, &apply_channel(h, s))
}

/// Slices each entry of a filtered estimate to the nearest grid point —
/// the decision step of every linear detector.
pub fn slice_vector(
    estimate: &[Complex],
    c: Constellation,
    stats: &mut DetectorStats,
) -> Vec<GridPoint> {
    stats.slices += estimate.len() as u64;
    estimate.iter().map(|&z| c.slice(z)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_channel_identity() {
        let h = Matrix::identity(2);
        let s = vec![GridPoint { i: 1, q: -3 }, GridPoint { i: -1, q: 1 }];
        let y = apply_channel(&h, &s);
        assert!((y[0] - Complex::new(1.0, -3.0)).abs() < 1e-12);
        assert!((y[1] - Complex::new(-1.0, 1.0)).abs() < 1e-12);
        assert!(residual_norm_sqr(&h, &y, &s) < 1e-12);
    }

    #[test]
    fn slice_vector_counts() {
        let mut stats = DetectorStats::default();
        let est = vec![Complex::new(0.8, -2.6), Complex::new(-4.0, 4.0)];
        let out = slice_vector(&est, Constellation::Qam16, &mut stats);
        assert_eq!(out, vec![GridPoint { i: 1, q: -3 }, GridPoint { i: -3, q: 3 }]);
        assert_eq!(stats.slices, 2);
    }
}
