//! The common MIMO detection interface.
//!
//! A detector receives the **grid-domain** channel (the physical channel
//! with the constellation's power normalization folded in) and the received
//! vector, and returns hard symbol decisions on the odd-integer grid plus
//! operation counts. All decoders in this crate — linear, SIC, sphere,
//! K-best — implement this one trait, which is what lets the evaluation
//! harness sweep them uniformly.

use crate::stats::DetectorStats;
use gs_linalg::{Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};

/// The result of detecting one received vector.
#[derive(Clone, Debug)]
pub struct Detection {
    /// Hard symbol decisions, one per transmit stream, grid domain.
    pub symbols: Vec<GridPoint>,
    /// Operation counts for this detection.
    pub stats: DetectorStats,
}

/// A hard-output MIMO detector.
///
/// `Send + Sync` is part of the contract: detection is a pure function of
/// `(h, y, c)` with no interior mutability, which is what lets
/// [`BatchDetector`](crate::BatchDetector) share one detector across a
/// worker pool by reference.
pub trait MimoDetector: Send + Sync {
    /// Detects the transmitted symbol vector.
    ///
    /// * `h` — grid-domain channel (`na × nc`): `y = h·s + w` with `s`
    ///   entries on the odd-integer constellation grid.
    /// * `y` — received vector (`na` entries).
    /// * `c` — the constellation every stream uses.
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection;

    /// Detects every job of a batch, in job order.
    ///
    /// The default loops [`MimoDetector::detect`]. Detectors with
    /// per-channel preprocessing (QR factorization in the sphere decoders)
    /// override this to compute it once per distinct channel in the
    /// batch's table instead of once per job — with bit-identical results.
    /// **An override here must be paired with a
    /// [`MimoDetector::detect_batch_indexed`] override**: the worker pool
    /// dispatches non-channel-grouped batches through the indexed form, and
    /// its default gets no amortization.
    fn detect_batch(&self, batch: &crate::batch::DetectionBatch) -> Vec<Detection> {
        batch.detect_serial(self)
    }

    /// Detects the jobs selected by `indices` (results in `indices` order).
    ///
    /// This is the scattered-dispatch form [`crate::BatchDetector`] uses to
    /// hand workers channel-grouped job subsets without materializing a
    /// cloned, reordered job list. The default loops
    /// [`MimoDetector::detect`]; detectors with per-channel preprocessing
    /// must override it alongside [`MimoDetector::detect_batch`] (same
    /// amortization — `indices` arrive channel-grouped — and bit-identical
    /// per-job results in both cases).
    fn detect_batch_indexed(
        &self,
        batch: &crate::batch::DetectionBatch,
        indices: &[usize],
    ) -> Vec<Detection> {
        indices
            .iter()
            .map(|&ix| {
                let job = &batch.jobs[ix];
                self.detect(&batch.channels[job.channel], &job.y, batch.c)
            })
            .collect()
    }

    /// A short display name ("ZF", "Geosphere", "ETH-SD", …).
    fn name(&self) -> &'static str;
}

/// Computes `y = h·s + noise`-free transmit hypothesis `h·s` for a grid
/// symbol vector — shared by the exhaustive detector and the tests.
pub fn apply_channel(h: &Matrix, s: &[GridPoint]) -> Vec<Complex> {
    let sv: Vec<Complex> = s.iter().map(|p| p.to_complex()).collect();
    h.mul_vec(&sv)
}

/// Squared residual `‖y − h·s‖²` of a hypothesis.
pub fn residual_norm_sqr(h: &Matrix, y: &[Complex], s: &[GridPoint]) -> f64 {
    gs_linalg::vec_dist_sqr(y, &apply_channel(h, s))
}

/// Slices each entry of a filtered estimate to the nearest grid point —
/// the decision step of every linear detector.
pub fn slice_vector(
    estimate: &[Complex],
    c: Constellation,
    stats: &mut DetectorStats,
) -> Vec<GridPoint> {
    stats.slices += estimate.len() as u64;
    estimate.iter().map(|&z| c.slice(z)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_channel_identity() {
        let h = Matrix::identity(2);
        let s = vec![GridPoint { i: 1, q: -3 }, GridPoint { i: -1, q: 1 }];
        let y = apply_channel(&h, &s);
        assert!((y[0] - Complex::new(1.0, -3.0)).abs() < 1e-12);
        assert!((y[1] - Complex::new(-1.0, 1.0)).abs() < 1e-12);
        assert!(residual_norm_sqr(&h, &y, &s) < 1e-12);
    }

    #[test]
    fn slice_vector_counts() {
        let mut stats = DetectorStats::default();
        let est = vec![Complex::new(0.8, -2.6), Complex::new(-4.0, 4.0)];
        let out = slice_vector(&est, Constellation::Qam16, &mut stats);
        assert_eq!(out, vec![GridPoint { i: 1, q: -3 }, GridPoint { i: -3, q: 3 }]);
        assert_eq!(stats.slices, 2);
    }
}
