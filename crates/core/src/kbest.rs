//! K-best breadth-first detection (paper §6.1, "K-best sphere decoders").
//!
//! Keeps the `K` lowest-distance partial vectors at each tree level,
//! expanding each survivor's children in zigzag (nondecreasing-cost) order.
//! Unlike depth-first Schnorr–Euchner decoders it is **not** exactly
//! maximum-likelihood: "the choice of K is speculative and increases with
//! the order of the constellation, making K-best inappropriate for dense
//! constellations" — which is exactly what the ablation benches show.

use crate::detector::{Detection, MimoDetector};
use crate::sphere::enumerator::{EnumeratorFactory, NodeEnumerator};
use crate::sphere::geosphere_enum::GeosphereFactory;
use crate::stats::DetectorStats;
use gs_linalg::{qr_decompose, Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};

/// The K-best breadth-first detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KBestDetector {
    /// Number of surviving partial vectors per level.
    pub k: usize,
}

impl KBestDetector {
    /// Creates a K-best detector.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "K must be positive");
        KBestDetector { k }
    }
}

#[derive(Clone)]
struct Partial {
    dist: f64,
    symbols: Vec<GridPoint>, // chosen for levels i..nc (index 0 = level i)
}

impl MimoDetector for KBestDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        let mut stats = DetectorStats::default();
        let nc = h.cols();
        let qr = qr_decompose(h);
        let yhat_full = qr.rotate(y);
        let yhat = &yhat_full[..nc];
        let r = &qr.r;

        let factory = GeosphereFactory::zigzag_only();
        // One enumerator reused (reset in place) across every node
        // expansion — the reuse protocol's single-slot degenerate case.
        let mut enum_slot = None;
        let mut survivors = vec![Partial { dist: 0.0, symbols: Vec::new() }];
        for i in (0..nc).rev() {
            let mut candidates: Vec<Partial> = Vec::with_capacity(survivors.len() * self.k);
            for parent in &survivors {
                // Center for this level given the parent's chosen symbols.
                let mut acc = yhat[i];
                for (offset, j) in ((i + 1)..nc).enumerate() {
                    acc -=
                        r[(i, j)] * parent.symbols[parent.symbols.len() - 1 - offset].to_complex();
                }
                stats.complex_mults += (nc - 1 - i) as u64;
                let rll = r[(i, i)].re;
                let center = if rll > f64::EPSILON { acc / rll } else { Complex::ZERO };
                let gain = rll * rll;
                // Expand only the K cheapest children — zigzag order makes
                // the truncation cheap and sorted.
                factory.make_in(&mut enum_slot, c, center, gain, &mut stats);
                let en = enum_slot.as_mut().expect("slot just filled");
                for _ in 0..self.k.min(c.size()) {
                    let Some(child) = en.next_child(f64::INFINITY, &mut stats) else { break };
                    stats.visited_nodes += 1;
                    let mut symbols = parent.symbols.clone();
                    symbols.push(child.point);
                    candidates.push(Partial { dist: parent.dist + child.cost, symbols });
                }
            }
            candidates.sort_by(|a, b| a.dist.total_cmp(&b.dist));
            candidates.truncate(self.k);
            survivors = candidates;
        }

        let best = survivors.into_iter().next().expect("at least one survivor");
        // symbols were pushed root-first (level nc-1 first): reverse into
        // natural stream order.
        let mut symbols = best.symbols;
        symbols.reverse();
        Detection { symbols, stats }
    }

    fn name(&self) -> &'static str {
        "K-best"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{apply_channel, residual_norm_sqr};
    use crate::ml::MlDetector;
    use gs_channel::{sample_cn, RayleighChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn noiseless_roundtrip() {
        let mut rng = StdRng::seed_from_u64(151);
        let c = Constellation::Qam16;
        let det = KBestDetector::new(8);
        for _ in 0..30 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let pts = c.points();
            let s: Vec<GridPoint> = (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let y = apply_channel(&h, &s);
            assert_eq!(det.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn k_equal_constellation_size_is_ml_for_two_streams() {
        // With K = |O| and nc = 2, K-best explores every root child with
        // its best leaf — guaranteed ML.
        let mut rng = StdRng::seed_from_u64(152);
        let c = Constellation::Qpsk;
        let det = KBestDetector::new(c.size());
        for _ in 0..40 {
            let h = RayleighChannel::new(2, 2).sample_matrix(&mut rng).scale(c.scale());
            let y: Vec<Complex> = (0..2).map(|_| sample_cn(&mut rng, 2.0)).collect();
            let kb = residual_norm_sqr(&h, &y, &det.detect(&h, &y, c).symbols);
            let ml = residual_norm_sqr(&h, &y, &MlDetector.detect(&h, &y, c).symbols);
            assert!((kb - ml).abs() < 1e-9);
        }
    }

    #[test]
    fn small_k_degrades_gracefully() {
        // K = 1 is pure decision feedback; it must still return valid
        // symbols and respect the budgeted node count.
        let mut rng = StdRng::seed_from_u64(153);
        let c = Constellation::Qam64;
        let det = KBestDetector::new(1);
        let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
        let y: Vec<Complex> = (0..4).map(|_| sample_cn(&mut rng, 1.0)).collect();
        let d = det.detect(&h, &y, c);
        assert_eq!(d.symbols.len(), 4);
        assert_eq!(d.stats.visited_nodes, 4); // one child per level
    }

    #[test]
    fn node_count_fixed_by_k() {
        // K-best's defining property: complexity independent of channel
        // and noise (visited nodes = K per level after the root).
        let mut rng = StdRng::seed_from_u64(154);
        let c = Constellation::Qam16;
        let det = KBestDetector::new(4);
        let mut counts = std::collections::HashSet::new();
        for _ in 0..10 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let y: Vec<Complex> = (0..4).map(|_| sample_cn(&mut rng, 1.0)).collect();
            counts.insert(det.detect(&h, &y, c).stats.visited_nodes);
        }
        assert_eq!(counts.len(), 1, "node count should be deterministic: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "K must be positive")]
    fn zero_k_panics() {
        KBestDetector::new(0);
    }
}
