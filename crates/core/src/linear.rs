//! Linear detectors: zero-forcing and MMSE.
//!
//! Zero-forcing (paper §1) inverts the channel: `H⁺y = s + H⁺w`. On a
//! well-conditioned channel this cleanly decouples streams; on a
//! poorly-conditioned one `H⁺w` blows up — the noise amplification
//! Geosphere exists to avoid. MMSE (paper §6, "Linear filtering")
//! regularizes the inverse by the noise power, trading residual
//! inter-stream interference against amplification.

use crate::detector::{slice_vector, Detection, MimoDetector};
use crate::stats::DetectorStats;
use gs_linalg::{pseudo_inverse, regularized_pseudo_inverse, Complex, Matrix};
use gs_modulation::Constellation;

/// The zero-forcing detector: slice `H⁺ y`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZfDetector;

impl MimoDetector for ZfDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        let mut stats = DetectorStats::default();
        // nt x nr complex multiplications to apply the precomputed filter —
        // the figure the paper quotes ("zero-forcing requires nt×nr = 8
        // complex multiplications" for 2x4).
        stats.complex_mults += (h.rows() * h.cols()) as u64;
        let symbols = match pseudo_inverse(h) {
            Ok(pinv) => slice_vector(&pinv.mul_vec(y), c, &mut stats),
            // Singular channel: fall back to matched-filter decisions so the
            // detector still returns (the frame will fail its CRC).
            Err(_) => slice_vector(&h.hermitian().mul_vec(y), c, &mut stats),
        };
        Detection { symbols, stats }
    }

    fn name(&self) -> &'static str {
        "ZF"
    }
}

/// The (unbiased-decision) MMSE detector: slice `(H*H + λI)⁻¹H* y` with
/// `λ = σ²/E_s` for grid-domain symbol energy `E_s`.
#[derive(Clone, Copy, Debug)]
pub struct MmseDetector {
    /// Physical complex noise variance `σ²` (unit-signal-power convention).
    pub noise_variance: f64,
}

impl MmseDetector {
    /// Creates an MMSE detector for a given noise variance.
    pub fn new(noise_variance: f64) -> Self {
        MmseDetector { noise_variance }
    }

    /// Regularizer `λ = σ²/E_s` in the grid domain: grid symbols carry
    /// energy `E_s`, so the noise-to-signal ratio per stream is `σ²/E_s`.
    fn lambda(&self, c: Constellation) -> f64 {
        self.noise_variance / c.energy()
    }
}

impl MimoDetector for MmseDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        let mut stats = DetectorStats::default();
        stats.complex_mults += (h.rows() * h.cols()) as u64;
        let symbols = match regularized_pseudo_inverse(h, self.lambda(c)) {
            Ok(w) => slice_vector(&w.mul_vec(y), c, &mut stats),
            Err(_) => slice_vector(&h.hermitian().mul_vec(y), c, &mut stats),
        };
        Detection { symbols, stats }
    }

    fn name(&self) -> &'static str {
        "MMSE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::apply_channel;
    use gs_channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
    use gs_modulation::GridPoint;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symbols(rng: &mut StdRng, c: Constellation, n: usize) -> Vec<GridPoint> {
        let pts = c.points();
        (0..n).map(|_| pts[rng.gen_range(0..pts.len())]).collect()
    }

    #[test]
    fn zf_perfect_on_identity_channel() {
        let mut rng = StdRng::seed_from_u64(111);
        let c = Constellation::Qam64;
        let h = Matrix::identity(4);
        let s = random_symbols(&mut rng, c, 4);
        let y = apply_channel(&h, &s);
        let det = ZfDetector.detect(&h, &y, c);
        assert_eq!(det.symbols, s);
    }

    #[test]
    fn zf_noiseless_random_channel() {
        let mut rng = StdRng::seed_from_u64(112);
        let c = Constellation::Qam16;
        for _ in 0..50 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let s = random_symbols(&mut rng, c, 4);
            let y = apply_channel(&h, &s);
            assert_eq!(ZfDetector.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn mmse_beats_zf_at_low_snr_on_bad_channel() {
        // On a poorly-conditioned channel with noise, MMSE should make at
        // least as few symbol errors as ZF on average.
        let mut rng = StdRng::seed_from_u64(113);
        let c = Constellation::Qpsk;
        let snr_db = 12.0;
        let sigma2 = noise_variance_for_snr_db(snr_db);
        let mut zf_errs = 0usize;
        let mut mmse_errs = 0usize;
        for _ in 0..400 {
            // Correlated columns: h2 = h1 + small perturbation.
            let h1: Vec<Complex> = (0..2).map(|_| sample_cn(&mut rng, 1.0)).collect();
            let h = Matrix::from_fn(2, 2, |r, col| {
                if col == 0 {
                    h1[r]
                } else {
                    h1[r] + sample_cn(&mut rng, 0.05)
                }
            })
            .scale(c.scale());
            let s = random_symbols(&mut rng, c, 2);
            let mut y = apply_channel(&h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, sigma2);
            }
            zf_errs +=
                ZfDetector.detect(&h, &y, c).symbols.iter().zip(&s).filter(|(a, b)| a != b).count();
            mmse_errs += MmseDetector::new(sigma2)
                .detect(&h, &y, c)
                .symbols
                .iter()
                .zip(&s)
                .filter(|(a, b)| a != b)
                .count();
        }
        assert!(
            mmse_errs <= zf_errs,
            "MMSE ({mmse_errs}) should not be worse than ZF ({zf_errs}) here"
        );
    }

    #[test]
    fn zf_survives_singular_channel() {
        let h = Matrix::from_rows(
            2,
            2,
            &[Complex::real(1.0), Complex::real(1.0), Complex::real(1.0), Complex::real(1.0)],
        );
        let y = vec![Complex::new(0.5, 0.5); 2];
        let det = ZfDetector.detect(&h, &y, Constellation::Qpsk);
        assert_eq!(det.symbols.len(), 2);
    }

    #[test]
    fn mults_counted() {
        let h = Matrix::identity(4);
        let y = vec![Complex::ONE; 4];
        let det = ZfDetector.detect(&h, &y, Constellation::Qpsk);
        assert_eq!(det.stats.complex_mults, 16);
        assert_eq!(det.stats.slices, 4);
    }
}
