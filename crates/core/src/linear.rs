//! Linear detectors: zero-forcing and MMSE.
//!
//! Zero-forcing (paper §1) inverts the channel: `H⁺y = s + H⁺w`. On a
//! well-conditioned channel this cleanly decouples streams; on a
//! poorly-conditioned one `H⁺w` blows up — the noise amplification
//! Geosphere exists to avoid. MMSE (paper §6, "Linear filtering")
//! regularizes the inverse by the noise power, trading residual
//! inter-stream interference against amplification.
//!
//! Filter construction goes through [`FilterCache`]: a single detection
//! builds (and immediately uses) one entry, while the batch entry points
//! share one cache across the batch so each distinct channel's
//! pseudo-inverse is computed once per batch instead of once per
//! detection — with bit-identical outputs either way.

use crate::detector::{slice_vector, Detection, DetectorWorkspace, MimoDetector};
use crate::filter_cache::{compute_linear_filter, FilterCache};
use crate::stats::DetectorStats;
use gs_linalg::{Complex, Matrix};
use gs_modulation::Constellation;

/// Scratch owned by the linear detectors' batch workspace: the shared
/// filter cache plus the filtered-estimate buffer.
#[derive(Default)]
pub(crate) struct LinearScratch {
    pub(crate) cache: FilterCache,
    pub(crate) est: Vec<Complex>,
}

/// A single uncached linear detection: builds the filter for this call
/// only (no snapshot, no cache bookkeeping) — the serial `detect` path.
fn detect_linear_oneshot(
    h: &Matrix,
    y: &[Complex],
    c: Constellation,
    lambda: Option<f64>,
) -> Detection {
    let mut stats = DetectorStats::default();
    stats.complex_mults += (h.rows() * h.cols()) as u64;
    let w = compute_linear_filter(h, lambda);
    let symbols = slice_vector(&w.mul_vec(y), c, &mut stats);
    Detection { symbols, stats }
}

/// One cached-filter linear detection: applies `W y` and slices. The
/// filter application cost is `nt × nr` complex multiplications — the
/// figure the paper quotes ("zero-forcing requires nt×nr = 8 complex
/// multiplications" for 2x4) — counted identically to the seed
/// implementation.
fn detect_linear(
    h: &Matrix,
    y: &[Complex],
    c: Constellation,
    lambda: Option<f64>,
    channel_idx: usize,
    scratch: &mut LinearScratch,
) -> Detection {
    let mut stats = DetectorStats::default();
    stats.complex_mults += (h.rows() * h.cols()) as u64;
    let LinearScratch { cache, est } = scratch;
    let w = cache.linear_filter(channel_idx, h, lambda);
    w.mul_vec_into(y, est);
    let symbols = slice_vector(est, c, &mut stats);
    Detection { symbols, stats }
}

/// Runs a batch (or an indexed subset) through [`detect_linear`] with one
/// shared cache — the common body of both linear detectors' batch
/// overrides.
fn detect_batch_linear<'j>(
    batch: &crate::batch::DetectionBatch,
    jobs: impl Iterator<Item = &'j crate::batch::DetectionJob>,
    lambda: Option<f64>,
    ws: &mut DetectorWorkspace,
    out: &mut Vec<Detection>,
) {
    let scratch = ws.get_or_insert(LinearScratch::default);
    out.clear();
    for job in jobs {
        out.push(detect_linear(
            &batch.channels[job.channel],
            &job.y,
            batch.c,
            lambda,
            job.channel,
            scratch,
        ));
    }
}

/// The zero-forcing detector: slice `H⁺ y`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ZfDetector;

impl MimoDetector for ZfDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        // Singular channels fall back to matched-filter decisions inside
        // the filter build, so the detector still returns (the frame will
        // fail its CRC).
        detect_linear_oneshot(h, y, c, None)
    }

    fn detect_batch_with(
        &self,
        batch: &crate::batch::DetectionBatch,
        ws: &mut DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        detect_batch_linear(batch, batch.jobs.iter(), None, ws, out);
    }

    fn detect_batch_indexed_with(
        &self,
        batch: &crate::batch::DetectionBatch,
        indices: &[usize],
        ws: &mut DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        detect_batch_linear(batch, indices.iter().map(|&ix| &batch.jobs[ix]), None, ws, out);
    }

    fn name(&self) -> &'static str {
        "ZF"
    }
}

/// The (unbiased-decision) MMSE detector: slice `(H*H + λI)⁻¹H* y` with
/// `λ = σ²/E_s` for grid-domain symbol energy `E_s`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MmseDetector {
    /// Physical complex noise variance `σ²` (unit-signal-power convention).
    pub noise_variance: f64,
}

impl MmseDetector {
    /// Creates an MMSE detector for a given noise variance.
    pub fn new(noise_variance: f64) -> Self {
        MmseDetector { noise_variance }
    }

    /// Regularizer `λ = σ²/E_s` in the grid domain: grid symbols carry
    /// energy `E_s`, so the noise-to-signal ratio per stream is `σ²/E_s`.
    fn lambda(&self, c: Constellation) -> f64 {
        self.noise_variance / c.energy()
    }
}

impl MimoDetector for MmseDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        detect_linear_oneshot(h, y, c, Some(self.lambda(c)))
    }

    fn detect_batch_with(
        &self,
        batch: &crate::batch::DetectionBatch,
        ws: &mut DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        detect_batch_linear(batch, batch.jobs.iter(), Some(self.lambda(batch.c)), ws, out);
    }

    fn detect_batch_indexed_with(
        &self,
        batch: &crate::batch::DetectionBatch,
        indices: &[usize],
        ws: &mut DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        detect_batch_linear(
            batch,
            indices.iter().map(|&ix| &batch.jobs[ix]),
            Some(self.lambda(batch.c)),
            ws,
            out,
        );
    }

    fn name(&self) -> &'static str {
        "MMSE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::apply_channel;
    use gs_channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
    use gs_modulation::GridPoint;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symbols(rng: &mut StdRng, c: Constellation, n: usize) -> Vec<GridPoint> {
        let pts = c.points();
        (0..n).map(|_| pts[rng.gen_range(0..pts.len())]).collect()
    }

    #[test]
    fn zf_perfect_on_identity_channel() {
        let mut rng = StdRng::seed_from_u64(111);
        let c = Constellation::Qam64;
        let h = Matrix::identity(4);
        let s = random_symbols(&mut rng, c, 4);
        let y = apply_channel(&h, &s);
        let det = ZfDetector.detect(&h, &y, c);
        assert_eq!(det.symbols, s);
    }

    #[test]
    fn zf_noiseless_random_channel() {
        let mut rng = StdRng::seed_from_u64(112);
        let c = Constellation::Qam16;
        for _ in 0..50 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let s = random_symbols(&mut rng, c, 4);
            let y = apply_channel(&h, &s);
            assert_eq!(ZfDetector.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn mmse_beats_zf_at_low_snr_on_bad_channel() {
        // On a poorly-conditioned channel with noise, MMSE should make at
        // least as few symbol errors as ZF on average.
        let mut rng = StdRng::seed_from_u64(113);
        let c = Constellation::Qpsk;
        let snr_db = 12.0;
        let sigma2 = noise_variance_for_snr_db(snr_db);
        let mut zf_errs = 0usize;
        let mut mmse_errs = 0usize;
        for _ in 0..400 {
            // Correlated columns: h2 = h1 + small perturbation.
            let h1: Vec<Complex> = (0..2).map(|_| sample_cn(&mut rng, 1.0)).collect();
            let h = Matrix::from_fn(2, 2, |r, col| {
                if col == 0 {
                    h1[r]
                } else {
                    h1[r] + sample_cn(&mut rng, 0.05)
                }
            })
            .scale(c.scale());
            let s = random_symbols(&mut rng, c, 2);
            let mut y = apply_channel(&h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, sigma2);
            }
            zf_errs +=
                ZfDetector.detect(&h, &y, c).symbols.iter().zip(&s).filter(|(a, b)| a != b).count();
            mmse_errs += MmseDetector::new(sigma2)
                .detect(&h, &y, c)
                .symbols
                .iter()
                .zip(&s)
                .filter(|(a, b)| a != b)
                .count();
        }
        assert!(
            mmse_errs <= zf_errs,
            "MMSE ({mmse_errs}) should not be worse than ZF ({zf_errs}) here"
        );
    }

    #[test]
    fn zf_survives_singular_channel() {
        let h = Matrix::from_rows(
            2,
            2,
            &[Complex::real(1.0), Complex::real(1.0), Complex::real(1.0), Complex::real(1.0)],
        );
        let y = vec![Complex::new(0.5, 0.5); 2];
        let det = ZfDetector.detect(&h, &y, Constellation::Qpsk);
        assert_eq!(det.symbols.len(), 2);
    }

    #[test]
    fn mults_counted() {
        let h = Matrix::identity(4);
        let y = vec![Complex::ONE; 4];
        let det = ZfDetector.detect(&h, &y, Constellation::Qpsk);
        assert_eq!(det.stats.complex_mults, 16);
        assert_eq!(det.stats.slices, 4);
    }

    #[test]
    fn batch_with_matches_per_call_detect() {
        // Cached-filter batch detection must be bit-identical to plain
        // per-call detection, entry reuse and CSI invalidation included.
        let mut rng = StdRng::seed_from_u64(114);
        let c = Constellation::Qam16;
        let channels: Vec<Matrix> = (0..3)
            .map(|_| RayleighChannel::new(4, 3).sample_matrix(&mut rng).scale(c.scale()))
            .collect();
        let jobs: Vec<crate::batch::DetectionJob> = (0..12)
            .map(|j| {
                let channel = j % 3;
                let s = random_symbols(&mut rng, c, 3);
                let mut y = apply_channel(&channels[channel], &s);
                for v in y.iter_mut() {
                    *v += sample_cn(&mut rng, 0.05);
                }
                crate::batch::DetectionJob { channel, y }
            })
            .collect();
        let batch = crate::batch::DetectionBatch { channels: &channels, jobs: &jobs, c };
        for det in [&ZfDetector as &dyn MimoDetector, &MmseDetector::new(0.05)] {
            let reference = batch.detect_serial(det);
            let mut ws = det.make_batch_workspace();
            let mut out = Vec::new();
            // Two passes through the same warm workspace: the second runs
            // entirely on cached filters.
            for pass in 0..2 {
                det.detect_batch_with(&batch, &mut ws, &mut out);
                for (k, (a, b)) in out.iter().zip(&reference).enumerate() {
                    assert_eq!(a.symbols, b.symbols, "{} pass {pass} job {k}", det.name());
                    assert_eq!(a.stats, b.stats, "{} pass {pass} job {k}", det.name());
                }
            }
        }
    }
}
