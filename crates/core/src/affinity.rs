//! Worker-thread CPU affinity.
//!
//! The [`DetectionPool`](crate::DetectionPool) threads are long-lived —
//! spawned once and reused across every frame a receiver decodes — so
//! pinning each worker to one core is a cheap, stable win: the worker's
//! search workspace (enumerator slabs, QR factors, recycled output
//! buffers) stays in one core's cache instead of migrating with the
//! scheduler. Workers are pinned round-robin (`worker i → core i mod
//! n_cores`); set `GS_NO_PIN` (or `GS_NO_PIN=1`) to opt out, e.g. when
//! sharing a box with other pinned workloads.
//!
//! This module also discovers the machine's **memory domains**
//! ([`memory_domains`]): the NUMA topology read from sysfs, a flat
//! single-domain fallback where sysfs is unavailable, and a `GS_DOMAINS`
//! synthetic override. Domains are the shard axis of the streaming
//! dispatch layer ([`crate::ShardedDetectionPool`]): one job queue and one
//! channel-table replica per domain, served by workers pinned inside it.
//!
//! Pinning is best-effort and Linux-only: on other platforms, or when the
//! syscall fails (containers with restricted affinity masks), workers
//! simply run unpinned — placement never affects correctness, only cache
//! locality.

/// Whether `GS_NO_PIN` disables worker pinning for this process.
///
/// Parsed through the workspace's shared knob policy
/// ([`gs_linalg::env::env_flag`]): unset keeps pinning on; empty or
/// `1`/`true`/`yes`/`on` disables it; `0`/`false`/`no`/`off` keeps it on;
/// anything else warns on stderr and disables pinning (the safe reading of
/// a mistyped opt-out).
pub fn pinning_disabled_by_env() -> bool {
    gs_linalg::env::env_flag("GS_NO_PIN")
}

/// The machine's memory domains, as ascending CPU lists — the shard axis
/// of [`crate::ShardedDetectionPool`].
///
/// Resolution order:
///
/// 1. `GS_DOMAINS=<n>` (a positive integer) splits the process's allowed
///    CPUs into `n` contiguous synthetic domains — the debugging/benching
///    override, and the way to exercise sharding on a single-domain box.
///    `GS_DOMAINS=auto` (or `0`, or unset) defers to discovery; an
///    unrecognized value warns on stderr and defers to discovery.
/// 2. sysfs NUMA discovery: each online `/sys/devices/system/node/node*`
///    whose `cpulist` intersects the allowed set becomes one domain.
/// 3. Flat fallback: one domain holding every allowed CPU (non-Linux, or
///    sysfs unreadable).
///
/// Every returned domain is non-empty and the union covers exactly the
/// allowed CPUs visible through some domain; domains are ordered by node
/// id (or contiguously for the synthetic split).
pub fn memory_domains() -> Vec<Vec<usize>> {
    let allowed = {
        let a = allowed_cpus();
        if a.is_empty() {
            let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            (0..n).collect()
        } else {
            a
        }
    };
    let forced = gs_linalg::env::env_knob(
        "GS_DOMAINS",
        "a positive integer|auto",
        "using sysfs domain discovery",
        0usize,
        0usize,
        |v| match v {
            "" | "auto" | "0" => Some(0),
            _ => v.parse::<usize>().ok(),
        },
    );
    if forced > 0 {
        return split_domains(&allowed, forced);
    }
    let discovered = sysfs_domains(&allowed);
    if discovered.is_empty() {
        vec![allowed]
    } else {
        discovered
    }
}

/// Splits `allowed` into **exactly** `n` contiguous, non-empty synthetic
/// domains (clamped to the CPU count), balanced to within one CPU — the
/// `k*len/n` partition, so a requested count is always honoured when
/// enough CPUs exist (fixed-size chunking could merge the tail and return
/// fewer domains than the operator configured).
fn split_domains(allowed: &[usize], n: usize) -> Vec<Vec<usize>> {
    if allowed.is_empty() {
        return vec![Vec::new()];
    }
    let n = n.clamp(1, allowed.len());
    (0..n).map(|k| allowed[k * allowed.len() / n..(k + 1) * allowed.len() / n].to_vec()).collect()
}

/// NUMA domains from sysfs, intersected with `allowed`; empty when sysfs
/// is unreadable (non-Linux) or no node intersects the allowed set.
fn sysfs_domains(allowed: &[usize]) -> Vec<Vec<usize>> {
    let Ok(entries) = std::fs::read_dir("/sys/devices/system/node") else {
        return Vec::new();
    };
    let mut nodes: Vec<(usize, std::path::PathBuf)> = entries
        .filter_map(|e| {
            let e = e.ok()?;
            let name = e.file_name().into_string().ok()?;
            let id: usize = name.strip_prefix("node")?.parse().ok()?;
            Some((id, e.path()))
        })
        .collect();
    nodes.sort_unstable_by_key(|&(id, _)| id);
    nodes
        .into_iter()
        .filter_map(|(_, path)| {
            let list = std::fs::read_to_string(path.join("cpulist")).ok()?;
            let cpus: Vec<usize> =
                parse_cpu_list(&list).into_iter().filter(|c| allowed.contains(c)).collect();
            (!cpus.is_empty()).then_some(cpus)
        })
        .collect()
}

/// Parses a kernel CPU list (`"0-3,8,10-11"`) into ascending CPU ids.
/// Malformed tokens are skipped — sysfs is trusted input, and a partial
/// parse degrades to a smaller domain rather than a crash.
pub fn parse_cpu_list(s: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for token in s.trim().split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        match token.split_once('-') {
            Some((lo, hi)) => {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                    cpus.extend(lo..=hi);
                }
            }
            None => {
                if let Ok(c) = token.parse::<usize>() {
                    cpus.push(c);
                }
            }
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    cpus
}

/// The CPUs this process is allowed to run on, in ascending order —
/// the domain the round-robin pinning indexes into. Respecting the
/// inherited mask matters precisely in the restricted deployments
/// (taskset, container cpusets): pinning to absolute core 0 from inside
/// `taskset -c 4-7` would be rejected and silently lose the feature.
/// Returns an empty vector when the mask cannot be read (non-Linux).
pub fn allowed_cpus() -> Vec<usize> {
    imp::allowed_cpus()
}

/// Pins the calling thread to `cpu` (an entry of [`allowed_cpus`], modulo
/// the platform mask width). Returns whether the kernel accepted the
/// mask; always `false` on non-Linux targets.
pub fn pin_current_thread(cpu: usize) -> bool {
    imp::pin_current_thread(cpu)
}

#[cfg(target_os = "linux")]
mod imp {
    /// `cpu_set_t` is 1024 bits on Linux/glibc.
    const MASK_WORDS: usize = 1024 / 64;

    // The glibc wrappers around the affinity syscalls. `pid == 0` targets
    // the calling thread.
    #[allow(unsafe_code)]
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
    }

    pub fn allowed_cpus() -> Vec<usize> {
        let mut mask = [0u64; MASK_WORDS];
        // Safety: the mask buffer outlives the call and its length is
        // passed in bytes, exactly as the glibc signature expects.
        #[allow(unsafe_code)]
        let rc = unsafe {
            sched_getaffinity(0, MASK_WORDS * std::mem::size_of::<u64>(), mask.as_mut_ptr())
        };
        if rc != 0 {
            return Vec::new();
        }
        (0..MASK_WORDS * 64).filter(|&c| mask[c / 64] >> (c % 64) & 1 == 1).collect()
    }

    pub fn pin_current_thread(cpu: usize) -> bool {
        let cpu = cpu % (MASK_WORDS * 64);
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] |= 1u64 << (cpu % 64);
        // Safety: as above — caller-owned buffer, byte length.
        #[allow(unsafe_code)]
        let rc =
            unsafe { sched_setaffinity(0, MASK_WORDS * std::mem::size_of::<u64>(), mask.as_ptr()) };
        rc == 0
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub fn allowed_cpus() -> Vec<usize> {
        Vec::new()
    }

    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_to_core_zero_succeeds_on_linux() {
        // Pin a scratch thread (not the test runner) to core 0 — which
        // always exists. A restricted container mask may still reject the
        // call, so a `false` return is tolerated; what must hold is that
        // the thread keeps running normally either way.
        let pinned = std::thread::spawn(|| {
            let ok = pin_current_thread(0);
            (ok, 6 * 7)
        })
        .join()
        .expect("pinned thread must not crash");
        assert_eq!(pinned.1, 42);
        if cfg!(not(target_os = "linux")) {
            assert!(!pinned.0, "non-Linux targets report unpinned");
        }
    }

    #[test]
    fn out_of_range_core_wraps() {
        // Must not panic or write out of bounds for absurd core indices.
        let _ = pin_current_thread(usize::MAX);
    }

    #[test]
    fn cpu_list_parsing() {
        assert_eq!(parse_cpu_list("0-3,8,10-11\n"), vec![0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(parse_cpu_list("5"), vec![5]);
        assert_eq!(parse_cpu_list(""), Vec::<usize>::new());
        assert_eq!(parse_cpu_list("2, 0-1 , junk, 2"), vec![0, 1, 2], "dedup + skip malformed");
    }

    #[test]
    fn synthetic_split_covers_all_cpus() {
        for len in [1usize, 5, 6, 8] {
            let allowed: Vec<usize> = (0..len).collect();
            for n in 1..=8 {
                let doms = split_domains(&allowed, n);
                assert!(doms.iter().all(|d| !d.is_empty()), "len={len} n={n}: no empty domain");
                let flat: Vec<usize> = doms.iter().flatten().copied().collect();
                assert_eq!(flat, allowed, "len={len} n={n}: covers the allowed set, in order");
                // The requested count is honoured exactly whenever enough
                // CPUs exist (GS_DOMAINS=4 on a 6-CPU box must give 4
                // domains, not 3).
                assert_eq!(doms.len(), n.min(len), "len={len} n={n}");
            }
        }
    }

    #[test]
    fn memory_domains_cover_a_nonempty_cpu_set() {
        // Whatever the discovery path (sysfs, flat fallback, or a
        // GS_DOMAINS override inherited from the environment), the
        // contract is: at least one domain, every domain non-empty, no CPU
        // in two domains.
        let doms = memory_domains();
        assert!(!doms.is_empty());
        let mut seen = std::collections::HashSet::new();
        for d in &doms {
            assert!(!d.is_empty(), "empty domain");
            for &c in d {
                assert!(seen.insert(c), "cpu {c} appears in two domains");
            }
        }
    }

    #[test]
    fn allowed_cpus_matches_parallelism_shape() {
        let cpus = allowed_cpus();
        if cfg!(target_os = "linux") {
            // At least the CPU we are running on is allowed, the list is
            // ascending and duplicate-free, and pinning to an allowed CPU
            // from a scratch thread succeeds.
            assert!(!cpus.is_empty());
            assert!(cpus.windows(2).all(|w| w[0] < w[1]));
            let first = cpus[0];
            let ok = std::thread::spawn(move || pin_current_thread(first)).join().unwrap();
            assert!(ok, "pinning to an allowed CPU must succeed");
        } else {
            assert!(cpus.is_empty());
        }
    }
}
