//! Worker-thread CPU affinity.
//!
//! The [`DetectionPool`](crate::DetectionPool) threads are long-lived —
//! spawned once and reused across every frame a receiver decodes — so
//! pinning each worker to one core is a cheap, stable win: the worker's
//! search workspace (enumerator slabs, QR factors, recycled output
//! buffers) stays in one core's cache instead of migrating with the
//! scheduler. Workers are pinned round-robin (`worker i → core i mod
//! n_cores`); set `GS_NO_PIN` (any value) to opt out, e.g. when sharing a
//! box with other pinned workloads.
//!
//! Pinning is best-effort and Linux-only: on other platforms, or when the
//! syscall fails (containers with restricted affinity masks), workers
//! simply run unpinned — placement never affects correctness, only cache
//! locality.

/// Whether `GS_NO_PIN` disables worker pinning for this process.
pub fn pinning_disabled_by_env() -> bool {
    std::env::var_os("GS_NO_PIN").is_some()
}

/// The CPUs this process is allowed to run on, in ascending order —
/// the domain the round-robin pinning indexes into. Respecting the
/// inherited mask matters precisely in the restricted deployments
/// (taskset, container cpusets): pinning to absolute core 0 from inside
/// `taskset -c 4-7` would be rejected and silently lose the feature.
/// Returns an empty vector when the mask cannot be read (non-Linux).
pub fn allowed_cpus() -> Vec<usize> {
    imp::allowed_cpus()
}

/// Pins the calling thread to `cpu` (an entry of [`allowed_cpus`], modulo
/// the platform mask width). Returns whether the kernel accepted the
/// mask; always `false` on non-Linux targets.
pub fn pin_current_thread(cpu: usize) -> bool {
    imp::pin_current_thread(cpu)
}

#[cfg(target_os = "linux")]
mod imp {
    /// `cpu_set_t` is 1024 bits on Linux/glibc.
    const MASK_WORDS: usize = 1024 / 64;

    // The glibc wrappers around the affinity syscalls. `pid == 0` targets
    // the calling thread.
    #[allow(unsafe_code)]
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
    }

    pub fn allowed_cpus() -> Vec<usize> {
        let mut mask = [0u64; MASK_WORDS];
        // Safety: the mask buffer outlives the call and its length is
        // passed in bytes, exactly as the glibc signature expects.
        #[allow(unsafe_code)]
        let rc = unsafe {
            sched_getaffinity(0, MASK_WORDS * std::mem::size_of::<u64>(), mask.as_mut_ptr())
        };
        if rc != 0 {
            return Vec::new();
        }
        (0..MASK_WORDS * 64).filter(|&c| mask[c / 64] >> (c % 64) & 1 == 1).collect()
    }

    pub fn pin_current_thread(cpu: usize) -> bool {
        let cpu = cpu % (MASK_WORDS * 64);
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] |= 1u64 << (cpu % 64);
        // Safety: as above — caller-owned buffer, byte length.
        #[allow(unsafe_code)]
        let rc =
            unsafe { sched_setaffinity(0, MASK_WORDS * std::mem::size_of::<u64>(), mask.as_ptr()) };
        rc == 0
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub fn allowed_cpus() -> Vec<usize> {
        Vec::new()
    }

    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_to_core_zero_succeeds_on_linux() {
        // Pin a scratch thread (not the test runner) to core 0 — which
        // always exists. A restricted container mask may still reject the
        // call, so a `false` return is tolerated; what must hold is that
        // the thread keeps running normally either way.
        let pinned = std::thread::spawn(|| {
            let ok = pin_current_thread(0);
            (ok, 6 * 7)
        })
        .join()
        .expect("pinned thread must not crash");
        assert_eq!(pinned.1, 42);
        if cfg!(not(target_os = "linux")) {
            assert!(!pinned.0, "non-Linux targets report unpinned");
        }
    }

    #[test]
    fn out_of_range_core_wraps() {
        // Must not panic or write out of bounds for absurd core indices.
        let _ = pin_current_thread(usize::MAX);
    }

    #[test]
    fn allowed_cpus_matches_parallelism_shape() {
        let cpus = allowed_cpus();
        if cfg!(target_os = "linux") {
            // At least the CPU we are running on is allowed, the list is
            // ascending and duplicate-free, and pinning to an allowed CPU
            // from a scratch thread succeeds.
            assert!(!cpus.is_empty());
            assert!(cpus.windows(2).all(|w| w[0] < w[1]));
            let first = cpus[0];
            let ok = std::thread::spawn(move || pin_current_thread(first)).join().unwrap();
            assert!(ok, "pinning to an allowed CPU must succeed");
        } else {
            assert!(cpus.is_empty());
        }
    }
}
