//! The depth-first Schnorr–Euchner sphere-decoding engine (paper §2).
//!
//! The engine is shared verbatim by every depth-first decoder in this crate
//! — Geosphere (with or without geometric pruning), ETH-SD, and the
//! full-sort reference — parameterized only by the [`EnumeratorFactory`]
//! that orders each node's children. Identical traversal given identical
//! child orderings is what delivers the paper's "same number of visited
//! nodes" property (§5.3).
//!
//! Walkthrough (paper Fig. 3): descend greedily along cheapest children to
//! a first leaf `a`, shrink the sphere radius to `d(a)`, backtrack and
//! expand any sibling whose partial distance still fits, terminating when
//! the root's remaining children all violate the sphere constraint.
//!
//! All per-search state lives in a caller-provided [`SearchWorkspace`]
//! (one per worker, reset per symbol — see [`crate::sphere::workspace`]):
//! enumerators are reset in place per node visit instead of allocated, so
//! the search itself performs zero heap allocations after warmup.

use crate::batch::DetectionJob;
use crate::detector::{Detection, MimoDetector};
use crate::sphere::enumerator::{EnumeratorFactory, NodeEnumerator};
use crate::sphere::workspace::{Prep, SearchWorkspace};
use crate::stats::DetectorStats;
use gs_linalg::{qr_decompose_into, sorted_qr_decompose_into, Complex, Matrix, Qr, SortedQr};
use gs_modulation::{Constellation, GridPoint};

/// A depth-first sphere decoder built from an enumerator family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SphereDecoder<F> {
    factory: F,
    /// Use column-norm sorted QR preprocessing (V-BLAST-style ordering).
    pub sorted_qr: bool,
    /// Optional initial squared radius (`∞` in the paper's §2.1 default).
    pub initial_radius_sqr: f64,
    /// Runtime guard: abandon the search after visiting this many tree
    /// nodes and return the best solution found so far. `u64::MAX` (the
    /// default) preserves exact ML; real-time receivers set a budget, and
    /// a triggered budget almost always coincides with operating points
    /// whose frames would fail anyway (hopeless SNR/constellation pairs).
    pub max_visited_nodes: u64,
    /// Batched paths: walk sibling jobs sharing one channel's QR through
    /// their first descents in lockstep, one [`gs_linalg::simd::cdot_soa_multi`]
    /// interference kernel per tree level across all of them (default
    /// `true`). Bit-identical to the per-job search — symbols and stats —
    /// so this is a diagnostic/bench knob, not a quality trade-off. Only
    /// engaged when the search is unconstrained (infinite initial radius,
    /// no node budget); otherwise the per-job path runs regardless.
    pub multi_symbol: bool,
}

impl<F: EnumeratorFactory> SphereDecoder<F> {
    /// Creates a decoder with unsorted QR and infinite initial radius.
    pub fn new(factory: F) -> Self {
        SphereDecoder {
            factory,
            sorted_qr: false,
            initial_radius_sqr: f64::INFINITY,
            max_visited_nodes: u64::MAX,
            multi_symbol: true,
        }
    }

    /// Enables sorted-QR preprocessing.
    pub fn with_sorted_qr(mut self) -> Self {
        self.sorted_qr = true;
        self
    }

    /// Disables multi-symbol lockstep batching (the per-job reference
    /// path) — used by benches and identity tests.
    pub fn with_single_symbol(mut self) -> Self {
        self.multi_symbol = false;
        self
    }

    /// Sets a visited-node budget (real-time runtime guard).
    pub fn with_node_budget(mut self, budget: u64) -> Self {
        self.max_visited_nodes = budget;
        self
    }

    /// Creates a search workspace for this decoder's enumerator family.
    ///
    /// Hold one per worker/receiver and pass it to every call: all search
    /// state is reused in place, so detection allocates nothing after the
    /// first symbol of a given shape.
    pub fn make_workspace(&self) -> SearchWorkspace<F::Enumerator> {
        SearchWorkspace::new()
    }

    /// Decodes given a precomputed QR (lets the OFDM receiver reuse one QR
    /// across a frame's worth of symbols on the same subcarrier). The
    /// returned slice borrows the workspace's solution buffer; copy it out
    /// (e.g. `extend_from_slice`) before the next search.
    pub fn detect_with_qr<'w>(
        &self,
        r: &Matrix,
        yhat: &[Complex],
        c: Constellation,
        ws: &'w mut SearchWorkspace<F::Enumerator>,
        stats: &mut DetectorStats,
    ) -> &'w [GridPoint] {
        let nc = r.cols();
        if self.search_with_qr(r, yhat, c, None, self.initial_radius_sqr, ws, stats).is_none() {
            // Infinite initial radius always yields a solution; a finite one
            // may not — fall back to per-level slicing so callers always get
            // valid symbols.
            for i in (0..nc).rev() {
                let mut acc = yhat[i];
                for j in (i + 1)..nc {
                    acc -= r[(i, j)] * ws.best[j].to_complex();
                }
                let rll = r[(i, i)].re;
                let center = if rll > f64::EPSILON { acc / rll } else { Complex::ZERO };
                ws.best[i] = c.slice(center);
                stats.slices += 1;
            }
            ws.solution_len = nc;
        }
        ws.best()
    }

    /// The generalized depth-first search: optional per-bit constraint
    /// (used by the soft-output detector to find counter-hypotheses) and an
    /// explicit initial squared radius. Returns the best squared distance —
    /// with the symbol vector in [`SearchWorkspace::best`] — or `None` when
    /// nothing lies within the radius.
    ///
    /// `constraint = (level, bit_index, required_value)` restricts the
    /// search to symbol vectors whose Gray bit `bit_index` (MSB-first) of
    /// stream `level` equals `required_value`.
    // The argument list is the search problem itself (factorization, ŷ,
    // constellation, constraint, radius) plus the two mutable sinks; a
    // params struct would only rename the same eight things.
    #[allow(clippy::too_many_arguments)]
    pub fn search_with_qr(
        &self,
        r: &Matrix,
        yhat: &[Complex],
        c: Constellation,
        constraint: Option<(usize, usize, bool)>,
        initial_radius_sqr: f64,
        ws: &mut SearchWorkspace<F::Enumerator>,
        stats: &mut DetectorStats,
    ) -> Option<f64> {
        let nc = r.cols();
        debug_assert_eq!(yhat.len(), nc, "ŷ must already be Q*-rotated and truncated");
        let _prof = gs_prof::scope(gs_prof::Stage::Enumerate);
        ws.prepare_levels(nc);
        ws.load_r_soa(r);
        if constraint.is_some() {
            ws.ensure_bit_table(c);
        }
        // Split the workspace into disjoint slabs so the per-level state,
        // the candidate vector, and the best-solution buffer can be borrowed
        // simultaneously.
        let SearchWorkspace {
            enumerators,
            dist_above,
            chosen,
            chosen_re,
            chosen_im,
            r_re,
            r_im,
            best,
            solution_len,
            bit_table,
            ..
        } = ws;
        let bit_table = bit_table.as_ref().map(|(_, t)| t);
        *solution_len = 0;
        let ctx = SearchCtx { factory: &self.factory, r, yhat, c, nc, r_re, r_im };
        open_level(&ctx, nc - 1, 0.0, chosen_re, chosen_im, enumerators, dist_above, stats);
        let res = run_search_loop(
            &ctx,
            constraint,
            bit_table,
            self.max_visited_nodes,
            0,
            SearchState { i: nc - 1, radius: initial_radius_sqr, found: false, best_dist: 0.0 },
            &mut enumerators[..nc],
            &mut dist_above[..nc],
            &mut chosen[..nc],
            &mut chosen_re[..nc],
            &mut chosen_im[..nc],
            &mut best[..nc],
            stats,
        );
        if res.is_some() {
            *solution_len = nc;
        }
        res
    }
}

/// The immutable search problem: factorization, rotated receive vector,
/// constellation, and the workspace's split-`R` mirror. Bundled so the
/// depth-first loop can be entered both from scratch
/// ([`SphereDecoder::search_with_qr`]) and from a lockstep first descent's
/// post-leaf state ([`SphereDecoder::detect_jobs_multi`]'s resume).
struct SearchCtx<'a, F> {
    factory: &'a F,
    r: &'a Matrix,
    yhat: &'a [Complex],
    c: Constellation,
    nc: usize,
    r_re: &'a [f64],
    r_im: &'a [f64],
}

/// Resumable position inside the depth-first loop.
struct SearchState {
    /// Current level (`nc - 1` = tree root).
    i: usize,
    /// Current squared sphere radius.
    radius: f64,
    /// Whether a full solution has been recorded in `best`.
    found: bool,
    /// Squared distance of that solution.
    best_dist: f64,
}

/// Opens level `i`: compute ỹ_i from ŷ and the symbols chosen above
/// (Eq. 8) — the interference dot runs on the workspace's split re/im
/// slabs through the lane-ordered SIMD kernel — then reset the level's
/// slab enumerator for the node.
// The arguments are the search context plus the disjoint workspace slab
// borrows the caller already split; a struct would just rename them.
#[allow(clippy::too_many_arguments)]
fn open_level<F: EnumeratorFactory>(
    ctx: &SearchCtx<'_, F>,
    i: usize,
    da: f64,
    chosen_re: &[f64],
    chosen_im: &[f64],
    enumerators: &mut [Option<F::Enumerator>],
    dist_above: &mut [f64],
    stats: &mut DetectorStats,
) {
    let nc = ctx.nc;
    let row = i * nc;
    let interference = gs_linalg::simd::cdot_soa(
        &ctx.r_re[row + i + 1..row + nc],
        &ctx.r_im[row + i + 1..row + nc],
        &chosen_re[i + 1..nc],
        &chosen_im[i + 1..nc],
    );
    let acc = ctx.yhat[i] - interference;
    stats.complex_mults += (nc - 1 - i) as u64;
    let rll = ctx.r[(i, i)].re; // real ≥ 0 by QR normalization
    let center = if rll > f64::EPSILON { acc / rll } else { Complex::ZERO };
    let gain = rll * rll;
    ctx.factory.make_in(&mut enumerators[i], ctx.c, center, gain, stats);
    dist_above[i] = da;
}

/// The depth-first Schnorr–Euchner loop, entered at an arbitrary
/// [`SearchState`]. All slices are exactly `nc` long; `local_nodes` seeds
/// the visited-node budget counter (non-zero when a lockstep descent
/// already consumed part of it). Returns the best squared distance, with
/// the solution in `best`, or `None` when nothing lay within the radius.
#[allow(clippy::too_many_arguments)]
fn run_search_loop<F: EnumeratorFactory>(
    ctx: &SearchCtx<'_, F>,
    constraint: Option<(usize, usize, bool)>,
    bit_table: Option<&gs_modulation::BitTable>,
    max_visited_nodes: u64,
    mut local_nodes: u64,
    st: SearchState,
    enumerators: &mut [Option<F::Enumerator>],
    dist_above: &mut [f64],
    chosen: &mut [GridPoint],
    chosen_re: &mut [f64],
    chosen_im: &mut [f64],
    best: &mut [GridPoint],
    stats: &mut DetectorStats,
) -> Option<f64> {
    let nc = ctx.nc;
    let SearchState { mut i, mut radius, mut found, mut best_dist } = st;
    loop {
        if local_nodes >= max_visited_nodes {
            break; // runtime budget exhausted: return best-so-far
        }
        let budget = radius - dist_above[i];
        let step = enumerators[i].as_mut().expect("current level open").next_child(budget, stats);
        match step {
            Some(child) if dist_above[i] + child.cost < radius => {
                local_nodes += 1;
                // Constrained search: skip children whose required bit
                // disagrees (the enumeration stays sorted, so skipping
                // is just a filter — no soundness impact).
                if let Some((cl, ck, cv)) = constraint {
                    if cl == i && bit_table.expect("table built").bit(child.point, ck) != cv {
                        continue;
                    }
                }
                stats.visited_nodes += 1;
                let dist = dist_above[i] + child.cost;
                chosen[i] = child.point;
                chosen_re[i] = child.point.i as f64;
                chosen_im[i] = child.point.q as f64;
                if i == 0 {
                    // Leaf: new best solution, shrink the sphere.
                    radius = dist;
                    best_dist = dist;
                    best[..nc].copy_from_slice(&chosen[..nc]);
                    found = true;
                    // Stay at this level; Schnorr–Euchner continues with
                    // the next sibling under the new radius.
                } else {
                    i -= 1;
                    open_level(ctx, i, dist, chosen_re, chosen_im, enumerators, dist_above, stats);
                }
            }
            // Sorted enumeration: a child at or beyond the radius, or an
            // exhausted node, closes this level (sibling pruning). The
            // slab enumerator stays allocated for reuse.
            _ => {
                if i == nc - 1 {
                    break;
                }
                i += 1;
            }
        }
    }
    if found {
        Some(best_dist)
    } else {
        None
    }
}

impl<F: EnumeratorFactory> SphereDecoder<F> {
    /// (Re)computes the QR slot for one channel, reusing the slot's matrix
    /// storage and the workspace's factorization scratch.
    fn refresh_prep(
        slot: &mut Option<Prep>,
        sorted: bool,
        h: &Matrix,
        qr_ws: &mut gs_linalg::QrWorkspace,
    ) {
        match (sorted, &mut *slot) {
            (false, Some(Prep::Plain(qr))) => qr_decompose_into(h, qr_ws, qr),
            (true, Some(Prep::Sorted(sqr))) => sorted_qr_decompose_into(h, qr_ws, sqr),
            (false, s) => {
                let mut qr = Qr::default();
                qr_decompose_into(h, qr_ws, &mut qr);
                *s = Some(Prep::Plain(qr));
            }
            (true, s) => {
                let mut sqr = SortedQr::default();
                sorted_qr_decompose_into(h, qr_ws, &mut sqr);
                *s = Some(Prep::Sorted(sqr));
            }
        }
    }

    /// Detects one job against prepared QR factors, recycling the
    /// workspace's rotation scratch and a spare output buffer.
    fn detect_prepared(
        &self,
        prep: &Prep,
        nc: usize,
        y: &[Complex],
        c: Constellation,
        ws: &mut SearchWorkspace<F::Enumerator>,
    ) -> Detection {
        let mut stats = DetectorStats::default();
        let mut symbols = ws.take_spare();
        // Detach the rotation scratch so the workspace can be re-borrowed
        // mutably by the search; reattached below (a pointer move, not an
        // allocation).
        let mut yhat = std::mem::take(&mut ws.yhat);
        match prep {
            Prep::Plain(qr) => {
                qr.rotate_into(y, &mut yhat);
                let best = self.detect_with_qr(&qr.r, &yhat[..nc], c, ws, &mut stats);
                symbols.extend_from_slice(best);
            }
            Prep::Sorted(sqr) => {
                sqr.qr.rotate_into(y, &mut yhat);
                let best = self.detect_with_qr(&sqr.qr.r, &yhat[..nc], c, ws, &mut stats);
                sqr.unpermute_into(best, &mut symbols);
            }
        }
        ws.yhat = yhat;
        Detection { symbols, stats }
    }

    /// Detects a sequence of jobs into `out`, amortizing per-channel QR and
    /// reusing every buffer in `ws` — the batched frame-decode inner loop.
    ///
    /// Per-channel factors are recomputed once per call (channel contents
    /// may change between batches) into storage that persists in the
    /// workspace. Calling [`SearchWorkspace::recycle`] happens internally:
    /// `out` is drained and its symbol buffers reused, so a caller that
    /// keeps `ws` and `out` alive across frames performs **zero heap
    /// allocations per symbol** in steady state.
    pub fn detect_batch_into(
        &self,
        batch: &crate::batch::DetectionBatch,
        ws: &mut SearchWorkspace<F::Enumerator>,
        out: &mut Vec<Detection>,
    ) {
        self.detect_jobs_into(batch.channels, batch.jobs, None, batch.c, ws, out);
    }

    /// Whether the lockstep multi-symbol path may run: it models the
    /// unconstrained search's first descent as a straight line (with an
    /// infinite radius and no node budget the cheapest child is always
    /// accepted), which a finite radius or budget would falsify.
    fn multi_symbol_eligible(&self, n_jobs: usize) -> bool {
        self.multi_symbol
            && n_jobs >= 2
            && self.initial_radius_sqr == f64::INFINITY
            && self.max_visited_nodes == u64::MAX
    }

    fn detect_jobs_into(
        &self,
        channels: &[Matrix],
        jobs: &[DetectionJob],
        indices: Option<&[usize]>,
        c: Constellation,
        ws: &mut SearchWorkspace<F::Enumerator>,
        out: &mut Vec<Detection>,
    ) {
        ws.recycle(out);
        ws.begin_batch(channels.len());
        let n = indices.map_or(jobs.len(), <[usize]>::len);
        if self.multi_symbol_eligible(n) {
            return self.detect_jobs_multi(channels, jobs, indices, c, ws, out);
        }
        for t in 0..n {
            let job = &jobs[indices.map_or(t, |ix| ix[t])];
            let h = &channels[job.channel];
            // Take the prep out of its slot so the workspace stays
            // borrowable during the search; put it back afterwards.
            let mut prep = ws.preps[job.channel].take();
            if !ws.prep_fresh[job.channel] {
                Self::refresh_prep(&mut prep, self.sorted_qr, h, &mut ws.qr_ws);
                ws.prep_fresh[job.channel] = true;
            }
            let prep = prep.expect("prep just refreshed");
            out.push(self.detect_prepared(&prep, h.cols(), &job.y, c, ws));
            ws.preps[job.channel] = Some(prep);
        }
    }

    /// The lockstep multi-symbol batch path: jobs are grouped by channel,
    /// and each group's first descents run level-by-level together — one
    /// [`gs_linalg::simd::cdot_soa_multi`] interference kernel per tree
    /// level across the whole group — before each job resumes the standard
    /// Schnorr–Euchner loop from its post-leaf state.
    ///
    /// Bit-identical to the per-job path, symbols and stats: with an
    /// infinite radius and no budget (checked by
    /// [`SphereDecoder::multi_symbol_eligible`]) the per-job first descent
    /// never backtracks, every floating-point expression is evaluated in
    /// the same order per job ([`gs_linalg::simd::cdot_soa_multi`] output
    /// `s` equals `cdot_soa` on job `s`'s column bitwise), and stats are
    /// per-job, so the interleaving is invisible.
    fn detect_jobs_multi(
        &self,
        channels: &[Matrix],
        jobs: &[DetectionJob],
        indices: Option<&[usize]>,
        c: Constellation,
        ws: &mut SearchWorkspace<F::Enumerator>,
        out: &mut Vec<Detection>,
    ) {
        let n = indices.map_or(jobs.len(), <[usize]>::len);
        let job_at = |slot: usize| -> &DetectionJob { &jobs[indices.map_or(slot, |ix| ix[slot])] };
        // Group output slots by channel. Keys are unique (slot breaks
        // ties), so the in-place unstable sort is a stable grouping.
        ws.order.clear();
        for t in 0..n {
            ws.order.push((job_at(t).channel as u32, t as u32));
        }
        ws.order.sort_unstable();
        // Results land out of submission order; pre-fill `out` with
        // recycled placeholders so each detection writes into its slot.
        for _ in 0..n {
            let symbols = ws.take_spare();
            out.push(Detection { symbols, stats: DetectorStats::default() });
        }
        let mut g = 0;
        while g < n {
            let ch = ws.order[g].0 as usize;
            let mut e = g;
            while e < n && ws.order[e].0 as usize == ch {
                e += 1;
            }
            let h = &channels[ch];
            let nc = h.cols();
            let mut prep = ws.preps[ch].take();
            if !ws.prep_fresh[ch] {
                Self::refresh_prep(&mut prep, self.sorted_qr, h, &mut ws.qr_ws);
                ws.prep_fresh[ch] = true;
            }
            let prep = prep.expect("prep just refreshed");
            let mut s0 = g;
            while s0 < e {
                let k = (e - s0).min(MAX_LOCKSTEP);
                if k >= 2 {
                    let mut slots = [0u32; MAX_LOCKSTEP];
                    for (dst, t) in slots.iter_mut().zip(s0..s0 + k) {
                        *dst = ws.order[t].1;
                    }
                    self.lockstep_chunk(&prep, nc, c, &slots[..k], jobs, indices, ws, out);
                } else {
                    let slot = ws.order[s0].1 as usize;
                    let det = self.detect_prepared(&prep, nc, &job_at(slot).y, c, ws);
                    let old = std::mem::replace(&mut out[slot], det);
                    ws.spare.push(old.symbols);
                }
                s0 += k;
            }
            ws.preps[ch] = Some(prep);
            g = e;
        }
    }

    /// Runs one lockstep chunk: the shared first descent, then each job's
    /// resumed search, writing detections into their `out` slots.
    #[allow(clippy::too_many_arguments)]
    fn lockstep_chunk(
        &self,
        prep: &Prep,
        nc: usize,
        c: Constellation,
        slots: &[u32],
        jobs: &[DetectionJob],
        indices: Option<&[usize]>,
        ws: &mut SearchWorkspace<F::Enumerator>,
        out: &mut [Detection],
    ) {
        let k = slots.len();
        let _prof = gs_prof::scope(gs_prof::Stage::Enumerate);
        ws.prepare_levels(nc);
        ws.prepare_multi(k, nc);
        let (qr, sorted) = match prep {
            Prep::Plain(qr) => (qr, None),
            Prep::Sorted(sqr) => (&sqr.qr, Some(sqr)),
        };
        ws.load_r_soa(&qr.r);
        let r = &qr.r;
        // Rotate each job's receive vector into its ŷ slab entry — one
        // Rotate scope for the whole chunk (per-vector scopes would cost
        // more than the 4×4 rotations they bracket).
        {
            let _rot = gs_prof::scope(gs_prof::Stage::Rotate);
            for (s, &slot) in slots.iter().enumerate() {
                let job = &jobs[indices.map_or(slot as usize, |ix| ix[slot as usize])];
                qr.rotate_into_unscoped(&job.y, &mut ws.yhat);
                ws.m_yhat[s * nc..s * nc + nc].copy_from_slice(&ws.yhat[..nc]);
            }
        }
        let mut diverged = false;
        {
            let SearchWorkspace {
                m_enum,
                m_dist,
                m_chosen,
                m_chosen_re,
                m_chosen_im,
                m_best,
                m_yhat,
                il_re,
                il_im,
                ix_re,
                ix_im,
                m_radius,
                m_stats,
                r_re,
                r_im,
                ..
            } = ws;
            m_stats[..k].fill(DetectorStats::default());
            m_radius[..k].fill(0.0);
            // Lockstep first descent: per level, one batched interference
            // kernel, then each job opens the level and takes its cheapest
            // child (always accepted — the radius is infinite).
            for i in (0..nc).rev() {
                let m = nc - 1 - i;
                if m > 0 {
                    let row = i * nc;
                    gs_linalg::simd::cdot_soa_multi(
                        &r_re[row + i + 1..row + nc],
                        &r_im[row + i + 1..row + nc],
                        &il_re[(i + 1) * k..nc * k],
                        &il_im[(i + 1) * k..nc * k],
                        k,
                        &mut ix_re[..k],
                        &mut ix_im[..k],
                    );
                } else {
                    ix_re[..k].fill(0.0);
                    ix_im[..k].fill(0.0);
                }
                let rll = r[(i, i)].re; // real ≥ 0 by QR normalization
                let gain = rll * rll;
                for s in 0..k {
                    if m_radius[s].is_nan() {
                        continue; // diverged: re-run serially below
                    }
                    let stats = &mut m_stats[s];
                    let acc = m_yhat[s * nc + i] - Complex::new(ix_re[s], ix_im[s]);
                    stats.complex_mults += m as u64;
                    let center = if rll > f64::EPSILON { acc / rll } else { Complex::ZERO };
                    self.factory.make_in(&mut m_enum[s * nc + i], c, center, gain, stats);
                    m_dist[s * nc + i] = m_radius[s];
                    match m_enum[s * nc + i]
                        .as_mut()
                        .expect("level just opened")
                        .next_child(f64::INFINITY, stats)
                    {
                        Some(child) => {
                            stats.visited_nodes += 1;
                            let re = child.point.i as f64;
                            let im = child.point.q as f64;
                            m_chosen[s * nc + i] = child.point;
                            m_chosen_re[s * nc + i] = re;
                            m_chosen_im[s * nc + i] = im;
                            il_re[i * k + s] = re;
                            il_im[i * k + s] = im;
                            m_radius[s] = m_dist[s * nc + i] + child.cost;
                        }
                        None => {
                            // An exhausted fresh node under an infinite
                            // budget — pathological, but the per-job path
                            // handles it, so fall back to it exactly.
                            m_radius[s] = f64::NAN;
                            diverged = true;
                        }
                    }
                }
            }
            // Resume each job's standard loop from its post-leaf state:
            // level 0, radius shrunk to the leaf distance, solution found.
            for s in 0..k {
                if m_radius[s].is_nan() {
                    continue;
                }
                let leaf = m_radius[s];
                m_best[s * nc..s * nc + nc].copy_from_slice(&m_chosen[s * nc..s * nc + nc]);
                let ctx = SearchCtx {
                    factory: &self.factory,
                    r,
                    yhat: &m_yhat[s * nc..s * nc + nc],
                    c,
                    nc,
                    r_re,
                    r_im,
                };
                let res = run_search_loop(
                    &ctx,
                    None,
                    None,
                    u64::MAX,
                    nc as u64,
                    SearchState { i: 0, radius: leaf, found: true, best_dist: leaf },
                    &mut m_enum[s * nc..s * nc + nc],
                    &mut m_dist[s * nc..s * nc + nc],
                    &mut m_chosen[s * nc..s * nc + nc],
                    &mut m_chosen_re[s * nc..s * nc + nc],
                    &mut m_chosen_im[s * nc..s * nc + nc],
                    &mut m_best[s * nc..s * nc + nc],
                    &mut m_stats[s],
                );
                debug_assert!(res.is_some(), "resume starts from a found solution");
                let det = &mut out[slots[s] as usize];
                det.symbols.clear();
                match sorted {
                    None => det.symbols.extend_from_slice(&m_best[s * nc..s * nc + nc]),
                    Some(sqr) => sqr.unpermute_into(&m_best[s * nc..s * nc + nc], &mut det.symbols),
                }
                det.stats = m_stats[s];
            }
        }
        if diverged {
            for (s, &slot) in slots.iter().enumerate() {
                if !ws.m_radius[s].is_nan() {
                    continue;
                }
                let job = &jobs[indices.map_or(slot as usize, |ix| ix[slot as usize])];
                let det = self.detect_prepared(prep, nc, &job.y, c, ws);
                let old = std::mem::replace(&mut out[slot as usize], det);
                ws.spare.push(old.symbols);
            }
        }
    }
}

/// Upper bound on jobs walked per lockstep chunk — bounds the enumerator
/// slab (`MAX_LOCKSTEP × nc` slots) while comfortably covering a frame's
/// OFDM symbols per subcarrier.
const MAX_LOCKSTEP: usize = 16;

impl<F: EnumeratorFactory> MimoDetector for SphereDecoder<F> {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        let mut ws = self.make_workspace();
        let mut prep = None;
        Self::refresh_prep(&mut prep, self.sorted_qr, h, &mut ws.qr_ws);
        self.detect_prepared(&prep.expect("prep just refreshed"), h.cols(), y, c, &mut ws)
    }

    /// Seeds the opaque workspace with this decoder's
    /// [`SearchWorkspace`], so the `_with` entry points below (and the
    /// `detect_batch`/`detect_batch_indexed` trait defaults that route
    /// through them) run the allocation-free
    /// [`SphereDecoder::detect_batch_into`] path.
    fn make_batch_workspace(&self) -> crate::detector::DetectorWorkspace {
        let mut ws = crate::detector::DetectorWorkspace::new();
        ws.get_or_insert(SearchWorkspace::<F::Enumerator>::new);
        ws
    }

    /// [`SphereDecoder::detect_batch_into`] behind the type-erased
    /// workspace: per-channel QR amortization (one factorization per entry
    /// of the batch's channel table — an OFDM frame reuses each
    /// subcarrier's channel across all its OFDM symbols), with zero heap
    /// allocations per symbol once `ws` and `out` have warmed up. Output is
    /// bit-identical to per-job [`MimoDetector::detect`]: QR is
    /// deterministic and uncounted by [`DetectorStats`].
    fn detect_batch_with(
        &self,
        batch: &crate::batch::DetectionBatch,
        ws: &mut crate::detector::DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        let sws = ws.get_or_insert(SearchWorkspace::<F::Enumerator>::new);
        self.detect_batch_into(batch, sws, out);
    }

    /// Indexed variant of [`MimoDetector::detect_batch_with`], used by the
    /// persistent worker pool: same amortization, same zero-allocation
    /// steady state.
    fn detect_batch_indexed_with(
        &self,
        batch: &crate::batch::DetectionBatch,
        indices: &[usize],
        ws: &mut crate::detector::DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        let sws = ws.get_or_insert(SearchWorkspace::<F::Enumerator>::new);
        self.detect_jobs_into(batch.channels, batch.jobs, Some(indices), batch.c, sws, out);
    }

    fn name(&self) -> &'static str {
        self.factory.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::apply_channel;
    use crate::ml::MlDetector;
    use crate::sphere::enumerator::ExhaustiveSortFactory;
    use crate::sphere::geosphere_enum::GeosphereFactory;
    use crate::sphere::hess_enum::HessFactory;
    use gs_channel::{sample_cn, RayleighChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(
        rng: &mut StdRng,
        c: Constellation,
        na: usize,
        nc: usize,
        noise_var: f64,
    ) -> (Matrix, Vec<Complex>, Vec<GridPoint>) {
        let h = RayleighChannel::new(na, nc).sample_matrix(rng).scale(c.scale());
        let pts = c.points();
        let s: Vec<GridPoint> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
        let mut y = apply_channel(&h, &s);
        for v in y.iter_mut() {
            *v += sample_cn(rng, noise_var);
        }
        (h, y, s)
    }

    #[test]
    fn noiseless_roundtrip_all_decoders() {
        let mut rng = StdRng::seed_from_u64(141);
        let c = Constellation::Qam16;
        let geo = SphereDecoder::new(GeosphereFactory::full());
        let hess = SphereDecoder::new(HessFactory);
        let fullsort = SphereDecoder::new(ExhaustiveSortFactory);
        for _ in 0..30 {
            let (h, y, s) = random_instance(&mut rng, c, 4, 4, 0.0);
            assert_eq!(geo.detect(&h, &y, c).symbols, s);
            assert_eq!(hess.detect(&h, &y, c).symbols, s);
            assert_eq!(fullsort.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn matches_exhaustive_ml_under_noise() {
        // The core soundness claim: the sphere decoder returns the exact
        // maximum-likelihood solution.
        let mut rng = StdRng::seed_from_u64(142);
        type DetectFn = Box<dyn Fn(&Matrix, &[Complex], Constellation) -> Detection>;
        let decoders: Vec<(&str, DetectFn)> = vec![
            (
                "geo-full",
                Box::new(|h, y, c| SphereDecoder::new(GeosphereFactory::full()).detect(h, y, c)),
            ),
            (
                "geo-zz",
                Box::new(|h, y, c| {
                    SphereDecoder::new(GeosphereFactory::zigzag_only()).detect(h, y, c)
                }),
            ),
            ("hess", Box::new(|h, y, c| SphereDecoder::new(HessFactory).detect(h, y, c))),
            (
                "geo-sortedqr",
                Box::new(|h, y, c| {
                    SphereDecoder::new(GeosphereFactory::full()).with_sorted_qr().detect(h, y, c)
                }),
            ),
        ];
        for trial in 0..60 {
            let c = if trial % 2 == 0 { Constellation::Qpsk } else { Constellation::Qam16 };
            let nc = 2 + trial % 2; // 2 or 3 streams keeps exhaustive ML fast

            // Heavy noise so ML ≠ transmitted often; exercises real search.
            let (h, y, _) = random_instance(&mut rng, c, nc + 1, nc, 0.5);
            let ml =
                crate::detector::residual_norm_sqr(&h, &y, &MlDetector.detect(&h, &y, c).symbols);
            for (name, det) in &decoders {
                let got = crate::detector::residual_norm_sqr(&h, &y, &det(&h, &y, c).symbols);
                assert!((got - ml).abs() < 1e-9, "{name} trial {trial}: residual {got} vs ML {ml}");
            }
        }
    }

    #[test]
    fn same_visited_nodes_across_enumerators() {
        // Paper Fig. 15 note: "each of the above sphere decoders visit the
        // same number of nodes."
        let mut rng = StdRng::seed_from_u64(143);
        for trial in 0..40 {
            let c = [Constellation::Qam16, Constellation::Qam64][trial % 2];
            let (h, y, _) = random_instance(&mut rng, c, 4, 4, 0.05);
            let geo = SphereDecoder::new(GeosphereFactory::full()).detect(&h, &y, c);
            let zz = SphereDecoder::new(GeosphereFactory::zigzag_only()).detect(&h, &y, c);
            let hess = SphereDecoder::new(HessFactory).detect(&h, &y, c);
            assert_eq!(geo.stats.visited_nodes, hess.stats.visited_nodes, "trial {trial}");
            assert_eq!(zz.stats.visited_nodes, hess.stats.visited_nodes, "trial {trial}");
        }
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace() {
        // The zero-alloc refactor's guard: detection through one long-lived
        // workspace must be bit-identical (symbols and stats) to detection
        // with a fresh workspace per call.
        let mut rng = StdRng::seed_from_u64(148);
        let c = Constellation::Qam64;
        let geo = SphereDecoder::new(GeosphereFactory::full());
        let mut shared = geo.make_workspace();
        for trial in 0..25 {
            let (h, y, _) = random_instance(&mut rng, c, 4, 4, 0.1);
            let reference = geo.detect(&h, &y, c);
            let qr = gs_linalg::qr_decompose(&h);
            let yhat = qr.rotate(&y);
            let mut stats = DetectorStats::default();
            let symbols = geo.detect_with_qr(&qr.r, &yhat[..4], c, &mut shared, &mut stats);
            assert_eq!(symbols, &reference.symbols[..], "trial {trial}");
            assert_eq!(stats, reference.stats, "trial {trial}");
        }
    }

    #[test]
    fn multi_symbol_lockstep_matches_single_symbol_bitwise() {
        // The lockstep first descent must be invisible: same symbols, same
        // stats, for plain and sorted QR, across group sizes that exercise
        // singleton groups (k = 1), chunk splits (> MAX_LOCKSTEP), and the
        // AVX2 kernel's symbol remainder (k mod 4 ≠ 0).
        use crate::batch::{DetectionBatch, DetectionJob};
        let mut rng = StdRng::seed_from_u64(149);
        for (trial, &(n_channels, n_jobs)) in
            [(1usize, 2usize), (3, 7), (2, 40), (5, 11)].iter().enumerate()
        {
            let c = [Constellation::Qam16, Constellation::Qam64][trial % 2];
            let channels: Vec<Matrix> = (0..n_channels)
                .map(|_| RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale()))
                .collect();
            let pts = c.points();
            let jobs: Vec<DetectionJob> = (0..n_jobs)
                .map(|j| {
                    let s: Vec<GridPoint> =
                        (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
                    let mut y = apply_channel(&channels[j % n_channels], &s);
                    for v in y.iter_mut() {
                        *v += sample_cn(&mut rng, 0.1);
                    }
                    DetectionJob { channel: j % n_channels, y }
                })
                .collect();
            let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
            for sorted in [false, true] {
                let mut multi = SphereDecoder::new(GeosphereFactory::full());
                multi.sorted_qr = sorted;
                let single = multi.with_single_symbol();
                assert!(multi.multi_symbol && !single.multi_symbol);
                let mut ws_m = multi.make_workspace();
                let mut ws_s = single.make_workspace();
                let (mut out_m, mut out_s) = (Vec::new(), Vec::new());
                multi.detect_batch_into(&batch, &mut ws_m, &mut out_m);
                single.detect_batch_into(&batch, &mut ws_s, &mut out_s);
                assert_eq!(out_m.len(), out_s.len());
                for (j, (m, s)) in out_m.iter().zip(&out_s).enumerate() {
                    assert_eq!(m.symbols, s.symbols, "trial {trial} sorted {sorted} job {j}");
                    assert_eq!(m.stats, s.stats, "trial {trial} sorted {sorted} job {j}");
                }
            }
        }
    }

    #[test]
    fn geosphere_uses_fewer_peds_than_hess_on_dense_constellations() {
        let mut rng = StdRng::seed_from_u64(144);
        let c = Constellation::Qam256;
        let mut geo_total = 0u64;
        let mut hess_total = 0u64;
        for _ in 0..30 {
            let (h, y, _) = random_instance(&mut rng, c, 4, 4, 0.001);
            geo_total +=
                SphereDecoder::new(GeosphereFactory::full()).detect(&h, &y, c).stats.ped_calcs;
            hess_total += SphereDecoder::new(HessFactory).detect(&h, &y, c).stats.ped_calcs;
        }
        assert!(
            (geo_total as f64) < 0.5 * hess_total as f64,
            "Geosphere {geo_total} vs ETH-SD {hess_total} PEDs"
        );
    }

    #[test]
    fn geometric_pruning_reduces_peds() {
        let mut rng = StdRng::seed_from_u64(145);
        let c = Constellation::Qam64;
        let mut full_total = 0u64;
        let mut zz_total = 0u64;
        for _ in 0..40 {
            let (h, y, _) = random_instance(&mut rng, c, 4, 4, 0.003);
            full_total +=
                SphereDecoder::new(GeosphereFactory::full()).detect(&h, &y, c).stats.ped_calcs;
            zz_total += SphereDecoder::new(GeosphereFactory::zigzag_only())
                .detect(&h, &y, c)
                .stats
                .ped_calcs;
        }
        assert!(full_total <= zz_total, "pruning must not add PEDs: {full_total} vs {zz_total}");
        assert!(full_total < zz_total, "pruning should save PEDs: {full_total} vs {zz_total}");
    }

    #[test]
    fn works_with_more_rx_than_tx() {
        let mut rng = StdRng::seed_from_u64(146);
        let c = Constellation::Qam16;
        let geo = SphereDecoder::new(GeosphereFactory::full());
        for _ in 0..20 {
            let (h, y, s) = random_instance(&mut rng, c, 4, 2, 0.0);
            assert_eq!(geo.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn single_stream_detection() {
        let mut rng = StdRng::seed_from_u64(147);
        let c = Constellation::Qam64;
        let geo = SphereDecoder::new(GeosphereFactory::full());
        let (h, y, s) = random_instance(&mut rng, c, 2, 1, 0.0);
        assert_eq!(geo.detect(&h, &y, c).symbols, s);
    }
}
