//! The depth-first Schnorr–Euchner sphere-decoding engine (paper §2).
//!
//! The engine is shared verbatim by every depth-first decoder in this crate
//! — Geosphere (with or without geometric pruning), ETH-SD, and the
//! full-sort reference — parameterized only by the [`EnumeratorFactory`]
//! that orders each node's children. Identical traversal given identical
//! child orderings is what delivers the paper's "same number of visited
//! nodes" property (§5.3).
//!
//! Walkthrough (paper Fig. 3): descend greedily along cheapest children to
//! a first leaf `a`, shrink the sphere radius to `d(a)`, backtrack and
//! expand any sibling whose partial distance still fits, terminating when
//! the root's remaining children all violate the sphere constraint.

use crate::detector::{Detection, MimoDetector};
use crate::sphere::enumerator::{EnumeratorFactory, NodeEnumerator};
use crate::stats::DetectorStats;
use gs_linalg::{qr_decompose, sorted_qr_decompose, Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};

/// A depth-first sphere decoder built from an enumerator family.
#[derive(Clone, Copy, Debug)]
pub struct SphereDecoder<F> {
    factory: F,
    /// Use column-norm sorted QR preprocessing (V-BLAST-style ordering).
    pub sorted_qr: bool,
    /// Optional initial squared radius (`∞` in the paper's §2.1 default).
    pub initial_radius_sqr: f64,
    /// Runtime guard: abandon the search after visiting this many tree
    /// nodes and return the best solution found so far. `u64::MAX` (the
    /// default) preserves exact ML; real-time receivers set a budget, and
    /// a triggered budget almost always coincides with operating points
    /// whose frames would fail anyway (hopeless SNR/constellation pairs).
    pub max_visited_nodes: u64,
}

impl<F: EnumeratorFactory> SphereDecoder<F> {
    /// Creates a decoder with unsorted QR and infinite initial radius.
    pub fn new(factory: F) -> Self {
        SphereDecoder {
            factory,
            sorted_qr: false,
            initial_radius_sqr: f64::INFINITY,
            max_visited_nodes: u64::MAX,
        }
    }

    /// Enables sorted-QR preprocessing.
    pub fn with_sorted_qr(mut self) -> Self {
        self.sorted_qr = true;
        self
    }

    /// Sets a visited-node budget (real-time runtime guard).
    pub fn with_node_budget(mut self, budget: u64) -> Self {
        self.max_visited_nodes = budget;
        self
    }

    /// Decodes given a precomputed QR (lets the OFDM receiver reuse one QR
    /// across a frame's worth of symbols on the same subcarrier).
    pub fn detect_with_qr(
        &self,
        r: &Matrix,
        yhat: &[Complex],
        c: Constellation,
        stats: &mut DetectorStats,
    ) -> Vec<GridPoint> {
        match self.search_with_qr(r, yhat, c, None, self.initial_radius_sqr, stats) {
            Some((symbols, _)) => symbols,
            // Infinite initial radius always yields a solution; a finite one
            // may not — fall back to per-level slicing so callers always get
            // valid symbols.
            None => {
                let mut out: Vec<GridPoint> = Vec::with_capacity(r.cols());
                for i in (0..r.cols()).rev() {
                    let mut acc = yhat[i];
                    for j in (i + 1)..r.cols() {
                        acc -= r[(i, j)] * out[r.cols() - 1 - j].to_complex();
                    }
                    let rll = r[(i, i)].re;
                    let center = if rll > f64::EPSILON { acc / rll } else { Complex::ZERO };
                    out.push(c.slice(center));
                    stats.slices += 1;
                }
                out.reverse();
                out
            }
        }
    }

    /// The generalized depth-first search: optional per-bit constraint
    /// (used by the soft-output detector to find counter-hypotheses) and an
    /// explicit initial squared radius. Returns the best solution and its
    /// squared distance, or `None` when nothing lies within the radius.
    ///
    /// `constraint = (level, bit_index, required_value)` restricts the
    /// search to symbol vectors whose Gray bit `bit_index` (MSB-first) of
    /// stream `level` equals `required_value`.
    pub fn search_with_qr(
        &self,
        r: &Matrix,
        yhat: &[Complex],
        c: Constellation,
        constraint: Option<(usize, usize, bool)>,
        initial_radius_sqr: f64,
        stats: &mut DetectorStats,
    ) -> Option<(Vec<GridPoint>, f64)> {
        let nc = r.cols();
        debug_assert_eq!(yhat.len(), nc, "ŷ must already be Q*-rotated and truncated");
        let bit_table = constraint.map(|_| gs_modulation::BitTable::new(c));
        let mut radius = initial_radius_sqr;

        // Per-level state, indexed by row i of R (level nc-1 = tree root).
        struct Level<E> {
            enumerator: E,
            /// d(s^(i+1)): accumulated distance of the partial vector above.
            dist_above: f64,
            /// Gain |r_ii|² of this level.
            chosen: GridPoint,
        }
        let mut levels: Vec<Option<Level<F::Enumerator>>> = (0..nc).map(|_| None).collect();
        let mut chosen = vec![GridPoint::default(); nc];
        let mut best: Option<(f64, Vec<GridPoint>)> = None;

        // Helper to open a level: compute ỹ_i from ŷ and the symbols chosen
        // above (Eq. 8), then build its enumerator.
        let open_level = |i: usize,
                          dist_above: f64,
                          chosen: &[GridPoint],
                          stats: &mut DetectorStats|
         -> Level<F::Enumerator> {
            let mut acc = yhat[i];
            for j in (i + 1)..nc {
                acc -= r[(i, j)] * chosen[j].to_complex();
            }
            stats.complex_mults += (nc - 1 - i) as u64;
            let rll = r[(i, i)].re; // real ≥ 0 by QR normalization
            let center = if rll > f64::EPSILON { acc / rll } else { Complex::ZERO };
            let gain = rll * rll;
            Level {
                enumerator: self.factory.make(c, center, gain, stats),
                dist_above,
                chosen: GridPoint::default(),
            }
        };

        let mut i = nc - 1; // current level
        levels[i] = Some(open_level(i, 0.0, &chosen, stats));
        let mut local_nodes = 0u64;

        loop {
            if local_nodes >= self.max_visited_nodes {
                break; // runtime budget exhausted: return best-so-far
            }
            let level = levels[i].as_mut().expect("current level open");
            let budget = radius - level.dist_above;
            let step = level.enumerator.next_child(budget, stats);
            match step {
                Some(child) if level.dist_above + child.cost < radius => {
                    local_nodes += 1;
                    // Constrained search: skip children whose required bit
                    // disagrees (the enumeration stays sorted, so skipping
                    // is just a filter — no soundness impact).
                    if let Some((cl, ck, cv)) = constraint {
                        if cl == i && bit_table.as_ref().expect("table built").bit(child.point, ck) != cv
                        {
                            continue;
                        }
                    }
                    stats.visited_nodes += 1;
                    let dist = level.dist_above + child.cost;
                    level.chosen = child.point;
                    chosen[i] = child.point;
                    if i == 0 {
                        // Leaf: new best solution, shrink the sphere.
                        radius = dist;
                        best = Some((dist, chosen.clone()));
                        // Stay at this level; Schnorr–Euchner continues with
                        // the next sibling under the new radius.
                    } else {
                        i -= 1;
                        levels[i] = Some(open_level(i, dist, &chosen, stats));
                    }
                }
                // Sorted enumeration: a child at or beyond the radius, or an
                // exhausted node, closes this level (sibling pruning).
                _ => {
                    levels[i] = None;
                    if i == nc - 1 {
                        break;
                    }
                    i += 1;
                }
            }
        }

        best.map(|(d, s)| (s, d))
    }
}

/// Per-channel preprocessing shared across a batch (plain or sorted QR).
enum Prep {
    Plain(gs_linalg::Qr),
    Sorted(gs_linalg::SortedQr),
}

impl<F: EnumeratorFactory> SphereDecoder<F> {
    fn prepare(&self, h: &Matrix) -> Prep {
        if self.sorted_qr {
            Prep::Sorted(sorted_qr_decompose(h))
        } else {
            Prep::Plain(qr_decompose(h))
        }
    }

    fn detect_prepared(&self, prep: &Prep, nc: usize, y: &[Complex], c: Constellation) -> Detection {
        let mut stats = DetectorStats::default();
        match prep {
            Prep::Plain(qr) => {
                let yhat_full = qr.rotate(y);
                let symbols = self.detect_with_qr(&qr.r, &yhat_full[..nc], c, &mut stats);
                Detection { symbols, stats }
            }
            Prep::Sorted(sqr) => {
                let yhat_full = sqr.qr.rotate(y);
                let symbols_permuted = self.detect_with_qr(&sqr.qr.r, &yhat_full[..nc], c, &mut stats);
                let symbols = sqr.unpermute(&symbols_permuted);
                Detection { symbols, stats }
            }
        }
    }
}

impl<F: EnumeratorFactory> MimoDetector for SphereDecoder<F> {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        self.detect_prepared(&self.prepare(h), h.cols(), y, c)
    }

    /// Batched detection with per-channel QR amortization: the
    /// factorization is computed once per entry of the batch's channel
    /// table and reused by every job referencing it. An OFDM frame reuses
    /// each subcarrier's channel across all its OFDM symbols, so this
    /// removes an `n_ofdm_symbols×` redundancy — with output bit-identical
    /// to per-job [`MimoDetector::detect`], since QR is deterministic and
    /// uncounted by [`DetectorStats`].
    fn detect_batch(&self, batch: &crate::batch::DetectionBatch) -> Vec<Detection> {
        let mut preps: Vec<Option<Prep>> = (0..batch.channels.len()).map(|_| None).collect();
        batch
            .jobs
            .iter()
            .map(|job| {
                let h = &batch.channels[job.channel];
                let prep = preps[job.channel].get_or_insert_with(|| self.prepare(h));
                self.detect_prepared(prep, h.cols(), &job.y, batch.c)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        self.factory.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::apply_channel;
    use crate::ml::MlDetector;
    use crate::sphere::enumerator::ExhaustiveSortFactory;
    use crate::sphere::geosphere_enum::GeosphereFactory;
    use crate::sphere::hess_enum::HessFactory;
    use gs_channel::{sample_cn, RayleighChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(
        rng: &mut StdRng,
        c: Constellation,
        na: usize,
        nc: usize,
        noise_var: f64,
    ) -> (Matrix, Vec<Complex>, Vec<GridPoint>) {
        let h = RayleighChannel::new(na, nc).sample_matrix(rng).scale(c.scale());
        let pts = c.points();
        let s: Vec<GridPoint> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
        let mut y = apply_channel(&h, &s);
        for v in y.iter_mut() {
            *v += sample_cn(rng, noise_var);
        }
        (h, y, s)
    }

    #[test]
    fn noiseless_roundtrip_all_decoders() {
        let mut rng = StdRng::seed_from_u64(141);
        let c = Constellation::Qam16;
        let geo = SphereDecoder::new(GeosphereFactory::full());
        let hess = SphereDecoder::new(HessFactory);
        let fullsort = SphereDecoder::new(ExhaustiveSortFactory);
        for _ in 0..30 {
            let (h, y, s) = random_instance(&mut rng, c, 4, 4, 0.0);
            assert_eq!(geo.detect(&h, &y, c).symbols, s);
            assert_eq!(hess.detect(&h, &y, c).symbols, s);
            assert_eq!(fullsort.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn matches_exhaustive_ml_under_noise() {
        // The core soundness claim: the sphere decoder returns the exact
        // maximum-likelihood solution.
        let mut rng = StdRng::seed_from_u64(142);
        type DetectFn = Box<dyn Fn(&Matrix, &[Complex], Constellation) -> Detection>;
        let decoders: Vec<(&str, DetectFn)> = vec![
            ("geo-full", Box::new(|h, y, c| SphereDecoder::new(GeosphereFactory::full()).detect(h, y, c))),
            ("geo-zz", Box::new(|h, y, c| SphereDecoder::new(GeosphereFactory::zigzag_only()).detect(h, y, c))),
            ("hess", Box::new(|h, y, c| SphereDecoder::new(HessFactory).detect(h, y, c))),
            ("geo-sortedqr", Box::new(|h, y, c| {
                SphereDecoder::new(GeosphereFactory::full()).with_sorted_qr().detect(h, y, c)
            })),
        ];
        for trial in 0..60 {
            let c = if trial % 2 == 0 { Constellation::Qpsk } else { Constellation::Qam16 };
            let nc = 2 + trial % 2; // 2 or 3 streams keeps exhaustive ML fast
            // Heavy noise so ML ≠ transmitted often; exercises real search.
            let (h, y, _) = random_instance(&mut rng, c, nc + 1, nc, 0.5);
            let ml = crate::detector::residual_norm_sqr(&h, &y, &MlDetector.detect(&h, &y, c).symbols);
            for (name, det) in &decoders {
                let got = crate::detector::residual_norm_sqr(&h, &y, &det(&h, &y, c).symbols);
                assert!(
                    (got - ml).abs() < 1e-9,
                    "{name} trial {trial}: residual {got} vs ML {ml}"
                );
            }
        }
    }

    #[test]
    fn same_visited_nodes_across_enumerators() {
        // Paper Fig. 15 note: "each of the above sphere decoders visit the
        // same number of nodes."
        let mut rng = StdRng::seed_from_u64(143);
        for trial in 0..40 {
            let c = [Constellation::Qam16, Constellation::Qam64][trial % 2];
            let (h, y, _) = random_instance(&mut rng, c, 4, 4, 0.05);
            let geo = SphereDecoder::new(GeosphereFactory::full()).detect(&h, &y, c);
            let zz = SphereDecoder::new(GeosphereFactory::zigzag_only()).detect(&h, &y, c);
            let hess = SphereDecoder::new(HessFactory).detect(&h, &y, c);
            assert_eq!(geo.stats.visited_nodes, hess.stats.visited_nodes, "trial {trial}");
            assert_eq!(zz.stats.visited_nodes, hess.stats.visited_nodes, "trial {trial}");
        }
    }

    #[test]
    fn geosphere_uses_fewer_peds_than_hess_on_dense_constellations() {
        let mut rng = StdRng::seed_from_u64(144);
        let c = Constellation::Qam256;
        let mut geo_total = 0u64;
        let mut hess_total = 0u64;
        for _ in 0..30 {
            let (h, y, _) = random_instance(&mut rng, c, 4, 4, 0.001);
            geo_total += SphereDecoder::new(GeosphereFactory::full()).detect(&h, &y, c).stats.ped_calcs;
            hess_total += SphereDecoder::new(HessFactory).detect(&h, &y, c).stats.ped_calcs;
        }
        assert!(
            (geo_total as f64) < 0.5 * hess_total as f64,
            "Geosphere {geo_total} vs ETH-SD {hess_total} PEDs"
        );
    }

    #[test]
    fn geometric_pruning_reduces_peds() {
        let mut rng = StdRng::seed_from_u64(145);
        let c = Constellation::Qam64;
        let mut full_total = 0u64;
        let mut zz_total = 0u64;
        for _ in 0..40 {
            let (h, y, _) = random_instance(&mut rng, c, 4, 4, 0.003);
            full_total += SphereDecoder::new(GeosphereFactory::full()).detect(&h, &y, c).stats.ped_calcs;
            zz_total +=
                SphereDecoder::new(GeosphereFactory::zigzag_only()).detect(&h, &y, c).stats.ped_calcs;
        }
        assert!(full_total <= zz_total, "pruning must not add PEDs: {full_total} vs {zz_total}");
        assert!(full_total < zz_total, "pruning should save PEDs: {full_total} vs {zz_total}");
    }

    #[test]
    fn works_with_more_rx_than_tx() {
        let mut rng = StdRng::seed_from_u64(146);
        let c = Constellation::Qam16;
        let geo = SphereDecoder::new(GeosphereFactory::full());
        for _ in 0..20 {
            let (h, y, s) = random_instance(&mut rng, c, 4, 2, 0.0);
            assert_eq!(geo.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn single_stream_detection() {
        let mut rng = StdRng::seed_from_u64(147);
        let c = Constellation::Qam64;
        let geo = SphereDecoder::new(GeosphereFactory::full());
        let (h, y, s) = random_instance(&mut rng, c, 2, 1, 0.0);
        assert_eq!(geo.detect(&h, &y, c).symbols, s);
    }
}
