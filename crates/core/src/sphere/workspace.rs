//! Reusable per-worker scratch state for the sphere-decoding hot path.
//!
//! Every tree-node visit needs an enumerator, every search needs per-level
//! state and candidate buffers, and every detection needs a Q*-rotated
//! receive vector plus (in the batched path) per-channel QR factors. Before
//! this module those were heap-allocated per use — allocator traffic in the
//! innermost loop of the system. [`SearchWorkspace`] owns all of it as
//! reusable slabs instead.
//!
//! ## Ownership model
//!
//! **One workspace per worker, reset per symbol.** A workspace is *not*
//! shared: the batch engine's worker threads each own one for the duration
//! of their job chunk, serial callers create one per call (still cheaper
//! than the old per-node allocations), and long-lived receivers hold one
//! across frames. Nothing inside is ever deallocated between searches —
//! buffers are cleared and refilled in place, so after the first search of
//! a given shape ("warmup") the detection path performs **zero heap
//! allocations per symbol**. `tests/alloc_regression.rs` enforces this with
//! a counting global allocator.
//!
//! The enumerator slab holds one slot per tree level; slots are filled by
//! [`EnumeratorFactory::make_in`](crate::sphere::EnumeratorFactory::make_in),
//! which resets an existing enumerator in place rather than constructing a
//! fresh one per node visit (see the protocol notes in
//! [`crate::sphere::enumerator`]).

use crate::detector::Detection;
use crate::stats::DetectorStats;
use gs_linalg::{Complex, Qr, QrWorkspace, SortedQr};
use gs_modulation::{BitTable, Constellation, GridPoint};

/// Per-channel preprocessing shared across a batch (plain or sorted QR).
///
/// Slots live in the workspace so their matrix storage is reused when the
/// batch path re-factorizes a channel on a later call.
#[derive(Clone, Debug)]
pub(crate) enum Prep {
    /// Unsorted Householder QR.
    Plain(Qr),
    /// Column-norm-sorted QR with its stream permutation.
    Sorted(SortedQr),
}

/// Reusable scratch for [`SphereDecoder`](crate::SphereDecoder) searches:
/// the per-level enumerator slab, candidate/best symbol buffers, rotation
/// scratch, and the batched path's QR slots. See the module docs for the
/// ownership model.
///
/// `E` is the enumerator type of the decoder's factory; the alias
/// [`WorkspaceFor`] names it from a factory type directly.
pub struct SearchWorkspace<E> {
    /// Enumerator slab, one slot per tree level. Entries are allocated on
    /// first use and reset in place forever after.
    pub(crate) enumerators: Vec<Option<E>>,
    /// `d(s^(i+1))`: accumulated distance of the partial vector above each
    /// open level.
    pub(crate) dist_above: Vec<f64>,
    /// The current partial symbol vector (entry `i` = choice at level `i`).
    pub(crate) chosen: Vec<GridPoint>,
    /// Split re/im (SoA) mirror of `chosen` in the grid domain, kept in
    /// lockstep with it so the interference accumulation's SIMD lanes load
    /// contiguously (`gs_linalg::simd::cdot_soa`).
    pub(crate) chosen_re: Vec<f64>,
    /// Imaginary half of the `chosen` mirror.
    pub(crate) chosen_im: Vec<f64>,
    /// Split re/im (SoA) copy of the search's upper-triangular factor `R`
    /// (row-major `nc × nc`), reloaded per search by
    /// [`SearchWorkspace::load_r_soa`].
    pub(crate) r_re: Vec<f64>,
    /// Imaginary half of the `R` mirror.
    pub(crate) r_im: Vec<f64>,
    /// The best full solution found by the last search.
    pub(crate) best: Vec<GridPoint>,
    /// Number of valid entries in `best` after the last search.
    pub(crate) solution_len: usize,
    /// Q*-rotation scratch for the detect entry points.
    pub(crate) yhat: Vec<Complex>,
    /// Gray-bit lookup for constrained (soft counter-hypothesis) searches,
    /// cached per constellation.
    pub(crate) bit_table: Option<(Constellation, BitTable)>,
    /// Scratch for in-place QR factorization.
    pub(crate) qr_ws: QrWorkspace,
    /// Per-channel QR slots for the batched path (storage reused across
    /// calls; contents are recomputed per batch — see `prep_fresh`).
    pub(crate) preps: Vec<Option<Prep>>,
    /// Whether `preps[k]` has been (re)computed during the current batch
    /// call. Cleared at the start of every batch: channel contents may
    /// change between batches even when the table shape doesn't.
    pub(crate) prep_fresh: Vec<bool>,
    /// Recycled per-detection symbol buffers (see
    /// [`SearchWorkspace::recycle`]).
    pub(crate) spare: Vec<Vec<GridPoint>>,
    // --- Multi-symbol lockstep slabs (sibling jobs sharing one channel's
    // QR walk their first descents level-by-level together; see
    // `SphereDecoder::detect_jobs_multi`). Job-major slabs index
    // `[s·nc + i]` for job `s`, level `i`; the `il_*` pair mirrors the
    // chosen points level-major (`[i·k + s]`) so one level's entries
    // across all jobs are a contiguous `cdot_soa_multi` input. ---
    /// Per-job per-level enumerator slab for the lockstep descent.
    pub(crate) m_enum: Vec<Option<E>>,
    /// Per-job `dist_above` slab.
    pub(crate) m_dist: Vec<f64>,
    /// Per-job partial symbol vectors.
    pub(crate) m_chosen: Vec<GridPoint>,
    /// Job-major split-re mirror of `m_chosen` (the per-job resume path's
    /// `cdot_soa` input).
    pub(crate) m_chosen_re: Vec<f64>,
    /// Imaginary half of the job-major mirror.
    pub(crate) m_chosen_im: Vec<f64>,
    /// Per-job best solutions.
    pub(crate) m_best: Vec<GridPoint>,
    /// Per-job Q*-rotated receive vectors (truncated to `nc`).
    pub(crate) m_yhat: Vec<Complex>,
    /// Level-major interleaved split-re mirror of the chosen points.
    pub(crate) il_re: Vec<f64>,
    /// Imaginary half of the level-major mirror.
    pub(crate) il_im: Vec<f64>,
    /// Kernel output scratch, one entry per lockstep job.
    pub(crate) ix_re: Vec<f64>,
    /// Imaginary half of the kernel output scratch.
    pub(crate) ix_im: Vec<f64>,
    /// Per-job path distance during the descent, then the leaf distance
    /// (the resume radius). `NaN` marks a job whose descent hit an empty
    /// enumerator and must re-run through the plain serial search.
    pub(crate) m_radius: Vec<f64>,
    /// Per-job operation counters.
    pub(crate) m_stats: Vec<DetectorStats>,
    /// Channel-grouping scratch for the batched path: `(channel, slot)`
    /// pairs sorted in place (keys unique, so the unstable sort is a
    /// stable grouping).
    pub(crate) order: Vec<(u32, u32)>,
}

/// The workspace type for a given enumerator factory, e.g.
/// `WorkspaceFor<GeosphereFactory>`.
pub type WorkspaceFor<F> = SearchWorkspace<<F as crate::sphere::EnumeratorFactory>::Enumerator>;

impl<E> Default for SearchWorkspace<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> SearchWorkspace<E> {
    /// Creates an empty workspace; every buffer grows on first use and is
    /// reused forever after.
    pub fn new() -> Self {
        SearchWorkspace {
            enumerators: Vec::new(),
            dist_above: Vec::new(),
            chosen: Vec::new(),
            chosen_re: Vec::new(),
            chosen_im: Vec::new(),
            r_re: Vec::new(),
            r_im: Vec::new(),
            best: Vec::new(),
            solution_len: 0,
            yhat: Vec::new(),
            bit_table: None,
            qr_ws: QrWorkspace::new(),
            preps: Vec::new(),
            prep_fresh: Vec::new(),
            spare: Vec::new(),
            m_enum: Vec::new(),
            m_dist: Vec::new(),
            m_chosen: Vec::new(),
            m_chosen_re: Vec::new(),
            m_chosen_im: Vec::new(),
            m_best: Vec::new(),
            m_yhat: Vec::new(),
            il_re: Vec::new(),
            il_im: Vec::new(),
            ix_re: Vec::new(),
            ix_im: Vec::new(),
            m_radius: Vec::new(),
            m_stats: Vec::new(),
            order: Vec::new(),
        }
    }

    /// Sizes the lockstep slabs for `k` jobs of `nc` streams each. Grows
    /// only, like every other slab — allocation-free once warmed up.
    pub(crate) fn prepare_multi(&mut self, k: usize, nc: usize) {
        let slab = k * nc;
        if self.m_enum.len() < slab {
            self.m_enum.resize_with(slab, || None);
        }
        if self.m_dist.len() < slab {
            self.m_dist.resize(slab, 0.0);
        }
        if self.m_chosen.len() < slab {
            self.m_chosen.resize(slab, GridPoint::default());
        }
        if self.m_chosen_re.len() < slab {
            self.m_chosen_re.resize(slab, 0.0);
        }
        if self.m_chosen_im.len() < slab {
            self.m_chosen_im.resize(slab, 0.0);
        }
        if self.m_best.len() < slab {
            self.m_best.resize(slab, GridPoint::default());
        }
        if self.m_yhat.len() < slab {
            self.m_yhat.resize(slab, Complex::ZERO);
        }
        if self.il_re.len() < slab {
            self.il_re.resize(slab, 0.0);
        }
        if self.il_im.len() < slab {
            self.il_im.resize(slab, 0.0);
        }
        if self.ix_re.len() < k {
            self.ix_re.resize(k, 0.0);
        }
        if self.ix_im.len() < k {
            self.ix_im.resize(k, 0.0);
        }
        if self.m_radius.len() < k {
            self.m_radius.resize(k, 0.0);
        }
        if self.m_stats.len() < k {
            self.m_stats.resize(k, DetectorStats::default());
        }
    }

    /// The best symbol vector found by the last search (stream order as
    /// searched; empty before any search succeeds).
    pub fn best(&self) -> &[GridPoint] {
        &self.best[..self.solution_len]
    }

    /// Returns detections' symbol buffers to the spare pool so the next
    /// [`detect_batch_into`](crate::SphereDecoder::detect_batch_into) call
    /// reuses them instead of allocating. Clears `detections`.
    pub fn recycle(&mut self, detections: &mut Vec<Detection>) {
        self.spare.extend(detections.drain(..).map(|d| d.symbols));
    }

    /// Sizes the per-level slabs for an `nc`-stream search. Grows only —
    /// a smaller search reuses the prefix of a larger search's slabs.
    pub(crate) fn prepare_levels(&mut self, nc: usize) {
        if self.enumerators.len() < nc {
            self.enumerators.resize_with(nc, || None);
        }
        if self.dist_above.len() < nc {
            self.dist_above.resize(nc, 0.0);
        }
        if self.chosen.len() < nc {
            self.chosen.resize(nc, GridPoint::default());
        }
        if self.chosen_re.len() < nc {
            self.chosen_re.resize(nc, 0.0);
        }
        if self.chosen_im.len() < nc {
            self.chosen_im.resize(nc, 0.0);
        }
        if self.best.len() < nc {
            self.best.resize(nc, GridPoint::default());
        }
    }

    /// Loads the top `nc × nc` block of `r` into the workspace's split
    /// re/im slabs (row-major), so the per-level interference accumulation
    /// reads `R`'s rows as contiguous SIMD lanes. Reuses slab storage —
    /// allocation-free once capacity has warmed up.
    pub(crate) fn load_r_soa(&mut self, r: &gs_linalg::Matrix) {
        let nc = r.cols();
        self.r_re.clear();
        self.r_im.clear();
        for i in 0..nc {
            for &z in &r.row(i)[..nc] {
                self.r_re.push(z.re);
                self.r_im.push(z.im);
            }
        }
    }

    /// The Gray-bit table for `c`, built on first use per constellation.
    pub(crate) fn ensure_bit_table(&mut self, c: Constellation) {
        match &self.bit_table {
            Some((cached, _)) if *cached == c => {}
            _ => self.bit_table = Some((c, BitTable::new(c))),
        }
    }

    /// Pops a recycled symbol buffer (or a fresh one on cold start),
    /// cleared and ready to fill.
    pub(crate) fn take_spare(&mut self) -> Vec<GridPoint> {
        let mut v = self.spare.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Sizes the per-channel prep slab for a batch and marks every slot
    /// stale (channel contents may differ from the previous batch even
    /// when the table shape matches).
    pub(crate) fn begin_batch(&mut self, n_channels: usize) {
        if self.preps.len() < n_channels {
            self.preps.resize_with(n_channels, || None);
        }
        self.prep_fresh.clear();
        self.prep_fresh.resize(n_channels, false);
    }
}
