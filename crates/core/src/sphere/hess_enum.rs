//! The ETH-SD enumerator: Hess et al. row-subconstellation zigzag.
//!
//! The comparison decoder of the paper's §5.3: "we base our implementation
//! of ETH-SD on the VLSI implementation of Burg et al., but … we use the
//! superior method of Hess et al.: Hess' method splits the QAM
//! constellation into horizontal subconstellations, performs an
//! one-dimensional zigzag, and then compares Euclidean distances across
//! all subconstellations."
//!
//! Enumeration is exact (same child order as Geosphere), but the cost
//! profile differs: the first child of a node requires computing the head
//! PED of **every** row — √|O| distance calculations — whereas Geosphere
//! pays one. This is precisely the gap Figures 14 and 15 measure.

use crate::sphere::enumerator::{Child, EnumeratorFactory, NodeEnumerator};
use crate::stats::DetectorStats;
use gs_linalg::Complex;
use gs_modulation::{AxisZigzag, Constellation, GridPoint};

/// Factory for ETH-SD (Hess) enumerators.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HessFactory;

/// Per-row state: the row's current head candidate and its 1-D zigzag.
struct Row {
    /// Fixed Q coordinate of this horizontal subconstellation.
    q: i32,
    /// Remaining I levels in zigzag order.
    iter: AxisZigzag,
    /// Current head candidate cost; `None` when the row is exhausted.
    head: Option<(GridPoint, f64)>,
}

/// The ETH-SD per-node enumerator.
pub struct HessEnumerator {
    rows: Vec<Row>,
    /// Rows are initialized lazily on the first `next_child` so that a node
    /// that is never queried costs nothing.
    initialized: bool,
    c: Constellation,
    center: Complex,
    gain: f64,
    /// SoA scratch for the row-head PED batch (reused across resets):
    /// every head shares the sliced I coordinate, the Q coordinate walks
    /// the rows.
    head_re: Vec<f64>,
    head_im: Vec<f64>,
    head_cost: Vec<f64>,
}

impl HessEnumerator {
    fn init(&mut self, stats: &mut DetectorStats) {
        // One slice for the in-phase axis; each row head shares the sliced
        // I coordinate but needs its own distance computation — the √|O|
        // upfront PEDs the paper charges this scheme for, evaluated as one
        // `ped_soa` batch over the rows' (constant-I, per-row-Q) points.
        // Levels are walked by index (not via `axis_levels()`, which
        // materializes a Vec) so a node visit stays allocation-free.
        stats.slices += 1;
        let side = self.c.side();
        let mut head_iter = AxisZigzag::new(self.c, self.center.re);
        let head_i = head_iter.next().expect("nonempty axis");
        self.head_re.clear();
        self.head_re.resize(side, head_i as f64);
        self.head_im.clear();
        self.head_im.extend((0..side).map(|qi| self.c.coord_of_index(qi) as f64));
        self.head_cost.clear();
        self.head_cost.resize(side, 0.0);
        gs_linalg::simd::ped_soa(
            &self.head_re,
            &self.head_im,
            self.center,
            self.gain,
            &mut self.head_cost,
        );
        stats.ped_calcs += side as u64;
        for qi in 0..side {
            let q = self.c.coord_of_index(qi);
            // Each row owns its zigzag, advanced past the shared head.
            let mut iter = AxisZigzag::new(self.c, self.center.re);
            let i = iter.next().expect("nonempty axis");
            debug_assert_eq!(i, head_i);
            let point = GridPoint { i, q };
            self.rows.push(Row { q, iter, head: Some((point, self.head_cost[qi])) });
        }
        self.initialized = true;
    }
}

impl NodeEnumerator for HessEnumerator {
    fn next_child(&mut self, _budget: f64, stats: &mut DetectorStats) -> Option<Child> {
        if !self.initialized {
            self.init(stats);
        }
        // Compare the head of every row; take the global minimum.
        let best_row = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(k, r)| r.head.map(|(_, cost)| (k, cost)))
            .min_by(|a, b| a.1.total_cmp(&b.1))?
            .0;
        let (point, cost) = self.rows[best_row].head.take().expect("head just observed");
        // Replenish the winning row from its zigzag.
        if let Some(i) = self.rows[best_row].iter.next() {
            let p = GridPoint { i, q: self.rows[best_row].q };
            let c = self.gain * p.dist_sqr(self.center);
            stats.ped_calcs += 1;
            self.rows[best_row].head = Some((p, c));
        }
        Some(Child { point, cost })
    }
}

impl EnumeratorFactory for HessFactory {
    type Enumerator = HessEnumerator;

    fn make(
        &self,
        c: Constellation,
        center: Complex,
        gain: f64,
        _stats: &mut DetectorStats,
    ) -> HessEnumerator {
        HessEnumerator {
            rows: Vec::with_capacity(c.side()),
            initialized: false,
            c,
            center,
            gain,
            head_re: Vec::new(),
            head_im: Vec::new(),
            head_cost: Vec::new(),
        }
    }

    fn reset(
        &self,
        e: &mut HessEnumerator,
        c: Constellation,
        center: Complex,
        gain: f64,
        _stats: &mut DetectorStats,
    ) {
        // Row state is rebuilt lazily on the first `next_child`, exactly as
        // after `make`; clearing keeps the row buffer's allocation.
        e.rows.clear();
        e.initialized = false;
        e.c = c;
        e.center = center;
        e.gain = gain;
    }

    fn name(&self) -> &'static str {
        "ETH-SD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sphere::geosphere_enum::GeosphereFactory;

    fn drain<F: EnumeratorFactory>(
        f: &F,
        c: Constellation,
        center: Complex,
    ) -> (Vec<Child>, DetectorStats) {
        let mut stats = DetectorStats::default();
        let mut e = f.make(c, center, 1.0, &mut stats);
        let mut out = Vec::new();
        while let Some(ch) = e.next_child(f64::INFINITY, &mut stats) {
            out.push(ch);
        }
        (out, stats)
    }

    #[test]
    fn enumerates_all_points_sorted() {
        for c in Constellation::ALL {
            for &(re, im) in &[(0.0, 0.0), (1.4, -0.8), (-9.0, 9.0), (0.2, 3.3)] {
                let (children, _) = drain(&HessFactory, c, Complex::new(re, im));
                assert_eq!(children.len(), c.size());
                for w in children.windows(2) {
                    assert!(w[0].cost <= w[1].cost + 1e-12, "{c:?}");
                }
            }
        }
    }

    #[test]
    fn first_child_costs_sqrt_o_peds() {
        // The structural difference vs Geosphere: ETH-SD pays √|O| PEDs for
        // the first child of a node.
        let c = Constellation::Qam256;
        let mut stats = DetectorStats::default();
        let mut e = HessFactory.make(c, Complex::new(0.2, 0.7), 1.0, &mut stats);
        e.next_child(f64::INFINITY, &mut stats).unwrap();
        assert_eq!(stats.ped_calcs, 16 + 1, "16 row heads + 1 replenish");
    }

    #[test]
    fn reset_replays_identically() {
        let c = Constellation::Qam16;
        let mut dirty = DetectorStats::default();
        let mut reused = HessFactory.make(c, Complex::new(5.0, -5.0), 4.0, &mut dirty);
        for _ in 0..3 {
            reused.next_child(f64::INFINITY, &mut dirty);
        }

        let center = Complex::new(-0.7, 1.9);
        let mut stats_fresh = DetectorStats::default();
        let mut stats_reused = DetectorStats::default();
        let mut fresh = HessFactory.make(c, center, 1.5, &mut stats_fresh);
        HessFactory.reset(&mut reused, c, center, 1.5, &mut stats_reused);
        loop {
            let a = fresh.next_child(f64::INFINITY, &mut stats_fresh);
            let b = reused.next_child(f64::INFINITY, &mut stats_reused);
            assert_eq!(stats_fresh, stats_reused);
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.point, y.point);
                    assert_eq!(x.cost.to_bits(), y.cost.to_bits());
                }
                _ => panic!("fresh and reset enumerations diverged"),
            }
        }
    }

    #[test]
    fn agrees_with_geosphere_ordering() {
        // Identical exact enumeration order (cost sequence) — the property
        // behind "each of the above sphere decoders visit the same number
        // of nodes" (Fig. 15 note).
        for c in Constellation::ALL {
            for &(re, im) in &[(0.3, -0.2), (2.6, 1.1), (-1.9, -3.4)] {
                let center = Complex::new(re, im);
                let (hess, _) = drain(&HessFactory, c, center);
                let (geo, _) = drain(&GeosphereFactory::zigzag_only(), c, center);
                assert_eq!(hess.len(), geo.len());
                for (h, g) in hess.iter().zip(&geo) {
                    assert!(
                        (h.cost - g.cost).abs() < 1e-12,
                        "{c:?} at {center:?}: {} vs {}",
                        h.cost,
                        g.cost
                    );
                }
            }
        }
    }
}
