//! Geosphere's two-dimensional zigzag enumeration (paper §3.1.1) with
//! optional geometrical pruning (paper §3.2).
//!
//! The enumerator approximates an expanding-ring search around the received
//! symbol `ỹ` (Figure 6): the constellation is viewed as √|O| *vertical*
//! PAM subconstellations (columns, fixed in-phase coordinate). Exploring a
//! point (a) zigzags **vertically** within that point's column and (b)
//! zigzags **horizontally** to activate one new column — but only ever
//! keeps **one live candidate per column** in the priority queue, which is
//! what caps the queue at √|O| entries and makes each exploration cost at
//! most two new distance computations (versus √|O| upfront for the
//! row-parallel ETH-SD/Hess scheme).
//!
//! With geometrical pruning enabled, every would-be distance computation is
//! preceded by the Eq. 9 table-lookup lower bound; a bound at or above the
//! remaining sphere budget kills the whole zigzag direction (the bound is
//! monotone along each direction) without computing a single exact PED.

use crate::geoprune::{axis_offset, distance_lower_bound};
use crate::sphere::enumerator::{Child, EnumeratorFactory, NodeEnumerator};
use crate::stats::DetectorStats;
use gs_linalg::Complex;
use gs_modulation::{AxisZigzag, Constellation, GridPoint};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Factory for Geosphere enumerators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeosphereFactory {
    /// Enables the §3.2 geometric pruning bound (the paper's "Full"
    /// variant). Disabled = the "2D zigzag only" ablation of §5.3.2.
    pub geometric_pruning: bool,
}

impl GeosphereFactory {
    /// The full Geosphere design: zigzag enumeration + geometric pruning.
    pub fn full() -> Self {
        GeosphereFactory { geometric_pruning: true }
    }

    /// The enumeration-only ablation (no geometric pruning).
    pub fn zigzag_only() -> Self {
        GeosphereFactory { geometric_pruning: false }
    }
}

/// A queue candidate: exact cost, owning column index.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    cost: f64,
    point: GridPoint,
    column: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost.total_cmp(&other.cost)
    }
}

/// Geosphere's per-node enumerator.
pub struct GeosphereEnumerator {
    c: Constellation,
    center: Complex,
    gain: f64,
    geoprune: bool,
    /// Sliced point of `center` — the origin for Eq. 9 offsets.
    slice: GridPoint,
    /// Min-heap of at most one candidate per column.
    queue: BinaryHeap<Reverse<Candidate>>,
    /// Vertical zigzag state per column (indexed by level index of the
    /// column's I coordinate); `None` = not activated or exhausted.
    columns: Vec<Option<AxisZigzag>>,
    /// Horizontal zigzag over column I coordinates; `None` once exhausted
    /// (or killed by the bound).
    horizontal: Option<AxisZigzag>,
    /// Column owning the most recently returned child; its successors are
    /// generated lazily on the next call (deferring PEDs as late as
    /// possible).
    pending_explore: Option<usize>,
}

impl GeosphereEnumerator {
    fn new(
        c: Constellation,
        center: Complex,
        gain: f64,
        geoprune: bool,
        stats: &mut DetectorStats,
    ) -> Self {
        let mut this = GeosphereEnumerator {
            c,
            center,
            gain,
            geoprune,
            slice: GridPoint::default(),
            queue: BinaryHeap::new(),
            columns: Vec::with_capacity(c.side()),
            horizontal: None,
            pending_explore: None,
        };
        this.reset_for(c, center, gain, geoprune, stats);
        this
    }

    /// Re-initializes for a new node, reusing the queue and column buffers
    /// (the reuse protocol's `reset`): behaviorally identical to a fresh
    /// [`GeosphereEnumerator::new`], allocation-free after warmup.
    fn reset_for(
        &mut self,
        c: Constellation,
        center: Complex,
        gain: f64,
        geoprune: bool,
        stats: &mut DetectorStats,
    ) {
        self.c = c;
        self.center = center;
        self.gain = gain;
        self.geoprune = geoprune;
        self.slice = c.slice(center);
        stats.slices += 1;
        self.queue.clear();
        self.columns.clear();
        self.columns.resize(c.side(), None);
        self.horizontal = Some(AxisZigzag::new(c, center.re));
        self.pending_explore = None;
        // Activate the initial column: the horizontal zigzag's first yield
        // is the sliced column itself.
        let first_col = self.horizontal.as_mut().unwrap().next().expect("nonempty axis");
        debug_assert_eq!(first_col, self.slice.i);
        self.activate_column(first_col, f64::INFINITY, stats);
    }

    /// Lower-bounds the branch cost of a point at the given axis offsets
    /// from the slice.
    fn bound(&self, d_i: usize, d_q: usize) -> f64 {
        self.gain * distance_lower_bound(d_i, d_q)
    }

    /// Pushes a candidate after the (optional) bound test and the exact
    /// PED computation. Returns `false` when the bound killed it.
    fn try_push(
        &mut self,
        point: GridPoint,
        column: usize,
        budget: f64,
        stats: &mut DetectorStats,
    ) -> bool {
        if self.geoprune {
            stats.bound_checks += 1;
            let b =
                self.bound(axis_offset(point.i, self.slice.i), axis_offset(point.q, self.slice.q));
            if b >= budget {
                stats.bound_prunes += 1;
                return false;
            }
        }
        // One exact PED through the shared per-point unit — the same
        // expression `ped_soa` evaluates per lane, so Geosphere's lazy
        // one-at-a-time enumeration and ETH-SD's row-head batches agree
        // bit for bit on every cost.
        let cost =
            gs_linalg::simd::ped_point(point.i as f64, point.q as f64, self.center, self.gain);
        stats.ped_calcs += 1;
        self.queue.push(Reverse(Candidate { cost, point, column }));
        true
    }

    /// Vertical zigzag: advance `column`'s iterator and enqueue the next
    /// point of that column. A bound kill exhausts the column (the bound is
    /// monotone along the vertical zigzag).
    fn advance_column(&mut self, column: usize, budget: f64, stats: &mut DetectorStats) {
        let Some(iter) = self.columns[column].as_mut() else { return };
        let Some(q) = iter.next() else {
            self.columns[column] = None;
            return;
        };
        let point = GridPoint { i: self.c.coord_of_index(column), q };
        if !self.try_push(point, column, budget, stats) {
            self.columns[column] = None; // monotone bound ⇒ rest of column dead
        }
    }

    /// Horizontal zigzag: activate the next column in I-zigzag order. A
    /// bound kill exhausts the horizontal direction entirely.
    fn advance_horizontal(&mut self, budget: f64, stats: &mut DetectorStats) {
        let Some(horiz) = self.horizontal.as_mut() else { return };
        let Some(col_coord) = horiz.next() else {
            self.horizontal = None;
            return;
        };
        // The paper's Step 3(b) guard — "if no other constellation point in
        // zh's PAM subconstellation is in Q" — holds by construction here:
        // the global horizontal iterator activates each column exactly once.
        if self.geoprune {
            stats.bound_checks += 1;
            // Cheapest conceivable point of the new column: same row as the
            // slice (dQ = 0).
            let b = self.bound(axis_offset(col_coord, self.slice.i), 0);
            if b >= budget {
                stats.bound_prunes += 1;
                self.horizontal = None; // monotone in dI ⇒ all further columns dead
                return;
            }
        }
        self.activate_column(col_coord, budget, stats);
    }

    fn activate_column(&mut self, col_coord: i32, budget: f64, stats: &mut DetectorStats) {
        let column = self.c.index_of_coord(col_coord);
        debug_assert!(self.columns[column].is_none(), "column activated twice");
        let mut iter = AxisZigzag::new(self.c, self.center.im);
        let q = iter.next().expect("nonempty axis");
        let point = GridPoint { i: col_coord, q };
        let pushed = self.try_push(point, column, budget, stats);
        // Keep the iterator only if the head survived; a bound kill on the
        // column head (dQ = 0 term is 0, so this only happens via the dI
        // term) dooms the whole column.
        self.columns[column] = if pushed { Some(iter) } else { None };
    }
}

impl NodeEnumerator for GeosphereEnumerator {
    fn next_child(&mut self, budget: f64, stats: &mut DetectorStats) -> Option<Child> {
        // Deferred successor generation for the previously explored point
        // (paper Step 3a/3b) — runs only when the decoder actually needs
        // another sibling, by which time the budget may already exclude it.
        if let Some(column) = self.pending_explore.take() {
            self.advance_column(column, budget, stats);
            self.advance_horizontal(budget, stats);
        }
        // If the queue ran dry but unactivated columns remain (possible
        // when bound kills emptied it), keep trying to activate.
        while self.queue.is_empty() && self.horizontal.is_some() {
            self.advance_horizontal(budget, stats);
        }
        let Reverse(cand) = self.queue.pop()?;
        self.pending_explore = Some(cand.column);
        Some(Child { point: cand.point, cost: cand.cost })
    }
}

impl EnumeratorFactory for GeosphereFactory {
    type Enumerator = GeosphereEnumerator;

    fn make(
        &self,
        c: Constellation,
        center: Complex,
        gain: f64,
        stats: &mut DetectorStats,
    ) -> GeosphereEnumerator {
        GeosphereEnumerator::new(c, center, gain, self.geometric_pruning, stats)
    }

    fn reset(
        &self,
        e: &mut GeosphereEnumerator,
        c: Constellation,
        center: Complex,
        gain: f64,
        stats: &mut DetectorStats,
    ) {
        e.reset_for(c, center, gain, self.geometric_pruning, stats);
    }

    fn name(&self) -> &'static str {
        if self.geometric_pruning {
            "Geosphere"
        } else {
            "Geosphere (2D zigzag only)"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(c: Constellation, center: Complex, geoprune: bool) -> (Vec<Child>, DetectorStats) {
        let mut stats = DetectorStats::default();
        let factory =
            if geoprune { GeosphereFactory::full() } else { GeosphereFactory::zigzag_only() };
        let mut e = factory.make(c, center, 1.0, &mut stats);
        let mut out = Vec::new();
        while let Some(ch) = e.next_child(f64::INFINITY, &mut stats) {
            out.push(ch);
        }
        (out, stats)
    }

    #[test]
    fn enumerates_all_points_in_nondecreasing_order() {
        for c in Constellation::ALL {
            for &(re, im) in
                &[(0.0, 0.0), (0.9, -0.4), (-3.7, 2.2), (16.0, -16.0), (1.0, 1.0), (-0.49, 5.51)]
            {
                let (children, _) = drain(c, Complex::new(re, im), false);
                assert_eq!(children.len(), c.size(), "{c:?} must enumerate everything");
                for w in children.windows(2) {
                    assert!(
                        w[0].cost <= w[1].cost + 1e-12,
                        "{c:?} at ({re},{im}): {} then {}",
                        w[0].cost,
                        w[1].cost
                    );
                }
                let mut seen: Vec<_> = children.iter().map(|ch| (ch.point.i, ch.point.q)).collect();
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), c.size(), "{c:?}: duplicate points");
            }
        }
    }

    #[test]
    fn first_child_is_the_slice() {
        for c in Constellation::ALL {
            let center = Complex::new(1.3, -2.2);
            let (children, _) = drain(c, center, false);
            assert_eq!(children[0].point, c.slice(center));
        }
    }

    #[test]
    fn queue_stays_within_sqrt_o() {
        // The paper's bound: priority queue length at most √|O|.
        let c = Constellation::Qam256;
        let mut stats = DetectorStats::default();
        let mut e =
            GeosphereFactory::zigzag_only().make(c, Complex::new(0.2, 0.7), 1.0, &mut stats);
        for _ in 0..c.size() {
            assert!(e.queue.len() <= c.side(), "queue grew past √|O|: {}", e.queue.len());
            if e.next_child(f64::INFINITY, &mut stats).is_none() {
                break;
            }
        }
    }

    #[test]
    fn lazy_ped_accounting() {
        // Getting the first child of a 256-QAM node must cost exactly one
        // PED (the slice) — not √|O| = 16 like the row-parallel scheme.
        let mut stats = DetectorStats::default();
        let mut e = GeosphereFactory::zigzag_only().make(
            Constellation::Qam256,
            Complex::new(0.2, 0.7),
            1.0,
            &mut stats,
        );
        let first = e.next_child(f64::INFINITY, &mut stats).unwrap();
        assert_eq!(stats.ped_calcs, 1, "first child must cost a single PED");
        assert!(first.cost >= 0.0);
        // The second child costs at most two more PEDs (one vertical, one
        // horizontal successor).
        e.next_child(f64::INFINITY, &mut stats).unwrap();
        assert!(stats.ped_calcs <= 3, "got {}", stats.ped_calcs);
    }

    #[test]
    fn geometric_pruning_skips_peds_under_tight_budget() {
        let c = Constellation::Qam256;
        let center = Complex::new(0.1, -0.3);
        let mut stats_full = DetectorStats::default();
        let mut e = GeosphereFactory::full().make(c, center, 1.0, &mut stats_full);
        // Tight budget: only the slice itself can fit.
        let budget = 0.5;
        let first = e.next_child(budget, &mut stats_full).unwrap();
        assert_eq!(first.point, c.slice(center));
        // Everything else is bound-pruned without exact PEDs.
        let _ = e.next_child(budget, &mut stats_full);
        assert!(
            stats_full.ped_calcs <= 2,
            "bound should avoid exact PEDs, got {}",
            stats_full.ped_calcs
        );
        assert!(stats_full.bound_prunes > 0);
    }

    #[test]
    fn pruned_and_unpruned_agree_on_surviving_order() {
        // With a finite budget, the full variant must yield exactly the
        // prefix of the unpruned ordering that fits the budget.
        let c = Constellation::Qam64;
        let center = Complex::new(2.4, -1.7);
        let budget = 30.0;
        let (all, _) = drain(c, center, false);
        let expected: Vec<_> = all.iter().take_while(|ch| ch.cost < budget).collect();

        let mut stats = DetectorStats::default();
        let mut e = GeosphereFactory::full().make(c, center, 1.0, &mut stats);
        let mut got = Vec::new();
        while let Some(ch) = e.next_child(budget, &mut stats) {
            if ch.cost >= budget {
                break;
            }
            got.push(ch);
        }
        assert_eq!(got.len(), expected.len());
        for (g, e_) in got.iter().zip(&expected) {
            assert!((g.cost - e_.cost).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_replays_identically() {
        // Protocol contract: a reset enumerator matches a fresh one in
        // children, order, and operation counts — including under a finite
        // budget where geometric pruning fires.
        for geoprune in [false, true] {
            let factory =
                if geoprune { GeosphereFactory::full() } else { GeosphereFactory::zigzag_only() };
            let c = Constellation::Qam64;
            let mut dirty_stats = DetectorStats::default();
            let mut reused = factory.make(c, Complex::new(-7.0, 7.0), 5.0, &mut dirty_stats);
            for _ in 0..5 {
                reused.next_child(f64::INFINITY, &mut dirty_stats);
            }

            let center = Complex::new(1.3, -0.6);
            let budget = 40.0;
            let mut stats_fresh = DetectorStats::default();
            let mut stats_reused = DetectorStats::default();
            let mut fresh = factory.make(c, center, 2.0, &mut stats_fresh);
            factory.reset(&mut reused, c, center, 2.0, &mut stats_reused);
            assert_eq!(stats_fresh, stats_reused, "geoprune {geoprune}");
            loop {
                let a = fresh.next_child(budget, &mut stats_fresh);
                let b = reused.next_child(budget, &mut stats_reused);
                assert_eq!(stats_fresh, stats_reused, "geoprune {geoprune}");
                match (a, b) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        assert_eq!(x.point, y.point);
                        assert_eq!(x.cost.to_bits(), y.cost.to_bits());
                    }
                    _ => panic!("fresh and reset enumerations diverged"),
                }
            }
        }
    }

    #[test]
    fn figure6_walkthrough() {
        // Figure 6: 16-QAM, received symbol in the cell of point a with the
        // vertical neighbour b slightly closer than the horizontal c.
        // Center chosen so ordering is a, b, c, d(above a), e...
        let c = Constellation::Qam16;
        // Slice = (1,1); vertical neighbour (1,-1) at distance ~1.6;
        // horizontal (−1,1) at ~1.9; then (1,3) / (3,1)...
        let center = Complex::new(0.95, 0.2);
        let (children, _) = drain(c, center, false);
        assert_eq!(children[0].point, GridPoint { i: 1, q: 1 }); // a
        assert_eq!(children[1].point, GridPoint { i: 1, q: -1 }); // b (vertical)
        assert_eq!(children[2].point, GridPoint { i: -1, q: 1 }); // c (horizontal)
    }
}
