//! Depth-first sphere decoding: shared engine + pluggable enumerators.

pub mod engine;
pub mod enumerator;
pub mod geosphere_enum;
pub mod hess_enum;
pub mod workspace;

pub use engine::SphereDecoder;
pub use enumerator::{Child, EnumeratorFactory, ExhaustiveSortFactory, NodeEnumerator};
pub use geosphere_enum::GeosphereFactory;
pub use hess_enum::HessFactory;
pub use workspace::{SearchWorkspace, WorkspaceFor};
