//! The node-enumeration interface shared by all depth-first sphere
//! decoders.
//!
//! A sphere decoder's efficiency "is to a large part determined by the
//! tree-traversal strategy" (paper §2.3), and the traversal strategy is
//! exactly the choice of *enumerator*: the object that, at one tree node,
//! yields that node's children in nondecreasing partial-Euclidean-distance
//! order. The engine in [`crate::sphere::engine`] is identical for
//! Geosphere and ETH-SD; only the enumerator differs — which is also why
//! both visit the same tree nodes (§5.3).

use crate::stats::DetectorStats;
use gs_linalg::Complex;
use gs_modulation::{Constellation, GridPoint};

/// One enumerated child: the constellation point and its exact branch cost
/// `c(s) = |r_ll|²·|ỹ − s|²` (Eq. 8).
#[derive(Clone, Copy, Debug)]
pub struct Child {
    /// The constellation point chosen at this level.
    pub point: GridPoint,
    /// Exact branch cost (partial Euclidean distance increment).
    pub cost: f64,
}

/// Enumerates the children of one tree node in nondecreasing branch cost.
pub trait NodeEnumerator {
    /// Yields the next-cheapest unexplored child whose cost may still fit
    /// within `budget` (= `r² − d(parent)`, the remaining sphere budget).
    ///
    /// Returns `None` when the node is exhausted **or** when the enumerator
    /// can prove every remaining child costs at least `budget` (sorted
    /// enumeration makes this sound — Schnorr–Euchner sibling pruning).
    /// Implementations may also return a child costing ≥ `budget`; the
    /// engine re-checks. The budget only ever shrinks between calls.
    fn next_child(&mut self, budget: f64, stats: &mut DetectorStats) -> Option<Child>;
}

/// Creates enumerators; one per tree-node visit.
///
/// `Send + Sync` is required so sphere decoders built from a factory
/// satisfy the [`crate::MimoDetector`] thread-safety contract; factories
/// are stateless configuration, so this costs nothing.
pub trait EnumeratorFactory: Send + Sync {
    /// The enumerator type produced.
    type Enumerator: NodeEnumerator;

    /// Creates an enumerator for a node with received symbol `center`
    /// (`ỹ_l`, constellation space) and level gain `gain = |r_ll|²`.
    fn make(
        &self,
        c: Constellation,
        center: Complex,
        gain: f64,
        stats: &mut DetectorStats,
    ) -> Self::Enumerator;

    /// Display name of the decoder this enumerator family implements.
    fn name(&self) -> &'static str;
}

/// A reference enumerator that materializes and sorts every child upfront.
///
/// This is the naive strategy the paper's §2.3 criticizes ("fully
/// enumerated and sorted all possibilities … a highly inefficient
/// process"); it exists as a test oracle for the efficient enumerators and
/// to quantify their savings.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExhaustiveSortFactory;

/// Enumerator produced by [`ExhaustiveSortFactory`].
pub struct ExhaustiveSortEnumerator {
    sorted: std::vec::IntoIter<Child>,
}

impl EnumeratorFactory for ExhaustiveSortFactory {
    type Enumerator = ExhaustiveSortEnumerator;

    fn make(
        &self,
        c: Constellation,
        center: Complex,
        gain: f64,
        stats: &mut DetectorStats,
    ) -> ExhaustiveSortEnumerator {
        let mut children: Vec<Child> = c
            .points()
            .into_iter()
            .map(|p| Child { point: p, cost: gain * p.dist_sqr(center) })
            .collect();
        stats.ped_calcs += children.len() as u64;
        children.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        ExhaustiveSortEnumerator { sorted: children.into_iter() }
    }

    fn name(&self) -> &'static str {
        "Full-sort SD"
    }
}

impl NodeEnumerator for ExhaustiveSortEnumerator {
    fn next_child(&mut self, _budget: f64, _stats: &mut DetectorStats) -> Option<Child> {
        self.sorted.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_sort_yields_all_children_in_order() {
        let mut stats = DetectorStats::default();
        let c = Constellation::Qam16;
        let center = Complex::new(0.3, -1.2);
        let mut e = ExhaustiveSortFactory.make(c, center, 2.0, &mut stats);
        assert_eq!(stats.ped_calcs, 16);
        let mut costs = Vec::new();
        while let Some(ch) = e.next_child(f64::INFINITY, &mut stats) {
            costs.push(ch.cost);
        }
        assert_eq!(costs.len(), 16);
        for w in costs.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // First child is the slice, cost = gain * |y - slice|².
        let slice = c.slice(center);
        assert!((costs[0] - 2.0 * slice.dist_sqr(center)).abs() < 1e-12);
    }
}
