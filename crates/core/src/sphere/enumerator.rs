//! The node-enumeration interface shared by all depth-first sphere
//! decoders.
//!
//! A sphere decoder's efficiency "is to a large part determined by the
//! tree-traversal strategy" (paper §2.3), and the traversal strategy is
//! exactly the choice of *enumerator*: the object that, at one tree node,
//! yields that node's children in nondecreasing partial-Euclidean-distance
//! order. The engine in [`crate::sphere::engine`] is identical for
//! Geosphere and ETH-SD; only the enumerator differs — which is also why
//! both visit the same tree nodes (§5.3).
//!
//! ## The reset-and-reuse protocol
//!
//! Tree searches visit one node per enumerator, and a frame's worth of
//! searches visits millions of nodes, so enumerators follow a **reuse
//! protocol** instead of being constructed per visit: a factory can either
//! [`make`](EnumeratorFactory::make) a fresh enumerator (cold path, buffer
//! warmup) or [`reset`](EnumeratorFactory::reset) an existing one in place
//! for a new node, reusing its internal buffers.
//! [`make_in`](EnumeratorFactory::make_in) dispatches between the two for a
//! slab slot, and is what the engine's
//! [`SearchWorkspace`](crate::sphere::SearchWorkspace) uses — after warmup
//! no enumerator touches the heap again.
//!
//! To add a new enumerator family under the protocol, implement `reset` as
//! "clear every collection, then reinitialize exactly as `make` would":
//! the engine requires a reset enumerator to behave bit-identically to a
//! freshly made one (same children, same order, same operation counts).

use crate::stats::DetectorStats;
use gs_linalg::Complex;
use gs_modulation::{Constellation, GridPoint};

/// One enumerated child: the constellation point and its exact branch cost
/// `c(s) = |r_ll|²·|ỹ − s|²` (Eq. 8).
#[derive(Clone, Copy, Debug)]
pub struct Child {
    /// The constellation point chosen at this level.
    pub point: GridPoint,
    /// Exact branch cost (partial Euclidean distance increment).
    pub cost: f64,
}

/// Enumerates the children of one tree node in nondecreasing branch cost.
pub trait NodeEnumerator {
    /// Yields the next-cheapest unexplored child whose cost may still fit
    /// within `budget` (= `r² − d(parent)`, the remaining sphere budget).
    ///
    /// Returns `None` when the node is exhausted **or** when the enumerator
    /// can prove every remaining child costs at least `budget` (sorted
    /// enumeration makes this sound — Schnorr–Euchner sibling pruning).
    /// Implementations may also return a child costing ≥ `budget`; the
    /// engine re-checks. The budget only ever shrinks between calls.
    fn next_child(&mut self, budget: f64, stats: &mut DetectorStats) -> Option<Child>;
}

/// Creates and re-initializes enumerators (see the module docs for the
/// reset-and-reuse protocol).
///
/// `Send + Sync` is required so sphere decoders built from a factory
/// satisfy the [`crate::MimoDetector`] thread-safety contract; factories
/// are stateless configuration, so this costs nothing.
pub trait EnumeratorFactory: Send + Sync {
    /// The enumerator type produced. `'static` lets a
    /// [`SearchWorkspace`](crate::SearchWorkspace) of this enumerator live
    /// inside a type-erased [`DetectorWorkspace`](crate::DetectorWorkspace).
    type Enumerator: NodeEnumerator + Send + Sync + 'static;

    /// Creates an enumerator for a node with received symbol `center`
    /// (`ỹ_l`, constellation space) and level gain `gain = |r_ll|²`.
    ///
    /// This is the allocating cold path; steady-state callers go through
    /// [`EnumeratorFactory::make_in`].
    fn make(
        &self,
        c: Constellation,
        center: Complex,
        gain: f64,
        stats: &mut DetectorStats,
    ) -> Self::Enumerator;

    /// Re-initializes `e` in place for a new node, reusing its buffers.
    ///
    /// Must leave `e` bit-identical in behavior to
    /// `self.make(c, center, gain, stats)` — same child sequence and the
    /// same operation counts — while performing no heap allocation once
    /// `e`'s buffers have warmed up to this constellation's size.
    fn reset(
        &self,
        e: &mut Self::Enumerator,
        c: Constellation,
        center: Complex,
        gain: f64,
        stats: &mut DetectorStats,
    );

    /// Resets the enumerator in `slot` for a new node, making one on first
    /// use: the slab entry point of the reuse protocol.
    fn make_in(
        &self,
        slot: &mut Option<Self::Enumerator>,
        c: Constellation,
        center: Complex,
        gain: f64,
        stats: &mut DetectorStats,
    ) {
        match slot {
            Some(e) => self.reset(e, c, center, gain, stats),
            None => *slot = Some(self.make(c, center, gain, stats)),
        }
    }

    /// Display name of the decoder this enumerator family implements.
    fn name(&self) -> &'static str;
}

/// A reference enumerator that materializes and sorts every child upfront.
///
/// This is the naive strategy the paper's §2.3 criticizes ("fully
/// enumerated and sorted all possibilities … a highly inefficient
/// process"); it exists as a test oracle for the efficient enumerators and
/// to quantify their savings. Because it is an oracle, it keeps the stable
/// (allocating) sort — it is exempt from the zero-allocation invariant the
/// production enumerators uphold, though `reset` still reuses its child
/// buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExhaustiveSortFactory;

/// Enumerator produced by [`ExhaustiveSortFactory`].
pub struct ExhaustiveSortEnumerator {
    children: Vec<Child>,
    cursor: usize,
}

impl ExhaustiveSortEnumerator {
    fn fill(&mut self, c: Constellation, center: Complex, gain: f64, stats: &mut DetectorStats) {
        self.children.clear();
        self.children.extend(
            c.points().into_iter().map(|p| Child { point: p, cost: gain * p.dist_sqr(center) }),
        );
        stats.ped_calcs += self.children.len() as u64;
        self.children.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        self.cursor = 0;
    }
}

impl EnumeratorFactory for ExhaustiveSortFactory {
    type Enumerator = ExhaustiveSortEnumerator;

    fn make(
        &self,
        c: Constellation,
        center: Complex,
        gain: f64,
        stats: &mut DetectorStats,
    ) -> ExhaustiveSortEnumerator {
        let mut e = ExhaustiveSortEnumerator { children: Vec::new(), cursor: 0 };
        e.fill(c, center, gain, stats);
        e
    }

    fn reset(
        &self,
        e: &mut ExhaustiveSortEnumerator,
        c: Constellation,
        center: Complex,
        gain: f64,
        stats: &mut DetectorStats,
    ) {
        e.fill(c, center, gain, stats);
    }

    fn name(&self) -> &'static str {
        "Full-sort SD"
    }
}

impl NodeEnumerator for ExhaustiveSortEnumerator {
    fn next_child(&mut self, _budget: f64, _stats: &mut DetectorStats) -> Option<Child> {
        let child = self.children.get(self.cursor).copied();
        if child.is_some() {
            self.cursor += 1;
        }
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_sort_yields_all_children_in_order() {
        let mut stats = DetectorStats::default();
        let c = Constellation::Qam16;
        let center = Complex::new(0.3, -1.2);
        let mut e = ExhaustiveSortFactory.make(c, center, 2.0, &mut stats);
        assert_eq!(stats.ped_calcs, 16);
        let mut costs = Vec::new();
        while let Some(ch) = e.next_child(f64::INFINITY, &mut stats) {
            costs.push(ch.cost);
        }
        assert_eq!(costs.len(), 16);
        for w in costs.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // First child is the slice, cost = gain * |y - slice|².
        let slice = c.slice(center);
        assert!((costs[0] - 2.0 * slice.dist_sqr(center)).abs() < 1e-12);
    }

    #[test]
    fn reset_replays_identically() {
        // The protocol contract: a reset enumerator is indistinguishable
        // from a fresh one — children, order, and operation counts.
        let c = Constellation::Qam64;
        let mut stats_fresh = DetectorStats::default();
        let mut stats_reused = DetectorStats::default();
        let mut reused =
            ExhaustiveSortFactory.make(c, Complex::new(9.9, -9.9), 3.0, &mut stats_reused);
        // Drain it part-way so the reset starts from a dirty state.
        for _ in 0..7 {
            reused.next_child(f64::INFINITY, &mut stats_reused);
        }
        stats_reused = DetectorStats::default();

        let center = Complex::new(0.4, 1.1);
        let fresh = ExhaustiveSortFactory.make(c, center, 2.0, &mut stats_fresh);
        ExhaustiveSortFactory.reset(&mut reused, c, center, 2.0, &mut stats_reused);
        assert_eq!(stats_fresh, stats_reused);
        let mut fresh = fresh;
        loop {
            let a = fresh.next_child(f64::INFINITY, &mut stats_fresh);
            let b = reused.next_child(f64::INFINITY, &mut stats_reused);
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!(x.point, y.point);
                    assert_eq!(x.cost.to_bits(), y.cost.to_bits());
                }
                _ => panic!("fresh and reset enumerations diverged"),
            }
        }
    }

    #[test]
    fn make_in_allocates_once_then_reuses() {
        let c = Constellation::Qam16;
        let mut stats = DetectorStats::default();
        let mut slot: Option<ExhaustiveSortEnumerator> = None;
        ExhaustiveSortFactory.make_in(&mut slot, c, Complex::new(0.1, 0.2), 1.0, &mut stats);
        assert!(slot.is_some());
        let cap = slot.as_ref().unwrap().children.capacity();
        ExhaustiveSortFactory.make_in(&mut slot, c, Complex::new(-1.1, 2.2), 1.5, &mut stats);
        assert_eq!(slot.as_ref().unwrap().children.capacity(), cap, "reset must reuse the buffer");
    }
}
