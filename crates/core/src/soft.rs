//! Max-log soft-output sphere detection (the paper's §7 future-work
//! direction).
//!
//! "While Geosphere increases throughput, iterative soft receiver
//! processing is required to reach MIMO capacity. Such 'soft-detectors'
//! consist of several constrained maximum-likelihood problems and
//! therefore the sphere decoder can be of use." — exactly how this module
//! works: the hard Geosphere search yields the ML solution `x_ML` with
//! metric `λ_ML`; each bit's **counter-hypothesis** metric `λ_i` is then a
//! *constrained* ML problem (minimum distance over symbol vectors whose
//! bit `i` is flipped), solved by the same Geosphere engine with a per-bit
//! child filter and the sphere radius warm-started at the clipping limit.
//! The max-log LLR is `(λ_i − λ_ML)/σ²`, signed by the ML bit.

use crate::sphere::geosphere_enum::GeosphereEnumerator;
use crate::sphere::{GeosphereFactory, SearchWorkspace, SphereDecoder};
use crate::stats::DetectorStats;
use gs_linalg::{qr_decompose_into, Complex, Matrix, Qr, QrWorkspace};
use gs_modulation::{Constellation, GridPoint};

/// Soft detection output.
#[derive(Clone, Debug, Default)]
pub struct SoftDetection {
    /// Hard (maximum-likelihood) symbol decisions.
    pub symbols: Vec<GridPoint>,
    /// Per-bit log-likelihood ratios, `nc × Q` entries ordered stream-major
    /// (stream 0's `Q` bits MSB-first, then stream 1, …).
    ///
    /// Sign convention: **positive = bit 0 more likely** (matching
    /// `L = log P(b=0)/P(b=1)`). Magnitudes are clipped at
    /// [`SoftGeosphereDetector::llr_clip`].
    pub llrs: Vec<f64>,
    /// Operation counts over the hard search and every counter-hypothesis
    /// search.
    pub stats: DetectorStats,
}

/// Reusable scratch for soft detection: the underlying search workspace
/// plus QR factors, rotation scratch, and the ML bit cache. One per
/// worker/receiver, reset per symbol — after warmup,
/// [`SoftGeosphereDetector::detect_soft_into`] allocates nothing.
#[derive(Default)]
pub struct SoftWorkspace {
    /// Search state shared by the hard search and every counter-hypothesis
    /// search.
    search: SearchWorkspace<GeosphereEnumerator>,
    /// In-place QR scratch.
    qr_ws: QrWorkspace,
    /// The channel's QR factors, recomputed per call into reused storage.
    qr: Qr,
    /// Q*-rotated receive vector.
    yhat: Vec<Complex>,
}

impl SoftWorkspace {
    /// Creates an empty workspace; buffers warm up on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The soft-output Geosphere detector.
#[derive(Clone, Copy, Debug)]
pub struct SoftGeosphereDetector {
    /// Complex noise variance σ² used to scale distances into LLRs.
    pub noise_variance: f64,
    /// Maximum LLR magnitude. Counter-hypothesis searches are
    /// radius-limited to `λ_ML + clip·σ²`, so larger clips cost more
    /// search; 8 is a standard choice.
    pub llr_clip: f64,
}

impl SoftGeosphereDetector {
    /// Creates a soft detector with the standard clip of 8.
    pub fn new(noise_variance: f64) -> Self {
        SoftGeosphereDetector { noise_variance, llr_clip: 8.0 }
    }

    /// Creates a reusable workspace for
    /// [`SoftGeosphereDetector::detect_soft_into`].
    pub fn make_workspace(&self) -> SoftWorkspace {
        SoftWorkspace::new()
    }

    /// Detects with per-bit soft output.
    ///
    /// Convenience wrapper that allocates a fresh workspace and output;
    /// per-symbol callers should hold both and use
    /// [`SoftGeosphereDetector::detect_soft_into`].
    pub fn detect_soft(&self, h: &Matrix, y: &[Complex], c: Constellation) -> SoftDetection {
        let mut ws = self.make_workspace();
        let mut out = SoftDetection::default();
        self.detect_soft_into(h, y, c, &mut ws, &mut out);
        out
    }

    /// [`SoftGeosphereDetector::detect_soft`] with every buffer — search
    /// state, QR factors, and the output's symbol/LLR vectors — reused in
    /// place: zero heap allocations per symbol after warmup, bit-identical
    /// output.
    pub fn detect_soft_into(
        &self,
        h: &Matrix,
        y: &[Complex],
        c: Constellation,
        ws: &mut SoftWorkspace,
        out: &mut SoftDetection,
    ) {
        let nc = h.cols();
        let q = c.bits_per_symbol();
        let mut stats = DetectorStats::default();

        qr_decompose_into(h, &mut ws.qr_ws, &mut ws.qr);
        ws.qr.rotate_into(y, &mut ws.yhat);
        // The QR drops the component of y orthogonal to range(H) (constant
        // across hypotheses); it would be ‖y‖² − ‖ŷ‖² = ‖(I − QQ*)y‖² ≥ 0,
        // but LLRs are metric *differences*: the constant cancels.

        let engine = SphereDecoder::new(GeosphereFactory::full());

        // 1. Hard ML search.
        let ml_dist = engine
            .search_with_qr(
                &ws.qr.r,
                &ws.yhat[..nc],
                c,
                None,
                f64::INFINITY,
                &mut ws.search,
                &mut stats,
            )
            .expect("infinite radius always yields a solution");
        out.symbols.clear();
        out.symbols.extend_from_slice(ws.search.best());

        // 2. Counter-hypothesis per bit. ML bits are read from
        // `out.symbols`, which the counter searches never touch; the bit
        // table is built once here and reused by every constrained search.
        ws.search.ensure_bit_table(c);
        let clip_delta = self.llr_clip * self.noise_variance;
        out.llrs.clear();
        for stream in 0..nc {
            for k in 0..q {
                let ml_bit = {
                    let (_, table) = ws.search.bit_table.as_ref().expect("table just ensured");
                    table.bit(out.symbols[stream], k)
                };
                let counter = engine.search_with_qr(
                    &ws.qr.r,
                    &ws.yhat[..nc],
                    c,
                    Some((stream, k, !ml_bit)),
                    ml_dist + clip_delta,
                    &mut ws.search,
                    &mut stats,
                );
                let lambda_counter = match counter {
                    Some(d) => d,
                    None => ml_dist + clip_delta, // clipped
                };
                let magnitude =
                    ((lambda_counter - ml_dist) / self.noise_variance).clamp(0.0, self.llr_clip);
                // Positive ⇒ bit 0: if the ML bit is 0, confidence in 0 is
                // +magnitude; if the ML bit is 1, it is −magnitude.
                out.llrs.push(if ml_bit { -magnitude } else { magnitude });
            }
        }

        // Cross-check the ML metric without allocating (this path must stay
        // allocation-free even in debug builds, where the frame-chain
        // alloc-regression test runs).
        #[cfg(debug_assertions)]
        {
            let mut resid = 0.0;
            for r in 0..nc {
                let mut acc = ws.yhat[r];
                for (j, p) in out.symbols.iter().enumerate() {
                    acc -= ws.qr.r[(r, j)] * p.to_complex();
                }
                resid += acc.norm_sqr();
            }
            debug_assert!((resid - ml_dist).abs() < 1e-6 * ml_dist.max(1.0));
        }

        out.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::apply_channel;
    use crate::ml::MlDetector;
    use crate::MimoDetector;
    use gs_channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
    use gs_modulation::{unmap_points, BitTable};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn problem(
        rng: &mut StdRng,
        c: Constellation,
        nc: usize,
        noise: f64,
    ) -> (Matrix, Vec<Complex>, Vec<GridPoint>) {
        let h = RayleighChannel::new(nc + 1, nc).sample_matrix(rng).scale(c.scale());
        let pts = c.points();
        let s: Vec<_> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
        let mut y = apply_channel(&h, &s);
        for v in y.iter_mut() {
            *v += sample_cn(rng, noise);
        }
        (h, y, s)
    }

    #[test]
    fn hard_decisions_are_ml() {
        let mut rng = StdRng::seed_from_u64(301);
        let c = Constellation::Qam16;
        let det = SoftGeosphereDetector::new(0.3);
        for _ in 0..25 {
            let (h, y, _) = problem(&mut rng, c, 3, 0.3);
            let soft = det.detect_soft(&h, &y, c);
            let ml = MlDetector.detect(&h, &y, c);
            assert_eq!(soft.symbols, ml.symbols);
        }
    }

    #[test]
    fn llr_signs_match_transmitted_bits_at_high_snr() {
        let mut rng = StdRng::seed_from_u64(302);
        let c = Constellation::Qam16;
        let sigma2 = noise_variance_for_snr_db(30.0);
        let det = SoftGeosphereDetector::new(sigma2);
        for _ in 0..20 {
            let (h, y, s) = problem(&mut rng, c, 2, sigma2);
            let soft = det.detect_soft(&h, &y, c);
            let tx_bits = unmap_points(c, &s);
            assert_eq!(soft.llrs.len(), tx_bits.len());
            for (bit_idx, (&l, &b)) in soft.llrs.iter().zip(&tx_bits).enumerate() {
                // Positive LLR = bit 0; at 30 dB every sign must be right.
                assert_eq!(l < 0.0, b, "bit {bit_idx}: llr {l}, tx bit {b}");
            }
        }
    }

    #[test]
    fn llrs_clipped() {
        let mut rng = StdRng::seed_from_u64(303);
        let c = Constellation::Qpsk;
        let det = SoftGeosphereDetector::new(1e-6); // near-noiseless: all clip
        let (h, y, _) = problem(&mut rng, c, 2, 0.0);
        let soft = det.detect_soft(&h, &y, c);
        for &l in &soft.llrs {
            assert!(l.abs() <= det.llr_clip + 1e-12);
        }
        assert!(soft.llrs.iter().any(|l| l.abs() > det.llr_clip * 0.99), "noiseless ⇒ clipped");
    }

    #[test]
    fn llr_magnitudes_match_bruteforce_maxlog() {
        // Exact max-log check against exhaustive per-bit minimum distances.
        let mut rng = StdRng::seed_from_u64(304);
        let c = Constellation::Qpsk;
        let sigma2 = 0.5;
        let det = SoftGeosphereDetector { noise_variance: sigma2, llr_clip: 100.0 };
        for _ in 0..15 {
            let (h, y, _) = problem(&mut rng, c, 2, sigma2);
            let soft = det.detect_soft(&h, &y, c);
            // Brute-force per-bit minima.
            let pts = c.points();
            let q = c.bits_per_symbol();
            let table = BitTable::new(c);
            for stream in 0..2 {
                for k in 0..q {
                    let mut d0 = f64::INFINITY;
                    let mut d1 = f64::INFINITY;
                    for &a in &pts {
                        for &b in &pts {
                            let s = [a, b];
                            let d = crate::detector::residual_norm_sqr(&h, &y, &s);
                            if table.bit(s[stream], k) {
                                d1 = d1.min(d);
                            } else {
                                d0 = d0.min(d);
                            }
                        }
                    }
                    let expect = (d1 - d0) / sigma2;
                    let got = soft.llrs[stream * q + k];
                    assert!(
                        (got - expect).abs() < 1e-6,
                        "stream {stream} bit {k}: got {got}, expect {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn weaker_bits_get_smaller_magnitudes() {
        // A received point near a decision boundary must yield a
        // low-confidence LLR for the boundary bit.
        let c = Constellation::Qpsk;
        let h = Matrix::identity(1);
        let det = SoftGeosphereDetector::new(1.0);
        // QPSK grid points at (±1, ±1); received at (0.05, 1.0): the I bit
        // is nearly ambiguous, the Q bit is confident.
        let y = vec![Complex::new(0.05, 1.0)];
        let soft = det.detect_soft(&h, &y, c);
        assert!(soft.llrs[0].abs() < soft.llrs[1].abs());
    }
}
