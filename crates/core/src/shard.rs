//! Domain-sharded streaming detection dispatch.
//!
//! [`DetectionPool`](crate::DetectionPool) is a *frame-synchronous* engine:
//! one coordinator lends it one frame's jobs, blocks until every worker
//! drains its chunk, and takes the buffers back. That shape is exactly
//! right for a single receive loop, and exactly wrong for a streaming
//! base-station runtime where many frames are in flight at once and the
//! workers must never idle while some other frame is being planned or
//! recovered.
//!
//! [`ShardedDetectionPool`] splits that pool along the machine's **memory
//! domains** (NUMA nodes — [`crate::affinity::memory_domains`], with a
//! flat single-domain fallback and a `GS_DOMAINS` override):
//!
//! * **one job queue per shard**, so cross-domain queue traffic never sits
//!   on a detection hot path — submission targets a shard explicitly and
//!   workers only ever pop from their own domain's queue;
//! * **workers pinned inside their shard's domain** (round-robin over the
//!   domain's allowed CPUs, [`crate::affinity`] semantics, `GS_NO_PIN`
//!   opt-out), so a worker's search workspace and its shard's channel
//!   replica stay in domain-local memory;
//! * **earliest-deadline-first ordering within each shard**: tasks carry a
//!   `u64` deadline key and each shard queue is a min-heap on
//!   `(deadline_key, arrival)`. Tasks without a deadline use
//!   [`NO_DEADLINE`] and therefore run after every deadline-bearing task,
//!   FIFO among themselves.
//!
//! The pool is deliberately **frame-agnostic**: a task is an
//! `Arc<dyn ShardedJob>` plus an opaque `token`, and [`ShardedJob::run_shard`]
//! does whatever "detect my shard's portion" means for the embedder
//! (`gs-runtime` implements it over its slot table; per-shard channel-table
//! replicas live in the embedder's per-shard portions, refreshed by the
//! shard's own workers so first-touch places them on the right domain).
//! Submitting clones the `Arc` (a refcount bump) and pushes into a
//! fixed-capacity heap — **zero heap allocations per task** once the pool
//! is constructed, which is what lets the streaming runtime keep PR 3's
//! allocation discipline in steady state.
//!
//! A panicking worker poisons the pool ([`ShardedDetectionPool::is_poisoned`])
//! instead of hanging its siblings; submissions against a poisoned pool are
//! refused with the typed [`PoolPoisoned`] error, and embedders poll the
//! flag from their completion waits to surface the failure as a typed
//! "stream dead" condition of their own. Fault-injection campaigns can
//! kill a worker on a chosen task pop via
//! [`ShardedDetectionPool::inject_worker_panic_after`].

use crate::detector::DetectorWorkspace;
use gs_prof::hist::{HistogramSnapshot, LogHistogram};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Deadline key meaning "no deadline": sorts after every real deadline, so
/// deadline-free tasks run FIFO behind deadline-bearing ones.
pub const NO_DEADLINE: u64 = u64::MAX;

/// Typed refusal from [`ShardedDetectionPool::submit`]: a worker panicked
/// (organically, or via [`ShardedDetectionPool::inject_worker_panic_after`])
/// and the pool will never run another task. Embedders translate this into
/// their own "stream is dead" error instead of unwinding the submitting
/// thread, which is what lets fault-injection campaigns record worker loss
/// as a scenario *outcome*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolPoisoned;

impl std::fmt::Display for PoolPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sharded detection pool is poisoned: a worker panicked")
    }
}

impl std::error::Error for PoolPoisoned {}

/// A unit of shard work: the embedder's view of "run my portion of shard
/// `shard` for the frame identified by `token`".
///
/// Implementations must be safe to invoke from any pool worker and for
/// several `(shard, token)` pairs concurrently — the pool guarantees only
/// that each *submitted task* is run exactly once, on a worker pinned to
/// the task's shard.
pub trait ShardedJob: Send + Sync {
    /// Runs the portion. `ws` is the worker's long-lived detector
    /// workspace, reused across every task the worker ever runs — the
    /// warm-up surface of the zero-allocation contract.
    fn run_shard(&self, shard: usize, token: usize, ws: &mut DetectorWorkspace);
}

/// One queued task: EDF key, arrival tie-break, embedder token, job.
struct Task {
    key: u64,
    arrival: u64,
    token: usize,
    job: Arc<dyn ShardedJob>,
    /// Profiling stamp ([`gs_prof::ticks`] at submit; `0` with profiling
    /// compiled out) — the popping worker attributes the submit→pop wall
    /// time to [`gs_prof::Stage::Queue`], preserving per-frame attribution
    /// across the cross-thread handoff.
    submitted_at: u64,
    /// Wall-clock submit stamp for the telemetry tier: unlike
    /// `submitted_at` this is **always** recorded — the popping worker
    /// feeds the submit→pop wait into the shard's queue-wait histogram
    /// regardless of whether the cycle profiler is compiled in.
    submitted_wall: Instant,
    /// Flight-recorder identity captured from the submitter's ambient
    /// context, so the popping worker can stamp its pop instant and set
    /// its own context before running the job ([`gs_prof::trace::FrameCtx::NONE`]
    /// when no context was set or the recorder is compiled out).
    trace_ctx: gs_prof::trace::FrameCtx,
}

impl Task {
    #[inline]
    fn order(&self) -> (u64, u64) {
        (self.key, self.arrival)
    }
}

/// A fixed-capacity binary min-heap on `(key, arrival)`. Hand-rolled so
/// pushes never allocate: `std::collections::BinaryHeap` offers no way to
/// cap growth, and the streaming runtime's steady state must not touch the
/// allocator per task.
struct EdfHeap {
    tasks: Vec<Task>,
}

impl EdfHeap {
    fn with_capacity(capacity: usize) -> Self {
        EdfHeap { tasks: Vec::with_capacity(capacity) }
    }

    fn len(&self) -> usize {
        self.tasks.len()
    }

    fn push(&mut self, task: Task) {
        assert!(
            self.tasks.len() < self.tasks.capacity(),
            "shard queue over capacity: submit more slots than the pool was sized for"
        );
        self.tasks.push(task);
        let mut i = self.tasks.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.tasks[i].order() >= self.tasks[parent].order() {
                break;
            }
            self.tasks.swap(i, parent);
            i = parent;
        }
    }

    fn pop_min(&mut self) -> Option<Task> {
        if self.tasks.is_empty() {
            return None;
        }
        let last = self.tasks.len() - 1;
        self.tasks.swap(0, last);
        let min = self.tasks.pop();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.tasks.len() && self.tasks[l].order() < self.tasks[smallest].order() {
                smallest = l;
            }
            if r < self.tasks.len() && self.tasks[r].order() < self.tasks[smallest].order() {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.tasks.swap(i, smallest);
            i = smallest;
        }
        min
    }
}

struct ShardQueue {
    heap: EdfHeap,
    /// Monotone arrival counter — the EDF tie-break that keeps
    /// equal-deadline (and deadline-free) tasks FIFO.
    arrivals: u64,
    shutdown: bool,
}

struct ShardState {
    q: Mutex<ShardQueue>,
    cv: Condvar,
    /// Mirrors `heap.len()` so stats snapshots never contend on `q`.
    depth: AtomicUsize,
    /// Submit→pop wall wait per task, in nanoseconds. Recorded by the
    /// popping worker (atomic bucket increments, allocation-free), merged
    /// at scrape time by [`ShardedDetectionPool::queue_wait_snapshots`].
    queue_wait: LogHistogram,
    /// Lifetime count of tasks popped from this shard's queue — the clock
    /// the fault-injection hook is armed against.
    pops: AtomicU64,
    /// Fault-injection arming: the 1-based pop ordinal at which the
    /// popping worker panics *instead of* running its task (`0` =
    /// disarmed). See [`ShardedDetectionPool::inject_worker_panic_after`].
    fault_at_pop: AtomicU64,
}

/// Marks the pool poisoned even when the worker unwinds through a
/// panicking job.
struct PoisonOnPanic<'a>(&'a AtomicBool);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
            // Black-box the worker death (injected or organic) against
            // the frame it was holding before the pool winds down.
            gs_prof::trace::emit(gs_prof::trace::TracePoint::Fault);
            gs_prof::trace::trigger(
                gs_prof::trace::Trigger::Fault,
                gs_prof::trace::context().frame,
            );
        }
    }
}

/// The domain-sharded streaming worker pool. See the module docs for the
/// design; construct with [`ShardedDetectionPool::new`], target a shard
/// with [`ShardedDetectionPool::submit`].
pub struct ShardedDetectionPool {
    shards: Vec<Arc<ShardState>>,
    poisoned: Arc<AtomicBool>,
    /// Behind a mutex so [`ShardedDetectionPool::shutdown_and_join`] can
    /// drain them by `&self`: embedders that share the pool behind an
    /// `Arc` must be able to join the workers from a thread of their
    /// choosing *before* the last `Arc` drops (a worker thread must never
    /// end up joining itself out of `Drop`).
    handles: Mutex<Vec<JoinHandle<()>>>,
    n_workers: usize,
    /// CPU list per shard (empty when unpinned) — surfaced for stats.
    shard_cpus: Vec<Vec<usize>>,
}

impl ShardedDetectionPool {
    /// Spawns `workers` threads (≥ 1) spread round-robin over `shards`
    /// queues, each shard capped at `capacity` queued tasks.
    ///
    /// `shards == 0` resolves to one shard per discovered memory domain
    /// ([`crate::affinity::memory_domains`], honouring `GS_DOMAINS`); any
    /// requested count is clamped to `1..=workers` so every shard owns at
    /// least one worker. Workers are pinned inside their shard's domain
    /// unless `GS_NO_PIN` opts out.
    pub fn new(shards: usize, workers: usize, capacity: usize) -> Self {
        Self::new_with_pinning(
            shards,
            workers,
            capacity,
            !crate::affinity::pinning_disabled_by_env(),
        )
    }

    /// [`ShardedDetectionPool::new`] with explicit pinning control (the
    /// env-independent form for tests and embedders that place threads
    /// themselves). Shard `s` draws its CPUs from domain `s mod n_domains`;
    /// when several shards share one domain (more shards than domains),
    /// the domain's CPUs are **partitioned** among those shards, so
    /// sibling shards never pin onto the same cores while others idle.
    /// Worker `k` of a shard is pinned to the shard's `k mod |cpus|`-th
    /// CPU, best-effort.
    pub fn new_with_pinning(shards: usize, workers: usize, capacity: usize, pin: bool) -> Self {
        let n_workers = workers.max(1);
        let domains = crate::affinity::memory_domains();
        let n_shards = if shards == 0 { domains.len() } else { shards }.clamp(1, n_workers);
        let n_domains = domains.len();
        let shard_cpus: Vec<Vec<usize>> = (0..n_shards)
            .map(|s| {
                if !pin {
                    return Vec::new();
                }
                let cpus = &domains[s % n_domains];
                // Shards mapped to this domain, and this shard's rank
                // among them.
                let siblings = (n_shards - s % n_domains).div_ceil(n_domains);
                let rank = s / n_domains;
                shard_cpu_slice(cpus, siblings, rank)
            })
            .collect();

        let shard_states: Vec<Arc<ShardState>> = (0..n_shards)
            .map(|_| {
                Arc::new(ShardState {
                    q: Mutex::new(ShardQueue {
                        heap: EdfHeap::with_capacity(capacity.max(1)),
                        arrivals: 0,
                        shutdown: false,
                    }),
                    cv: Condvar::new(),
                    depth: AtomicUsize::new(0),
                    queue_wait: LogHistogram::new(),
                    pops: AtomicU64::new(0),
                    fault_at_pop: AtomicU64::new(0),
                })
            })
            .collect();

        let poisoned = Arc::new(AtomicBool::new(false));
        let handles = (0..n_workers)
            .map(|w| {
                let shard = w % n_shards;
                let state = Arc::clone(&shard_states[shard]);
                let poisoned = Arc::clone(&poisoned);
                let cpus = &shard_cpus[shard];
                let cpu =
                    if cpus.is_empty() { None } else { Some(cpus[(w / n_shards) % cpus.len()]) };
                std::thread::spawn(move || {
                    if let Some(cpu) = cpu {
                        // Best-effort: a rejected mask leaves the worker
                        // unpinned, never broken.
                        crate::affinity::pin_current_thread(cpu);
                    }
                    shard_worker_loop(&state, &poisoned, shard)
                })
            })
            .collect();

        ShardedDetectionPool {
            shards: shard_states,
            poisoned,
            handles: Mutex::new(handles),
            n_workers,
            shard_cpus,
        }
    }

    /// Stops every worker and joins them from the calling thread.
    /// Idempotent; also invoked by `Drop`. Queued tasks that no worker has
    /// picked up yet are discarded (their `Arc`s dropped); the task a
    /// worker is currently running finishes first.
    ///
    /// Must not be called from a pool worker (a worker would join itself);
    /// pool workers only ever see the pool through [`ShardedJob`], which
    /// offers no path here.
    pub fn shutdown_and_join(&self) {
        for state in &self.shards {
            lock_ignoring_poison(&state.q).shutdown = true;
            state.cv.notify_all();
        }
        let handles = std::mem::take(&mut *lock_ignoring_poison(&self.handles));
        for h in handles {
            let _ = h.join();
        }
    }

    /// The resolved shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The pool's total worker count.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// The CPUs shard `shard`'s workers were pinned over (empty when
    /// pinning is off or unavailable).
    pub fn shard_cpus(&self, shard: usize) -> &[usize] {
        &self.shard_cpus[shard]
    }

    /// Whether a worker has panicked. A poisoned pool rejects further
    /// submissions; embedders waiting on task completions must poll this
    /// (the dead worker's tasks will never complete).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Arms the fault-injection hook on `shard`: the worker popping that
    /// shard's `pops`-th task *from now* (1-based) panics with an
    /// "injected worker fault" **instead of** running the task, flowing
    /// through the ordinary poisoning machinery — exactly what an
    /// organic worker crash looks like from the embedder's side.
    ///
    /// With one worker per shard and lockstep submission the panicking
    /// pop ordinal is fully deterministic, which is what the seeded
    /// fault-injection campaigns rely on. `pops == 0` disarms. This hook
    /// exists **only** for fault-injection scenarios; production
    /// embedders must never call it.
    pub fn inject_worker_panic_after(&self, shard: usize, pops: u64) {
        let state = &self.shards[shard];
        let target = if pops == 0 { 0 } else { state.pops.load(Ordering::SeqCst) + pops };
        state.fault_at_pop.store(target, Ordering::SeqCst);
    }

    /// Enqueues `(token, job)` on `shard` with EDF key `key`
    /// ([`NO_DEADLINE`] for deadline-free FIFO). Clones the `Arc` — never
    /// allocates.
    ///
    /// Returns [`PoolPoisoned`] when a worker has panicked — the pool
    /// will never run the task, so the caller must treat the stream as
    /// dead rather than retry.
    ///
    /// # Panics
    /// Panics when the shard queue is over its construction-time capacity
    /// (an embedder bug, not a load condition: capacity must bound the
    /// embedder's in-flight frames).
    pub fn submit(
        &self,
        shard: usize,
        key: u64,
        token: usize,
        job: &Arc<dyn ShardedJob>,
    ) -> Result<(), PoolPoisoned> {
        if self.is_poisoned() {
            return Err(PoolPoisoned);
        }
        let state = &self.shards[shard];
        // Capture the submitter's frame identity and stamp the enqueue on
        // the flight recorder (no-ops without an ambient context).
        let trace_ctx =
            gs_prof::trace::FrameCtx { shard: shard as u16, ..gs_prof::trace::context() };
        if trace_ctx.frame != gs_prof::trace::NO_FRAME {
            gs_prof::trace::emit_for(
                gs_prof::trace::TracePoint::Enqueue,
                gs_prof::trace::EventKind::Instant,
                trace_ctx,
            );
        }
        let mut q = lock_ignoring_poison(&state.q);
        let arrival = q.arrivals;
        q.arrivals += 1;
        let submitted_at = gs_prof::ticks();
        let submitted_wall = Instant::now();
        q.heap.push(Task {
            key,
            arrival,
            token,
            job: Arc::clone(job),
            submitted_at,
            submitted_wall,
            trace_ctx,
        });
        state.depth.store(q.heap.len(), Ordering::Relaxed);
        drop(q);
        state.cv.notify_one();
        Ok(())
    }

    /// Snapshot of every shard's queued-task count, written into `out`
    /// (cleared first; allocation-free once `out` has capacity).
    pub fn queue_depths(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.shards.iter().map(|s| s.depth.load(Ordering::Relaxed)));
    }

    /// Per-shard snapshots of the submit→pop queue-wait histograms
    /// (nanoseconds), in shard order. Allocates — a scrape-time call; the
    /// recording side is the workers' allocation-free bucket increments.
    pub fn queue_wait_snapshots(&self) -> Vec<HistogramSnapshot> {
        self.shards.iter().map(|s| s.queue_wait.snapshot()).collect()
    }
}

impl Drop for ShardedDetectionPool {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The CPUs of one domain assigned to the `rank`-th of `siblings` shards
/// sharing it: a contiguous, disjoint, non-empty slice when the domain has
/// at least one CPU per sibling; a round-robin single CPU otherwise
/// (overlap is then unavoidable).
fn shard_cpu_slice(cpus: &[usize], siblings: usize, rank: usize) -> Vec<usize> {
    if cpus.len() >= siblings {
        let lo = rank * cpus.len() / siblings;
        let hi = (rank + 1) * cpus.len() / siblings;
        cpus[lo..hi].to_vec()
    } else {
        vec![cpus[rank % cpus.len()]]
    }
}

fn shard_worker_loop(state: &ShardState, poisoned: &AtomicBool, shard: usize) {
    let mut ws = DetectorWorkspace::new();
    loop {
        let task = {
            let mut q = lock_ignoring_poison(&state.q);
            loop {
                // Shutdown wins over queued work: the contract is that
                // un-started tasks are *discarded* on shutdown (their
                // frames are being abandoned), not drained — only the
                // task a worker already holds finishes.
                if q.shutdown {
                    return;
                }
                if let Some(task) = q.heap.pop_min() {
                    state.depth.store(q.heap.len(), Ordering::Relaxed);
                    break task;
                }
                q = state.cv.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        gs_prof::record(
            gs_prof::Stage::Queue,
            gs_prof::ticks().saturating_sub(task.submitted_at),
            1,
            0,
        );
        state.queue_wait.record_duration(task.submitted_wall.elapsed());
        // Stamp the EDF pop and adopt the frame's identity for the span
        // of the job (the runtime's detect span reads it ambiently).
        if task.trace_ctx.frame != gs_prof::trace::NO_FRAME {
            gs_prof::trace::emit_for(
                gs_prof::trace::TracePoint::Pop,
                gs_prof::trace::EventKind::Instant,
                task.trace_ctx,
            );
        }
        gs_prof::trace::set_context(task.trace_ctx);
        // A panicking job must mark the pool dead rather than silently
        // dropping the task (its frame would otherwise wait forever).
        let guard = PoisonOnPanic(poisoned);
        let ordinal = state.pops.fetch_add(1, Ordering::SeqCst) + 1;
        let armed = state.fault_at_pop.load(Ordering::SeqCst);
        if armed != 0 && ordinal >= armed {
            // Injected fault: die *before* the task runs, so its frame is
            // lost exactly as it would be under an organic worker crash.
            panic!("injected worker fault (shard {shard}, pop {ordinal})");
        }
        task.job.run_shard(shard, task.token, &mut ws);
        drop(guard);
        gs_prof::trace::clear_context();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    /// Records the order tokens were executed in.
    struct Recorder {
        order: Mutex<Vec<usize>>,
        ran: AtomicU64,
        /// Blocks the first task long enough for later submissions to
        /// queue up behind it, making the EDF pop order observable.
        gate: Mutex<bool>,
        gate_cv: Condvar,
    }

    impl Recorder {
        fn new() -> Arc<Self> {
            Arc::new(Recorder {
                order: Mutex::new(Vec::new()),
                ran: AtomicU64::new(0),
                gate: Mutex::new(false),
                gate_cv: Condvar::new(),
            })
        }

        fn open_gate(&self) {
            *self.gate.lock().unwrap() = true;
            self.gate_cv.notify_all();
        }

        fn wait_ran(&self, n: u64) {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while self.ran.load(Ordering::SeqCst) < n {
                assert!(std::time::Instant::now() < deadline, "tasks never completed");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Spin until every shard queue is drained (tasks may still be
    /// *running*; only queue occupancy is awaited).
    fn wait_queues_empty(pool: &ShardedDetectionPool) {
        let mut depths = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            pool.queue_depths(&mut depths);
            if depths.iter().all(|&d| d == 0) {
                return;
            }
            assert!(std::time::Instant::now() < deadline, "queues never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    impl ShardedJob for Recorder {
        fn run_shard(&self, _shard: usize, token: usize, _ws: &mut DetectorWorkspace) {
            if token == usize::MAX {
                // The gate task: park until the test opens the gate.
                let mut open = self.gate.lock().unwrap();
                while !*open {
                    open = self.gate_cv.wait(open).unwrap();
                }
            } else {
                self.order.lock().unwrap().push(token);
            }
            self.ran.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn edf_orders_within_a_shard() {
        let pool = ShardedDetectionPool::new_with_pinning(1, 1, 16, false);
        assert_eq!(pool.shards(), 1);
        let rec = Recorder::new();
        let job: Arc<dyn ShardedJob> = rec.clone();

        // Occupy the single worker so the rest queue up (wait until the
        // gate task has actually been popped, so the depths below are
        // deterministic).
        pool.submit(0, 0, usize::MAX, &job).unwrap();
        wait_queues_empty(&pool);
        // Mixed submission order: late deadline, none, early deadline,
        // another none, mid deadline.
        pool.submit(0, 900, 1, &job).unwrap();
        pool.submit(0, NO_DEADLINE, 2, &job).unwrap();
        pool.submit(0, 100, 3, &job).unwrap();
        pool.submit(0, NO_DEADLINE, 4, &job).unwrap();
        pool.submit(0, 500, 5, &job).unwrap();
        let mut depths = Vec::new();
        pool.queue_depths(&mut depths);
        assert_eq!(depths, vec![5]);

        rec.open_gate();
        rec.wait_ran(6);
        // EDF: deadlines ascending first, then deadline-free FIFO.
        assert_eq!(*rec.order.lock().unwrap(), vec![3, 5, 1, 2, 4]);
        let mut depths = Vec::new();
        pool.queue_depths(&mut depths);
        assert_eq!(depths, vec![0]);
    }

    #[test]
    fn queue_wait_histograms_record_every_pop() {
        let pool = ShardedDetectionPool::new_with_pinning(2, 2, 8, false);
        let rec = Recorder::new();
        rec.open_gate();
        let job: Arc<dyn ShardedJob> = rec.clone();
        for t in 0..10 {
            pool.submit(t % 2, NO_DEADLINE, t, &job).unwrap();
        }
        rec.wait_ran(10);
        let waits = pool.queue_wait_snapshots();
        assert_eq!(waits.len(), 2, "one histogram per shard");
        assert_eq!(waits.iter().map(|h| h.count()).sum::<u64>(), 10, "every pop recorded");
        let mut merged = gs_prof::hist::HistogramSnapshot::empty();
        for w in &waits {
            merged.merge(w);
        }
        assert_eq!(merged.count(), 10);
        assert!(merged.quantile(1.0) <= merged.max());
    }

    #[test]
    fn all_shards_execute_and_clamp_to_workers() {
        // 5 shards requested but only 2 workers → clamped to 2 shards.
        let pool = ShardedDetectionPool::new_with_pinning(5, 2, 8, false);
        assert_eq!(pool.shards(), 2);
        assert_eq!(pool.workers(), 2);
        let rec = Recorder::new();
        rec.open_gate();
        let job: Arc<dyn ShardedJob> = rec.clone();
        for t in 0..8 {
            pool.submit(t % 2, NO_DEADLINE, t, &job).unwrap();
        }
        rec.wait_ran(8);
        let mut ran: Vec<usize> = rec.order.lock().unwrap().clone();
        ran.sort_unstable();
        assert_eq!(ran, (0..8).collect::<Vec<_>>(), "every task ran exactly once");
    }

    #[test]
    fn sibling_shards_partition_a_shared_domain() {
        // 8-core single domain shared by 2 shards: disjoint halves, every
        // CPU covered — sibling shards must never stack on the same cores
        // while others idle.
        let cpus: Vec<usize> = (0..8).collect();
        let a = shard_cpu_slice(&cpus, 2, 0);
        let b = shard_cpu_slice(&cpus, 2, 1);
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(b, vec![4, 5, 6, 7]);
        // Uneven split (3 siblings over 8 CPUs): disjoint, non-empty,
        // covering.
        let slices: Vec<Vec<usize>> = (0..3).map(|r| shard_cpu_slice(&cpus, 3, r)).collect();
        let flat: Vec<usize> = slices.iter().flatten().copied().collect();
        assert_eq!(flat, cpus, "partition covers every CPU exactly once, in order");
        assert!(slices.iter().all(|s| !s.is_empty()));
        // More siblings than CPUs: single round-robin CPU each.
        let tiny = vec![5, 9];
        assert_eq!(shard_cpu_slice(&tiny, 3, 0), vec![5]);
        assert_eq!(shard_cpu_slice(&tiny, 3, 1), vec![9]);
        assert_eq!(shard_cpu_slice(&tiny, 3, 2), vec![5]);
    }

    #[test]
    fn auto_shards_follow_memory_domains() {
        let pool = ShardedDetectionPool::new_with_pinning(0, 4, 4, false);
        let domains = crate::affinity::memory_domains();
        assert_eq!(pool.shards(), domains.len().clamp(1, 4));
    }

    #[test]
    fn worker_panic_poisons_the_pool() {
        struct Panicky;
        impl ShardedJob for Panicky {
            fn run_shard(&self, _: usize, _: usize, _: &mut DetectorWorkspace) {
                panic!("intentional test panic");
            }
        }
        let pool = ShardedDetectionPool::new_with_pinning(1, 1, 4, false);
        let job: Arc<dyn ShardedJob> = Arc::new(Panicky);
        pool.submit(0, NO_DEADLINE, 0, &job).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !pool.is_poisoned() {
            assert!(std::time::Instant::now() < deadline, "poison flag never set");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            pool.submit(0, NO_DEADLINE, 1, &job),
            Err(PoolPoisoned),
            "a poisoned pool must refuse further tasks with a typed error"
        );
        drop(pool); // must not hang joining the dead worker's siblings
    }

    #[test]
    fn injected_worker_fault_kills_the_armed_pop() {
        let pool = ShardedDetectionPool::new_with_pinning(1, 1, 8, false);
        let rec = Recorder::new();
        rec.open_gate();
        let job: Arc<dyn ShardedJob> = rec.clone();
        // Armed at the 3rd pop from now: tasks 0 and 1 run, task 2's pop
        // panics before the job executes.
        pool.inject_worker_panic_after(0, 3);
        pool.submit(0, NO_DEADLINE, 0, &job).unwrap();
        pool.submit(0, NO_DEADLINE, 1, &job).unwrap();
        rec.wait_ran(2);
        pool.submit(0, NO_DEADLINE, 2, &job).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !pool.is_poisoned() {
            assert!(std::time::Instant::now() < deadline, "injected fault never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        // The faulted task never ran, and the pool now refuses work.
        assert_eq!(rec.ran.load(Ordering::SeqCst), 2);
        assert_eq!(pool.submit(0, NO_DEADLINE, 3, &job), Err(PoolPoisoned));
    }

    #[test]
    fn heap_capacity_is_enforced() {
        let pool = ShardedDetectionPool::new_with_pinning(1, 1, 2, false);
        let rec = Recorder::new();
        let job: Arc<dyn ShardedJob> = rec.clone();
        pool.submit(0, 0, usize::MAX, &job).unwrap(); // parks the worker
        wait_queues_empty(&pool); // the gate task is running, queue empty
        pool.submit(0, 1, 1, &job).unwrap();
        pool.submit(0, 2, 2, &job).unwrap();
        let overflow = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.submit(0, 3, 3, &job);
        }));
        assert!(overflow.is_err(), "submitting past capacity must fail fast");
        rec.open_gate();
        rec.wait_ran(3);
    }
}
