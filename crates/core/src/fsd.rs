//! Fixed-complexity sphere decoder (FSD) — paper §6.1.
//!
//! Barbero & Thompson's decoder: fully expand the first `p` tree levels,
//! then plunge depth-first "using a branching factor of only one" (pure
//! decision feedback). Complexity is constant by construction; ML is only
//! approached asymptotically at high SNR (Jaldén et al.), which is the
//! paper's argument for preferring depth-first search.

use crate::detector::{Detection, MimoDetector};
use crate::sphere::enumerator::{EnumeratorFactory, NodeEnumerator};
use crate::sphere::geosphere_enum::GeosphereFactory;
use crate::stats::DetectorStats;
use gs_linalg::{qr_decompose, Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};

/// The fixed-complexity sphere decoder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsdDetector {
    /// Number of top tree levels that are fully expanded (`p` in the
    /// paper's description). `p = 1` is the common configuration.
    pub full_levels: usize,
}

impl FsdDetector {
    /// Creates an FSD with the standard single fully-expanded level.
    pub fn new() -> Self {
        FsdDetector { full_levels: 1 }
    }

    /// Creates an FSD with `p` fully-expanded levels.
    pub fn with_full_levels(p: usize) -> Self {
        assert!(p >= 1, "FSD needs at least one full level");
        FsdDetector { full_levels: p }
    }
}

impl Default for FsdDetector {
    fn default() -> Self {
        FsdDetector::new()
    }
}

impl MimoDetector for FsdDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        let mut stats = DetectorStats::default();
        let nc = h.cols();
        let qr = qr_decompose(h);
        let yhat_full = qr.rotate(y);
        let yhat = &yhat_full[..nc];
        let r = &qr.r;

        let factory = GeosphereFactory::zigzag_only();
        // One enumerator reset in place per fully-expanded node (the reuse
        // protocol's single-slot form).
        let mut enum_slot = None;
        // Partial paths: (distance, symbols chosen root-first).
        let mut paths: Vec<(f64, Vec<GridPoint>)> = vec![(0.0, Vec::new())];
        for i in (0..nc).rev() {
            let depth = nc - 1 - i; // 0 at root
            let full = depth < self.full_levels;
            let mut next: Vec<(f64, Vec<GridPoint>)> = Vec::new();
            for (dist, syms) in &paths {
                let mut acc = yhat[i];
                for (offset, j) in ((i + 1)..nc).enumerate() {
                    acc -= r[(i, j)] * syms[syms.len() - 1 - offset].to_complex();
                }
                stats.complex_mults += (nc - 1 - i) as u64;
                let rll = r[(i, i)].re;
                let center = if rll > f64::EPSILON { acc / rll } else { Complex::ZERO };
                let gain = rll * rll;
                if full {
                    // Expand every child of this node.
                    factory.make_in(&mut enum_slot, c, center, gain, &mut stats);
                    let en = enum_slot.as_mut().expect("slot just filled");
                    while let Some(child) = en.next_child(f64::INFINITY, &mut stats) {
                        stats.visited_nodes += 1;
                        let mut s2 = syms.clone();
                        s2.push(child.point);
                        next.push((dist + child.cost, s2));
                    }
                } else {
                    // Branching factor one: slice.
                    let p = c.slice(center);
                    stats.slices += 1;
                    let cost = gain * p.dist_sqr(center);
                    stats.ped_calcs += 1;
                    stats.visited_nodes += 1;
                    let mut s2 = syms.clone();
                    s2.push(p);
                    next.push((dist + cost, s2));
                }
            }
            paths = next;
        }

        let (_, mut symbols) = paths
            .into_iter()
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("FSD always produces candidates");
        symbols.reverse();
        Detection { symbols, stats }
    }

    fn name(&self) -> &'static str {
        "FSD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{apply_channel, residual_norm_sqr};
    use crate::ml::MlDetector;
    use gs_channel::{sample_cn, RayleighChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn noiseless_roundtrip() {
        let mut rng = StdRng::seed_from_u64(161);
        let c = Constellation::Qam16;
        let det = FsdDetector::new();
        for _ in 0..30 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let pts = c.points();
            let s: Vec<GridPoint> = (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let y = apply_channel(&h, &s);
            assert_eq!(det.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn complexity_is_fixed() {
        let mut rng = StdRng::seed_from_u64(162);
        let c = Constellation::Qam16;
        let det = FsdDetector::new();
        let mut counts = std::collections::HashSet::new();
        for _ in 0..10 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let y: Vec<Complex> = (0..4).map(|_| sample_cn(&mut rng, 1.0)).collect();
            counts.insert(det.detect(&h, &y, c).stats.visited_nodes);
        }
        assert_eq!(counts.len(), 1);
        // p=1: |O| root children + |O| single-branch paths × (nc−1) levels.
        assert!(counts.contains(&(16 + 16 * 3)));
    }

    #[test]
    fn all_levels_full_is_exhaustive_ml() {
        let mut rng = StdRng::seed_from_u64(163);
        let c = Constellation::Qpsk;
        let det = FsdDetector::with_full_levels(2);
        for _ in 0..30 {
            let h = RayleighChannel::new(2, 2).sample_matrix(&mut rng).scale(c.scale());
            let y: Vec<Complex> = (0..2).map(|_| sample_cn(&mut rng, 2.0)).collect();
            let fsd = residual_norm_sqr(&h, &y, &det.detect(&h, &y, c).symbols);
            let ml = residual_norm_sqr(&h, &y, &MlDetector.detect(&h, &y, c).symbols);
            assert!((fsd - ml).abs() < 1e-9);
        }
    }

    #[test]
    fn suboptimal_at_low_snr_but_valid() {
        let mut rng = StdRng::seed_from_u64(164);
        let c = Constellation::Qam64;
        let det = FsdDetector::new();
        let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
        let y: Vec<Complex> = (0..4).map(|_| sample_cn(&mut rng, 2.0)).collect();
        let d = det.detect(&h, &y, c);
        assert_eq!(d.symbols.len(), 4);
        for p in &d.symbols {
            assert!(c.is_valid_coord(p.i) && c.is_valid_coord(p.q));
        }
    }
}
