//! The detector **tier ladder**: an ordered family of detectors a control
//! plane can step through as load changes.
//!
//! Geosphere's sphere decoder is the quality ceiling, but its complexity
//! is channel-dependent; under a deadline storm a base station is better
//! served by a cheaper detector that *meets* deadlines than an exact one
//! that misses them. [`DetectorTier`] names the rungs of that trade —
//! sphere (exact ML) → FSD (fixed complexity, near-ML) → MMSE (linear
//! floor) — and [`DetectorLadder`] binds one [`MimoDetector`] to each rung
//! behind a single dispatch point.
//!
//! The ladder dispatches through the same opaque
//! [`DetectorWorkspace`] the batched entry points already use, but keeps
//! **one sub-workspace per rung** ([`DetectorWorkspace::get_or_insert`]
//! replaces its contents when the stored type changes, so a bare workspace
//! bounced between a sphere decoder and an MMSE detector would re-allocate
//! on every switch). With the per-rung split, each rung's scratch warms
//! once and tier switches stay allocation-free thereafter for detectors
//! with allocation-free batch paths (the sphere and linear families; FSD
//! and K-best allocate internally per detection regardless of workspace).

use crate::detector::{Detection, DetectorWorkspace, MimoDetector};
use crate::fsd::FsdDetector;
use crate::linear::MmseDetector;
use crate::DetectionBatch;
use std::sync::Arc;

/// One rung of the detection-quality ladder, ordered from the most exact
/// (and most expensive) detector down to the cheapest floor.
///
/// The discriminants are the ladder indices: `Sphere = 0` is the top rung,
/// higher values are progressively degraded tiers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum DetectorTier {
    /// Exact maximum-likelihood sphere decoding — the paper's detector,
    /// the quality target whenever the pipeline keeps up.
    #[default]
    Sphere = 0,
    /// Fixed-complexity near-ML search (FSD / K-best family): bounded,
    /// channel-independent work per detection.
    Fsd = 1,
    /// Linear MMSE filtering — the cheapest rung, the floor the ladder
    /// degrades to under sustained overload.
    Mmse = 2,
}

impl DetectorTier {
    /// Number of rungs.
    pub const COUNT: usize = 3;

    /// Every tier, top rung first.
    pub const ALL: [DetectorTier; DetectorTier::COUNT] =
        [DetectorTier::Sphere, DetectorTier::Fsd, DetectorTier::Mmse];

    /// The ladder index of this tier (`0` = top).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The tier at ladder index `i`, if any.
    pub fn from_index(i: usize) -> Option<DetectorTier> {
        DetectorTier::ALL.get(i).copied()
    }

    /// One rung cheaper, or `None` when already at the floor.
    pub fn degraded(self) -> Option<DetectorTier> {
        DetectorTier::from_index(self.index() + 1)
    }

    /// One rung more exact, or `None` when already at the top.
    pub fn recovered(self) -> Option<DetectorTier> {
        self.index().checked_sub(1).and_then(DetectorTier::from_index)
    }

    /// A short display name.
    pub fn name(self) -> &'static str {
        match self {
            DetectorTier::Sphere => "sphere",
            DetectorTier::Fsd => "fsd",
            DetectorTier::Mmse => "mmse",
        }
    }
}

/// Per-rung scratch stored inside a [`DetectorWorkspace`], so each tier's
/// detector keeps its own warmed state across tier switches.
#[derive(Default)]
struct TierWorkspace {
    rungs: [DetectorWorkspace; DetectorTier::COUNT],
}

/// One detector per [`DetectorTier`] rung, behind a single batched
/// dispatch point ([`DetectorLadder::detect_batch_indexed_with`]).
///
/// Cloning a ladder clones three `Arc` handles — ladders are cheap to
/// share across a worker pool.
#[derive(Clone)]
pub struct DetectorLadder {
    rungs: [Arc<dyn MimoDetector>; DetectorTier::COUNT],
}

impl DetectorLadder {
    /// A ladder from explicit rung detectors, top first.
    pub fn new(
        sphere: Arc<dyn MimoDetector>,
        fsd: Arc<dyn MimoDetector>,
        mmse: Arc<dyn MimoDetector>,
    ) -> Self {
        DetectorLadder { rungs: [sphere, fsd, mmse] }
    }

    /// The degenerate ladder running `detector` at every rung — how a
    /// fixed-detector pipeline expresses itself in ladder form (tier
    /// choices then change labeling, never bits).
    pub fn uniform(detector: Arc<dyn MimoDetector>) -> Self {
        DetectorLadder { rungs: [Arc::clone(&detector), Arc::clone(&detector), detector] }
    }

    /// The default production ladder: Geosphere sphere decoding on top,
    /// [`FsdDetector`] in the middle, [`MmseDetector`] (built from the
    /// physical `noise_variance`, unit-signal-power convention) as the
    /// floor.
    pub fn geosphere_default(noise_variance: f64) -> Self {
        DetectorLadder::new(
            Arc::new(crate::geosphere_decoder()),
            Arc::new(FsdDetector::new()),
            Arc::new(MmseDetector::new(noise_variance)),
        )
    }

    /// The detector bound to `tier`.
    pub fn detector(&self, tier: DetectorTier) -> &Arc<dyn MimoDetector> {
        &self.rungs[tier.index()]
    }

    /// Detects the jobs selected by `indices` with `tier`'s detector,
    /// through that rung's own sub-workspace inside `ws` — bit-identical
    /// to calling the rung detector's
    /// [`MimoDetector::detect_batch_indexed_with`] directly, and
    /// allocation-free once the rung has warmed (for rung detectors whose
    /// batch path is).
    pub fn detect_batch_indexed_with(
        &self,
        tier: DetectorTier,
        batch: &DetectionBatch,
        indices: &[usize],
        ws: &mut DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        let rung_ws = &mut ws.get_or_insert(TierWorkspace::default).rungs[tier.index()];
        self.rungs[tier.index()].detect_batch_indexed_with(batch, indices, rung_ws, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetectionJob;
    use gs_channel::{ChannelModel, RayleighChannel};
    use gs_linalg::Matrix;
    use gs_modulation::Constellation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tier_order_and_stepping() {
        assert_eq!(DetectorTier::default(), DetectorTier::Sphere);
        assert_eq!(DetectorTier::Sphere.degraded(), Some(DetectorTier::Fsd));
        assert_eq!(DetectorTier::Fsd.degraded(), Some(DetectorTier::Mmse));
        assert_eq!(DetectorTier::Mmse.degraded(), None, "the floor cannot degrade");
        assert_eq!(DetectorTier::Mmse.recovered(), Some(DetectorTier::Fsd));
        assert_eq!(DetectorTier::Sphere.recovered(), None, "the top cannot recover");
        for (i, t) in DetectorTier::ALL.into_iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(DetectorTier::from_index(i), Some(t));
        }
        assert_eq!(DetectorTier::from_index(DetectorTier::COUNT), None);
    }

    /// Ladder dispatch must be bit-identical to the rung detector called
    /// directly, for every rung, including after tier switches through one
    /// shared workspace.
    #[test]
    fn ladder_dispatch_matches_direct_detectors() {
        let c = Constellation::Qam16;
        let mut rng = StdRng::seed_from_u64(2014);
        let ch = RayleighChannel::new(4, 4).realize(&mut rng);
        let h = ch.subcarrier(0).scale(c.scale());
        let channels: Vec<Matrix> = vec![h.clone()];
        let pts = c.points();
        let rand_symbols = |rng: &mut StdRng| -> Vec<_> {
            (0..4).map(|_| pts[rng.gen_range(0..pts.len())]).collect()
        };
        let jobs: Vec<DetectionJob> = (0..6)
            .map(|k| {
                let s = rand_symbols(&mut rng);
                let mut y = crate::apply_channel(&h, &s);
                // Small deterministic perturbation so slicing is non-trivial.
                for (i, z) in y.iter_mut().enumerate() {
                    *z += gs_linalg::Complex::new(0.01 * (k + i) as f64, -0.01 * i as f64);
                }
                DetectionJob { channel: 0, y }
            })
            .collect();
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
        let indices: Vec<usize> = (0..jobs.len()).collect();

        let ladder = DetectorLadder::geosphere_default(0.05);
        let mut ws = DetectorWorkspace::new();
        let mut out = Vec::new();
        // Two passes: the second reuses sub-workspaces warmed by the first,
        // interleaving tier switches.
        for _ in 0..2 {
            for tier in DetectorTier::ALL {
                ladder.detect_batch_indexed_with(tier, &batch, &indices, &mut ws, &mut out);
                let direct = ladder.detector(tier).detect_batch_indexed(&batch, &indices);
                assert_eq!(out.len(), direct.len());
                for (a, b) in out.iter().zip(direct.iter()) {
                    assert_eq!(a.symbols, b.symbols, "{tier:?} symbols diverge");
                    assert_eq!(a.stats, b.stats, "{tier:?} op counts diverge");
                }
            }
        }
    }

    #[test]
    fn uniform_ladder_runs_one_detector_everywhere() {
        let det: Arc<dyn MimoDetector> = Arc::new(crate::linear::ZfDetector);
        let ladder = DetectorLadder::uniform(Arc::clone(&det));
        for tier in DetectorTier::ALL {
            assert!(Arc::ptr_eq(ladder.detector(tier), &det));
        }
    }
}
