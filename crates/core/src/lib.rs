//! # geosphere-core
//!
//! The Geosphere maximum-likelihood MIMO detector (SIGCOMM 2014) and every
//! detector it is evaluated against.
//!
//! The paper's two contributions live in [`sphere::geosphere_enum`]
//! (two-dimensional zigzag enumeration, §3.1.1) and [`geoprune`]
//! (geometrical pruning, §3.2). The comparison baselines are
//! [`sphere::hess_enum`] (ETH-SD), [`linear`] (zero-forcing, MMSE),
//! [`sic`] (MMSE-SIC), [`kbest`] and [`fsd`] (breadth-first relatives),
//! and [`ml`] (the exhaustive oracle). All of them implement
//! [`MimoDetector`] and report [`DetectorStats`] operation counts — the
//! paper's complexity currency.
//!
//! ```
//! use geosphere_core::{geosphere_decoder, MimoDetector};
//! use gs_linalg::{Complex, Matrix};
//! use gs_modulation::{Constellation, GridPoint};
//!
//! let c = Constellation::Qam16;
//! let h = Matrix::identity(2).scale(c.scale());
//! let s = [GridPoint { i: 1, q: -3 }, GridPoint { i: 3, q: 1 }];
//! let y: Vec<Complex> = s.iter().map(|p| p.to_complex() * c.scale()).collect();
//! let det = geosphere_decoder().detect(&h, &y, c);
//! assert_eq!(det.symbols, s);
//! ```

// Unsafe code is denied everywhere except the thread-affinity shim, which
// needs one libc syscall (`sched_setaffinity`); see `affinity`.
#![deny(unsafe_code)]
// Trellis/detector inner loops index several arrays by the same state or
// stream variable; iterator rewrites obscure the recurrences.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod affinity;
pub mod batch;
pub mod detector;
pub mod filter_cache;
pub mod fsd;
pub mod geoprune;
pub mod hybrid;
pub mod kbest;
pub mod linear;
pub mod ml;
pub mod precode;
pub mod shard;
pub mod sic;
pub mod soft;
pub mod sphere;
pub mod statprune;
pub mod stats;
pub mod tier;

/// The shared `GS_*` env-knob parse-warn-fallback policy, re-exported
/// from [`gs_linalg::env`] (the lowest layer that reads a knob — `GS_SIMD`
/// — so one helper serves `GS_NO_PIN` and `GS_DOMAINS` here too without a
/// dependency cycle).
pub use gs_linalg::env;

pub use batch::{BatchDetector, DetectionBatch, DetectionJob, DetectionPool};
pub use detector::{
    apply_channel, apply_channel_into, residual_norm_sqr, slice_vector, Detection,
    DetectorWorkspace, MimoDetector,
};
pub use filter_cache::{FilterCache, PicGram, SicFilters};
pub use fsd::FsdDetector;
pub use hybrid::HybridDetector;
pub use kbest::KBestDetector;
pub use linear::{MmseDetector, ZfDetector};
pub use ml::MlDetector;
pub use precode::{mod_tau, Precoded, VectorPerturbationPrecoder};
pub use shard::{PoolPoisoned, ShardedDetectionPool, ShardedJob, NO_DEADLINE};
pub use sic::MmseSicDetector;
pub use soft::{SoftDetection, SoftGeosphereDetector, SoftWorkspace};
pub use sphere::{GeosphereFactory, HessFactory, SearchWorkspace, SphereDecoder, WorkspaceFor};
pub use statprune::StatisticalPruningDetector;
pub use stats::{AverageStats, DetectorStats};
pub use tier::{DetectorLadder, DetectorTier};

/// The full Geosphere decoder (2-D zigzag + geometric pruning), the
/// system's headline configuration.
pub type GeosphereDecoder = SphereDecoder<GeosphereFactory>;

/// The ETH-SD baseline decoder (Burg et al. engine + Hess enumeration).
pub type EthSdDecoder = SphereDecoder<HessFactory>;

/// Creates the full Geosphere decoder (2-D zigzag + geometric pruning).
pub fn geosphere_decoder() -> GeosphereDecoder {
    SphereDecoder::new(GeosphereFactory::full())
}

/// Creates the 2-D-zigzag-only Geosphere ablation (no geometric pruning).
pub fn geosphere_zigzag_only_decoder() -> GeosphereDecoder {
    SphereDecoder::new(GeosphereFactory::zigzag_only())
}

/// Creates the ETH-SD baseline decoder.
pub fn ethsd_decoder() -> EthSdDecoder {
    SphereDecoder::new(HessFactory)
}
