//! Batched parallel MIMO detection — the workspace's scaling layer.
//!
//! An OFDM frame is an embarrassingly parallel batch of per-subcarrier
//! sphere searches (paper §4: one independent detection per OFDM symbol ×
//! subcarrier), and those searches share a tiny set of distinct channel
//! matrices — one per subcarrier, reused across every OFDM symbol of the
//! frame. This module exploits both properties:
//!
//! * [`DetectionBatch`] describes a batch as a shared channel table plus
//!   jobs that reference channels by index, so per-channel preprocessing
//!   (QR factorization) is computed once per *channel*, not once per
//!   *detection* — [`SphereDecoder`](crate::SphereDecoder) overrides
//!   [`MimoDetector::detect_batch`] to do exactly that.
//! * [`BatchDetector`] fans a batch out across a scoped worker pool.
//!   Results are returned in job order and are bit-identical to detecting
//!   each job serially, for any worker count: detection consumes no shared
//!   mutable state and QR factorization is deterministic.
//!
//! Workspace ownership: each worker's `detect_batch`/`detect_batch_indexed`
//! call owns one [`SearchWorkspace`](crate::sphere::SearchWorkspace) for
//! its whole job chunk (created on the worker thread, inside the sphere
//! decoder's override), so per-node enumerators, per-level search state,
//! and per-channel QR factors are reused across every job the worker
//! processes — zero heap allocations per symbol after warmup.

use crate::detector::{Detection, DetectorWorkspace, MimoDetector};
use gs_linalg::{Complex, Matrix};
use gs_modulation::Constellation;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// One detection problem inside a batch: an index into the batch's shared
/// channel table plus the received vector.
#[derive(Clone, Debug)]
pub struct DetectionJob {
    /// Index into [`DetectionBatch::channels`].
    pub channel: usize,
    /// Received vector (one entry per AP antenna).
    pub y: Vec<Complex>,
}

/// A batch of detection problems sharing a table of grid-domain channels.
///
/// The channel table is the unit of preprocessing reuse: every job whose
/// `channel` index matches shares one QR factorization in detectors that
/// support it.
#[derive(Clone, Copy, Debug)]
pub struct DetectionBatch<'a> {
    /// Distinct grid-domain channel matrices (constellation scale folded
    /// in), typically one per OFDM subcarrier.
    pub channels: &'a [Matrix],
    /// The detection problems, each referencing a channel by index.
    pub jobs: &'a [DetectionJob],
    /// The constellation every stream uses.
    pub c: Constellation,
}

impl DetectionBatch<'_> {
    /// Detects every job serially through plain [`MimoDetector::detect`],
    /// with no preprocessing reuse — the reference the batched paths are
    /// checked against.
    pub fn detect_serial<D: MimoDetector + ?Sized>(&self, detector: &D) -> Vec<Detection> {
        self.jobs
            .iter()
            .map(|job| detector.detect(&self.channels[job.channel], &job.y, self.c))
            .collect()
    }
}

/// Fans batches of detections out across a scoped `std::thread` worker
/// pool, preserving job order.
///
/// Each worker receives a contiguous chunk of jobs (with the shared
/// channel table), so detectors that amortize per-channel preprocessing
/// keep that benefit within each chunk. Workers borrow the detector
/// immutably — [`MimoDetector`] requires `Send + Sync`, and no detector in
/// this crate has interior mutability — so no cloning or locking happens
/// on the hot path.
#[derive(Clone, Copy, Debug)]
pub struct BatchDetector<'a, D: MimoDetector + ?Sized> {
    detector: &'a D,
    workers: usize,
}

impl<'a, D: MimoDetector + ?Sized> BatchDetector<'a, D> {
    /// Wraps `detector` with a pool of `workers` threads; `workers == 0`
    /// selects the machine's available parallelism.
    ///
    /// The pool never oversubscribes: detection is pure CPU work, so
    /// running more threads than hardware threads only adds context-switch
    /// and cache-thrash cost. The effective count is
    /// `min(workers, available_parallelism)` — [`Self::workers`] reports
    /// the resolved value.
    pub fn new(detector: &'a D, workers: usize) -> Self {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let workers = if workers == 0 { hw } else { workers.min(hw) };
        BatchDetector { detector, workers }
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &'a D {
        self.detector
    }

    /// Detects every job in `batch`, in parallel across the pool, returning
    /// results in job order.
    ///
    /// Jobs are grouped by channel index before being split into per-worker
    /// chunks, so detectors that amortize per-channel preprocessing keep
    /// (almost) one factorization per channel at any worker count — at most
    /// `workers − 1` channel groups straddle a chunk boundary. An OFDM
    /// frame's jobs arrive symbol-major (the channel cycles every
    /// subcarrier), so without the grouping every chunk would touch every
    /// channel and re-factorize it. The grouping is an index permutation
    /// dispatched through [`MimoDetector::detect_batch_indexed`] — jobs are
    /// never cloned or rearranged in memory.
    ///
    /// Output is bit-identical to `self.detector().detect_batch(batch)` run
    /// serially: the grouping permutation is deterministic (stable sort by
    /// channel), it is inverted on the way out, and detection is a pure
    /// function of (channel, y, constellation).
    pub fn detect_batch(&self, batch: &DetectionBatch) -> Vec<Detection> {
        let n = batch.jobs.len();
        let workers = self.workers.min(n.max(1));
        if workers <= 1 || n <= 1 {
            return self.detector.detect_batch(batch);
        }

        // Group jobs by channel (stable: ties keep submission order), so
        // each worker's contiguous chunk spans whole channel groups. When
        // jobs already arrive grouped — notably the flat-channel case with
        // a single table entry, the dominant experiment path — skip the
        // permutation entirely.
        let already_grouped = batch.jobs.windows(2).all(|w| w[0].channel <= w[1].channel);
        let chunk_len = n.div_ceil(workers);

        if already_grouped {
            let mut out: Vec<Option<Detection>> = vec![None; n];
            std::thread::scope(|scope| {
                for (jobs, slots) in batch.jobs.chunks(chunk_len).zip(out.chunks_mut(chunk_len)) {
                    let sub = DetectionBatch { channels: batch.channels, jobs, c: batch.c };
                    let detector = self.detector;
                    scope.spawn(move || {
                        for (slot, det) in slots.iter_mut().zip(detector.detect_batch(&sub)) {
                            *slot = Some(det);
                        }
                    });
                }
            });
            return out.into_iter().map(|d| d.expect("every chunk fills its slots")).collect();
        }

        // Channel-grouped dispatch order; workers receive disjoint index
        // chunks and resolve jobs through the shared batch by index, then
        // the results are scattered back to job order.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (batch.jobs[i].channel, i));

        let mut out: Vec<Option<Detection>> = vec![None; n];
        std::thread::scope(|scope| {
            let handles: Vec<_> = order
                .chunks(chunk_len)
                .map(|idx_chunk| {
                    let detector = self.detector;
                    scope.spawn(move || detector.detect_batch_indexed(batch, idx_chunk))
                })
                .collect();
            for (idx_chunk, handle) in order.chunks(chunk_len).zip(handles) {
                let dets = handle.join().expect("detection worker panicked");
                for (&slot, det) in idx_chunk.iter().zip(dets) {
                    out[slot] = Some(det);
                }
            }
        });
        out.into_iter().map(|d| d.expect("every chunk fills its slots")).collect()
    }
}

/// A **persistent** detection worker pool: threads are spawned once and
/// reused across frames, unlike [`BatchDetector`], whose scoped threads are
/// respawned (and whose closures are reallocated) on every call.
///
/// This is the multi-worker engine of the allocation-free frame pipeline
/// (`gs-phy`'s `FrameWorkspace`): per frame, the caller *lends* its channel
/// table and job buffers to the pool ([`DetectionPool::run`] swaps them in
/// and back out — no copies), workers detect their chunks through
/// [`MimoDetector::detect_batch_indexed_with`] into per-worker output slots
/// whose buffers they recycle frame over frame, and the caller reads the
/// results in place via [`DetectionPool::for_each_result`]. After one
/// warmup frame of a given shape, a frame costs **zero heap allocations**
/// on every thread involved (enforced by `tests/alloc_regression.rs`).
///
/// Jobs are dispatched in channel-grouped order (a stable permutation by
/// channel index, computed in place), so each worker re-factorizes each
/// distinct channel at most once per frame — the same amortization
/// [`BatchDetector`] performs, with bit-identical results: detection is a
/// pure per-job function and results are scattered back by job index.
///
/// The detector is installed per frame as an `Arc` clone (a refcount bump,
/// not an allocation), so one pool can serve different detectors over its
/// lifetime.
pub struct DetectionPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    n_workers: usize,
}

struct PoolShared {
    signal: Mutex<PoolSignal>,
    work_cv: Condvar,
    done_cv: Condvar,
    data: RwLock<PoolData>,
    /// Per-worker result slots: each worker writes only its own slot, the
    /// main thread reads them between frames. Slot buffers persist, so
    /// workers recycle their `Detection` symbol vectors via their own
    /// workspace on the next frame.
    slots: Vec<Mutex<Vec<Detection>>>,
}

#[derive(Default)]
struct PoolSignal {
    epoch: u64,
    remaining: usize,
    shutdown: bool,
    /// Set when a worker unwound mid-frame; [`DetectionPool::run`]
    /// propagates it as a panic instead of returning partial results.
    worker_panicked: bool,
}

/// Poison-tolerant mutex lock: a panicked sibling must not cascade —
/// the pool's own `worker_panicked` flag carries the failure instead.
fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Decrements `remaining` (and records unwinding workers) even if the
/// frame's detection panicked, so [`DetectionPool::run`] can never hang
/// waiting on a dead worker.
struct FrameDoneGuard<'a> {
    shared: &'a PoolShared,
}

impl Drop for FrameDoneGuard<'_> {
    fn drop(&mut self) {
        let mut sig = lock_ignoring_poison(&self.shared.signal);
        if std::thread::panicking() {
            sig.worker_panicked = true;
        }
        sig.remaining -= 1;
        let done = sig.remaining == 0;
        drop(sig);
        if done {
            self.shared.done_cv.notify_all();
        }
    }
}

struct PoolData {
    detector: Option<Arc<dyn MimoDetector>>,
    channels: Vec<Matrix>,
    jobs: Vec<DetectionJob>,
    n_jobs: usize,
    c: Constellation,
    /// Channel-grouped dispatch order over `0..n_jobs`.
    order: Vec<usize>,
    /// Per-worker `[lo, hi)` index ranges into `order`.
    ranges: Vec<(usize, usize)>,
    /// Profiling stamp ([`gs_prof::ticks`] when the epoch was published;
    /// `0` with profiling compiled out) — each waking worker attributes
    /// its wakeup latency to [`gs_prof::Stage::Queue`].
    submitted_at: u64,
}

impl Default for PoolData {
    fn default() -> Self {
        PoolData {
            detector: None,
            channels: Vec::new(),
            jobs: Vec::new(),
            n_jobs: 0,
            c: Constellation::Qpsk,
            order: Vec::new(),
            ranges: Vec::new(),
            submitted_at: 0,
        }
    }
}

impl DetectionPool {
    /// Spawns a pool of exactly `workers.max(1)` threads, pinned
    /// round-robin to cores unless `GS_NO_PIN` is set (see
    /// [`crate::affinity`] — the workers are long-lived, so stable
    /// placement keeps each worker's search workspace in one core's
    /// cache).
    ///
    /// Unlike [`BatchDetector::new`], the count is **not** clamped to the
    /// machine's parallelism: a long-lived receiver sizes its pool once,
    /// and correctness (and the zero-allocation contract) hold at any
    /// count — oversubscription only costs wall-clock.
    pub fn new(workers: usize) -> Self {
        Self::new_with_pinning(workers, !crate::affinity::pinning_disabled_by_env())
    }

    /// [`DetectionPool::new`] with explicit control over worker pinning
    /// (the env-independent form, used by tests and by embedders that
    /// manage placement themselves). Worker `i` is pinned to the `i mod
    /// n`-th CPU of the process's **allowed** set (so `taskset`/cpuset
    /// restrictions are respected rather than fought), best-effort.
    pub fn new_with_pinning(workers: usize, pin: bool) -> Self {
        let n_workers = workers.max(1);
        let cpus = if pin { crate::affinity::allowed_cpus() } else { Vec::new() };
        let shared = Arc::new(PoolShared {
            signal: Mutex::new(PoolSignal::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            data: RwLock::new(PoolData::default()),
            slots: (0..n_workers).map(|_| Mutex::new(Vec::new())).collect(),
        });
        let handles = (0..n_workers)
            .map(|wid| {
                let shared = Arc::clone(&shared);
                let cpu = if cpus.is_empty() { None } else { Some(cpus[wid % cpus.len()]) };
                std::thread::spawn(move || {
                    if let Some(cpu) = cpu {
                        // Best-effort: a rejected mask just leaves the
                        // worker unpinned.
                        crate::affinity::pin_current_thread(cpu);
                    }
                    pool_worker_loop(&shared, wid)
                })
            })
            .collect();
        DetectionPool { shared, handles, n_workers }
    }

    /// The pool's thread count.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Detects `jobs[..n_jobs]` against `channels` across the pool,
    /// blocking until every worker finishes.
    ///
    /// `channels` and `jobs` are lent to the pool for the duration of the
    /// call (swapped in and back out; their contents are untouched). Read
    /// the detections with [`DetectionPool::for_each_result`] — they stay
    /// in the per-worker slots so the buffers can be recycled next frame.
    pub fn run(
        &mut self,
        detector: &Arc<dyn MimoDetector>,
        channels: &mut Vec<Matrix>,
        jobs: &mut Vec<DetectionJob>,
        n_jobs: usize,
        c: Constellation,
    ) {
        assert!(n_jobs <= jobs.len(), "n_jobs exceeds the job buffer");
        {
            let mut guard = self.shared.data.write().expect("pool data lock");
            let data = &mut *guard;
            data.detector = Some(Arc::clone(detector));
            std::mem::swap(&mut data.channels, channels);
            std::mem::swap(&mut data.jobs, jobs);
            data.n_jobs = n_jobs;
            data.c = c;

            // Channel-grouped dispatch order. Keys (channel, index) are
            // unique, so the in-place unstable sort is deterministic and
            // equals the stable grouping BatchDetector uses. Skip the sort
            // when jobs already arrive grouped (the flat-channel case).
            data.order.clear();
            data.order.extend(0..n_jobs);
            let grouped = data.jobs[..n_jobs].windows(2).all(|w| w[0].channel <= w[1].channel);
            if !grouped {
                let jobs = &data.jobs;
                data.order.sort_unstable_by_key(|&i| (jobs[i].channel, i));
            }

            let chunk = n_jobs.div_ceil(self.n_workers).max(1);
            data.ranges.clear();
            data.ranges.extend(
                (0..self.n_workers)
                    .map(|w| ((w * chunk).min(n_jobs), ((w + 1) * chunk).min(n_jobs))),
            );
            data.submitted_at = gs_prof::ticks();
        }
        {
            let mut sig = lock_ignoring_poison(&self.shared.signal);
            assert!(!sig.worker_panicked, "DetectionPool is dead: a worker panicked earlier");
            sig.epoch += 1;
            sig.remaining = self.n_workers;
        }
        self.shared.work_cv.notify_all();
        {
            let mut sig = lock_ignoring_poison(&self.shared.signal);
            while sig.remaining > 0 {
                sig = self
                    .shared
                    .done_cv
                    .wait(sig)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            // Propagate a worker's panic instead of returning a frame with
            // silently missing detections (scoped-thread parity).
            assert!(!sig.worker_panicked, "DetectionPool worker panicked during detection");
        }
        {
            let mut guard = self.shared.data.write().expect("pool data lock");
            let data = &mut *guard;
            std::mem::swap(&mut data.channels, channels);
            std::mem::swap(&mut data.jobs, jobs);
            // Release the per-frame detector clone (refcount drop only).
            data.detector = None;
        }
    }

    /// Visits every detection of the last [`DetectionPool::run`] as
    /// `(job_index, &Detection)`, in per-worker dispatch order. Job indices
    /// cover `0..n_jobs` exactly once; callers scatter by index.
    pub fn for_each_result(&self, mut f: impl FnMut(usize, &Detection)) {
        let data = self.shared.data.read().expect("pool data lock");
        for (wid, slot) in self.shared.slots.iter().enumerate() {
            let out = lock_ignoring_poison(slot);
            let (lo, hi) = data.ranges[wid];
            debug_assert!(out.len() >= hi - lo, "worker {wid} under-filled its slot");
            for (&job_idx, det) in data.order[lo..hi].iter().zip(out.iter()) {
                f(job_idx, det);
            }
        }
    }
}

impl Drop for DetectionPool {
    fn drop(&mut self) {
        lock_ignoring_poison(&self.shared.signal).shutdown = true;
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn pool_worker_loop(shared: &PoolShared, wid: usize) {
    let mut last_epoch = 0u64;
    let mut ws = DetectorWorkspace::new();
    loop {
        {
            let mut sig = lock_ignoring_poison(&shared.signal);
            loop {
                if sig.shutdown {
                    return;
                }
                if sig.epoch != last_epoch {
                    last_epoch = sig.epoch;
                    break;
                }
                sig = shared.work_cv.wait(sig).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        // From here the frame counts as claimed: the guard decrements
        // `remaining` on every exit path, including a panicking detector,
        // so the coordinator can never deadlock on a dead worker.
        let _done = FrameDoneGuard { shared };
        let data = shared.data.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        gs_prof::record(
            gs_prof::Stage::Queue,
            gs_prof::ticks().saturating_sub(data.submitted_at),
            1,
            0,
        );
        let (lo, hi) = data.ranges[wid];
        if lo < hi {
            let detector = data.detector.as_ref().expect("work installed").as_ref();
            let batch = DetectionBatch {
                channels: &data.channels,
                jobs: &data.jobs[..data.n_jobs],
                c: data.c,
            };
            let mut out = lock_ignoring_poison(&shared.slots[wid]);
            detector.detect_batch_indexed_with(&batch, &data.order[lo..hi], &mut ws, &mut out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::apply_channel;
    use crate::{ethsd_decoder, geosphere_decoder, MmseSicDetector, ZfDetector};
    use gs_channel::{sample_cn, RayleighChannel};
    use gs_modulation::GridPoint;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_batch(
        seed: u64,
        c: Constellation,
        na: usize,
        nc: usize,
        n_channels: usize,
        n_jobs: usize,
        noise: f64,
    ) -> (Vec<Matrix>, Vec<DetectionJob>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let channels: Vec<Matrix> = (0..n_channels)
            .map(|_| RayleighChannel::new(na, nc).sample_matrix(&mut rng).scale(c.scale()))
            .collect();
        let pts = c.points();
        let jobs: Vec<DetectionJob> = (0..n_jobs)
            .map(|j| {
                let channel = j % n_channels;
                let s: Vec<GridPoint> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
                let mut y = apply_channel(&channels[channel], &s);
                for v in y.iter_mut() {
                    *v += sample_cn(&mut rng, noise);
                }
                DetectionJob { channel, y }
            })
            .collect();
        (channels, jobs)
    }

    #[test]
    fn batched_matches_serial_reference_all_detectors() {
        let c = Constellation::Qam16;
        let (channels, jobs) = random_batch(301, c, 4, 4, 6, 48, 0.05);
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
        let detectors: Vec<Box<dyn MimoDetector>> = vec![
            Box::new(geosphere_decoder()),
            Box::new(ethsd_decoder()),
            Box::new(geosphere_decoder().with_sorted_qr()),
            Box::new(ZfDetector),
            Box::new(MmseSicDetector::new(0.05)),
        ];
        for det in &detectors {
            let reference = batch.detect_serial(det.as_ref());
            let amortized = det.detect_batch(&batch);
            for workers in [1, 2, 4, 7] {
                let parallel = BatchDetector::new(det.as_ref(), workers).detect_batch(&batch);
                assert_eq!(parallel.len(), reference.len());
                for (k, (p, r)) in parallel.iter().zip(&reference).enumerate() {
                    assert_eq!(p.symbols, r.symbols, "{} job {k} workers {workers}", det.name());
                    assert_eq!(p.stats, r.stats, "{} job {k} workers {workers}", det.name());
                }
            }
            for (k, (a, r)) in amortized.iter().zip(&reference).enumerate() {
                assert_eq!(a.symbols, r.symbols, "{} amortized job {k}", det.name());
                assert_eq!(a.stats, r.stats, "{} amortized job {k}", det.name());
            }
        }
    }

    #[test]
    fn zero_workers_selects_parallelism() {
        let det = ZfDetector;
        let b = BatchDetector::new(&det, 0);
        assert!(b.workers() >= 1);
    }

    #[test]
    fn empty_batch_is_empty() {
        let det = geosphere_decoder();
        let channels: Vec<Matrix> = vec![];
        let jobs: Vec<DetectionJob> = vec![];
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c: Constellation::Qpsk };
        assert!(BatchDetector::new(&det, 4).detect_batch(&batch).is_empty());
    }

    #[test]
    fn more_workers_than_jobs() {
        let c = Constellation::Qpsk;
        let (channels, jobs) = random_batch(302, c, 2, 2, 1, 3, 0.01);
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
        let det = geosphere_decoder();
        let out = BatchDetector::new(&det, 16).detect_batch(&batch);
        assert_eq!(out.len(), 3);
        let reference = batch.detect_serial(&det);
        for (p, r) in out.iter().zip(&reference) {
            assert_eq!(p.symbols, r.symbols);
        }
    }

    #[test]
    fn pool_matches_serial_reference_across_frames() {
        let c = Constellation::Qam16;
        let (channels, jobs) = random_batch(303, c, 4, 4, 6, 48, 0.05);
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
        let det = geosphere_decoder();
        let reference = batch.detect_serial(&det);
        let arc: Arc<dyn MimoDetector> = Arc::new(det);
        for workers in [1usize, 3, 5] {
            let mut pool = DetectionPool::new(workers);
            assert_eq!(pool.workers(), workers);
            let mut ch = channels.clone();
            let mut jb = jobs.clone();
            // Reuse the same pool for several frames, including a short one
            // (n_jobs < jobs.len()) to exercise shrinking dispatch.
            for n in [jb.len(), jb.len() / 2, jb.len()] {
                pool.run(&arc, &mut ch, &mut jb, n, c);
                assert_eq!(ch.len(), channels.len(), "buffers returned");
                assert_eq!(jb.len(), jobs.len(), "buffers returned");
                let mut seen = vec![false; n];
                pool.for_each_result(|idx, det| {
                    assert!(!seen[idx], "job {idx} visited twice");
                    seen[idx] = true;
                    assert_eq!(det.symbols, reference[idx].symbols, "workers {workers} job {idx}");
                    assert_eq!(det.stats, reference[idx].stats, "workers {workers} job {idx}");
                });
                assert!(seen.iter().all(|&s| s), "workers {workers}: every job covered");
            }
        }
    }

    #[test]
    fn pool_propagates_worker_panic_instead_of_hanging() {
        /// A detector whose batch path always panics.
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct PanickyDetector;
        impl MimoDetector for PanickyDetector {
            fn detect(&self, _: &Matrix, _: &[Complex], _: Constellation) -> Detection {
                panic!("intentional test panic");
            }
            fn name(&self) -> &'static str {
                "panicky"
            }
        }

        let c = Constellation::Qpsk;
        let (channels, jobs) = random_batch(305, c, 2, 2, 1, 6, 0.01);
        let mut pool = DetectionPool::new(2);
        let arc: Arc<dyn MimoDetector> = Arc::new(PanickyDetector);
        let mut ch = channels;
        let mut jb = jobs;
        let n = jb.len();
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&arc, &mut ch, &mut jb, n, c);
        }));
        assert!(run.is_err(), "a worker panic must surface as a coordinator panic, not a hang");
        // The pool is dead; further use must fail fast, and dropping it
        // (joining the surviving workers) must not hang either.
        let reuse = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&arc, &mut ch, &mut jb, n, c);
        }));
        assert!(reuse.is_err(), "a dead pool must refuse further frames");
        drop(pool);
    }

    #[test]
    fn pool_detects_identically_pinned_and_unpinned() {
        // Affinity is a placement hint; detection results must not depend
        // on it (and pinning must not wedge the pool on any machine size).
        let c = Constellation::Qam16;
        let (channels, jobs) = random_batch(306, c, 4, 4, 4, 24, 0.05);
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
        let det = geosphere_decoder();
        let reference = batch.detect_serial(&det);
        let arc: Arc<dyn MimoDetector> = Arc::new(det);
        for pin in [true, false] {
            let mut pool = DetectionPool::new_with_pinning(3, pin);
            let mut ch = channels.clone();
            let mut jb = jobs.clone();
            let n = jb.len();
            pool.run(&arc, &mut ch, &mut jb, n, c);
            pool.for_each_result(|idx, d| {
                assert_eq!(d.symbols, reference[idx].symbols, "pin {pin} job {idx}");
                assert_eq!(d.stats, reference[idx].stats, "pin {pin} job {idx}");
            });
        }
    }

    #[test]
    fn pool_serves_changing_detectors() {
        let c = Constellation::Qpsk;
        let (channels, jobs) = random_batch(304, c, 2, 2, 2, 12, 0.02);
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
        let mut pool = DetectionPool::new(2);
        let mut ch = channels.clone();
        let mut jb = jobs.clone();
        let detectors: Vec<Arc<dyn MimoDetector>> =
            vec![Arc::new(geosphere_decoder()), Arc::new(ZfDetector), Arc::new(ethsd_decoder())];
        for arc in &detectors {
            let reference = batch.detect_serial(arc.as_ref());
            let n = jb.len();
            pool.run(arc, &mut ch, &mut jb, n, c);
            pool.for_each_result(|idx, det| {
                assert_eq!(det.symbols, reference[idx].symbols, "{}", arc.name());
            });
        }
    }

    #[test]
    fn detectors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::GeosphereDecoder>();
        assert_send_sync::<crate::EthSdDecoder>();
        assert_send_sync::<ZfDetector>();
        assert_send_sync::<MmseSicDetector>();
        assert_send_sync::<Box<dyn MimoDetector>>();
    }
}
