//! Batched parallel MIMO detection — the workspace's scaling layer.
//!
//! An OFDM frame is an embarrassingly parallel batch of per-subcarrier
//! sphere searches (paper §4: one independent detection per OFDM symbol ×
//! subcarrier), and those searches share a tiny set of distinct channel
//! matrices — one per subcarrier, reused across every OFDM symbol of the
//! frame. This module exploits both properties:
//!
//! * [`DetectionBatch`] describes a batch as a shared channel table plus
//!   jobs that reference channels by index, so per-channel preprocessing
//!   (QR factorization) is computed once per *channel*, not once per
//!   *detection* — [`SphereDecoder`](crate::SphereDecoder) overrides
//!   [`MimoDetector::detect_batch`] to do exactly that.
//! * [`BatchDetector`] fans a batch out across a scoped worker pool.
//!   Results are returned in job order and are bit-identical to detecting
//!   each job serially, for any worker count: detection consumes no shared
//!   mutable state and QR factorization is deterministic.
//!
//! Workspace ownership: each worker's `detect_batch`/`detect_batch_indexed`
//! call owns one [`SearchWorkspace`](crate::sphere::SearchWorkspace) for
//! its whole job chunk (created on the worker thread, inside the sphere
//! decoder's override), so per-node enumerators, per-level search state,
//! and per-channel QR factors are reused across every job the worker
//! processes — zero heap allocations per symbol after warmup.

use crate::detector::{Detection, MimoDetector};
use gs_linalg::{Complex, Matrix};
use gs_modulation::Constellation;

/// One detection problem inside a batch: an index into the batch's shared
/// channel table plus the received vector.
#[derive(Clone, Debug)]
pub struct DetectionJob {
    /// Index into [`DetectionBatch::channels`].
    pub channel: usize,
    /// Received vector (one entry per AP antenna).
    pub y: Vec<Complex>,
}

/// A batch of detection problems sharing a table of grid-domain channels.
///
/// The channel table is the unit of preprocessing reuse: every job whose
/// `channel` index matches shares one QR factorization in detectors that
/// support it.
#[derive(Clone, Copy, Debug)]
pub struct DetectionBatch<'a> {
    /// Distinct grid-domain channel matrices (constellation scale folded
    /// in), typically one per OFDM subcarrier.
    pub channels: &'a [Matrix],
    /// The detection problems, each referencing a channel by index.
    pub jobs: &'a [DetectionJob],
    /// The constellation every stream uses.
    pub c: Constellation,
}

impl DetectionBatch<'_> {
    /// Detects every job serially through plain [`MimoDetector::detect`],
    /// with no preprocessing reuse — the reference the batched paths are
    /// checked against.
    pub fn detect_serial<D: MimoDetector + ?Sized>(&self, detector: &D) -> Vec<Detection> {
        self.jobs
            .iter()
            .map(|job| detector.detect(&self.channels[job.channel], &job.y, self.c))
            .collect()
    }
}

/// Fans batches of detections out across a scoped `std::thread` worker
/// pool, preserving job order.
///
/// Each worker receives a contiguous chunk of jobs (with the shared
/// channel table), so detectors that amortize per-channel preprocessing
/// keep that benefit within each chunk. Workers borrow the detector
/// immutably — [`MimoDetector`] requires `Send + Sync`, and no detector in
/// this crate has interior mutability — so no cloning or locking happens
/// on the hot path.
#[derive(Clone, Copy, Debug)]
pub struct BatchDetector<'a, D: MimoDetector + ?Sized> {
    detector: &'a D,
    workers: usize,
}

impl<'a, D: MimoDetector + ?Sized> BatchDetector<'a, D> {
    /// Wraps `detector` with a pool of `workers` threads; `workers == 0`
    /// selects the machine's available parallelism.
    ///
    /// The pool never oversubscribes: detection is pure CPU work, so
    /// running more threads than hardware threads only adds context-switch
    /// and cache-thrash cost. The effective count is
    /// `min(workers, available_parallelism)` — [`Self::workers`] reports
    /// the resolved value.
    pub fn new(detector: &'a D, workers: usize) -> Self {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let workers = if workers == 0 { hw } else { workers.min(hw) };
        BatchDetector { detector, workers }
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &'a D {
        self.detector
    }

    /// Detects every job in `batch`, in parallel across the pool, returning
    /// results in job order.
    ///
    /// Jobs are grouped by channel index before being split into per-worker
    /// chunks, so detectors that amortize per-channel preprocessing keep
    /// (almost) one factorization per channel at any worker count — at most
    /// `workers − 1` channel groups straddle a chunk boundary. An OFDM
    /// frame's jobs arrive symbol-major (the channel cycles every
    /// subcarrier), so without the grouping every chunk would touch every
    /// channel and re-factorize it. The grouping is an index permutation
    /// dispatched through [`MimoDetector::detect_batch_indexed`] — jobs are
    /// never cloned or rearranged in memory.
    ///
    /// Output is bit-identical to `self.detector().detect_batch(batch)` run
    /// serially: the grouping permutation is deterministic (stable sort by
    /// channel), it is inverted on the way out, and detection is a pure
    /// function of (channel, y, constellation).
    pub fn detect_batch(&self, batch: &DetectionBatch) -> Vec<Detection> {
        let n = batch.jobs.len();
        let workers = self.workers.min(n.max(1));
        if workers <= 1 || n <= 1 {
            return self.detector.detect_batch(batch);
        }

        // Group jobs by channel (stable: ties keep submission order), so
        // each worker's contiguous chunk spans whole channel groups. When
        // jobs already arrive grouped — notably the flat-channel case with
        // a single table entry, the dominant experiment path — skip the
        // permutation entirely.
        let already_grouped = batch.jobs.windows(2).all(|w| w[0].channel <= w[1].channel);
        let chunk_len = n.div_ceil(workers);

        if already_grouped {
            let mut out: Vec<Option<Detection>> = vec![None; n];
            std::thread::scope(|scope| {
                for (jobs, slots) in batch.jobs.chunks(chunk_len).zip(out.chunks_mut(chunk_len)) {
                    let sub = DetectionBatch { channels: batch.channels, jobs, c: batch.c };
                    let detector = self.detector;
                    scope.spawn(move || {
                        for (slot, det) in slots.iter_mut().zip(detector.detect_batch(&sub)) {
                            *slot = Some(det);
                        }
                    });
                }
            });
            return out.into_iter().map(|d| d.expect("every chunk fills its slots")).collect();
        }

        // Channel-grouped dispatch order; workers receive disjoint index
        // chunks and resolve jobs through the shared batch by index, then
        // the results are scattered back to job order.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (batch.jobs[i].channel, i));

        let mut out: Vec<Option<Detection>> = vec![None; n];
        std::thread::scope(|scope| {
            let handles: Vec<_> = order
                .chunks(chunk_len)
                .map(|idx_chunk| {
                    let detector = self.detector;
                    scope.spawn(move || detector.detect_batch_indexed(batch, idx_chunk))
                })
                .collect();
            for (idx_chunk, handle) in order.chunks(chunk_len).zip(handles) {
                let dets = handle.join().expect("detection worker panicked");
                for (&slot, det) in idx_chunk.iter().zip(dets) {
                    out[slot] = Some(det);
                }
            }
        });
        out.into_iter().map(|d| d.expect("every chunk fills its slots")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::apply_channel;
    use crate::{ethsd_decoder, geosphere_decoder, MmseSicDetector, ZfDetector};
    use gs_channel::{sample_cn, RayleighChannel};
    use gs_modulation::GridPoint;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_batch(
        seed: u64,
        c: Constellation,
        na: usize,
        nc: usize,
        n_channels: usize,
        n_jobs: usize,
        noise: f64,
    ) -> (Vec<Matrix>, Vec<DetectionJob>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let channels: Vec<Matrix> = (0..n_channels)
            .map(|_| RayleighChannel::new(na, nc).sample_matrix(&mut rng).scale(c.scale()))
            .collect();
        let pts = c.points();
        let jobs: Vec<DetectionJob> = (0..n_jobs)
            .map(|j| {
                let channel = j % n_channels;
                let s: Vec<GridPoint> = (0..nc).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
                let mut y = apply_channel(&channels[channel], &s);
                for v in y.iter_mut() {
                    *v += sample_cn(&mut rng, noise);
                }
                DetectionJob { channel, y }
            })
            .collect();
        (channels, jobs)
    }

    #[test]
    fn batched_matches_serial_reference_all_detectors() {
        let c = Constellation::Qam16;
        let (channels, jobs) = random_batch(301, c, 4, 4, 6, 48, 0.05);
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
        let detectors: Vec<Box<dyn MimoDetector>> = vec![
            Box::new(geosphere_decoder()),
            Box::new(ethsd_decoder()),
            Box::new(geosphere_decoder().with_sorted_qr()),
            Box::new(ZfDetector),
            Box::new(MmseSicDetector::new(0.05)),
        ];
        for det in &detectors {
            let reference = batch.detect_serial(det.as_ref());
            let amortized = det.detect_batch(&batch);
            for workers in [1, 2, 4, 7] {
                let parallel = BatchDetector::new(det.as_ref(), workers).detect_batch(&batch);
                assert_eq!(parallel.len(), reference.len());
                for (k, (p, r)) in parallel.iter().zip(&reference).enumerate() {
                    assert_eq!(p.symbols, r.symbols, "{} job {k} workers {workers}", det.name());
                    assert_eq!(p.stats, r.stats, "{} job {k} workers {workers}", det.name());
                }
            }
            for (k, (a, r)) in amortized.iter().zip(&reference).enumerate() {
                assert_eq!(a.symbols, r.symbols, "{} amortized job {k}", det.name());
                assert_eq!(a.stats, r.stats, "{} amortized job {k}", det.name());
            }
        }
    }

    #[test]
    fn zero_workers_selects_parallelism() {
        let det = ZfDetector;
        let b = BatchDetector::new(&det, 0);
        assert!(b.workers() >= 1);
    }

    #[test]
    fn empty_batch_is_empty() {
        let det = geosphere_decoder();
        let channels: Vec<Matrix> = vec![];
        let jobs: Vec<DetectionJob> = vec![];
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c: Constellation::Qpsk };
        assert!(BatchDetector::new(&det, 4).detect_batch(&batch).is_empty());
    }

    #[test]
    fn more_workers_than_jobs() {
        let c = Constellation::Qpsk;
        let (channels, jobs) = random_batch(302, c, 2, 2, 1, 3, 0.01);
        let batch = DetectionBatch { channels: &channels, jobs: &jobs, c };
        let det = geosphere_decoder();
        let out = BatchDetector::new(&det, 16).detect_batch(&batch);
        assert_eq!(out.len(), 3);
        let reference = batch.detect_serial(&det);
        for (p, r) in out.iter().zip(&reference) {
            assert_eq!(p.symbols, r.symbols);
        }
    }

    #[test]
    fn detectors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::GeosphereDecoder>();
        assert_send_sync::<crate::EthSdDecoder>();
        assert_send_sync::<ZfDetector>();
        assert_send_sync::<MmseSicDetector>();
        assert_send_sync::<Box<dyn MimoDetector>>();
    }
}
