//! Geometrical pruning lower bounds (paper §3.2, Eq. 9).
//!
//! A received symbol `ỹ` lies within ±1 (half the grid spacing) of its
//! sliced constellation point on each axis. A candidate point offset from
//! the slice by `dI` grid steps horizontally and `dQ` vertically therefore
//! satisfies
//!
//! ```text
//! |ỹ − s|² ≥ max(0, 2·dI − 1)² + max(0, 2·dQ − 1)²
//! ```
//!
//! The per-axis terms come from a tiny lookup table "indexed on |dI| and
//! |dQ|" — no multiplications at all. Because the bound never exceeds the
//! exact cost, pruning on it cannot exclude the maximum-likelihood
//! solution; because it is monotone in each offset, a bound violation also
//! terminates the enumeration direction that produced it.

/// Largest per-axis offset we ever see: 256-QAM has 16 levels per axis,
/// so offsets range 0..=15.
pub const MAX_OFFSET: usize = 16;

/// Per-axis squared bound terms `max(0, 2d−1)²` for `d = 0..=16`.
const AXIS_TERM: [f64; MAX_OFFSET + 1] = {
    let mut t = [0.0; MAX_OFFSET + 1];
    let mut d = 0;
    while d <= MAX_OFFSET {
        if d > 0 {
            let v = (2 * d - 1) as f64;
            t[d] = v * v;
        }
        d += 1;
    }
    t
};

/// Lower bound on `|ỹ − s|²` for a candidate at `(dI, dQ)` grid steps from
/// the sliced point (grid spacing 2).
///
/// # Panics
/// Debug-panics when an offset exceeds [`MAX_OFFSET`].
#[inline]
pub fn distance_lower_bound(d_i: usize, d_q: usize) -> f64 {
    debug_assert!(d_i <= MAX_OFFSET && d_q <= MAX_OFFSET);
    AXIS_TERM[d_i] + AXIS_TERM[d_q]
}

/// Grid-step offset between two axis coordinates (both odd integers).
#[inline]
pub fn axis_offset(a: i32, b: i32) -> usize {
    ((a - b).abs() / 2) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_linalg::Complex;
    use gs_modulation::Constellation;

    #[test]
    fn zero_offset_zero_bound() {
        assert_eq!(distance_lower_bound(0, 0), 0.0);
        assert_eq!(distance_lower_bound(0, 1), 1.0);
        assert_eq!(distance_lower_bound(1, 0), 1.0);
        assert_eq!(distance_lower_bound(2, 2), 18.0); // 3² + 3²
    }

    #[test]
    fn figure7_example() {
        // Figure 7: dI = dQ = 2 ⇒ bound = (2·2−1)² + (2·2−1)² = 18, i.e.
        // √((2dI−1)² + (2dQ−1)²) as the paper's Eq. 9 distance.
        assert!((distance_lower_bound(2, 2).sqrt() - (9.0f64 + 9.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bound_never_exceeds_exact_distance() {
        // Exhaustive check across every constellation, many received points.
        for c in Constellation::ALL {
            let pts = c.points();
            for &(re, im) in
                &[(0.0, 0.0), (0.99, -0.99), (-2.3, 4.1), (7.8, -7.8), (15.9, 15.9), (-0.01, 0.01)]
            {
                let y = Complex::new(re, im);
                let slice = c.slice(y);
                for p in &pts {
                    let bound =
                        distance_lower_bound(axis_offset(p.i, slice.i), axis_offset(p.q, slice.q));
                    let exact = p.dist_sqr(y);
                    assert!(
                        bound <= exact + 1e-9,
                        "{c:?}: bound {bound} > exact {exact} for p={p:?}, y={y:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bound_is_monotone_in_each_offset() {
        for d in 0..MAX_OFFSET {
            assert!(distance_lower_bound(d, 0) <= distance_lower_bound(d + 1, 0));
            assert!(distance_lower_bound(0, d) <= distance_lower_bound(0, d + 1));
        }
    }

    #[test]
    fn axis_offset_steps() {
        assert_eq!(axis_offset(1, 1), 0);
        assert_eq!(axis_offset(3, 1), 1);
        assert_eq!(axis_offset(-3, 3), 3);
        assert_eq!(axis_offset(15, -15), 15);
    }
}
