//! Downlink vector-perturbation (sphere-encoder) precoding — §6.3.
//!
//! "In the downlink, sphere decoder-based techniques can be used at the
//! transmitter in lieu of zero-forcing based precoding; this is known as
//! sphere encoder precoding … since Geosphere's techniques are
//! receiver-based, Geosphere is complementary to precoding."
//!
//! The Hochwald–Peel–Swindlehurst scheme: instead of transmitting the
//! channel inversion `H⁺s` (whose power blows up on ill-conditioned
//! channels exactly like uplink ZF noise), the AP transmits
//! `x = H⁺(s + τ·l)` for the complex-integer perturbation `l` minimizing
//! `‖x‖²`. Finding `l` is a closest-lattice-point search — solved here by
//! the same depth-first, zigzag-ordered, radius-pruned machinery as the
//! uplink decoder. Each receiver simply reduces its scalar observation
//! modulo `τ` and slices.

use crate::stats::DetectorStats;
use gs_linalg::{qr_decompose, Complex, LinalgError, Matrix};
use gs_modulation::{Constellation, GridPoint};

/// Result of precoding one symbol vector.
#[derive(Clone, Debug)]
pub struct Precoded {
    /// The antenna-domain transmit vector `x = H⁺(s + τ·l)`.
    pub x: Vec<Complex>,
    /// Transmit power `γ = ‖x‖²` (receivers need `√γ` for scaling; in a
    /// real system it is signalled once per channel coherence interval).
    pub gamma: f64,
    /// The chosen perturbation vector.
    pub perturbation: Vec<Complex>,
    /// Search statistics.
    pub stats: DetectorStats,
}

/// The vector-perturbation precoder.
#[derive(Clone, Debug)]
pub struct VectorPerturbationPrecoder {
    /// The modulo base `τ = 2·m` (grid spacing 2, `m` levels per axis):
    /// the smallest shift that maps the constellation onto itself under
    /// mod-τ reduction.
    pub tau: f64,
    /// Maximum perturbation magnitude per axis (search window). ±2 covers
    /// everything that ever helps in practice.
    pub window: i32,
    pinv: Matrix,
}

impl VectorPerturbationPrecoder {
    /// Builds a precoder for a downlink channel `h` (`K users × M
    /// antennas` rows = users) and a constellation.
    pub fn new(h: &Matrix, c: Constellation) -> Result<Self, LinalgError> {
        // Right pseudo-inverse: x = H*(H H*)⁻¹ u satisfies H x = u.
        let hh = h.mul_mat(&h.hermitian());
        let inv = gs_linalg::invert(&hh)?;
        let pinv = h.hermitian().mul_mat(&inv);
        Ok(VectorPerturbationPrecoder { tau: 2.0 * c.side() as f64, window: 2, pinv })
    }

    /// Plain channel-inversion (zero-forcing) precoding, the baseline:
    /// `x = H⁺ s`, no perturbation.
    pub fn zf_precode(&self, s: &[GridPoint]) -> Precoded {
        let sv: Vec<Complex> = s.iter().map(|p| p.to_complex()).collect();
        let x = self.pinv.mul_vec(&sv);
        let gamma = gs_linalg::vec_norm_sqr(&x);
        Precoded {
            x,
            gamma,
            perturbation: vec![Complex::ZERO; s.len()],
            stats: DetectorStats::default(),
        }
    }

    /// Sphere-encoded precoding: searches the perturbation lattice for the
    /// minimum-power transmit vector.
    pub fn precode(&self, s: &[GridPoint]) -> Precoded {
        let k = self.pinv.cols();
        assert_eq!(s.len(), k, "one symbol per user");
        let mut stats = DetectorStats::default();

        // minimize ‖P·(s + τ l)‖² over l ∈ (Z+iZ)^K, |Re l|,|Im l| ≤ window.
        // With B = τP and t = −P·s: minimize ‖B l − t‖² — integer least
        // squares, depth-first with QR and per-level zigzag enumeration.
        let b = self.pinv.scale(self.tau);
        let sv: Vec<Complex> = s.iter().map(|p| p.to_complex()).collect();
        let t: Vec<Complex> = self.pinv.mul_vec(&sv).into_iter().map(|z| -z).collect();

        let qr = qr_decompose(&b);
        let that = qr.rotate(&t);
        let r = &qr.r;
        // The component of t orthogonal to range(B) is constant over l.
        let base = (gs_linalg::vec_norm_sqr(&t) - gs_linalg::vec_norm_sqr(&that[..k])).max(0.0);

        // DFS over levels k-1..0; per level enumerate integer pairs
        // (re, im) in a square window by nondecreasing axis distance.
        let mut best_l = vec![Complex::ZERO; k];
        let mut best_dist = f64::INFINITY;
        let mut chosen = vec![Complex::ZERO; k];

        fn zigzag_ints(center: f64, window: i32) -> Vec<i32> {
            let mut v: Vec<i32> = (-window..=window).collect();
            v.sort_by(|a, b| {
                (*a as f64 - center).abs().partial_cmp(&(*b as f64 - center).abs()).unwrap()
            });
            v
        }

        // Recursive search with radius pruning.
        #[allow(clippy::too_many_arguments)]
        fn search(
            level: usize,
            dist_above: f64,
            r: &Matrix,
            that: &[Complex],
            chosen: &mut Vec<Complex>,
            best_l: &mut Vec<Complex>,
            best_dist: &mut f64,
            window: i32,
            k: usize,
            stats: &mut DetectorStats,
        ) {
            let i = level;
            let mut acc = that[i];
            for j in (i + 1)..k {
                acc -= r[(i, j)] * chosen[j];
            }
            stats.complex_mults += (k - 1 - i) as u64;
            let rll = r[(i, i)].re;
            let center = if rll > f64::EPSILON { acc / rll } else { Complex::ZERO };
            let gain = rll * rll;

            let res = zigzag_ints(center.re, window);
            let ims = zigzag_ints(center.im, window);
            // Enumerate (re, im) pairs; the outer sorted orders let us break
            // early per axis once the axis cost alone busts the radius.
            for &re in &res {
                let dre = re as f64 - center.re;
                if dist_above + gain * dre * dre >= *best_dist {
                    break;
                }
                for &im in &ims {
                    let dim = im as f64 - center.im;
                    let cost = gain * (dre * dre + dim * dim);
                    stats.ped_calcs += 1;
                    let d = dist_above + cost;
                    if d >= *best_dist {
                        break;
                    }
                    stats.visited_nodes += 1;
                    chosen[i] = Complex::new(re as f64, im as f64);
                    if i == 0 {
                        *best_dist = d;
                        best_l.clone_from(chosen);
                    } else {
                        search(i - 1, d, r, that, chosen, best_l, best_dist, window, k, stats);
                    }
                }
            }
        }

        search(
            k - 1,
            base,
            r,
            &that[..k],
            &mut chosen,
            &mut best_l,
            &mut best_dist,
            self.window,
            k,
            &mut stats,
        );

        let perturbed: Vec<Complex> =
            sv.iter().zip(&best_l).map(|(&s, &l)| s + l * self.tau).collect();
        let x = self.pinv.mul_vec(&perturbed);
        let gamma = gs_linalg::vec_norm_sqr(&x);
        Precoded { x, gamma, perturbation: best_l, stats }
    }

    /// Receiver-side demodulation: scale by `√γ`, reduce modulo τ, slice.
    pub fn demodulate(&self, y_k: Complex, gamma: f64, c: Constellation) -> GridPoint {
        let scaled = y_k * gamma.sqrt();
        c.slice(Complex::new(mod_tau(scaled.re, self.tau), mod_tau(scaled.im, self.tau)))
    }
}

/// Symmetric modulo reduction into `[−τ/2, τ/2)`.
#[inline]
pub fn mod_tau(v: f64, tau: f64) -> f64 {
    v - tau * (v / tau).round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_channel::{sample_cn, RayleighChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symbols(rng: &mut StdRng, c: Constellation, n: usize) -> Vec<GridPoint> {
        let pts = c.points();
        (0..n).map(|_| pts[rng.gen_range(0..pts.len())]).collect()
    }

    #[test]
    fn mod_tau_reduction() {
        assert!((mod_tau(0.3, 8.0) - 0.3).abs() < 1e-12);
        assert!((mod_tau(8.3, 8.0) - 0.3).abs() < 1e-12);
        assert!((mod_tau(-8.3, 8.0) + 0.3).abs() < 1e-12);
        assert!((mod_tau(4.0, 8.0) + 4.0).abs() < 1e-12); // boundary folds down
    }

    #[test]
    fn noiseless_downlink_roundtrip() {
        let mut rng = StdRng::seed_from_u64(821);
        let c = Constellation::Qam16;
        for _ in 0..25 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).hermitian(); // 4 users x 4 ant
            let pre = VectorPerturbationPrecoder::new(&h, c).unwrap();
            let s = random_symbols(&mut rng, c, 4);
            let p = pre.precode(&s);
            // Each user hears h_k · x = s_k + τ l_k exactly.
            let rx = h.mul_vec(&p.x);
            for (k, &want) in s.iter().enumerate() {
                // Receivers scale by √γ over the normalized signal; here we
                // skip power normalization (γ scaling cancels).
                let got = pre.demodulate(rx[k] / p.gamma.sqrt(), p.gamma, c);
                assert_eq!(got, want, "user {k}");
            }
        }
    }

    #[test]
    fn perturbation_never_increases_power() {
        let mut rng = StdRng::seed_from_u64(822);
        let c = Constellation::Qam16;
        for _ in 0..40 {
            let h = RayleighChannel::new(3, 3).sample_matrix(&mut rng);
            let pre = VectorPerturbationPrecoder::new(&h, c).unwrap();
            let s = random_symbols(&mut rng, c, 3);
            let vp = pre.precode(&s);
            let zf = pre.zf_precode(&s);
            assert!(vp.gamma <= zf.gamma + 1e-9, "vp {} > zf {}", vp.gamma, zf.gamma);
        }
    }

    #[test]
    fn perturbation_slashes_power_on_ill_conditioned_channels() {
        // The reason VP exists: on near-singular channels the inversion
        // power explodes and the lattice offset absorbs most of it.
        let mut rng = StdRng::seed_from_u64(823);
        let c = Constellation::Qam16;
        let mut ratio_acc = 0.0;
        let trials = 30;
        for _ in 0..trials {
            let base: Vec<Complex> = (0..2).map(|_| sample_cn(&mut rng, 1.0)).collect();
            // rows = users; make the two users' channels nearly parallel.
            let h = Matrix::from_fn(2, 2, |r, col| {
                base[col] + sample_cn(&mut rng, if r == 0 { 0.0 } else { 0.02 })
            });
            let pre = VectorPerturbationPrecoder::new(&h, c).unwrap();
            let s = random_symbols(&mut rng, c, 2);
            let vp = pre.precode(&s);
            let zf = pre.zf_precode(&s);
            ratio_acc += vp.gamma / zf.gamma;
        }
        let avg_ratio = ratio_acc / trials as f64;
        assert!(
            avg_ratio < 0.7,
            "VP should cut ill-conditioned TX power substantially, got ratio {avg_ratio:.2}"
        );
    }

    #[test]
    fn noisy_downlink_vp_beats_zf_precoding() {
        // Same total TX power budget: VP's lower gamma means less effective
        // noise after receiver scaling ⇒ fewer symbol errors.
        let mut rng = StdRng::seed_from_u64(824);
        let c = Constellation::Qam16;
        let sigma2 = 0.02;
        let mut zf_errs = 0usize;
        let mut vp_errs = 0usize;
        for _ in 0..150 {
            let base: Vec<Complex> = (0..2).map(|_| sample_cn(&mut rng, 1.0)).collect();
            let h = Matrix::from_fn(2, 2, |r, col| {
                base[col] + sample_cn(&mut rng, if r == 0 { 0.0 } else { 0.1 })
            });
            let Ok(pre) = VectorPerturbationPrecoder::new(&h, c) else { continue };
            let s = random_symbols(&mut rng, c, 2);
            for vp_mode in [false, true] {
                let p = if vp_mode { pre.precode(&s) } else { pre.zf_precode(&s) };
                // Transmit x/√γ (unit power); receiver k hears
                // h_k x /√γ + w and scales by √γ.
                let rx = h.mul_vec(&p.x);
                for (k, &want) in s.iter().enumerate() {
                    let y = rx[k] / p.gamma.sqrt() + sample_cn(&mut rng, sigma2);
                    let got = pre.demodulate(y, p.gamma, c);
                    if got != want {
                        if vp_mode {
                            vp_errs += 1;
                        } else {
                            zf_errs += 1;
                        }
                    }
                }
            }
        }
        assert!(
            vp_errs < zf_errs,
            "VP ({vp_errs} errors) must beat ZF precoding ({zf_errs} errors)"
        );
    }
}
