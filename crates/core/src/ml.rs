//! Exhaustive maximum-likelihood detection (Eq. 1).
//!
//! The brute-force `argmin_s ‖y − Hs‖²` over all `|O|^nc` hypotheses. Its
//! complexity is astronomical for dense constellations (the paper: ~10⁹
//! distance calculations for 64-QAM over 4 antennas), so it exists here as
//! the **correctness oracle**: every sphere decoder in this crate must
//! return exactly this solution.

use crate::detector::{Detection, MimoDetector};
use crate::stats::DetectorStats;
use gs_linalg::{Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};

/// The exhaustive ML detector. Refuses hypothesis spaces larger than
/// [`MlDetector::MAX_HYPOTHESES`] (use a sphere decoder instead).
#[derive(Clone, Copy, Debug, Default)]
pub struct MlDetector;

impl MlDetector {
    /// The largest search space `|O|^nc` this detector will enumerate.
    pub const MAX_HYPOTHESES: u64 = 20_000_000;

    /// The number of hypotheses for a given problem size.
    pub fn hypothesis_count(c: Constellation, nc: usize) -> u64 {
        (c.size() as u64).saturating_pow(nc as u32)
    }
}

impl MimoDetector for MlDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        let nc = h.cols();
        let count = Self::hypothesis_count(c, nc);
        assert!(
            count <= Self::MAX_HYPOTHESES,
            "exhaustive ML over {count} hypotheses is infeasible; use a sphere decoder"
        );
        let pts = c.points();
        let mut stats = DetectorStats::default();

        // Depth-first enumeration with incremental partial sums per level to
        // avoid recomputing h·s from scratch for every hypothesis.
        let mut best = (f64::INFINITY, vec![GridPoint::default(); nc]);
        let mut current = vec![GridPoint::default(); nc];
        // partial[l] = y - sum_{j<l} h_col_j * s_j
        let mut partials: Vec<Vec<Complex>> = vec![y.to_vec(); nc + 1];

        #[allow(clippy::too_many_arguments)] // recursion carries the full search state
        fn recurse(
            h: &Matrix,
            pts: &[GridPoint],
            level: usize,
            nc: usize,
            current: &mut Vec<GridPoint>,
            partials: &mut Vec<Vec<Complex>>,
            best: &mut (f64, Vec<GridPoint>),
            stats: &mut DetectorStats,
        ) {
            if level == nc {
                let d: f64 = partials[nc].iter().map(|z| z.norm_sqr()).sum();
                stats.ped_calcs += 1;
                if d < best.0 {
                    *best = (d, current.clone());
                }
                return;
            }
            for &p in pts {
                current[level] = p;
                let contrib = p.to_complex();
                let prev = partials[level].clone();
                let next: Vec<Complex> =
                    prev.iter().enumerate().map(|(r, &v)| v - h[(r, level)] * contrib).collect();
                partials[level + 1] = next;
                recurse(h, pts, level + 1, nc, current, partials, best, stats);
            }
        }

        recurse(h, &pts, 0, nc, &mut current, &mut partials, &mut best, &mut stats);
        Detection { symbols: best.1, stats }
    }

    fn name(&self) -> &'static str {
        "ML (exhaustive)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{apply_channel, residual_norm_sqr};
    use gs_channel::{sample_cn, RayleighChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_noiseless_transmission() {
        let mut rng = StdRng::seed_from_u64(131);
        let c = Constellation::Qam16;
        for _ in 0..20 {
            let h = RayleighChannel::new(2, 2).sample_matrix(&mut rng).scale(c.scale());
            let pts = c.points();
            let s: Vec<GridPoint> = (0..2).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            let y = apply_channel(&h, &s);
            assert_eq!(MlDetector.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn solution_minimizes_residual_over_random_probes() {
        let mut rng = StdRng::seed_from_u64(132);
        let c = Constellation::Qpsk;
        let h = RayleighChannel::new(3, 3).sample_matrix(&mut rng).scale(c.scale());
        let y: Vec<Complex> = (0..3).map(|_| sample_cn(&mut rng, 4.0)).collect();
        let det = MlDetector.detect(&h, &y, c);
        let best = residual_norm_sqr(&h, &y, &det.symbols);
        let pts = c.points();
        for _ in 0..200 {
            let probe: Vec<GridPoint> = (0..3).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
            assert!(residual_norm_sqr(&h, &y, &probe) >= best - 1e-12);
        }
    }

    #[test]
    fn counts_all_hypotheses() {
        let mut rng = StdRng::seed_from_u64(133);
        let c = Constellation::Qpsk;
        let h = RayleighChannel::new(2, 2).sample_matrix(&mut rng).scale(c.scale());
        let y = vec![Complex::ZERO; 2];
        let det = MlDetector.detect(&h, &y, c);
        assert_eq!(det.stats.ped_calcs, 16); // 4^2 leaves
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn refuses_huge_spaces() {
        let h = Matrix::identity(4);
        let y = vec![Complex::ZERO; 4];
        MlDetector.detect(&h, &y, Constellation::Qam256);
    }
}

#[cfg(test)]
mod footnote_tests {
    use super::*;

    /// Total nodes in the sphere-decoding tree: Σ_{l=1..nc} |O|^l — the
    /// quantity the paper's footnote 1 cites ("for a 4×4 MIMO, 16-QAM
    /// system the sphere decoding tree has 6.6×10⁴ nodes, while for
    /// 256-QAM it has 4.3×10⁹ nodes").
    fn tree_nodes(c: Constellation, nc: u32) -> f64 {
        (1..=nc).map(|l| (c.size() as f64).powi(l as i32)).sum()
    }

    #[test]
    fn footnote1_tree_sizes() {
        let n16 = tree_nodes(Constellation::Qam16, 4);
        assert!((n16 / 6.6e4 - 1.0).abs() < 0.06, "16-QAM tree: {n16:.3e}");
        let n256 = tree_nodes(Constellation::Qam256, 4);
        assert!((n256 / 4.3e9 - 1.0).abs() < 0.03, "256-QAM tree: {n256:.3e}");
    }

    #[test]
    fn intro_exhaustive_search_counts() {
        // §2: "an OFDM system with 48 data sub-carriers, four antennas and
        // a 4-QAM constellation … approximately 10⁴ Euclidean distances,
        // but … 64-QAM … approximately 10⁹."
        let d4 = 48.0 * (4f64).powi(4);
        assert!((d4.log10() - 4.0).abs() < 0.3, "4-QAM: {d4:.3e}");
        let d64 = 48.0 * (64f64).powi(4);
        assert!((d64.log10() - 9.0).abs() < 0.3, "64-QAM: {d64:.3e}");
    }
}
