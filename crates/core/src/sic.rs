//! MMSE with successive interference cancellation (MMSE-SIC).
//!
//! The paper's §5.2.1 baseline: "MMSE-SIC receiver processing which orders
//! users by descending SNR, then performs MMSE detection and interference
//! cancellation successively for each user, an approach known to be capable
//! of reaching multi-user capacity". Hard decisions are subtracted, so
//! error propagation — the effect the paper identifies as MMSE-SIC's
//! practical weakness — is modeled faithfully.
//!
//! The per-stage filters (one regularized pseudo-inverse per
//! remaining-stream sub-channel) depend only on the channel and the
//! regularizer, so they live in a [`FilterCache`]: a single detection
//! builds one entry and uses it, the batch entry points share a cache so
//! each distinct channel's stage filters are built once per batch — with
//! bit-identical outputs either way.

use crate::detector::{Detection, DetectorWorkspace, MimoDetector};
use crate::filter_cache::{compute_sic_filters, FilterCache, SicFilters};
use crate::stats::DetectorStats;
use gs_linalg::{Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};

/// Scratch owned by the SIC batch workspace: the stage-filter cache plus
/// the residual buffer.
#[derive(Default)]
pub(crate) struct SicScratch {
    pub(crate) cache: FilterCache,
    pub(crate) residual: Vec<Complex>,
}

/// Runs the SIC stage loop over precomputed filters. Operation counts
/// replicate the seed implementation exactly: per stage, applying the
/// stage filter is billed at `rows × remaining` complex multiplications
/// plus `rows` for the hard-decision cancellation.
fn apply_sic(
    filters: &SicFilters,
    h: &Matrix,
    y: &[Complex],
    c: Constellation,
    residual: &mut Vec<Complex>,
) -> Detection {
    let nc = h.cols();
    let na = h.rows();
    let mut stats = DetectorStats::default();
    residual.clear();
    residual.extend_from_slice(y);
    let mut symbols = vec![GridPoint::default(); nc];

    for (stage, row) in filters.rows.iter().enumerate() {
        let remaining = nc - stage;
        stats.complex_mults += (na * remaining) as u64;
        // Estimate of the strongest remaining stream: the stage's filter
        // row applied to the current residual, through the lane-ordered
        // dot kernel (bit-identical at every SIMD tier).
        let est = gs_linalg::simd::cdot(row, &residual[..row.len()]);
        let stream = filters.order[stage];
        let decided = c.slice(est);
        stats.slices += 1;
        symbols[stream] = decided;
        // Cancel its contribution with the *hard* decision.
        let contrib = decided.to_complex();
        for (r, res) in residual.iter_mut().enumerate() {
            *res -= h[(r, stream)] * contrib;
        }
        stats.complex_mults += na as u64;
    }
    Detection { symbols, stats }
}

/// The MMSE-SIC detector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MmseSicDetector {
    /// Physical complex noise variance `σ²`.
    pub noise_variance: f64,
}

impl MmseSicDetector {
    /// Creates an MMSE-SIC detector for a given noise variance.
    pub fn new(noise_variance: f64) -> Self {
        MmseSicDetector { noise_variance }
    }

    /// One cached-filter SIC detection. Operation counts replicate the
    /// seed implementation exactly: per stage, applying the stage filter is
    /// billed at `rows × remaining` complex multiplications plus `rows`
    /// for the hard-decision cancellation.
    fn detect_cached(
        &self,
        h: &Matrix,
        y: &[Complex],
        c: Constellation,
        channel_idx: usize,
        scratch: &mut SicScratch,
    ) -> Detection {
        let lambda = self.noise_variance / c.energy();
        let SicScratch { cache, residual } = scratch;
        let filters = cache.sic_filters(channel_idx, h, lambda);
        apply_sic(filters, h, y, c, residual)
    }

    fn detect_batch_cached<'j>(
        &self,
        batch: &crate::batch::DetectionBatch,
        jobs: impl Iterator<Item = &'j crate::batch::DetectionJob>,
        ws: &mut DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        let scratch = ws.get_or_insert(SicScratch::default);
        out.clear();
        for job in jobs {
            out.push(self.detect_cached(
                &batch.channels[job.channel],
                &job.y,
                batch.c,
                job.channel,
                scratch,
            ));
        }
    }
}

impl MimoDetector for MmseSicDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        // One-shot path: build this call's filters directly — no snapshot
        // clone, no cache bookkeeping. `apply_sic` fills the residual
        // buffer from `y` itself.
        let filters = compute_sic_filters(h, self.noise_variance / c.energy());
        apply_sic(&filters, h, y, c, &mut Vec::with_capacity(y.len()))
    }

    fn detect_batch_with(
        &self,
        batch: &crate::batch::DetectionBatch,
        ws: &mut DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        self.detect_batch_cached(batch, batch.jobs.iter(), ws, out);
    }

    fn detect_batch_indexed_with(
        &self,
        batch: &crate::batch::DetectionBatch,
        indices: &[usize],
        ws: &mut DetectorWorkspace,
        out: &mut Vec<Detection>,
    ) {
        self.detect_batch_cached(batch, indices.iter().map(|&ix| &batch.jobs[ix]), ws, out);
    }

    fn name(&self) -> &'static str {
        "MMSE-SIC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::apply_channel;
    use crate::linear::ZfDetector;
    use gs_channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symbols(rng: &mut StdRng, c: Constellation, n: usize) -> Vec<GridPoint> {
        let pts = c.points();
        (0..n).map(|_| pts[rng.gen_range(0..pts.len())]).collect()
    }

    #[test]
    fn noiseless_roundtrip() {
        let mut rng = StdRng::seed_from_u64(121);
        let c = Constellation::Qam16;
        let det = MmseSicDetector::new(1e-9);
        for _ in 0..50 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let s = random_symbols(&mut rng, c, 4);
            let y = apply_channel(&h, &s);
            assert_eq!(det.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn sic_beats_zf_on_average() {
        // The paper's Fig. 13: MMSE-SIC significantly outperforms ZF when
        // many streams share the medium.
        let mut rng = StdRng::seed_from_u64(122);
        let c = Constellation::Qpsk;
        let sigma2 = noise_variance_for_snr_db(10.0);
        let sic = MmseSicDetector::new(sigma2);
        let mut zf_errs = 0usize;
        let mut sic_errs = 0usize;
        for _ in 0..300 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let s = random_symbols(&mut rng, c, 4);
            let mut y = apply_channel(&h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, sigma2);
            }
            zf_errs +=
                ZfDetector.detect(&h, &y, c).symbols.iter().zip(&s).filter(|(a, b)| a != b).count();
            sic_errs +=
                sic.detect(&h, &y, c).symbols.iter().zip(&s).filter(|(a, b)| a != b).count();
        }
        assert!(sic_errs < zf_errs, "SIC {sic_errs} vs ZF {zf_errs}");
    }

    #[test]
    fn detects_in_descending_snr_order() {
        // Make stream 1 overwhelmingly strong; SIC must still decode the
        // weak stream correctly after cancelling the strong one (noiseless).
        let c = Constellation::Qpsk;
        let h = Matrix::from_rows(
            2,
            2,
            &[Complex::real(0.1), Complex::real(3.0), Complex::real(0.1), Complex::real(-3.0)],
        );
        let s = vec![GridPoint { i: 1, q: -1 }, GridPoint { i: -1, q: 1 }];
        let y = apply_channel(&h, &s);
        let det = MmseSicDetector::new(1e-9).detect(&h, &y, c);
        assert_eq!(det.symbols, s);
    }

    #[test]
    fn batch_with_matches_per_call_detect() {
        let mut rng = StdRng::seed_from_u64(123);
        let c = Constellation::Qam16;
        let det = MmseSicDetector::new(0.05);
        let channels: Vec<Matrix> = (0..2)
            .map(|_| RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale()))
            .collect();
        let jobs: Vec<crate::batch::DetectionJob> = (0..10)
            .map(|j| {
                let channel = j % 2;
                let s = random_symbols(&mut rng, c, 4);
                let mut y = apply_channel(&channels[channel], &s);
                for v in y.iter_mut() {
                    *v += sample_cn(&mut rng, 0.05);
                }
                crate::batch::DetectionJob { channel, y }
            })
            .collect();
        let batch = crate::batch::DetectionBatch { channels: &channels, jobs: &jobs, c };
        let reference = batch.detect_serial(&det);
        let mut ws = det.make_batch_workspace();
        let mut out = Vec::new();
        for pass in 0..2 {
            det.detect_batch_with(&batch, &mut ws, &mut out);
            for (k, (a, b)) in out.iter().zip(&reference).enumerate() {
                assert_eq!(a.symbols, b.symbols, "pass {pass} job {k}");
                assert_eq!(a.stats, b.stats, "pass {pass} job {k}");
            }
        }
    }
}
