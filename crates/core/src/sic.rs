//! MMSE with successive interference cancellation (MMSE-SIC).
//!
//! The paper's §5.2.1 baseline: "MMSE-SIC receiver processing which orders
//! users by descending SNR, then performs MMSE detection and interference
//! cancellation successively for each user, an approach known to be capable
//! of reaching multi-user capacity". Hard decisions are subtracted, so
//! error propagation — the effect the paper identifies as MMSE-SIC's
//! practical weakness — is modeled faithfully.

use crate::detector::{Detection, MimoDetector};
use crate::stats::DetectorStats;
use gs_linalg::{regularized_pseudo_inverse, Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};

/// The MMSE-SIC detector.
#[derive(Clone, Copy, Debug)]
pub struct MmseSicDetector {
    /// Physical complex noise variance `σ²`.
    pub noise_variance: f64,
}

impl MmseSicDetector {
    /// Creates an MMSE-SIC detector for a given noise variance.
    pub fn new(noise_variance: f64) -> Self {
        MmseSicDetector { noise_variance }
    }
}

impl MimoDetector for MmseSicDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        let nc = h.cols();
        let mut stats = DetectorStats::default();
        let lambda = self.noise_variance / c.energy();

        // Detection order: descending received SNR = descending column norm.
        let mut order: Vec<usize> = (0..nc).collect();
        let norms: Vec<f64> =
            (0..nc).map(|k| h.col(k).iter().map(|z| z.norm_sqr()).sum()).collect();
        order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).unwrap());

        let mut residual: Vec<Complex> = y.to_vec();
        let mut remaining: Vec<usize> = order.clone(); // original column ids, strongest first
        let mut symbols = vec![GridPoint::default(); nc];

        while !remaining.is_empty() {
            // Channel restricted to the remaining streams.
            let sub = Matrix::from_fn(h.rows(), remaining.len(), |r, k| h[(r, remaining[k])]);
            stats.complex_mults += (sub.rows() * sub.cols()) as u64;
            let filt = match regularized_pseudo_inverse(&sub, lambda) {
                Ok(w) => w,
                Err(_) => sub.hermitian(),
            };
            let est = filt.mul_vec(&residual);
            // Detect the strongest remaining stream (position 0 in
            // `remaining` — kept sorted by the initial SNR order).
            let stream = remaining[0];
            let decided = c.slice(est[0]);
            stats.slices += 1;
            symbols[stream] = decided;
            // Cancel its contribution with the *hard* decision.
            let contrib = decided.to_complex();
            for (r, res) in residual.iter_mut().enumerate() {
                *res -= h[(r, stream)] * contrib;
            }
            stats.complex_mults += h.rows() as u64;
            remaining.remove(0);
        }
        Detection { symbols, stats }
    }

    fn name(&self) -> &'static str {
        "MMSE-SIC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::apply_channel;
    use crate::linear::ZfDetector;
    use gs_channel::{noise_variance_for_snr_db, sample_cn, RayleighChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symbols(rng: &mut StdRng, c: Constellation, n: usize) -> Vec<GridPoint> {
        let pts = c.points();
        (0..n).map(|_| pts[rng.gen_range(0..pts.len())]).collect()
    }

    #[test]
    fn noiseless_roundtrip() {
        let mut rng = StdRng::seed_from_u64(121);
        let c = Constellation::Qam16;
        let det = MmseSicDetector::new(1e-9);
        for _ in 0..50 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let s = random_symbols(&mut rng, c, 4);
            let y = apply_channel(&h, &s);
            assert_eq!(det.detect(&h, &y, c).symbols, s);
        }
    }

    #[test]
    fn sic_beats_zf_on_average() {
        // The paper's Fig. 13: MMSE-SIC significantly outperforms ZF when
        // many streams share the medium.
        let mut rng = StdRng::seed_from_u64(122);
        let c = Constellation::Qpsk;
        let sigma2 = noise_variance_for_snr_db(10.0);
        let sic = MmseSicDetector::new(sigma2);
        let mut zf_errs = 0usize;
        let mut sic_errs = 0usize;
        for _ in 0..300 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let s = random_symbols(&mut rng, c, 4);
            let mut y = apply_channel(&h, &s);
            for v in y.iter_mut() {
                *v += sample_cn(&mut rng, sigma2);
            }
            zf_errs +=
                ZfDetector.detect(&h, &y, c).symbols.iter().zip(&s).filter(|(a, b)| a != b).count();
            sic_errs +=
                sic.detect(&h, &y, c).symbols.iter().zip(&s).filter(|(a, b)| a != b).count();
        }
        assert!(sic_errs < zf_errs, "SIC {sic_errs} vs ZF {zf_errs}");
    }

    #[test]
    fn detects_in_descending_snr_order() {
        // Make stream 1 overwhelmingly strong; SIC must still decode the
        // weak stream correctly after cancelling the strong one (noiseless).
        let c = Constellation::Qpsk;
        let h = Matrix::from_rows(
            2,
            2,
            &[Complex::real(0.1), Complex::real(3.0), Complex::real(0.1), Complex::real(-3.0)],
        );
        let s = vec![GridPoint { i: 1, q: -1 }, GridPoint { i: -1, q: 1 }];
        let y = apply_channel(&h, &s);
        let det = MmseSicDetector::new(1e-9).detect(&h, &y, c);
        assert_eq!(det.symbols, s);
    }
}
