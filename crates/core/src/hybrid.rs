//! Condition-number-threshold hybrid detection (related work, §6.1).
//!
//! Maurer et al. propose "a system that switches between zero-forcing and
//! maximum-likelihood decoding via a threshold test on the channel
//! condition number". The paper argues Geosphere makes this design
//! unnecessary — its complexity *self-adjusts* to channel conditioning
//! ("complexity at high SNR is actually very small, obviating the need for
//! a hybrid system") — and flags that Maurer gives no way to choose the
//! threshold. This implementation exists to let the benches make that
//! argument quantitatively.

use crate::detector::{Detection, MimoDetector};
use crate::linear::ZfDetector;
use crate::sphere::{GeosphereFactory, SphereDecoder};
use gs_linalg::{condition_number_sqr_db, Complex, Matrix};
use gs_modulation::Constellation;

/// ZF below a κ² threshold, Geosphere above it.
#[derive(Clone, Copy, Debug)]
pub struct HybridDetector {
    /// Switching threshold on κ²(H) in dB.
    pub kappa_sqr_threshold_db: f64,
}

impl HybridDetector {
    /// Creates a hybrid with the given κ² (dB) switching threshold.
    pub fn new(kappa_sqr_threshold_db: f64) -> Self {
        HybridDetector { kappa_sqr_threshold_db }
    }
}

impl MimoDetector for HybridDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        if condition_number_sqr_db(h) <= self.kappa_sqr_threshold_db {
            ZfDetector.detect(h, y, c)
        } else {
            SphereDecoder::new(GeosphereFactory::full()).detect(h, y, c)
        }
    }

    fn name(&self) -> &'static str {
        "Hybrid (ZF/Geosphere)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::apply_channel;
    use gs_channel::RayleighChannel;
    use gs_modulation::GridPoint;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn uses_zf_on_well_conditioned_channel() {
        // Identity channel: κ² = 0 dB, must take the ZF path (no PEDs).
        let c = Constellation::Qam16;
        let h = Matrix::identity(2).scale(c.scale());
        let s = vec![GridPoint { i: 1, q: 1 }, GridPoint { i: -3, q: 3 }];
        let y = apply_channel(&h, &s);
        let det = HybridDetector::new(10.0).detect(&h, &y, c);
        assert_eq!(det.symbols, s);
        assert_eq!(det.stats.ped_calcs, 0, "well-conditioned ⇒ ZF path");
    }

    #[test]
    fn uses_sphere_on_ill_conditioned_channel() {
        let c = Constellation::Qam16;
        // Nearly parallel columns: κ² large.
        let h = Matrix::from_rows(
            2,
            2,
            &[Complex::real(1.0), Complex::real(0.98), Complex::real(1.0), Complex::real(1.02)],
        )
        .scale(c.scale());
        let s = vec![GridPoint { i: 1, q: -1 }, GridPoint { i: 3, q: 1 }];
        let y = apply_channel(&h, &s);
        let det = HybridDetector::new(10.0).detect(&h, &y, c);
        assert!(det.stats.ped_calcs > 0, "ill-conditioned ⇒ sphere path");
        assert_eq!(det.symbols, s, "noiseless: sphere path is exact");
    }

    #[test]
    fn always_valid_output() {
        let mut rng = StdRng::seed_from_u64(801);
        let c = Constellation::Qam64;
        let det = HybridDetector::new(12.0);
        for _ in 0..30 {
            let h = RayleighChannel::new(4, 4).sample_matrix(&mut rng).scale(c.scale());
            let y: Vec<Complex> = (0..4).map(|_| gs_channel::sample_cn(&mut rng, 1.0)).collect();
            let d = det.detect(&h, &y, c);
            assert_eq!(d.symbols.len(), 4);
            for p in &d.symbols {
                assert!(c.is_valid_coord(p.i) && c.is_valid_coord(p.q));
            }
            let _ = rng.gen::<u8>();
        }
    }
}
