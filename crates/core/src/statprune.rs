//! Statistical (probabilistic) pruning (related work, §6.1).
//!
//! Cui et al. propose pruning tree branches whose partial distance exceeds
//! a *statistically chosen* per-level threshold rather than the sphere
//! radius, trading maximum-likelihood optimality for complexity. The paper
//! notes such schemes "incur a significant loss of performance in order to
//! achieve non-negligible complexity gains, making their proposals
//! unsuitable for practical use" — this implementation lets the ablation
//! benches show that trade-off against Geosphere's lossless pruning.
//!
//! The per-level budget scales the noise power: a partial vector over the
//! last `m` levels accumulates noise `≈ m·σ²` in expectation, so the
//! threshold is `β·m·σ²` intersected with the running radius. `β → ∞`
//! recovers exact ML.

use crate::detector::{Detection, MimoDetector};
use crate::sphere::enumerator::{EnumeratorFactory, NodeEnumerator};
use crate::sphere::geosphere_enum::GeosphereFactory;
use crate::stats::DetectorStats;
use gs_linalg::{qr_decompose, Complex, Matrix};
use gs_modulation::{Constellation, GridPoint};

/// Depth-first sphere decoder with statistical per-level pruning.
#[derive(Clone, Copy, Debug)]
pub struct StatisticalPruningDetector {
    /// Pruning aggressiveness: per-level distance budget is
    /// `beta · levels_decided · σ²`. Typical values 4–16.
    pub beta: f64,
    /// Complex noise variance σ².
    pub noise_variance: f64,
}

impl StatisticalPruningDetector {
    /// Creates the detector.
    pub fn new(beta: f64, noise_variance: f64) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        StatisticalPruningDetector { beta, noise_variance }
    }
}

impl MimoDetector for StatisticalPruningDetector {
    fn detect(&self, h: &Matrix, y: &[Complex], c: Constellation) -> Detection {
        let mut stats = DetectorStats::default();
        let nc = h.cols();
        let qr = qr_decompose(h);
        let yhat_full = qr.rotate(y);
        let yhat = &yhat_full[..nc];
        let r = &qr.r;

        // Iterative DFS identical to the engine but with the statistical
        // level cap layered on top of the shrinking radius. Search state
        // follows the same slab discipline as the engine: one reusable
        // enumerator slot per level, reset per node visit (`make_in`).
        let factory = GeosphereFactory::full();
        let mut radius = f64::INFINITY;
        let mut best: Option<(f64, Vec<GridPoint>)> = None;
        let mut chosen = vec![GridPoint::default(); nc];
        let mut enums: Vec<Option<_>> = (0..nc).map(|_| None).collect();
        let mut dist_above = vec![0.0f64; nc];

        let open = |i: usize,
                    da: f64,
                    chosen: &[GridPoint],
                    enums: &mut [Option<_>],
                    dist_above: &mut [f64],
                    stats: &mut DetectorStats| {
            let mut acc = yhat[i];
            for j in (i + 1)..nc {
                acc -= r[(i, j)] * chosen[j].to_complex();
            }
            stats.complex_mults += (nc - 1 - i) as u64;
            let rll = r[(i, i)].re;
            let center = if rll > f64::EPSILON { acc / rll } else { Complex::ZERO };
            factory.make_in(&mut enums[i], c, center, rll * rll, stats);
            dist_above[i] = da;
        };

        let mut i = nc - 1;
        open(i, 0.0, &chosen, &mut enums, &mut dist_above, &mut stats);
        loop {
            // Statistical cap: levels decided so far once this child lands.
            let decided = (nc - i) as f64;
            let cap = (self.beta * decided * self.noise_variance).min(radius);
            let budget = cap - dist_above[i];
            let step = enums[i].as_mut().expect("level open").next_child(budget, &mut stats);
            match step {
                Some(ch) if dist_above[i] + ch.cost < cap => {
                    stats.visited_nodes += 1;
                    let dist = dist_above[i] + ch.cost;
                    chosen[i] = ch.point;
                    if i == 0 {
                        if dist < radius {
                            radius = dist;
                            best = Some((dist, chosen.clone()));
                        }
                    } else {
                        i -= 1;
                        open(i, dist, &chosen, &mut enums, &mut dist_above, &mut stats);
                    }
                }
                _ => {
                    if i == nc - 1 {
                        break;
                    }
                    i += 1;
                }
            }
        }

        let symbols = match best {
            Some((_, s)) => s,
            // Over-aggressive pruning can kill every path; fall back to a
            // greedy decision-feedback pass so output stays valid.
            None => {
                let mut out: Vec<GridPoint> = Vec::with_capacity(nc);
                for idx in (0..nc).rev() {
                    let mut acc = yhat[idx];
                    for j in (idx + 1)..nc {
                        acc -= r[(idx, j)] * out[nc - 1 - j].to_complex();
                    }
                    let rll = r[(idx, idx)].re;
                    let center = if rll > f64::EPSILON { acc / rll } else { Complex::ZERO };
                    out.push(c.slice(center));
                    stats.slices += 1;
                }
                out.reverse();
                out
            }
        };
        Detection { symbols, stats }
    }

    fn name(&self) -> &'static str {
        "Statistical pruning SD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{apply_channel, residual_norm_sqr};
    use crate::ml::MlDetector;
    use crate::sphere::SphereDecoder;
    use gs_channel::{sample_cn, RayleighChannel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn problem(rng: &mut StdRng, c: Constellation, noise: f64) -> (Matrix, Vec<Complex>) {
        let h = RayleighChannel::new(3, 3).sample_matrix(rng).scale(c.scale());
        let pts = c.points();
        let s: Vec<_> = (0..3).map(|_| pts[rng.gen_range(0..pts.len())]).collect();
        let mut y = apply_channel(&h, &s);
        for v in y.iter_mut() {
            *v += sample_cn(rng, noise);
        }
        (h, y)
    }

    #[test]
    fn huge_beta_recovers_ml() {
        let mut rng = StdRng::seed_from_u64(811);
        let c = Constellation::Qam16;
        let det = StatisticalPruningDetector::new(1e12, 0.1);
        for _ in 0..25 {
            let (h, y) = problem(&mut rng, c, 0.3);
            let sp = residual_norm_sqr(&h, &y, &det.detect(&h, &y, c).symbols);
            let ml = residual_norm_sqr(&h, &y, &MlDetector.detect(&h, &y, c).symbols);
            assert!((sp - ml).abs() < 1e-9);
        }
    }

    #[test]
    fn aggressive_beta_cuts_nodes_but_loses_ml() {
        let mut rng = StdRng::seed_from_u64(812);
        let c = Constellation::Qam16;
        let sigma2 = 0.3;
        let tight = StatisticalPruningDetector::new(2.0, sigma2);
        let exact = SphereDecoder::new(GeosphereFactory::full());
        let mut tight_nodes = 0u64;
        let mut exact_nodes = 0u64;
        let mut ml_misses = 0usize;
        for _ in 0..60 {
            let (h, y) = problem(&mut rng, c, sigma2);
            let td = tight.detect(&h, &y, c);
            let ed = exact.detect(&h, &y, c);
            tight_nodes += td.stats.visited_nodes;
            exact_nodes += ed.stats.visited_nodes;
            let tr = residual_norm_sqr(&h, &y, &td.symbols);
            let er = residual_norm_sqr(&h, &y, &ed.symbols);
            if tr > er + 1e-9 {
                ml_misses += 1;
            }
        }
        assert!(tight_nodes < exact_nodes, "{tight_nodes} vs {exact_nodes}");
        assert!(ml_misses > 0, "a β=2 pruner should miss ML sometimes");
    }

    #[test]
    fn zero_noise_fallback_is_valid() {
        // β·σ² = 0 budget prunes everything; fallback must still return
        // valid symbols.
        let mut rng = StdRng::seed_from_u64(813);
        let c = Constellation::Qpsk;
        let det = StatisticalPruningDetector::new(4.0, 0.0);
        let (h, y) = problem(&mut rng, c, 0.0);
        let d = det.detect(&h, &y, c);
        assert_eq!(d.symbols.len(), 3);
        // Noiseless + greedy fallback actually decodes correctly here.
        assert!(residual_norm_sqr(&h, &y, &d.symbols) < 1e-9);
    }
}
