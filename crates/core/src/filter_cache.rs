//! Per-channel cached filter state for the non-sphere detectors.
//!
//! The linear (ZF/MMSE) and MMSE-SIC detectors spend most of their time
//! *constructing* filters — pseudo-inverses and per-stage SIC rows — that
//! depend only on the channel, not on the received vector. An OFDM frame
//! reuses each subcarrier's channel across every OFDM symbol, so a batch
//! of `n_sym × n_subcarriers` detections needs only `n_subcarriers`
//! distinct filter sets. [`FilterCache`] holds them, keyed by the batch's
//! channel index, exactly as the sphere decoders cache QR factorizations
//! in their [`SearchWorkspace`](crate::SearchWorkspace).
//!
//! **Invalidation.** Every lookup compares the cached channel snapshot
//! (and regularizer) against the caller's matrix entry-by-entry; any CSI
//! change — a new channel realization, an updated estimate mid-run —
//! triggers recomputation automatically. [`FilterCache::invalidate`] drops
//! everything explicitly. The comparison is exact (`f64` equality), so a
//! cached filter is only ever used for bit-for-bit the channel it was
//! built from; cached and uncached detection are therefore bit-identical
//! (`tests/filter_cache_conformance.rs` enforces this).

use gs_linalg::{pseudo_inverse, regularized_pseudo_inverse, Complex, Matrix};

/// Precomputed MMSE-SIC stage state for one channel: the SNR detection
/// order and, per stage, the filter row that estimates the strongest
/// remaining stream.
#[derive(Clone, Debug)]
pub struct SicFilters {
    /// Stream indices in detection order (descending column norm).
    pub order: Vec<usize>,
    /// `rows[stage]` is row 0 of the stage's regularized pseudo-inverse
    /// (matched-filter row on singular sub-channels): the estimate of the
    /// stage's stream is `rows[stage] · residual`.
    pub rows: Vec<Vec<Complex>>,
}

/// Precomputed per-stream column outer products for soft-PIC MMSE
/// covariance assembly: `outer[cl][(r1, r2)] = h[(r1, cl)] · h[(r2, cl)]*`.
///
/// The iterative MMSE-PIC receiver rebuilds a residual covariance from
/// these per resource element; caching them amortizes the products across
/// a frame's OFDM symbols and turbo iterations.
#[derive(Clone, Debug)]
pub struct PicGram {
    /// One `na × na` outer-product matrix per transmit stream.
    pub outer: Vec<Matrix>,
}

/// One cached entry: the channel snapshot the filters were built from,
/// the regularizer used, and the filter state itself.
struct FilterEntry {
    snapshot: Matrix,
    lambda: Option<f64>,
    kind: FilterKind,
}

enum FilterKind {
    Linear(Matrix),
    Sic(SicFilters),
    Pic(PicGram),
}

/// Builds the linear filter `W` for one channel: the pseudo-inverse
/// (`lambda = None`, zero-forcing) or the regularized pseudo-inverse
/// (`lambda = Some(λ)`, MMSE), with the matched-filter `H*` fallback on
/// singular channels. Shared by the cache and the one-shot `detect` paths
/// so there is exactly one implementation of the seed math.
pub(crate) fn compute_linear_filter(h: &Matrix, lambda: Option<f64>) -> Matrix {
    let filt = match lambda {
        None => pseudo_inverse(h),
        Some(l) => regularized_pseudo_inverse(h, l),
    };
    filt.unwrap_or_else(|_| h.hermitian())
}

/// Builds the MMSE-SIC stage filters for one channel, in the seed
/// implementation's exact order: streams sorted by descending column
/// norm, one regularized pseudo-inverse per remaining-stream sub-channel
/// (matched-filter fallback when singular).
pub(crate) fn compute_sic_filters(h: &Matrix, lambda: f64) -> SicFilters {
    let nc = h.cols();
    let mut order: Vec<usize> = (0..nc).collect();
    let norms: Vec<f64> = (0..nc).map(|k| h.col(k).iter().map(|z| z.norm_sqr()).sum()).collect();
    order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).unwrap());

    let mut rows = Vec::with_capacity(nc);
    let mut remaining = order.clone();
    while !remaining.is_empty() {
        let sub = Matrix::from_fn(h.rows(), remaining.len(), |r, k| h[(r, remaining[k])]);
        let filt = match regularized_pseudo_inverse(&sub, lambda) {
            Ok(w) => w,
            Err(_) => sub.hermitian(),
        };
        rows.push(filt.row(0).to_vec());
        remaining.remove(0);
    }
    SicFilters { order, rows }
}

/// Per-channel cached filters, keyed by a batch's channel index and
/// invalidated automatically when the channel's contents (or the
/// regularizer) change. See the module docs.
#[derive(Default)]
pub struct FilterCache {
    entries: Vec<Option<FilterEntry>>,
}

impl FilterCache {
    /// Creates an empty cache; entries are built on first lookup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every cached entry, forcing recomputation on next lookup.
    /// Lookups also self-invalidate on any CSI change; this is for callers
    /// that want to release the memory or be explicit.
    pub fn invalidate(&mut self) {
        self.entries.clear();
    }

    /// Whether the entry for `idx` currently holds filters built from
    /// exactly `h` with regularizer `lambda` (testing/introspection hook).
    pub fn is_fresh(&self, idx: usize, h: &Matrix, lambda: Option<f64>) -> bool {
        matches!(
            self.entries.get(idx),
            Some(Some(e)) if e.snapshot == *h && e.lambda == lambda
        )
    }

    fn entry(
        &mut self,
        idx: usize,
        h: &Matrix,
        lambda: Option<f64>,
        build: impl FnOnce() -> FilterKind,
        matches_kind: impl Fn(&FilterKind) -> bool,
    ) -> &FilterEntry {
        if self.entries.len() <= idx {
            self.entries.resize_with(idx + 1, || None);
        }
        let slot = &mut self.entries[idx];
        let stale = !matches!(
            slot,
            Some(e) if e.lambda == lambda && e.snapshot == *h && matches_kind(&e.kind)
        );
        if stale {
            let _prof = gs_prof::scope(gs_prof::Stage::Filter);
            *slot = Some(FilterEntry { snapshot: h.clone(), lambda, kind: build() });
        }
        slot.as_ref().expect("entry just ensured")
    }

    /// The linear filter `W` for channel `idx`: the pseudo-inverse
    /// (`lambda = None`, zero-forcing) or the regularized pseudo-inverse
    /// (`lambda = Some(λ)`, MMSE), with the matched-filter `H*` fallback on
    /// singular channels — exactly the per-call computation the linear
    /// detectors used to repeat per detection.
    pub fn linear_filter(&mut self, idx: usize, h: &Matrix, lambda: Option<f64>) -> &Matrix {
        let entry = self.entry(
            idx,
            h,
            lambda,
            || FilterKind::Linear(compute_linear_filter(h, lambda)),
            |k| matches!(k, FilterKind::Linear(_)),
        );
        match &entry.kind {
            FilterKind::Linear(w) => w,
            _ => unreachable!("entry built as Linear"),
        }
    }

    /// The MMSE-SIC stage filters for channel `idx` (see [`SicFilters`]),
    /// built with regularizer `lambda` in the seed implementation's exact
    /// order: streams sorted by descending column norm, one regularized
    /// pseudo-inverse per remaining-stream sub-channel.
    pub fn sic_filters(&mut self, idx: usize, h: &Matrix, lambda: f64) -> &SicFilters {
        let entry = self.entry(
            idx,
            h,
            Some(lambda),
            || FilterKind::Sic(compute_sic_filters(h, lambda)),
            |k| matches!(k, FilterKind::Sic(_)),
        );
        match &entry.kind {
            FilterKind::Sic(s) => s,
            _ => unreachable!("entry built as Sic"),
        }
    }

    /// The per-stream column outer products for channel `idx` (see
    /// [`PicGram`]).
    pub fn pic_gram(&mut self, idx: usize, h: &Matrix) -> &PicGram {
        let entry = self.entry(
            idx,
            h,
            None,
            || {
                let outer = (0..h.cols())
                    .map(|cl| {
                        Matrix::from_fn(h.rows(), h.rows(), |r1, r2| {
                            h[(r1, cl)] * h[(r2, cl)].conj()
                        })
                    })
                    .collect();
                FilterKind::Pic(PicGram { outer })
            },
            |k| matches!(k, FilterKind::Pic(_)),
        );
        match &entry.kind {
            FilterKind::Pic(g) => g,
            _ => unreachable!("entry built as Pic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_channel::RayleighChannel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_entry_rebuilt_on_csi_change() {
        let mut rng = StdRng::seed_from_u64(801);
        let h1 = RayleighChannel::new(4, 2).sample_matrix(&mut rng);
        let h2 = RayleighChannel::new(4, 2).sample_matrix(&mut rng);
        let mut cache = FilterCache::new();
        let w1 = cache.linear_filter(0, &h1, None).clone();
        assert!(cache.is_fresh(0, &h1, None));
        let w2 = cache.linear_filter(0, &h2, None).clone();
        assert!(cache.is_fresh(0, &h2, None));
        assert!(!cache.is_fresh(0, &h1, None));
        assert!(w1.max_abs_diff(&w2) > 1e-9, "different channels must give different filters");
        // Back to h1: recomputed, identical to the first build.
        let w1b = cache.linear_filter(0, &h1, None);
        assert_eq!(w1.max_abs_diff(w1b), 0.0);
    }

    #[test]
    fn lambda_change_invalidates() {
        let mut rng = StdRng::seed_from_u64(802);
        let h = RayleighChannel::new(3, 3).sample_matrix(&mut rng);
        let mut cache = FilterCache::new();
        cache.linear_filter(0, &h, Some(0.1));
        assert!(cache.is_fresh(0, &h, Some(0.1)));
        cache.linear_filter(0, &h, Some(0.2));
        assert!(!cache.is_fresh(0, &h, Some(0.1)));
        assert!(cache.is_fresh(0, &h, Some(0.2)));
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut rng = StdRng::seed_from_u64(803);
        let h = RayleighChannel::new(2, 2).sample_matrix(&mut rng);
        let mut cache = FilterCache::new();
        cache.linear_filter(3, &h, None);
        assert!(cache.is_fresh(3, &h, None));
        cache.invalidate();
        assert!(!cache.is_fresh(3, &h, None));
    }

    #[test]
    fn pic_gram_matches_direct_products() {
        let mut rng = StdRng::seed_from_u64(804);
        let h = RayleighChannel::new(4, 3).sample_matrix(&mut rng);
        let mut cache = FilterCache::new();
        let gram = cache.pic_gram(0, &h);
        for cl in 0..3 {
            for r1 in 0..4 {
                for r2 in 0..4 {
                    assert_eq!(gram.outer[cl][(r1, r2)], h[(r1, cl)] * h[(r2, cl)].conj());
                }
            }
        }
    }
}
