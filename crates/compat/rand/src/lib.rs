//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so this crate vendors the
//! subset of the `rand` 0.8 API the workspace actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], a xoshiro256++ core seeded
//! through SplitMix64), the [`Rng`] extension methods `gen`, `gen_range`,
//! and `gen_bool`, and the [`SeedableRng::seed_from_u64`] constructor.
//!
//! Determinism contract: for a given seed, the stream of `next_u64` values
//! is fixed forever — experiment seeds and test vectors depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the "standard" distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Rejection sampling over the widest zone that divides
                // evenly by `span`, so small ranges stay exactly uniform.
                let zone = u128::from(u64::MAX) + 1;
                let limit = zone - zone % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < limit {
                        return (self.start as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64` → uniform `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open).
    fn gen_range<Rge: SampleRange>(&mut self, range: Rge) -> Rge::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded through SplitMix64 —
    /// the workspace's only generator (the real `StdRng` is ChaCha-based;
    /// only the determinism-per-seed contract matters here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for code written against `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_usize_covers_all_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_negative_ints() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
