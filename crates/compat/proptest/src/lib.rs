//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API the workspace tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`, range/tuple/[`strategy::Just`]
//! strategies, [`prop_oneof!`], [`collection::vec`], [`arbitrary::any`],
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case panics with the sampled inputs in
//!   the message; the per-test RNG seed is derived only from the test name,
//!   so every failure replays identically under `cargo test`.
//! - Sampling is driven by the workspace's deterministic [`rand`] shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Used by the `proptest!` macro expansion so consumer crates don't need
// their own `rand` dependency.
#[doc(hidden)]
pub use rand as __rand;

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Uniform choice among boxed strategies — the engine of
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics when `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let k = rng.gen_range(0..self.options.len());
            self.options[k].sample(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_sample(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut StdRng) -> f64 {
            // Bounded, finite: the workspace only needs well-behaved reals.
            rng.gen_range(-1.0e6..1.0e6)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..<$t>::MAX)
                }
            }
        )*};
    }
    arb_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    /// Strategy yielding arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Acceptable size arguments for [`vec()`]: an exact length or a range.
    pub trait IntoSizeRange {
        /// Converts to a half-open `[min, max)` length range.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    /// Strategy yielding vectors of `elem` with length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Builds a vector strategy.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let size = size.into_size_range();
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases each property test runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Stable per-test seed: FNV-1a over the test's name, so a failing
    /// case replays identically on the next `cargo test` run.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    // Leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    // Internal: done.
    (@munch ($cfg:expr)) => {};
    // Internal: one test fn, then recurse.
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
            for _ in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                { $body }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    // No config attribute: use the default.
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -2.0f64..2.0) {
            prop_assert!(x < 10);
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn oneof_yields_only_listed(v in prop_oneof![Just(1u32), Just(5u32), Just(9u32)]) {
            prop_assert!(v == 1u32 || v == 5u32 || v == 9u32);
        }

        #[test]
        fn vec_respects_size_range(v in crate::collection::vec(any::<bool>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn vec_exact_size(v in crate::collection::vec(0i32..100, 4)) {
            prop_assert_eq!(v.len(), 4);
            for e in v {
                prop_assert!((0..100).contains(&e));
            }
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        use crate::test_runner::seed_for;
        assert_eq!(seed_for("a::b"), seed_for("a::b"));
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }
}
