//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace benches
//! use — `criterion_group!`/`criterion_main!` (both plain and
//! `name/config/targets` forms), benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and `Bencher::iter` —
//! backed by a plain wall-clock sampler that prints mean/min per benchmark.
//! No statistics, HTML reports, or baselines: just honest timings so
//! `cargo bench` runs to completion without registry access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (holds the default sample count).
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, filter: None }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Accepts (and stores) a CLI filter, mirroring criterion's
    /// `configure_from_args`. Only substring filtering is honored.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args.into_iter().find(|a| !a.starts_with('-'));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        run_one(&label, self.sample_size, self.filter.as_deref(), None, &mut f);
        self
    }
}

/// Throughput annotation attached to a group (reported as rate).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.criterion.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.filter.as_deref(),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs a benchmark that borrows a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.filter.as_deref(),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` wall-clock samples (after one
    /// untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    filter: Option<&str>,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !label.contains(pat) {
            return;
        }
    }
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort();
    // Median as the primary estimate: robust to scheduler outliers, which
    // dominate tail samples on small shared machines.
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64()),
        Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64()),
    });
    println!(
        "{label:<60} median {:>12?}  min {:>12?}  ({} samples){}",
        median,
        min,
        sorted.len(),
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        let data = vec![1u64, 2, 3, 4];
        let mut sum = 0u64;
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| sum += d.iter().sum::<u64>());
        });
        g.finish();
        assert!(sum > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
