//! Ray-based geometric scatterer channel model.
//!
//! This is the workspace's substitute for the paper's WARP testbed traces
//! (see DESIGN.md §3). Channel conditioning in the paper is a *geometric*
//! phenomenon — "when reflectors are located solely in the vicinity of one
//! of the endpoints … the result is a very small angular separation of the
//! energy arriving at the other end, and a poorly-conditioned channel
//! matrix" (Fig. 2). We therefore model exactly that mechanism: clients are
//! surrounded by local scatterer clusters; each client→AP column of `H` is
//! a sum of rays through those scatterers, so the angular spread seen at
//! the AP array — and with it κ(H) — is controlled by the cluster radius
//! and the client–AP distance.

use crate::model::{ChannelModel, MimoChannel};
use crate::noise::sample_gaussian;
use gs_linalg::{Complex, Matrix};
use rand::Rng;

/// Speed of light (m/s).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;
/// Carrier frequency (Hz) — the paper's 5 GHz ISM band.
pub const CARRIER_HZ: f64 = 5.0e9;
/// Channel bandwidth (Hz) — the paper's 20 MHz channel.
pub const BANDWIDTH_HZ: f64 = 20.0e6;

/// Carrier wavelength λ (m).
pub fn wavelength() -> f64 {
    SPEED_OF_LIGHT / CARRIER_HZ
}

/// A 2-D position in meters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pos {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
}

impl Pos {
    /// Builds a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Pos { x, y }
    }

    /// Euclidean distance to another position.
    pub fn dist(self, other: Pos) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// The AP's uniform linear antenna array.
#[derive(Clone, Debug)]
pub struct ApArray {
    /// Array center.
    pub center: Pos,
    /// Number of antennas.
    pub num_antennas: usize,
    /// Inter-element spacing (m). The paper uses ≈ 0.20 m (3.2 λ at 5 GHz).
    pub spacing: f64,
    /// Array broadside orientation (radians); elements are laid out along
    /// this direction.
    pub orientation: f64,
}

impl ApArray {
    /// An array with the paper's 20 cm spacing.
    pub fn new(center: Pos, num_antennas: usize, orientation: f64) -> Self {
        ApArray { center, num_antennas, spacing: 0.20, orientation }
    }

    /// Physical position of antenna `l` (0-based).
    pub fn antenna_pos(&self, l: usize) -> Pos {
        let offset = (l as f64 - (self.num_antennas as f64 - 1.0) / 2.0) * self.spacing;
        Pos::new(
            self.center.x + offset * self.orientation.cos(),
            self.center.y + offset * self.orientation.sin(),
        )
    }
}

/// One propagation path from a client to the AP: either line-of-sight or a
/// single bounce off a scatterer.
#[derive(Clone, Debug)]
struct Ray {
    /// Complex gain excluding the carrier-phase term (reflection loss and
    /// per-scatterer random phase).
    gain: Complex,
    /// Total path length in meters (client → [scatterer] → AP antenna
    /// varies per antenna; this stores length to the array *center*, with
    /// per-antenna deltas computed from geometry).
    /// Position of the last bounce (the scatterer, or the client for LOS):
    /// the AP sees the ray arriving from this point.
    source: Pos,
    /// Path length from the client up to `source` (0 for LOS).
    pre_length: f64,
}

/// Geometric channel between a set of single-antenna clients and one AP
/// array, with per-client scatterer clusters.
#[derive(Clone, Debug)]
pub struct GeometricChannel {
    /// The AP array.
    pub ap: ApArray,
    /// Client positions.
    pub clients: Vec<Pos>,
    /// Scatterers per client cluster.
    pub scatterers_per_client: usize,
    /// Cluster radius around each client (m). Smaller radius ⇒ smaller
    /// angular spread at the AP ⇒ worse conditioning (Fig. 2(b)).
    pub cluster_radius: f64,
    /// Rician K-factor for the LOS ray (linear power ratio of LOS to the
    /// scattered sum); 0 disables LOS.
    pub los_k_factor: f64,
    /// Number of OFDM subcarriers to realize.
    pub n_subcarriers: usize,
}

impl GeometricChannel {
    /// An indoor non-line-of-sight profile: rich local scattering, no LOS.
    pub fn indoor_nlos(ap: ApArray, clients: Vec<Pos>) -> Self {
        GeometricChannel {
            ap,
            clients,
            scatterers_per_client: 12,
            cluster_radius: 2.0,
            los_k_factor: 0.0,
            n_subcarriers: 48,
        }
    }

    /// An indoor line-of-sight profile (Rician K = 3 dB ≈ 2.0).
    pub fn indoor_los(ap: ApArray, clients: Vec<Pos>) -> Self {
        GeometricChannel { los_k_factor: 2.0, ..GeometricChannel::indoor_nlos(ap, clients) }
    }

    /// Frequency of subcarrier `k` relative to the carrier.
    fn subcarrier_freq(&self, k: usize) -> f64 {
        if self.n_subcarriers == 1 {
            return CARRIER_HZ;
        }
        let frac = k as f64 / (self.n_subcarriers - 1) as f64 - 0.5;
        CARRIER_HZ + frac * BANDWIDTH_HZ
    }

    /// Draws the ray set for one client.
    fn draw_rays<R: Rng + ?Sized>(&self, rng: &mut R, client: Pos) -> Vec<Ray> {
        let mut rays = Vec::with_capacity(self.scatterers_per_client + 1);
        let n = self.scatterers_per_client.max(1);
        // Scattered rays: random per-scatterer complex gain, equal average
        // power, positions Gaussian around the client.
        let scatter_power = 1.0 / (1.0 + self.los_k_factor);
        let per_ray = (scatter_power / n as f64).sqrt();
        for _ in 0..n {
            let s = Pos::new(
                client.x + sample_gaussian(rng) * self.cluster_radius / 2.0,
                client.y + sample_gaussian(rng) * self.cluster_radius / 2.0,
            );
            let phase = rng.gen::<f64>() * std::f64::consts::TAU;
            let amp = per_ray * (0.5 + rng.gen::<f64>()); // mild power variation
            rays.push(Ray {
                gain: Complex::from_polar(amp, phase),
                source: s,
                pre_length: client.dist(s),
            });
        }
        if self.los_k_factor > 0.0 {
            let los_amp = (self.los_k_factor / (1.0 + self.los_k_factor)).sqrt();
            rays.push(Ray { gain: Complex::real(los_amp), source: client, pre_length: 0.0 });
        }
        rays
    }
}

impl ChannelModel for GeometricChannel {
    fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> MimoChannel {
        let na = self.ap.num_antennas;
        let nc = self.clients.len();
        let ap_pos: Vec<Pos> = (0..na).map(|l| self.ap.antenna_pos(l)).collect();

        // Draw rays once per client, then evaluate per subcarrier.
        let rays_per_client: Vec<Vec<Ray>> =
            self.clients.iter().map(|&c| self.draw_rays(rng, c)).collect();

        let mut mats = Vec::with_capacity(self.n_subcarriers);
        for k in 0..self.n_subcarriers {
            let f = self.subcarrier_freq(k);
            let wavenumber = std::f64::consts::TAU * f / SPEED_OF_LIGHT;
            let mut h = Matrix::zeros(na, nc);
            for (c, rays) in rays_per_client.iter().enumerate() {
                for ray in rays {
                    for (l, &apl) in ap_pos.iter().enumerate() {
                        let length = ray.pre_length + ray.source.dist(apl);
                        h[(l, c)] += ray.gain * Complex::cis(-wavenumber * length);
                    }
                }
            }
            mats.push(h);
        }

        // Normalize each client's column block to unit average entry power
        // across subcarriers so the SNR convention holds per stream (the
        // per-link large-scale SNR is handled by the testbed layer).
        let mut norm = MimoChannel::new(mats);
        let mut col_power = vec![0.0f64; nc];
        for m in norm.iter() {
            for c in 0..nc {
                for r in 0..na {
                    col_power[c] += m[(r, c)].norm_sqr();
                }
            }
        }
        let denom = (na * self.n_subcarriers) as f64;
        let scales: Vec<f64> =
            col_power.iter().map(|&p| if p > 0.0 { (denom / p).sqrt() } else { 1.0 }).collect();
        let rescaled: Vec<Matrix> =
            norm.iter().map(|m| Matrix::from_fn(na, nc, |r, c| m[(r, c)] * scales[c])).collect();
        norm = MimoChannel::new(rescaled);
        norm
    }

    fn num_rx(&self) -> usize {
        self.ap.num_antennas
    }

    fn num_tx(&self) -> usize {
        self.clients.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::lambda_max_db;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ap() -> ApArray {
        ApArray::new(Pos::new(0.0, 0.0), 4, 0.0)
    }

    #[test]
    fn array_geometry() {
        let a = ap();
        assert!((a.antenna_pos(0).x + 0.3).abs() < 1e-12);
        assert!((a.antenna_pos(3).x - 0.3).abs() < 1e-12);
        assert!((a.antenna_pos(1).dist(a.antenna_pos(2)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn realization_shapes_and_power() {
        let mut rng = StdRng::seed_from_u64(91);
        let model =
            GeometricChannel::indoor_nlos(ap(), vec![Pos::new(10.0, 5.0), Pos::new(8.0, -3.0)]);
        let ch = model.realize(&mut rng);
        assert_eq!(ch.num_rx(), 4);
        assert_eq!(ch.num_tx(), 2);
        assert_eq!(ch.num_subcarriers(), 48);
        assert!((ch.average_entry_power() - 1.0).abs() < 1e-9, "column normalization");
    }

    #[test]
    fn smaller_cluster_radius_worsens_conditioning() {
        // The Fig. 2 mechanism: shrinking the scatterer cluster shrinks the
        // angular spread at the AP and should degrade Λ on average.
        let mut rng = StdRng::seed_from_u64(92);
        let clients = vec![
            Pos::new(12.0, 2.0),
            Pos::new(12.5, 0.5),
            Pos::new(11.0, -1.5),
            Pos::new(13.0, 3.0),
        ];
        let trials = 40;

        let avg_lambda = |radius: f64, rng: &mut StdRng| -> f64 {
            let model = GeometricChannel {
                cluster_radius: radius,
                ..GeometricChannel::indoor_nlos(ap(), clients.clone())
            };
            let mut acc = 0.0;
            for _ in 0..trials {
                let ch = model.realize(rng);
                acc += lambda_max_db(ch.subcarrier(0));
            }
            acc / trials as f64
        };

        let narrow = avg_lambda(0.5, &mut rng);
        let wide = avg_lambda(8.0, &mut rng);
        assert!(
            narrow > wide + 3.0,
            "narrow cluster should degrade conditioning: narrow {narrow:.1} dB, wide {wide:.1} dB"
        );
    }

    #[test]
    fn frequency_selectivity_present() {
        let mut rng = StdRng::seed_from_u64(93);
        let model = GeometricChannel::indoor_nlos(ap(), vec![Pos::new(15.0, 4.0)]);
        let ch = model.realize(&mut rng);
        let d = ch.subcarrier(0).max_abs_diff(ch.subcarrier(47));
        assert!(d > 1e-3, "subcarriers should differ, max diff {d}");
    }

    #[test]
    fn los_channel_has_higher_k_factor_energy_focus() {
        let mut rng = StdRng::seed_from_u64(94);
        let clients = vec![Pos::new(10.0, 0.0)];
        let nlos = GeometricChannel::indoor_nlos(ap(), clients.clone());
        let los = GeometricChannel::indoor_los(ap(), clients);
        // LOS realizations vary less across draws (the deterministic ray
        // dominates): compare dispersion of the first entry.
        let spread = |m: &GeometricChannel, rng: &mut StdRng| -> f64 {
            let vals: Vec<Complex> =
                (0..30).map(|_| m.realize(rng).subcarrier(0)[(0, 0)]).collect();
            let mean = vals.iter().fold(Complex::ZERO, |a, &b| a + b) / vals.len() as f64;
            vals.iter().map(|v| (*v - mean).norm_sqr()).sum::<f64>() / vals.len() as f64
        };
        let s_nlos = spread(&nlos, &mut rng);
        let s_los = spread(&los, &mut rng);
        assert!(s_los < s_nlos, "LOS should reduce fading spread: {s_los} vs {s_nlos}");
    }
}
