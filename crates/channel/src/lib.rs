//! # gs-channel
//!
//! MIMO channel substrate for the Geosphere workspace.
//!
//! Provides the two channel families the paper evaluates on — i.i.d.
//! Rayleigh fading for simulation (§5.2.1, §5.3.2) and an emulated indoor
//! office testbed standing in for the WARP measurements (§5.1–5.3) — plus
//! AWGN utilities and the channel-conditioning metrics κ² and Λ that drive
//! the paper's Figures 9 and 10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod geometric;
pub mod metrics;
pub mod model;
pub mod noise;
pub mod rayleigh;
pub mod testbed;
pub mod trace;

pub use dynamics::{
    fading_correlation, DopplerTrajectory, FadingProcess, InterferenceBurst, SnrWalk,
};
pub use geometric::{ApArray, GeometricChannel, Pos};
pub use metrics::{kappa_sqr_db, lambda_max, lambda_max_db, zf_snr_degradation, Cdf};
pub use model::{taps_to_subcarriers, ChannelModel, MimoChannel};
pub use noise::{
    add_awgn, db_to_linear, linear_to_db, noise_variance_for_snr_db, sample_cn, sample_cn_vector,
    sample_gaussian,
};
pub use rayleigh::{RayleighChannel, SelectiveRayleighChannel};
pub use testbed::{Testbed, Wall};
pub use trace::{ChannelTrace, TraceParseError, TraceReplay};
