//! Channel-conditioning metrics (paper §5.1).
//!
//! Two figures of merit characterize how much throughput zero-forcing
//! leaves on the table:
//!
//! - `κ²(H)` in dB — the squared condition number, "a good upper-bound on
//!   the actual noise amplification due to zero-forcing" (Fig. 9);
//! - `λ_k = [H*H]_kk · [(H*H)⁻¹]_kk` — the SNR degradation of stream `k`
//!   under zero-forcing, and `Λ = max_k λ_k`, the worst degradation any
//!   user experiences (Fig. 10).

use gs_linalg::{condition_number_sqr_db, invert, Matrix};

/// `κ²(H)` in decibels (the x-axis of Fig. 9).
pub fn kappa_sqr_db(h: &Matrix) -> f64 {
    condition_number_sqr_db(h)
}

/// Per-stream zero-forcing SNR degradation `λ_k` (linear).
///
/// The SNR of stream `k` over the raw channel is `[H*H]_kk / 2σ²`; after
/// zero-forcing it is `1 / ([(H*H)⁻¹]_kk · 2σ²)`. The ratio is independent
/// of the noise power. Returns `f64::INFINITY` per stream when `H*H` is
/// singular.
pub fn zf_snr_degradation(h: &Matrix) -> Vec<f64> {
    let gram = h.gram();
    let nc = gram.rows();
    match invert(&gram) {
        Ok(inv) => (0..nc).map(|k| (gram[(k, k)].re * inv[(k, k)].re).max(1.0)).collect(),
        Err(_) => vec![f64::INFINITY; nc],
    }
}

/// `Λ` — the worst per-stream ZF SNR degradation, linear.
pub fn lambda_max(h: &Matrix) -> f64 {
    zf_snr_degradation(h).into_iter().fold(1.0, f64::max)
}

/// `Λ` in decibels (the x-axis of Fig. 10).
pub fn lambda_max_db(h: &Matrix) -> f64 {
    10.0 * lambda_max(h).log10()
}

/// An empirical CDF over a set of sample values.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF from raw samples (non-finite samples are clamped to
    /// a large sentinel so "singular channel" still counts as the worst
    /// case rather than vanishing).
    pub fn new(mut samples: Vec<f64>) -> Self {
        const SENTINEL: f64 = 1e9;
        for s in samples.iter_mut() {
            if !s.is_finite() {
                *s = SENTINEL;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `P(X > x)` — e.g. "fraction of links with κ² above 10 dB".
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// The `p`-quantile (`0 ≤ p ≤ 1`), by linear interpolation.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile requires p in [0,1]");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = p * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Samples the CDF curve at `n` evenly spaced probabilities, returning
    /// `(value, probability)` pairs — ready to print as a figure series.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|k| {
                let p = (k as f64 + 0.5) / n as f64;
                (self.quantile(p), p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_linalg::Complex;

    #[test]
    fn identity_channel_has_no_degradation() {
        let h = Matrix::identity(4);
        assert!(kappa_sqr_db(&h).abs() < 1e-9);
        assert!((lambda_max(&h) - 1.0).abs() < 1e-9);
        assert!(lambda_max_db(&h).abs() < 1e-9);
    }

    #[test]
    fn orthogonal_columns_no_degradation() {
        // Unitary-scaled matrix: ZF is lossless.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let h = Matrix::from_rows(
            2,
            2,
            &[Complex::real(s), Complex::real(s), Complex::real(s), Complex::real(-s)],
        );
        assert!((lambda_max(&h) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlated_columns_degrade() {
        // Nearly parallel columns: large kappa and Lambda.
        let h = Matrix::from_rows(
            2,
            2,
            &[Complex::real(1.0), Complex::real(0.99), Complex::real(1.0), Complex::real(1.0)],
        );
        assert!(kappa_sqr_db(&h) > 30.0);
        assert!(lambda_max_db(&h) > 20.0);
    }

    #[test]
    fn lambda_at_least_one() {
        // lambda_k >= 1 always (ZF cannot improve SNR).
        let h = Matrix::from_rows(
            2,
            2,
            &[
                Complex::new(0.3, -0.4),
                Complex::new(1.2, 0.1),
                Complex::new(-0.7, 0.9),
                Complex::new(0.2, 0.2),
            ],
        );
        for l in zf_snr_degradation(&h) {
            assert!(l >= 1.0);
        }
    }

    #[test]
    fn singular_channel_infinite_lambda() {
        let h = Matrix::from_rows(
            2,
            2,
            &[Complex::real(1.0), Complex::real(1.0), Complex::real(1.0), Complex::real(1.0)],
        );
        assert!(lambda_max(&h).is_infinite());
    }

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.fraction_at_or_below(2.0) - 0.5).abs() < 1e-12);
        assert!((cdf.fraction_above(3.5) - 0.25).abs() < 1e-12);
        assert!((cdf.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((cdf.quantile(1.0) - 4.0).abs() < 1e-12);
        assert!((cdf.quantile(0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_handles_non_finite() {
        let cdf = Cdf::new(vec![1.0, f64::INFINITY, 2.0]);
        assert_eq!(cdf.len(), 3);
        assert!(cdf.quantile(1.0) > 1e8);
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let cdf = Cdf::new((0..100).map(|k| ((k * 37) % 100) as f64).collect());
        let curve = cdf.curve(20);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }
}
