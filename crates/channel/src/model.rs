//! Channel abstractions shared by all models.

use gs_linalg::{frequency_response, Complex, Matrix};
use rand::Rng;

/// A realized MIMO channel: one `na × nc` matrix per OFDM subcarrier.
///
/// Narrowband (flat) channels are the single-subcarrier special case.
#[derive(Clone, Debug, PartialEq)]
pub struct MimoChannel {
    subcarriers: Vec<Matrix>,
}

impl MimoChannel {
    /// Wraps per-subcarrier matrices.
    ///
    /// # Panics
    /// Panics when `subcarriers` is empty or shapes disagree.
    pub fn new(subcarriers: Vec<Matrix>) -> Self {
        assert!(!subcarriers.is_empty(), "channel needs at least one subcarrier");
        let shape = subcarriers[0].shape();
        assert!(subcarriers.iter().all(|m| m.shape() == shape), "subcarrier shape mismatch");
        MimoChannel { subcarriers }
    }

    /// A flat (single-subcarrier) channel.
    pub fn flat(h: Matrix) -> Self {
        MimoChannel { subcarriers: vec![h] }
    }

    /// Number of subcarriers.
    pub fn num_subcarriers(&self) -> usize {
        self.subcarriers.len()
    }

    /// Receive antennas (`na`).
    pub fn num_rx(&self) -> usize {
        self.subcarriers[0].rows()
    }

    /// Transmit streams (`nc`).
    pub fn num_tx(&self) -> usize {
        self.subcarriers[0].cols()
    }

    /// The channel matrix on one subcarrier.
    pub fn subcarrier(&self, k: usize) -> &Matrix {
        &self.subcarriers[k]
    }

    /// Iterates over all subcarrier matrices.
    pub fn iter(&self) -> impl Iterator<Item = &Matrix> {
        self.subcarriers.iter()
    }

    /// Average per-entry power across all subcarriers — 1.0 for a
    /// correctly normalized model.
    pub fn average_entry_power(&self) -> f64 {
        let per: f64 = self
            .subcarriers
            .iter()
            .map(|m| m.frobenius_norm_sqr() / (m.rows() * m.cols()) as f64)
            .sum();
        per / self.subcarriers.len() as f64
    }

    /// Scales every subcarrier matrix by a real factor (used by the PHY to
    /// fold constellation normalization into the channel).
    pub fn scaled(&self, k: f64) -> MimoChannel {
        MimoChannel { subcarriers: self.subcarriers.iter().map(|m| m.scale(k)).collect() }
    }
}

/// A stochastic channel model that can be sampled for realizations.
pub trait ChannelModel {
    /// Draws one channel realization.
    fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> MimoChannel;

    /// Receive antennas of realizations.
    fn num_rx(&self) -> usize;

    /// Transmit streams of realizations.
    fn num_tx(&self) -> usize;
}

/// Converts per-stream tapped-delay-line impulse responses into a
/// per-subcarrier [`MimoChannel`].
///
/// `taps[rx][tx]` is the impulse response from transmit stream `tx` to
/// receive antenna `rx`. The frequency grid has `n_subcarriers` bins taken
/// from an `n_fft`-point DFT (the first `n_subcarriers` bins, matching the
/// data-subcarrier layout used by `gs-phy`).
pub fn taps_to_subcarriers(
    taps: &[Vec<Vec<Complex>>],
    n_fft: usize,
    n_subcarriers: usize,
) -> MimoChannel {
    let na = taps.len();
    let nc = taps[0].len();
    assert!(n_subcarriers <= n_fft);
    // freq[rx][tx] = response per bin
    let freq: Vec<Vec<Vec<Complex>>> = taps
        .iter()
        .map(|row| row.iter().map(|ir| frequency_response(ir, n_fft)).collect())
        .collect();
    let mats = (0..n_subcarriers).map(|k| Matrix::from_fn(na, nc, |r, c| freq[r][c][k])).collect();
    MimoChannel::new(mats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_channel_basics() {
        let ch = MimoChannel::flat(Matrix::identity(3));
        assert_eq!(ch.num_subcarriers(), 1);
        assert_eq!(ch.num_rx(), 3);
        assert_eq!(ch.num_tx(), 3);
        assert!((ch.average_entry_power() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_scales_power() {
        let ch = MimoChannel::flat(Matrix::identity(2)).scaled(2.0);
        assert!((ch.subcarrier(0)[(0, 0)].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_tap_gives_flat_frequency_response() {
        let taps = vec![vec![vec![Complex::new(0.6, -0.8)]]; 2]; // 2 rx, 1 tx
        let ch = taps_to_subcarriers(&taps, 64, 48);
        assert_eq!(ch.num_subcarriers(), 48);
        for k in 0..48 {
            assert!((ch.subcarrier(k)[(0, 0)] - Complex::new(0.6, -0.8)).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_tap_varies_across_subcarriers() {
        let taps = vec![vec![vec![Complex::real(0.7), Complex::ZERO, Complex::real(0.7)]]];
        let ch = taps_to_subcarriers(&taps, 64, 48);
        let h0 = ch.subcarrier(0)[(0, 0)].abs();
        let h16 = ch.subcarrier(16)[(0, 0)].abs();
        assert!((h0 - h16).abs() > 0.1, "frequency selectivity expected");
    }

    #[test]
    #[should_panic(expected = "at least one subcarrier")]
    fn empty_channel_panics() {
        MimoChannel::new(vec![]);
    }
}

impl MimoChannel {
    /// Applies per-stream amplitude gains (column scaling): stream `k`'s
    /// column is multiplied by `gains[k]`. Models clients whose large-scale
    /// link SNRs differ within a user-selection band (§5.2: "the quoted SNR
    /// is the average SNR over all transmitted streams").
    ///
    /// # Panics
    /// Panics when `gains.len() != num_tx()`.
    pub fn with_column_gains(&self, gains: &[f64]) -> MimoChannel {
        assert_eq!(gains.len(), self.num_tx(), "one gain per stream");
        let mats = self
            .subcarriers
            .iter()
            .map(|m| Matrix::from_fn(m.rows(), m.cols(), |r, c| m[(r, c)] * gains[c]))
            .collect();
        MimoChannel::new(mats)
    }

    /// Column gains realizing per-stream SNR offsets in dB around a common
    /// operating SNR: `offset_db[k] = snr_k − snr_mean`.
    pub fn gains_from_snr_offsets_db(offsets_db: &[f64]) -> Vec<f64> {
        offsets_db.iter().map(|d| 10f64.powf(d / 20.0)).collect()
    }
}

#[cfg(test)]
mod gain_tests {
    use super::*;

    #[test]
    fn column_gains_scale_power_quadratically() {
        let ch = MimoChannel::flat(Matrix::identity(2));
        let scaled = ch.with_column_gains(&[2.0, 1.0]);
        assert!((scaled.subcarrier(0)[(0, 0)].re - 2.0).abs() < 1e-12);
        assert!((scaled.subcarrier(0)[(1, 1)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snr_offsets_convert_to_amplitudes() {
        let g = MimoChannel::gains_from_snr_offsets_db(&[0.0, 6.0206, -6.0206]);
        assert!((g[0] - 1.0).abs() < 1e-6);
        assert!((g[1] - 2.0).abs() < 1e-4);
        assert!((g[2] - 0.5).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "one gain per stream")]
    fn wrong_gain_count_panics() {
        MimoChannel::flat(Matrix::identity(2)).with_column_gains(&[1.0]);
    }
}
