//! Complex Gaussian noise and SNR bookkeeping.
//!
//! Conventions used across the workspace:
//! - channel entries are normalized to unit average power (`E[|h|²] = 1`),
//! - transmitted symbols have unit average energy (the constellation scale
//!   factor is folded into the channel by the PHY),
//! - so "average SNR per stream" (the paper's x-axis) is simply `1/σ²`,
//!   with `σ²` the per-receive-antenna complex noise variance.

use gs_linalg::Complex;
use rand::Rng;

/// Converts an SNR in decibels to the linear power ratio.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to decibels.
#[inline]
pub fn linear_to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Noise variance `σ²` for a target per-stream SNR (dB) under the unit
/// signal-power convention.
#[inline]
pub fn noise_variance_for_snr_db(snr_db: f64) -> f64 {
    1.0 / db_to_linear(snr_db)
}

/// Samples a standard real Gaussian via Box–Muller.
pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u in (0, 1] to avoid ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    let v: f64 = rng.gen();
    (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
}

/// Samples a circularly-symmetric complex Gaussian `CN(0, variance)`
/// (each real component has variance `variance/2`).
pub fn sample_cn<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Complex {
    let s = (variance / 2.0).sqrt();
    Complex::new(sample_gaussian(rng) * s, sample_gaussian(rng) * s)
}

/// Samples an i.i.d. `CN(0, variance)` vector of length `n`.
pub fn sample_cn_vector<R: Rng + ?Sized>(rng: &mut R, n: usize, variance: f64) -> Vec<Complex> {
    (0..n).map(|_| sample_cn(rng, variance)).collect()
}

/// Adds `CN(0, variance)` noise to each element of `signal`.
pub fn add_awgn<R: Rng + ?Sized>(rng: &mut R, signal: &[Complex], variance: f64) -> Vec<Complex> {
    signal.iter().map(|&s| s + sample_cn(rng, variance)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn db_roundtrip() {
        for &db in &[-10.0, 0.0, 3.0, 20.0, 25.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-12);
        }
        assert!((db_to_linear(10.0) - 10.0).abs() < 1e-12);
        assert!((db_to_linear(20.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn noise_variance_inverse_of_snr() {
        assert!((noise_variance_for_snr_db(20.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(71);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_gaussian(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn cn_variance_split() {
        let mut rng = StdRng::seed_from_u64(72);
        let n = 100_000;
        let var_target = 0.25;
        let mut e_total = 0.0;
        let mut e_re = 0.0;
        for _ in 0..n {
            let z = sample_cn(&mut rng, var_target);
            e_total += z.norm_sqr();
            e_re += z.re * z.re;
        }
        e_total /= n as f64;
        e_re /= n as f64;
        assert!((e_total - var_target).abs() < 0.01, "total power {e_total}");
        assert!((e_re - var_target / 2.0).abs() < 0.005, "real power {e_re}");
    }

    #[test]
    fn awgn_preserves_length_and_perturbs() {
        let mut rng = StdRng::seed_from_u64(73);
        let sig = vec![Complex::ONE; 16];
        let noisy = add_awgn(&mut rng, &sig, 0.01);
        assert_eq!(noisy.len(), 16);
        assert!(noisy.iter().zip(&sig).any(|(a, b)| (*a - *b).abs() > 0.0));
        // At 20 dB SNR, perturbations are small.
        for (a, b) in noisy.iter().zip(&sig) {
            assert!((*a - *b).abs() < 1.0);
        }
    }
}
