//! i.i.d. Rayleigh fading channels.
//!
//! The paper's simulation channel (§5.2.1, §5.3.2): "a MIMO Rayleigh fading
//! channel with independent, identically-distributed channel realizations
//! sampled on a per-frame basis." Entries are `CN(0, 1)`, so the unit
//! signal-power SNR convention of [`crate::noise`] applies directly.

use crate::model::{taps_to_subcarriers, ChannelModel, MimoChannel};
use crate::noise::sample_cn;
use gs_linalg::{Complex, Matrix};
use rand::Rng;

/// Flat i.i.d. Rayleigh fading: every entry `CN(0, 1)`, one matrix for all
/// subcarriers of a frame.
#[derive(Clone, Copy, Debug)]
pub struct RayleighChannel {
    /// Receive antennas.
    pub num_rx: usize,
    /// Transmit streams.
    pub num_tx: usize,
}

impl RayleighChannel {
    /// Creates a flat Rayleigh model.
    pub fn new(num_rx: usize, num_tx: usize) -> Self {
        assert!(num_rx >= num_tx, "uplink MU-MIMO requires na >= nc");
        RayleighChannel { num_rx, num_tx }
    }

    /// Samples a single `na × nc` matrix with CN(0,1) entries.
    pub fn sample_matrix<R: Rng + ?Sized>(&self, rng: &mut R) -> Matrix {
        Matrix::from_fn(self.num_rx, self.num_tx, |_, _| sample_cn(rng, 1.0))
    }
}

impl ChannelModel for RayleighChannel {
    fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> MimoChannel {
        MimoChannel::flat(self.sample_matrix(rng))
    }

    fn num_rx(&self) -> usize {
        self.num_rx
    }

    fn num_tx(&self) -> usize {
        self.num_tx
    }
}

/// Frequency-selective Rayleigh fading: each (rx, tx) pair has an
/// exponentially-decaying tapped delay line with i.i.d. `CN` taps,
/// normalized to unit total power, converted to per-subcarrier matrices.
#[derive(Clone, Debug)]
pub struct SelectiveRayleighChannel {
    /// Receive antennas.
    pub num_rx: usize,
    /// Transmit streams.
    pub num_tx: usize,
    /// Number of delay taps (≥ 1).
    pub num_taps: usize,
    /// Per-tap power decay factor in (0, 1]; tap `k` has power ∝ decay^k.
    pub decay: f64,
    /// FFT size used to derive subcarrier responses.
    pub n_fft: usize,
    /// Number of subcarriers exposed.
    pub n_subcarriers: usize,
}

impl SelectiveRayleighChannel {
    /// A standard indoor profile: 4 taps, 0.5 decay, 64-point FFT, 48
    /// data subcarriers (the 802.11 layout used throughout the paper).
    pub fn indoor(num_rx: usize, num_tx: usize) -> Self {
        SelectiveRayleighChannel {
            num_rx,
            num_tx,
            num_taps: 4,
            decay: 0.5,
            n_fft: 64,
            n_subcarriers: 48,
        }
    }

    fn tap_powers(&self) -> Vec<f64> {
        let raw: Vec<f64> = (0..self.num_taps).map(|k| self.decay.powi(k as i32)).collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|p| p / total).collect()
    }
}

impl ChannelModel for SelectiveRayleighChannel {
    fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> MimoChannel {
        let powers = self.tap_powers();
        let taps: Vec<Vec<Vec<Complex>>> = (0..self.num_rx)
            .map(|_| {
                (0..self.num_tx)
                    .map(|_| powers.iter().map(|&p| sample_cn(rng, p)).collect())
                    .collect()
            })
            .collect();
        taps_to_subcarriers(&taps, self.n_fft, self.n_subcarriers)
    }

    fn num_rx(&self) -> usize {
        self.num_rx
    }

    fn num_tx(&self) -> usize {
        self.num_tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flat_rayleigh_unit_power() {
        let mut rng = StdRng::seed_from_u64(81);
        let model = RayleighChannel::new(4, 4);
        let mut acc = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            acc += model.realize(&mut rng).average_entry_power();
        }
        let avg = acc / trials as f64;
        assert!((avg - 1.0).abs() < 0.05, "average entry power {avg}");
    }

    #[test]
    fn selective_rayleigh_unit_power() {
        let mut rng = StdRng::seed_from_u64(82);
        let model = SelectiveRayleighChannel::indoor(2, 2);
        let mut acc = 0.0;
        let trials = 500;
        for _ in 0..trials {
            acc += model.realize(&mut rng).average_entry_power();
        }
        let avg = acc / trials as f64;
        assert!((avg - 1.0).abs() < 0.05, "average entry power {avg}");
    }

    #[test]
    fn selective_channel_has_48_subcarriers() {
        let mut rng = StdRng::seed_from_u64(83);
        let ch = SelectiveRayleighChannel::indoor(4, 2).realize(&mut rng);
        assert_eq!(ch.num_subcarriers(), 48);
        assert_eq!(ch.num_rx(), 4);
        assert_eq!(ch.num_tx(), 2);
    }

    #[test]
    fn realizations_are_independent() {
        let mut rng = StdRng::seed_from_u64(84);
        let model = RayleighChannel::new(2, 2);
        let a = model.realize(&mut rng);
        let b = model.realize(&mut rng);
        assert!(a.subcarrier(0).max_abs_diff(b.subcarrier(0)) > 1e-6);
    }

    #[test]
    fn tap_powers_normalized() {
        let m = SelectiveRayleighChannel::indoor(2, 2);
        let total: f64 = m.tap_powers().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "na >= nc")]
    fn undetermined_panics() {
        RayleighChannel::new(2, 4);
    }
}
