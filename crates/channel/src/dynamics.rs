//! Time-varying channel dynamics for scenario campaigns.
//!
//! The stationary models ([`crate::RayleighChannel`] and friends) draw
//! i.i.d. realizations per frame — the paper's §5.2.1 setting. Campaigns
//! need the *time* axis too: a client moving through a cell sees channels
//! that decorrelate at its Doppler rate, interference arrives in bursts,
//! and large-scale SNR drifts. This module provides those processes as
//! small composable generators, each advanced one frame at a time and
//! fully determined by the RNG stream it is fed — a campaign scenario that
//! seeds the RNG reproduces the exact channel history, which is what the
//! seeded-campaign determinism contract rests on.
//!
//! * [`DopplerTrajectory`] — a mobility profile: frame index → normalized
//!   Doppler `f_d·T` (Doppler frequency × frame interval).
//! * [`FadingProcess`] — first-order Gauss–Markov (AR(1)) block fading
//!   `H_{k+1} = ρ·H_k + √(1−ρ²)·W` with `ρ = J₀(2π f_d T)` (Jakes'
//!   autocorrelation at the trajectory's current Doppler) and `W` i.i.d.
//!   `CN(0,1)`, so every marginal stays unit-power Rayleigh while
//!   consecutive frames correlate like a mobile channel.
//! * [`InterferenceBurst`] — a two-state Markov on/off process modelling
//!   bursty co-channel interference as a per-frame SNR penalty.
//! * [`SnrWalk`] — a bounded per-client random walk of the large-scale
//!   operating SNR (shadowing drift).

use crate::model::MimoChannel;
use crate::noise::sample_cn;
use gs_linalg::Matrix;
use rand::Rng;

/// A mobility profile: maps a frame index to the **normalized Doppler**
/// `f_d·T` (Doppler frequency times frame interval) in effect for that
/// frame. `0.0` is a static client (fully correlated block fading);
/// `≥ ~0.4` decorrelates consecutive frames almost completely (Jakes' J₀
/// first crosses zero at `2π f_d T ≈ 2.405`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DopplerTrajectory {
    /// A constant Doppler — a client moving at fixed speed.
    Constant(f64),
    /// Linear ramp from `from` (frame 0) to `to` (the last frame): a
    /// client accelerating or braking across the scenario.
    Ramp {
        /// Normalized Doppler at the first frame.
        from: f64,
        /// Normalized Doppler at the last frame.
        to: f64,
    },
    /// Sinusoidal sweep `center + swing·sin(2π·frame/period)`: a client
    /// orbiting the cell (alternating approach and recession), clamped
    /// at zero.
    Orbit {
        /// Mean normalized Doppler.
        center: f64,
        /// Peak deviation from the mean.
        swing: f64,
        /// Sweep period in frames (≥ 1).
        period: usize,
    },
}

impl DopplerTrajectory {
    /// The normalized Doppler for `frame` of `total` frames (≥ 0).
    pub fn normalized_doppler(&self, frame: usize, total: usize) -> f64 {
        match *self {
            DopplerTrajectory::Constant(fd) => fd.max(0.0),
            DopplerTrajectory::Ramp { from, to } => {
                let t = if total <= 1 { 0.0 } else { frame as f64 / (total - 1) as f64 };
                (from + (to - from) * t).max(0.0)
            }
            DopplerTrajectory::Orbit { center, swing, period } => {
                let phase = 2.0 * std::f64::consts::PI * frame as f64 / period.max(1) as f64;
                (center + swing * phase.sin()).max(0.0)
            }
        }
    }
}

/// Bessel function of the first kind, order zero, by its power series
/// `Σ (−1)^m (x/2)^{2m} / (m!)²` — fine in f64 for the `|x| ≲ 15` range
/// the Doppler map ever produces (no `libm` dependency in the container).
fn bessel_j0(x: f64) -> f64 {
    let q = -(x * x) / 4.0;
    let mut term = 1.0;
    let mut sum = 1.0;
    for m in 1..40 {
        term *= q / ((m * m) as f64);
        sum += term;
        if term.abs() < 1e-16 {
            break;
        }
    }
    sum
}

/// Jakes' model frame-to-frame fading correlation at normalized Doppler
/// `f_d·T`: `ρ = J₀(2π f_d T)`, clamped to `[0, 1]` (the oscillating tail
/// past the first zero is treated as full decorrelation — the AR(1)
/// recursion needs a nonnegative coefficient).
pub fn fading_correlation(normalized_doppler: f64) -> f64 {
    bessel_j0(2.0 * std::f64::consts::PI * normalized_doppler).clamp(0.0, 1.0)
}

/// First-order Gauss–Markov (AR(1)) flat block fading driven by a
/// [`DopplerTrajectory`]: frame `k`'s channel is
/// `H_k = ρ_k·H_{k−1} + √(1−ρ_k²)·W_k` with `W_k` i.i.d. `CN(0,1)` and
/// `ρ_k` the Jakes correlation at the trajectory's Doppler for frame `k`.
/// The first frame is drawn i.i.d. Every marginal is unit-power Rayleigh
/// (the i.i.d. models' SNR convention carries over unchanged); only the
/// *temporal* correlation differs.
#[derive(Clone, Debug)]
pub struct FadingProcess {
    num_rx: usize,
    num_tx: usize,
    trajectory: DopplerTrajectory,
    h: Option<Matrix>,
    frame: usize,
}

impl FadingProcess {
    /// A fresh process (no channel history yet).
    pub fn new(num_rx: usize, num_tx: usize, trajectory: DopplerTrajectory) -> Self {
        assert!(num_rx >= num_tx, "uplink MU-MIMO requires na >= nc");
        FadingProcess { num_rx, num_tx, trajectory, h: None, frame: 0 }
    }

    /// Advances one frame and returns its channel. `total` is the
    /// scenario's frame count (the trajectory's time base).
    pub fn advance<R: Rng + ?Sized>(&mut self, total: usize, rng: &mut R) -> MimoChannel {
        let next = match &self.h {
            None => Matrix::from_fn(self.num_rx, self.num_tx, |_, _| sample_cn(rng, 1.0)),
            Some(prev) => {
                let fd = self.trajectory.normalized_doppler(self.frame, total);
                let rho = fading_correlation(fd);
                let innov = (1.0 - rho * rho).max(0.0).sqrt();
                Matrix::from_fn(self.num_rx, self.num_tx, |r, c| {
                    prev[(r, c)] * rho + sample_cn(rng, 1.0) * innov
                })
            }
        };
        self.h = Some(next.clone());
        self.frame += 1;
        MimoChannel::flat(next)
    }
}

/// A two-state Markov on/off interference process: each frame is either
/// clean or inside a burst; bursts knock `penalty_db` off the frame's
/// operating SNR. Transition probabilities are evaluated once per frame,
/// giving geometrically-distributed burst and gap lengths (mean burst
/// `1/p_off` frames, mean gap `1/p_on`).
#[derive(Clone, Debug)]
pub struct InterferenceBurst {
    /// Probability a clean frame starts a burst.
    pub p_on: f64,
    /// Probability a burst frame ends the burst.
    pub p_off: f64,
    /// SNR penalty while inside a burst, in dB (≥ 0).
    pub penalty_db: f64,
    in_burst: bool,
}

impl InterferenceBurst {
    /// A fresh process, starting clean.
    pub fn new(p_on: f64, p_off: f64, penalty_db: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_on) && (0.0..=1.0).contains(&p_off));
        InterferenceBurst { p_on, p_off, penalty_db, in_burst: false }
    }

    /// Advances one frame; returns the SNR penalty (dB) for this frame
    /// (`0.0` when clean, `penalty_db` inside a burst).
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let flip: f64 = rng.gen();
        self.in_burst = if self.in_burst { flip >= self.p_off } else { flip < self.p_on };
        if self.in_burst {
            self.penalty_db
        } else {
            0.0
        }
    }
}

/// A bounded random walk of a client's large-scale operating SNR
/// (shadowing drift): each frame moves by `Uniform(−step_db, +step_db)`
/// and reflects off `[min_db, max_db]`.
#[derive(Clone, Debug)]
pub struct SnrWalk {
    snr_db: f64,
    /// Per-frame maximum excursion, in dB.
    pub step_db: f64,
    /// Lower clamp of the walk.
    pub min_db: f64,
    /// Upper clamp of the walk.
    pub max_db: f64,
}

impl SnrWalk {
    /// A walk starting at `start_db`.
    pub fn new(start_db: f64, step_db: f64, min_db: f64, max_db: f64) -> Self {
        assert!(min_db <= max_db);
        SnrWalk { snr_db: start_db.clamp(min_db, max_db), step_db, min_db, max_db }
    }

    /// Advances one frame; returns the new operating SNR in dB.
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.snr_db =
            (self.snr_db + (2.0 * u - 1.0) * self.step_db).clamp(self.min_db, self.max_db);
        self.snr_db
    }

    /// The walk's current SNR without advancing.
    pub fn current(&self) -> f64 {
        self.snr_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bessel_j0_matches_known_values() {
        assert!((bessel_j0(0.0) - 1.0).abs() < 1e-15);
        // Tabulated: J0(1) ≈ 0.7651976866, J0(2.4048) ≈ 0 (first zero),
        // J0(5) ≈ -0.1775967713.
        assert!((bessel_j0(1.0) - 0.765_197_686_6).abs() < 1e-9);
        assert!(bessel_j0(2.404_825_557_7).abs() < 1e-9);
        assert!((bessel_j0(5.0) + 0.177_596_771_3).abs() < 1e-9);
    }

    #[test]
    fn correlation_decays_with_doppler() {
        assert_eq!(fading_correlation(0.0), 1.0);
        let slow = fading_correlation(0.01);
        let fast = fading_correlation(0.2);
        assert!(slow > 0.99, "near-static clients stay correlated: {slow}");
        assert!(fast < slow, "faster clients decorrelate faster");
        // Past the first J0 zero the clamp holds at full decorrelation.
        assert_eq!(fading_correlation(0.5), 0.0);
    }

    #[test]
    fn trajectories_cover_their_ranges() {
        let ramp = DopplerTrajectory::Ramp { from: 0.0, to: 0.1 };
        assert_eq!(ramp.normalized_doppler(0, 11), 0.0);
        assert!((ramp.normalized_doppler(10, 11) - 0.1).abs() < 1e-12);
        let orbit = DopplerTrajectory::Orbit { center: 0.05, swing: 0.05, period: 8 };
        let values: Vec<f64> = (0..8).map(|k| orbit.normalized_doppler(k, 8)).collect();
        assert!(values.iter().all(|&v| (0.0..=0.1 + 1e-12).contains(&v)));
        assert!(values.iter().any(|&v| v > 0.09), "orbit reaches its peak");
    }

    #[test]
    fn fading_process_keeps_unit_power_and_correlates() {
        let mut rng = StdRng::seed_from_u64(7);
        // Slow mobility: consecutive frames must be visibly correlated.
        // (Power is *not* averaged here — a near-unity ρ makes the whole
        // run one effective sample, so its power estimate is meaningless.)
        let mut slow = FadingProcess::new(4, 2, DopplerTrajectory::Constant(0.01));
        let mut corr = 0.0;
        let mut prev: Option<MimoChannel> = None;
        let n = 400;
        for _ in 0..n {
            let ch = slow.advance(n, &mut rng);
            if let Some(p) = &prev {
                corr += ch.subcarrier(0).max_abs_diff(p.subcarrier(0));
            }
            prev = Some(ch);
        }
        assert!(corr / ((n - 1) as f64) < 0.5, "slow fading barely moves frame to frame");
        // Fast mobility decorrelates (ρ clamps to 0 at fd = 0.4): frames
        // are i.i.d., so the power average is trustworthy there.
        let mut fast = FadingProcess::new(4, 2, DopplerTrajectory::Constant(0.4));
        let mut prev: Option<MimoChannel> = None;
        let mut fast_corr = 0.0;
        let mut power = 0.0;
        for _ in 0..n {
            let ch = fast.advance(n, &mut rng);
            power += ch.average_entry_power();
            if let Some(p) = &prev {
                fast_corr += ch.subcarrier(0).max_abs_diff(p.subcarrier(0));
            }
            prev = Some(ch);
        }
        assert!((power / n as f64 - 1.0).abs() < 0.1, "marginals stay unit power");
        assert!(fast_corr / ((n - 1) as f64) > 1.0, "fast fading jumps frame to frame");
    }

    #[test]
    fn fading_process_is_seed_deterministic() {
        let make = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut p = FadingProcess::new(2, 2, DopplerTrajectory::Ramp { from: 0.0, to: 0.2 });
            (0..10).map(|_| p.advance(10, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(make(), make(), "same seed, same channel history");
    }

    #[test]
    fn interference_burst_duty_cycle_matches_stationary_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        // Stationary on-fraction = p_on / (p_on + p_off) = 0.2.
        let mut b = InterferenceBurst::new(0.05, 0.2, 10.0);
        let n = 20_000;
        let hits = (0..n).filter(|_| b.advance(&mut rng) > 0.0).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.03, "burst duty cycle {frac}, expected ~0.2");
    }

    #[test]
    fn snr_walk_stays_bounded() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut w = SnrWalk::new(20.0, 1.5, 12.0, 28.0);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..5000 {
            let s = w.advance(&mut rng);
            lo = lo.min(s);
            hi = hi.max(s);
        }
        assert!(lo >= 12.0 && hi <= 28.0, "walk escaped [{lo}, {hi}]");
        assert!(hi - lo > 5.0, "walk actually explores its range");
    }
}
