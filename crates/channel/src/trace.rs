//! Channel trace recording and replay.
//!
//! The paper's evaluation is "trace-driven simulation, using wireless
//! traces from a 15-node wireless testbed" (§1). This module provides the
//! trace infrastructure: record realized [`MimoChannel`]s to a compact
//! text format, persist/load them, and replay them as a [`ChannelModel`] —
//! so an experiment can be pinned to a fixed measurement campaign and
//! rerun bit-identically, exactly like driving the simulator from WARP
//! capture files.
//!
//! Format: a line-oriented text layout (header + one line per matrix row)
//! chosen over binary for diff-ability and repo-friendliness; files
//! compress well and round-trip exactly via hex-encoded IEEE-754 bits.

use crate::model::{ChannelModel, MimoChannel};
use gs_linalg::{Complex, Matrix};
use rand::Rng;
use std::fmt::Write as _;

/// A recorded sequence of channel realizations.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelTrace {
    /// The realizations, in capture order.
    pub realizations: Vec<MimoChannel>,
}

/// Errors from parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// 1-based line number where parsing failed.
    pub line: usize,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl ChannelTrace {
    /// Records `count` realizations from any channel model.
    pub fn record<M: ChannelModel, R: Rng + ?Sized>(model: &M, count: usize, rng: &mut R) -> Self {
        ChannelTrace { realizations: (0..count).map(|_| model.realize(rng)).collect() }
    }

    /// Number of recorded realizations.
    pub fn len(&self) -> usize {
        self.realizations.len()
    }

    /// True when no realizations are recorded.
    pub fn is_empty(&self) -> bool {
        self.realizations.is_empty()
    }

    /// Serializes to the line-oriented text format.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("geosphere-trace v1\n");
        let _ = writeln!(out, "realizations {}", self.realizations.len());
        for ch in &self.realizations {
            let _ =
                writeln!(out, "channel {} {} {}", ch.num_subcarriers(), ch.num_rx(), ch.num_tx());
            for m in ch.iter() {
                for r in 0..m.rows() {
                    let mut line = String::new();
                    for c in 0..m.cols() {
                        let z = m[(r, c)];
                        let _ = write!(line, "{:016x}{:016x} ", z.re.to_bits(), z.im.to_bits());
                    }
                    out.push_str(line.trim_end());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Parses the text format back into a trace.
    pub fn deserialize(text: &str) -> Result<Self, TraceParseError> {
        let err = |line: usize, message: &str| TraceParseError { message: message.into(), line };
        let mut lines = text.lines().enumerate();

        let (ln, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
        if header.trim() != "geosphere-trace v1" {
            return Err(err(ln + 1, "bad magic header"));
        }
        let (ln, count_line) = lines.next().ok_or_else(|| err(2, "missing count"))?;
        let count: usize = count_line
            .trim()
            .strip_prefix("realizations ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(ln + 1, "bad realizations line"))?;

        let mut realizations = Vec::with_capacity(count);
        for _ in 0..count {
            let (ln, ch_line) = lines.next().ok_or_else(|| err(0, "truncated: channel"))?;
            let dims: Vec<usize> = ch_line
                .trim()
                .strip_prefix("channel ")
                .map(|rest| rest.split_whitespace().filter_map(|t| t.parse().ok()).collect())
                .unwrap_or_default();
            if dims.len() != 3 {
                return Err(err(ln + 1, "bad channel header"));
            }
            let (n_sc, na, nc) = (dims[0], dims[1], dims[2]);
            let mut mats = Vec::with_capacity(n_sc);
            for _ in 0..n_sc {
                let mut m = Matrix::zeros(na, nc);
                for r in 0..na {
                    let (ln, row) = lines.next().ok_or_else(|| err(0, "truncated: matrix row"))?;
                    let toks: Vec<&str> = row.split_whitespace().collect();
                    if toks.len() != nc {
                        return Err(err(ln + 1, "wrong number of entries in row"));
                    }
                    for (c, tok) in toks.iter().enumerate() {
                        if tok.len() != 32 {
                            return Err(err(ln + 1, "entry must be 32 hex digits"));
                        }
                        let re = u64::from_str_radix(&tok[..16], 16)
                            .map_err(|_| err(ln + 1, "bad hex in real part"))?;
                        let im = u64::from_str_radix(&tok[16..], 16)
                            .map_err(|_| err(ln + 1, "bad hex in imaginary part"))?;
                        m[(r, c)] = Complex::new(f64::from_bits(re), f64::from_bits(im));
                    }
                }
                mats.push(m);
            }
            realizations.push(MimoChannel::new(mats));
        }
        Ok(ChannelTrace { realizations })
    }
}

/// Replays a recorded trace as a [`ChannelModel`]: realizations are served
/// in capture order, cycling when exhausted (interior mutability keeps the
/// `&self` model interface).
#[derive(Debug)]
pub struct TraceReplay {
    trace: ChannelTrace,
    cursor: std::cell::Cell<usize>,
}

impl TraceReplay {
    /// Wraps a trace for replay.
    ///
    /// # Panics
    /// Panics on an empty trace.
    pub fn new(trace: ChannelTrace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        TraceReplay { trace, cursor: std::cell::Cell::new(0) }
    }
}

impl ChannelModel for TraceReplay {
    fn realize<R: Rng + ?Sized>(&self, _rng: &mut R) -> MimoChannel {
        let k = self.cursor.get();
        self.cursor.set((k + 1) % self.trace.len());
        self.trace.realizations[k].clone()
    }

    fn num_rx(&self) -> usize {
        self.trace.realizations[0].num_rx()
    }

    fn num_tx(&self) -> usize {
        self.trace.realizations[0].num_tx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rayleigh::{RayleighChannel, SelectiveRayleighChannel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn serialize_roundtrip_exact() {
        let mut rng = StdRng::seed_from_u64(991);
        let model = SelectiveRayleighChannel::indoor(4, 2);
        let trace = ChannelTrace::record(&model, 3, &mut rng);
        let text = trace.serialize();
        let back = ChannelTrace::deserialize(&text).expect("roundtrip parse");
        assert_eq!(back, trace, "bit-exact roundtrip");
    }

    #[test]
    fn replay_serves_in_order_then_cycles() {
        let mut rng = StdRng::seed_from_u64(992);
        let model = RayleighChannel::new(2, 2);
        let trace = ChannelTrace::record(&model, 2, &mut rng);
        let first = trace.realizations[0].clone();
        let second = trace.realizations[1].clone();
        let replay = TraceReplay::new(trace);
        let a = replay.realize(&mut rng);
        let b = replay.realize(&mut rng);
        let c = replay.realize(&mut rng);
        assert_eq!(a.subcarrier(0).max_abs_diff(first.subcarrier(0)), 0.0);
        assert_eq!(b.subcarrier(0).max_abs_diff(second.subcarrier(0)), 0.0);
        assert_eq!(c.subcarrier(0).max_abs_diff(first.subcarrier(0)), 0.0, "cycles");
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(ChannelTrace::deserialize("").is_err());
        assert!(ChannelTrace::deserialize("wrong magic\n").is_err());
        let err = ChannelTrace::deserialize("geosphere-trace v1\nrealizations x\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = ChannelTrace::deserialize("geosphere-trace v1\nrealizations 1\nchannel 1 2\n")
            .unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn trace_driven_measurement_is_deterministic() {
        use geosphere_core::{geosphere_decoder, MimoDetector};
        let mut rng = StdRng::seed_from_u64(993);
        let model = RayleighChannel::new(4, 2);
        let trace = ChannelTrace::record(&model, 4, &mut rng);
        // Two replays produce identical detection inputs.
        let r1 = TraceReplay::new(trace.clone());
        let r2 = TraceReplay::new(trace);
        let c = gs_modulation::Constellation::Qam16;
        for _ in 0..4 {
            let h1 = r1.realize(&mut rng).subcarrier(0).scale(c.scale());
            let h2 = r2.realize(&mut rng).subcarrier(0).scale(c.scale());
            assert_eq!(h1.max_abs_diff(&h2), 0.0);
            // Both decode the same vector identically.
            let y = vec![gs_linalg::Complex::new(0.4, -0.7); 4];
            let d1 = geosphere_decoder().detect(&h1, &y, c);
            let d2 = geosphere_decoder().detect(&h2, &y, c);
            assert_eq!(d1.symbols, d2.symbols);
        }
    }
}
