//! Emulated indoor office testbed (substitute for the paper's Fig. 8).
//!
//! The paper evaluates on a 15-node WARP testbed in an office: four-antenna
//! APs, single-antenna clients, LOS and NLOS paths through walls and
//! furniture. We reproduce the *setup* synthetically: a floorplan with
//! client/AP positions and interior walls, per-link large-scale SNR from a
//! log-distance model with wall losses, and small-scale fading from the
//! [`GeometricChannel`] ray model — whose scatterer clusters sit near the
//! clients only, the exact geometry that produces the paper's
//! poorly-conditioned channels.

use crate::geometric::{ApArray, GeometricChannel, Pos};
use crate::metrics::{kappa_sqr_db, lambda_max_db, Cdf};
use crate::model::ChannelModel;
use rand::Rng;

/// An interior wall segment with a crossing loss.
#[derive(Clone, Copy, Debug)]
pub struct Wall {
    /// One endpoint.
    pub a: Pos,
    /// Other endpoint.
    pub b: Pos,
    /// Attenuation per crossing (dB).
    pub loss_db: f64,
}

/// Proper segment–segment intersection test.
fn segments_intersect(p1: Pos, p2: Pos, p3: Pos, p4: Pos) -> bool {
    fn orient(a: Pos, b: Pos, c: Pos) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }
    let d1 = orient(p3, p4, p1);
    let d2 = orient(p3, p4, p2);
    let d3 = orient(p1, p2, p3);
    let d4 = orient(p1, p2, p4);
    (d1 * d2 < 0.0) && (d3 * d4 < 0.0)
}

/// The emulated office testbed.
#[derive(Clone, Debug)]
pub struct Testbed {
    /// AP array positions (orientation included).
    pub aps: Vec<ApArray>,
    /// Client positions.
    pub clients: Vec<Pos>,
    /// Interior walls.
    pub walls: Vec<Wall>,
    /// Transmit power budget folded into the link budget (dB): sets the
    /// SNR scale so links land in the paper's 10–30 dB range.
    pub tx_power_db: f64,
    /// Path loss exponent for the log-distance model.
    pub path_loss_exp: f64,
    /// Scatterer cluster radius handed to the ray model (m).
    pub cluster_radius: f64,
    /// Scatterers per client cluster.
    pub scatterers_per_client: usize,
}

impl Testbed {
    /// The default office: a 30 m × 14 m floor with four AP positions,
    /// fifteen client positions, and five interior walls — mirroring the
    /// density of the paper's Figure 8 floor plan.
    pub fn office() -> Self {
        let aps = vec![
            ApArray::new(Pos::new(4.0, 11.0), 4, 0.3),
            ApArray::new(Pos::new(15.0, 12.0), 4, -0.2),
            ApArray::new(Pos::new(25.0, 11.0), 4, 0.1),
            ApArray::new(Pos::new(14.0, 2.5), 4, 1.4),
        ];
        let clients = vec![
            Pos::new(2.0, 2.0),
            Pos::new(5.5, 4.5),
            Pos::new(8.0, 9.0),
            Pos::new(9.5, 3.0),
            Pos::new(12.0, 7.5),
            Pos::new(13.5, 10.5),
            Pos::new(16.0, 5.0),
            Pos::new(18.5, 9.5),
            Pos::new(20.0, 3.5),
            Pos::new(22.5, 7.0),
            Pos::new(24.0, 12.5),
            Pos::new(26.5, 4.0),
            Pos::new(28.0, 9.0),
            Pos::new(10.5, 12.5),
            Pos::new(6.5, 7.0),
        ];
        let walls = vec![
            Wall { a: Pos::new(7.0, 0.0), b: Pos::new(7.0, 8.0), loss_db: 5.0 },
            Wall { a: Pos::new(14.0, 6.0), b: Pos::new(14.0, 14.0), loss_db: 5.0 },
            Wall { a: Pos::new(21.0, 0.0), b: Pos::new(21.0, 8.0), loss_db: 5.0 },
            Wall { a: Pos::new(0.0, 6.0), b: Pos::new(5.0, 6.0), loss_db: 4.0 },
            Wall { a: Pos::new(24.0, 6.0), b: Pos::new(30.0, 6.0), loss_db: 4.0 },
        ];
        Testbed {
            aps,
            clients,
            walls,
            tx_power_db: 46.0,
            path_loss_exp: 3.0,
            cluster_radius: 0.6,
            scatterers_per_client: 5,
        }
    }

    /// Large-scale SNR (dB) of the link from client `c` to AP `a`:
    /// log-distance path loss plus wall-crossing losses.
    pub fn link_snr_db(&self, ap: usize, client: usize) -> f64 {
        let ap_pos = self.aps[ap].center;
        let cl = self.clients[client];
        let d = ap_pos.dist(cl).max(1.0);
        let mut snr = self.tx_power_db - 10.0 * self.path_loss_exp * d.log10();
        for w in &self.walls {
            if segments_intersect(ap_pos, cl, w.a, w.b) {
                snr -= w.loss_db;
            }
        }
        snr
    }

    /// Builds the ray-model channel for a set of clients talking to one AP
    /// truncated to `na` antennas.
    ///
    /// # Panics
    /// Panics when `na` exceeds the AP's array size or a client index is
    /// out of range.
    pub fn channel(&self, ap: usize, client_indices: &[usize], na: usize) -> GeometricChannel {
        let mut array = self.aps[ap].clone();
        assert!(na <= array.num_antennas, "AP {ap} has only {} antennas", array.num_antennas);
        array.num_antennas = na;
        let clients: Vec<Pos> = client_indices.iter().map(|&c| self.clients[c]).collect();
        GeometricChannel {
            cluster_radius: self.cluster_radius,
            scatterers_per_client: self.scatterers_per_client,
            ..GeometricChannel::indoor_nlos(array, clients)
        }
    }

    /// Enumerates every distinct combination of `n` client positions.
    pub fn client_subsets(&self, n: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let total = self.clients.len();
        let mut idx: Vec<usize> = (0..n).collect();
        if n == 0 || n > total {
            return out;
        }
        loop {
            out.push(idx.clone());
            // Advance combination.
            let mut i = n;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if idx[i] != i + total - n {
                    break;
                }
                if i == 0 {
                    return out;
                }
            }
            idx[i] += 1;
            for j in i + 1..n {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }

    /// Measures the κ² (dB) distribution across links and subcarriers for
    /// an `n_clients × na` configuration (the data behind Fig. 9).
    ///
    /// `max_links` bounds how many client subsets are sampled (they are
    /// taken in enumeration order, matching a fixed measurement campaign).
    pub fn kappa_cdf<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_clients: usize,
        na: usize,
        max_links: usize,
    ) -> Cdf {
        self.metric_cdf(rng, n_clients, na, max_links, kappa_sqr_db)
    }

    /// Measures the Λ (dB) distribution across links and subcarriers (the
    /// data behind Fig. 10).
    pub fn lambda_cdf<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_clients: usize,
        na: usize,
        max_links: usize,
    ) -> Cdf {
        self.metric_cdf(rng, n_clients, na, max_links, lambda_max_db)
    }

    fn metric_cdf<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_clients: usize,
        na: usize,
        max_links: usize,
        metric: impl Fn(&gs_linalg::Matrix) -> f64,
    ) -> Cdf {
        let mut samples = Vec::new();
        let subsets = self.client_subsets(n_clients);
        let stride = (subsets.len() / max_links.max(1)).max(1);
        for (ap, subset) in subsets
            .iter()
            .step_by(stride)
            .take(max_links)
            .enumerate()
            .map(|(k, s)| (k % self.aps.len(), s))
        {
            let ch = self.channel(ap, subset, na).realize(rng);
            // Sample a spread of subcarriers, as the paper measures
            // "across all OFDM subcarriers".
            for k in (0..ch.num_subcarriers()).step_by(4) {
                samples.push(metric(ch.subcarrier(k)));
            }
        }
        Cdf::new(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn office_dimensions() {
        let tb = Testbed::office();
        assert_eq!(tb.aps.len(), 4);
        assert_eq!(tb.clients.len(), 15);
        assert!(!tb.walls.is_empty());
    }

    #[test]
    fn snr_decreases_with_distance() {
        let tb = Testbed::office();
        // Client 2 (8.0, 9.0) is much closer to AP 0 (4,11) than client 12 (28,9).
        assert!(tb.link_snr_db(0, 2) > tb.link_snr_db(0, 12));
    }

    #[test]
    fn snrs_in_plausible_band() {
        let tb = Testbed::office();
        for a in 0..tb.aps.len() {
            for c in 0..tb.clients.len() {
                let snr = tb.link_snr_db(a, c);
                // Weak cross-office links (below ~10 dB) are realistic and
                // simply never selected by the SNR-band user selection.
                assert!((-8.0..48.0).contains(&snr), "AP {a} client {c}: {snr} dB");
            }
        }
    }

    #[test]
    fn wall_crossing_detected() {
        // A link crossing the x=7 wall loses 5 dB relative to the same
        // geometry without the wall.
        let mut tb = Testbed::office();
        let with_wall = tb.link_snr_db(0, 3); // AP0 (4,11) to client (9.5,3) crosses x=7 wall?
        tb.walls.clear();
        let without_wall = tb.link_snr_db(0, 3);
        assert!(without_wall >= with_wall);
    }

    #[test]
    fn segment_intersection_cases() {
        let o = Pos::new(0.0, 0.0);
        assert!(segments_intersect(o, Pos::new(2.0, 2.0), Pos::new(0.0, 2.0), Pos::new(2.0, 0.0)));
        assert!(!segments_intersect(o, Pos::new(1.0, 0.0), Pos::new(0.0, 1.0), Pos::new(1.0, 1.0)));
    }

    #[test]
    fn client_subsets_counts() {
        let tb = Testbed::office();
        assert_eq!(tb.client_subsets(1).len(), 15);
        assert_eq!(tb.client_subsets(2).len(), 105); // C(15,2)
        assert_eq!(tb.client_subsets(4).len(), 1365); // C(15,4)

        // Each subset is strictly increasing.
        for s in tb.client_subsets(3) {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn four_by_four_worse_conditioned_than_two_by_two() {
        // The paper's core measurement: conditioning degrades sharply with
        // more concurrent streams (Fig. 9/10).
        let mut rng = StdRng::seed_from_u64(101);
        let tb = Testbed::office();
        let cdf2 = tb.lambda_cdf(&mut rng, 2, 2, 40);
        let cdf4 = tb.lambda_cdf(&mut rng, 4, 4, 40);
        let med2 = cdf2.quantile(0.5);
        let med4 = cdf4.quantile(0.5);
        assert!(
            med4 > med2,
            "4x4 should be worse conditioned: median Λ {med4:.1} dB vs {med2:.1} dB"
        );
    }

    #[test]
    fn more_rx_antennas_improve_conditioning() {
        // Fig. 10's "2 clients × 4 AP antennas" curve is far better than
        // 2 × 2: extra receive diversity helps.
        let mut rng = StdRng::seed_from_u64(102);
        let tb = Testbed::office();
        let cdf22 = tb.lambda_cdf(&mut rng, 2, 2, 40);
        let cdf24 = tb.lambda_cdf(&mut rng, 2, 4, 40);
        assert!(cdf24.quantile(0.9) < cdf22.quantile(0.9));
    }
}
