//! # gs-runtime
//!
//! The **streaming multi-frame base-station runtime**: the scheduling
//! layer that turns the per-frame codec (`gs-phy` over `geosphere-core`)
//! into a continuously-fed engine serving many concurrent uplink sources.
//!
//! The paper's detector is a per-subcarrier kernel; serving heavy traffic
//! is an architecture problem layered above it. The synchronous entry
//! point (`decode_frame_batched_into`) blocks until one frame fully
//! drains, so its worker pool idles during planning and payload recovery.
//! [`FrameStream`] removes that bubble with a three-stage pipeline whose
//! stages overlap **across frames**:
//!
//! ```text
//!   sources ──▶ [admission: bounded slot pool] ──▶ plan ─▶ detect ─▶ recover ──▶ recv()
//!                (backpressure)                    │         │          │
//!                                        planner thread(s)   │     recovery thread
//!                                                            │
//!                                      ShardedDetectionPool: one EDF queue +
//!                                      channel-table replica per memory domain,
//!                                      workers pinned inside their domain
//! ```
//!
//! * **Ingress** ([`FrameStream::submit`] / [`FrameStream::try_submit`]):
//!   any number of threads submit [`UplinkFrame`]s. Admission is bounded
//!   by the slot pool ([`StreamConfig::capacity`]); `submit` blocks when
//!   full (backpressure), `try_submit` refuses.
//! * **Plan**: a planner thread seeds the frame's own RNG, runs the
//!   transmit chains and packages detection jobs into the slot's recycled
//!   [`gs_phy::FrameWorkspace`], then splits the channel-grouped job order
//!   into per-shard portions.
//! * **Detect**: `geosphere-core`'s
//!   [`ShardedDetectionPool`](geosphere_core::ShardedDetectionPool) runs
//!   each portion on a worker pinned in the shard's memory domain,
//!   earliest-deadline-first within the shard, through per-worker reusable
//!   workspaces and per-shard channel-table replicas.
//! * **Recover**: the recovery thread scatters detections back to job
//!   order, runs the per-client receive chains (Viterbi/CRC), accounts
//!   deadlines, and delivers.
//! * **Egress** ([`FrameStream::recv`]): completions arrive in **per-client
//!   submission order** regardless of internal reordering; dropping the
//!   [`Completed`] guard recycles the slot.
//!
//! ## Guarantees
//!
//! * **Bit-identity**: a frame's outcome is a pure function of its
//!   [`UplinkFrame`] (seeded RNG, pure detection, pure receive chain) —
//!   identical to serial `decode_frame_batched_into` with the same seed,
//!   for any worker/shard/capacity configuration and any interleaving
//!   (`tests/stream_determinism.rs`).
//! * **Zero steady-state allocations**: slots, queues, heaps, and
//!   per-shard replicas are bounded and recycled; once every slot has
//!   warmed to the workload's largest frame shape, pushing a frame through
//!   the full pipeline touches the allocator zero times on every thread
//!   involved (same suite).
//! * **Deadlines are scheduling hints, not admission control**: a missed
//!   deadline is recorded ([`RuntimeStats::deadline_misses`],
//!   [`Completed::missed_deadline`]), never dropped.
//!
//! ## Adaptive control plane
//!
//! The detect stage is not welded to one detector: the stream holds a
//! [`DetectorLadder`] (sphere → FSD → MMSE by default) and consults an
//! [`AdaptationPolicy`] once per admission, stamping the chosen
//! [`DetectorTier`] on the frame. The default
//! [`HysteresisPolicy`] degrades under deadline
//! pressure (shard-queue depth, slot-pool occupancy, the windowed miss
//! rate) and climbs back as the queue drains; [`FrameStream::new`] is the
//! degenerate case (uniform ladder, pinned top tier). Completions report
//! the tier that decoded them ([`Completed::tier`]), so determinism is
//! checkable per pinned tier. See [`policy`].
//!
//! ## Knobs
//!
//! [`StreamConfig`] sizes the engine; `GS_DOMAINS` overrides memory-domain
//! discovery, `GS_NO_PIN` disables worker pinning, `GS_SIMD` selects the
//! kernel tier — all under the shared warn-and-fallback policy
//! (`geosphere_core::env`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod stats;
pub mod stream;

pub use geosphere_core::{DetectorLadder, DetectorTier};
pub use policy::{AdaptationPolicy, HysteresisPolicy, PinnedPolicy, PressureSignal};
pub use stats::RuntimeStats;
pub use stream::{Completed, FrameStream, StreamConfig, StreamDead, TrySubmitError, UplinkFrame};
