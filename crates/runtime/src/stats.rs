//! Runtime observability: the [`RuntimeStats`] snapshot.

use std::time::Duration;

/// A point-in-time snapshot of a [`FrameStream`](crate::FrameStream)'s
/// behaviour, taken with [`FrameStream::stats`](crate::FrameStream::stats).
///
/// Counters are monotone over the stream's lifetime; occupancy and queue
/// depths are instantaneous. Taking a snapshot allocates (the per-shard
/// depth vector) — it is an observability call, not a hot-path one.
#[derive(Clone, Debug)]
pub struct RuntimeStats {
    /// Frames admitted so far (including those still in flight).
    pub submitted: u64,
    /// Frames fully recovered and delivered to the completion queue.
    pub completed: u64,
    /// Completed frames whose recovery finished after their deadline.
    pub deadline_misses: u64,
    /// Frames currently in flight (admitted, not yet released by the
    /// consumer) — the occupancy of the slot pool.
    pub in_flight: usize,
    /// The slot-pool bound: the maximum possible `in_flight`.
    pub capacity: usize,
    /// Resolved shard count of the detection layer.
    pub shards: usize,
    /// Total detection workers across all shards.
    pub workers: usize,
    /// Queued detection tasks per shard, at snapshot time.
    pub shard_queue_depths: Vec<usize>,
    /// Wall-clock since the stream was created.
    pub elapsed: Duration,
    /// `completed / elapsed` — sustained delivered throughput.
    pub frames_per_sec: f64,
}

impl RuntimeStats {
    /// Fraction of the slot pool currently occupied, `0.0..=1.0`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.in_flight as f64 / self.capacity as f64
        }
    }
}
