//! Runtime observability: the [`RuntimeStats`] snapshot.

use geosphere_core::DetectorTier;
use gs_prof::hist::HistogramSnapshot;
use std::time::Duration;

/// A point-in-time snapshot of a [`FrameStream`](crate::FrameStream)'s
/// behaviour, taken with [`FrameStream::stats`](crate::FrameStream::stats).
///
/// Counters are monotone over the stream's lifetime; occupancy, queue
/// depths, and the windowed rates are instantaneous. Taking a snapshot
/// allocates (the per-shard depth vector and the histogram copies) — it
/// is an observability call, not a hot-path one. The stage counters are
/// **clamped into pipeline order** at snapshot time
/// (`submitted ≥ planned ≥ detected ≥ recovered ≥ completed ≥
/// deadline_misses`): the live counters are independent atomics, so a raw
/// racing read could transiently show a later stage ahead of an earlier
/// one, and gauges differenced from such a snapshot would go negative.
///
/// Two throughput figures are reported on purpose:
/// [`RuntimeStats::frames_per_sec`] is the lifetime average (total
/// completions over total elapsed — a summary figure that decays while
/// the stream idles), while [`RuntimeStats::windowed_frames_per_sec`]
/// counts only the trailing window and is what the control plane (and any
/// live dashboard) should read.
///
/// **Windowed-rate semantics** (corrected in PR 8): the windowed figures
/// are computed over the trailing one-second window, with the throughput
/// divisor being the span the delivery ring **actually covers** —
/// `min(1 s, now − oldest retained delivery)`. A freshly started stream
/// therefore reports its true instantaneous rate instead of
/// under-reporting until one full second has elapsed, and a saturated
/// stream is no longer clamped at the ring's event capacity (the historic
/// 128-event ring capped `windowed_frames_per_sec` at 128 while the
/// pipeline sustained 400+ fps, and silently shrank the miss-rate horizon
/// to the trailing ~0.1 s — exactly when the adaptation policy depended
/// on it).
#[derive(Clone, Debug)]
pub struct RuntimeStats {
    /// Frames admitted so far (including those still in flight).
    pub submitted: u64,
    /// Frames fully recovered and delivered to the completion queue.
    pub completed: u64,
    /// Delivered frames that became observable after their deadline
    /// (accounted at delivery, so time parked behind a slow predecessor
    /// counts).
    pub deadline_misses: u64,
    /// Frames the plan stage has dispatched to the detection shards.
    pub planned: u64,
    /// Frames whose last shard finished detecting.
    pub detected: u64,
    /// Frames whose receive chains have run (recovery complete; the frame
    /// is delivered or parked for per-client ordering).
    pub recovered: u64,
    /// Admissions per detector tier, indexed by
    /// [`DetectorTier::index`]. A fixed-detector stream counts
    /// everything under [`DetectorTier::Sphere`].
    pub tier_admissions: [u64; DetectorTier::COUNT],
    /// The tier the control plane chose most recently.
    pub current_tier: DetectorTier,
    /// Frames currently in flight (admitted, not yet released by the
    /// consumer) — the occupancy of the slot pool.
    pub in_flight: usize,
    /// The slot-pool bound: the maximum possible `in_flight`.
    pub capacity: usize,
    /// Resolved shard count of the detection layer.
    pub shards: usize,
    /// Total detection workers across all shards.
    pub workers: usize,
    /// Queued detection tasks per shard, at snapshot time.
    pub shard_queue_depths: Vec<usize>,
    /// Wall-clock since the stream was created.
    pub elapsed: Duration,
    /// Lifetime-average delivered throughput (`completed / elapsed`;
    /// `0.0` before the first completion). Decays while the stream
    /// idles — prefer [`RuntimeStats::windowed_frames_per_sec`] for
    /// "what is it doing now".
    pub frames_per_sec: f64,
    /// Delivered throughput over the trailing one-second window — the
    /// rate the control plane consumes. Divides by the span the window
    /// actually covers (see the type docs), so it is exact for young
    /// streams and saturated ones alike.
    pub windowed_frames_per_sec: f64,
    /// Fraction of deliveries in the trailing one-second window that
    /// missed their deadline (`0.0` when the window is empty) — the miss
    /// signal the control plane consumes.
    pub windowed_miss_rate: f64,
    /// Submit→delivery latency histogram per client lane (nanoseconds):
    /// admission stamp to the delivery point where deadline accounting
    /// happens, so time parked behind slow predecessors counts. Recorded
    /// allocation-free on the hot path; this snapshot is an owned copy.
    pub latency_per_client: Vec<HistogramSnapshot>,
    /// Submit→pop queue-wait histogram per detection shard (nanoseconds),
    /// recorded by the shard workers at the same point the `gs_prof`
    /// Queue stage is stamped — but always on, not only under
    /// `--features profile`.
    pub queue_wait_per_shard: Vec<HistogramSnapshot>,
    /// Deadline slack (deadline − delivery instant, nanoseconds) of
    /// deliveries that made their deadline.
    pub deadline_slack: HistogramSnapshot,
    /// Deadline overshoot (delivery instant − deadline, nanoseconds) of
    /// deliveries that missed — the negative half of the slack
    /// distribution, kept unsigned as its own histogram.
    pub deadline_lateness: HistogramSnapshot,
}

impl RuntimeStats {
    /// The process-wide stage-attributed cycle profile at snapshot time:
    /// every thread's [`gs_prof`] counter table aggregated, including
    /// exited shard workers (attribution survives the
    /// `ShardedDetectionPool` handoff). All-zero unless the workspace was
    /// built with the `profile` feature. Counters are monotone and
    /// process-global — bracket a region with two snapshots and
    /// [`gs_prof::StageProfile::delta`] to isolate it.
    pub fn stage_profile(&self) -> gs_prof::StageProfile {
        gs_prof::snapshot()
    }

    /// Fraction of the slot pool currently occupied, `0.0..=1.0`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.in_flight as f64 / self.capacity as f64
        }
    }
}
