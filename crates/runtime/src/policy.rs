//! The adaptation control plane: pluggable policies that pick a
//! [`DetectorTier`] per admission from runtime pressure signals.
//!
//! The streaming engine consults its [`AdaptationPolicy`] once per
//! admitted frame, handing it a [`PressureSignal`] snapshot (per-shard
//! queue depths, the windowed deadline-miss rate, slot-pool occupancy).
//! The returned tier is stamped on the frame and selects which rung of the
//! stream's [`DetectorLadder`](geosphere_core::DetectorLadder) detects it.
//!
//! Two policies ship:
//!
//! * [`PinnedPolicy`] — a constant tier. `FrameStream::new` pins
//!   [`DetectorTier::Sphere`], which is how the fixed-detector pipeline
//!   keeps its bit-identity contract: tier choice never varies, so the
//!   stream remains a pure function of each submission.
//! * [`HysteresisPolicy`] — the default closed-loop ladder walk: degrade
//!   sphere → FSD → MMSE as pressure rises, climb back as the queue
//!   drains, with separated degrade/recover thresholds and a minimum
//!   dwell between moves so the tier cannot flap when the signal sits at
//!   a threshold.
//!
//! Policies are plain mutable state behind the stream's admission path —
//! unit-testable by feeding synthetic signals, no engine required.

use geosphere_core::DetectorTier;

/// The pressure snapshot handed to [`AdaptationPolicy::select_tier`] at
/// each admission.
///
/// All signals are cheap, slightly stale reads — admission-time
/// observations, not barriers. `occupancy` counts the admission being
/// decided (the slot is already claimed when the policy runs).
#[derive(Clone, Copy, Debug)]
pub struct PressureSignal<'a> {
    /// Queued detection tasks per shard at admission time.
    pub shard_queue_depths: &'a [usize],
    /// Fraction of recently delivered frames that missed their deadline
    /// ([`RuntimeStats::windowed_miss_rate`](crate::RuntimeStats::windowed_miss_rate));
    /// `0.0` while the window is empty.
    pub miss_rate: f64,
    /// Slot-pool occupancy `0.0..=1.0` (`in_flight / capacity`).
    pub occupancy: f64,
    /// Frames in flight, including this admission.
    pub in_flight: usize,
    /// The slot-pool bound.
    pub capacity: usize,
}

impl PressureSignal<'_> {
    /// The deepest shard queue as a fraction of the slot-pool bound
    /// (every shard queue can hold every in-flight frame at once, so the
    /// bound is `capacity`).
    pub fn queue_pressure(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        let deepest = self.shard_queue_depths.iter().copied().max().unwrap_or(0);
        deepest as f64 / self.capacity as f64
    }

    /// The scalar load signal the default policy acts on: the max of
    /// slot-pool occupancy and shard-queue pressure. Either one saturating
    /// means detection is falling behind admission.
    pub fn pressure(&self) -> f64 {
        self.occupancy.max(self.queue_pressure())
    }
}

/// Picks the detector tier for each admitted frame.
///
/// `select_tier` runs on the submitting thread under the stream's policy
/// lock — implementations should be quick and must not allocate on the
/// steady-state path (the zero-allocation contract covers admission).
pub trait AdaptationPolicy: Send {
    /// Chooses the tier for the admission described by `signal`.
    fn select_tier(&mut self, signal: &PressureSignal<'_>) -> DetectorTier;
}

/// The constant policy: every admission decodes at the pinned tier.
///
/// With a pinned policy the stream's outputs are bit-identical to serial
/// decoding with the pinned rung's detector — the determinism contract
/// the `stream_determinism` suite asserts per tier.
#[derive(Clone, Copy, Debug)]
pub struct PinnedPolicy(pub DetectorTier);

impl AdaptationPolicy for PinnedPolicy {
    fn select_tier(&mut self, _signal: &PressureSignal<'_>) -> DetectorTier {
        self.0
    }
}

/// The default closed-loop policy: a hysteresis ladder walk.
///
/// A tier move needs two things at once:
///
/// * **Signal past a threshold.** Degrading needs `pressure() ≥
///   degrade_pressure` *or* `miss_rate ≥ degrade_miss_rate`; recovering
///   needs `pressure() ≤ recover_pressure` *and* `miss_rate ≤
///   recover_miss_rate`. The recover thresholds sit well below the degrade
///   thresholds, so any signal held between them changes nothing — the
///   hysteresis band that prevents flapping at a single threshold.
/// * **Dwell.** At least [`HysteresisPolicy::dwell`] admissions must pass
///   since the last move, bounding the walk rate even when the signal
///   oscillates across the whole band.
///
/// Each move is one rung: sphere → FSD → MMSE degrading, the reverse
/// recovering.
#[derive(Clone, Debug)]
pub struct HysteresisPolicy {
    /// Degrade when the load signal reaches this fraction (default 0.85).
    pub degrade_pressure: f64,
    /// Recover only when the load signal is at or below this fraction
    /// (default 0.35).
    pub recover_pressure: f64,
    /// Degrade when the windowed miss rate reaches this fraction
    /// (default 0.10).
    pub degrade_miss_rate: f64,
    /// Recover only when the windowed miss rate is at or below this
    /// fraction (default 0.02).
    pub recover_miss_rate: f64,
    /// Minimum admissions between tier moves (default 4).
    pub dwell: u32,
    tier: DetectorTier,
    admissions_since_move: u32,
}

impl HysteresisPolicy {
    /// The default thresholds, starting at the top tier.
    pub fn new() -> Self {
        let dwell = 4;
        HysteresisPolicy {
            degrade_pressure: 0.85,
            recover_pressure: 0.35,
            degrade_miss_rate: 0.10,
            recover_miss_rate: 0.02,
            dwell,
            tier: DetectorTier::Sphere,
            // A fresh policy may move on its first admission.
            admissions_since_move: dwell,
        }
    }

    /// The tier the next admission will use if no threshold is crossed.
    pub fn current_tier(&self) -> DetectorTier {
        self.tier
    }
}

impl Default for HysteresisPolicy {
    fn default() -> Self {
        HysteresisPolicy::new()
    }
}

impl AdaptationPolicy for HysteresisPolicy {
    fn select_tier(&mut self, signal: &PressureSignal<'_>) -> DetectorTier {
        let pressure = signal.pressure();
        let hot = pressure >= self.degrade_pressure || signal.miss_rate >= self.degrade_miss_rate;
        let cool = pressure <= self.recover_pressure && signal.miss_rate <= self.recover_miss_rate;
        if self.admissions_since_move >= self.dwell {
            let moved = if hot {
                self.tier.degraded()
            } else if cool {
                self.tier.recovered()
            } else {
                None
            };
            if let Some(next) = moved {
                self.tier = next;
                self.admissions_since_move = 0;
            }
        }
        self.admissions_since_move = self.admissions_since_move.saturating_add(1);
        self.tier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(
        depths: &[usize],
        miss_rate: f64,
        in_flight: usize,
        capacity: usize,
    ) -> PressureSignal<'_> {
        PressureSignal {
            shard_queue_depths: depths,
            miss_rate,
            occupancy: if capacity == 0 { 0.0 } else { in_flight as f64 / capacity as f64 },
            in_flight,
            capacity,
        }
    }

    #[test]
    fn pressure_is_max_of_occupancy_and_queue_depth() {
        let s = signal(&[1, 6, 2], 0.0, 2, 8);
        assert!((s.queue_pressure() - 0.75).abs() < 1e-12);
        assert!((s.pressure() - 0.75).abs() < 1e-12, "queue pressure dominates");
        let s = signal(&[0, 0], 0.0, 8, 8);
        assert!((s.pressure() - 1.0).abs() < 1e-12, "occupancy dominates");
    }

    #[test]
    fn pinned_policy_never_moves() {
        let mut p = PinnedPolicy(DetectorTier::Fsd);
        for load in [0.0, 0.5, 1.0] {
            let depths = [8usize, 8];
            let s = signal(&depths, load, 8, 8);
            assert_eq!(p.select_tier(&s), DetectorTier::Fsd);
        }
    }

    #[test]
    fn sustained_pressure_walks_to_the_floor_and_idle_walks_back() {
        let mut p = HysteresisPolicy::new();
        let hot_depths = [8usize];
        let idle_depths = [0usize];
        // Saturated: degrade one rung per dwell until the MMSE floor.
        let mut seen = Vec::new();
        for _ in 0..(3 * p.dwell) {
            seen.push(p.select_tier(&signal(&hot_depths, 0.5, 8, 8)));
        }
        assert_eq!(seen.first().copied(), Some(DetectorTier::Fsd), "first hot admission degrades");
        assert_eq!(seen.last().copied(), Some(DetectorTier::Mmse));
        assert!(seen.windows(2).all(|w| w[1] >= w[0]), "degradation is monotone");
        // Stays at the floor under pressure.
        assert_eq!(p.select_tier(&signal(&hot_depths, 0.5, 8, 8)), DetectorTier::Mmse);
        // Drained: climb back to sphere, one rung per dwell.
        let mut tier = DetectorTier::Mmse;
        for _ in 0..(3 * p.dwell) {
            tier = p.select_tier(&signal(&idle_depths, 0.0, 1, 8));
        }
        assert_eq!(tier, DetectorTier::Sphere, "idle stream recovers the top tier");
    }

    #[test]
    fn no_flapping_inside_the_hysteresis_band() {
        let mut p = HysteresisPolicy::new();
        // Degrade once at the threshold…
        let depths = [0usize];
        let s_hot = signal(&depths, 0.0, 87, 100); // occupancy 0.87 ≥ 0.85
        assert_eq!(p.select_tier(&s_hot), DetectorTier::Fsd);
        // …then hold the signal just *below* the degrade threshold but
        // above the recover threshold: the tier must never change again,
        // in either direction, however long it holds.
        let s_band = signal(&depths, 0.0, 80, 100); // 0.35 < 0.80 < 0.85
        for _ in 0..100 {
            assert_eq!(
                p.select_tier(&s_band),
                DetectorTier::Fsd,
                "signal inside the hysteresis band must not move the tier"
            );
        }
        // Oscillating tightly around the degrade threshold cannot climb
        // back either (recovery needs ≤ 0.35): at worst it walks further
        // down, one rung per dwell — never up-down flapping.
        let mut tiers = Vec::new();
        for k in 0..40 {
            let s = if k % 2 == 0 { s_hot } else { s_band };
            tiers.push(p.select_tier(&s));
        }
        assert!(tiers.windows(2).all(|w| w[1] >= w[0]), "no upward move while hot: {tiers:?}");
    }

    #[test]
    fn miss_rate_alone_degrades_and_blocks_recovery() {
        let mut p = HysteresisPolicy::new();
        let depths = [0usize];
        // Low occupancy, high miss rate: the deadline signal must degrade.
        assert_eq!(p.select_tier(&signal(&depths, 0.5, 1, 8)), DetectorTier::Fsd);
        // Occupancy drained but misses still in the window: the ladder
        // keeps walking down (recovery must wait for *both* signals).
        let mut tier = DetectorTier::Fsd;
        for _ in 0..(2 * p.dwell) {
            let next = p.select_tier(&signal(&depths, 0.5, 1, 8));
            assert!(next >= tier, "misses in the window must block recovery");
            tier = next;
        }
        assert_eq!(tier, DetectorTier::Mmse);
        // Window clean → climb back.
        let mut tier = DetectorTier::Mmse;
        for _ in 0..(3 * p.dwell) {
            tier = p.select_tier(&signal(&depths, 0.0, 1, 8));
        }
        assert_eq!(tier, DetectorTier::Sphere);
    }

    #[test]
    fn dwell_bounds_the_walk_rate() {
        let mut p = HysteresisPolicy::new();
        p.dwell = 8;
        p.admissions_since_move = 8;
        let depths = [8usize];
        let s = signal(&depths, 0.5, 8, 8);
        let tiers: Vec<DetectorTier> = (0..17).map(|_| p.select_tier(&s)).collect();
        // Moves at admissions 0 and 8; in between the tier holds.
        assert_eq!(tiers[0], DetectorTier::Fsd);
        assert!(tiers[1..8].iter().all(|&t| t == DetectorTier::Fsd));
        assert_eq!(tiers[8], DetectorTier::Mmse);
        assert!(tiers[9..].iter().all(|&t| t == DetectorTier::Mmse));
    }
}
