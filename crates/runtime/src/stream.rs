//! The [`FrameStream`] engine: slot pool, stage threads, ordering.
//!
//! See the crate docs for the architecture. This module holds the whole
//! engine: the bounded slot pool (admission control), the planner and
//! recovery stage threads, the [`ShardedJob`] adapter that runs the detect
//! stage on `geosphere-core`'s domain-sharded pool, per-client in-order
//! completion delivery, and the stats counters.

use crate::policy::{AdaptationPolicy, PinnedPolicy, PressureSignal};
use crate::stats::RuntimeStats;
use geosphere_core::{
    Detection, DetectionBatch, DetectorLadder, DetectorStats, DetectorTier, DetectorWorkspace,
    MimoDetector, ShardedDetectionPool, ShardedJob, NO_DEADLINE,
};
use gs_channel::MimoChannel;
use gs_linalg::Matrix;
use gs_phy::{FrameWorkspace, PhyConfig, UplinkOutcome};
use gs_prof::hist::LogHistogram;
use gs_prof::trace as gtrace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One frame submission: everything the runtime needs to plan, detect,
/// and recover the frame without further input from the source.
///
/// The frame carries its own RNG `seed` (payloads and noise are drawn
/// from `StdRng::seed_from_u64(seed)` exactly as the serial path would),
/// so the outcome is a pure function of the submission — bit-identical to
/// `decode_frame_batched_into` with the same seed, regardless of how the
/// runtime schedules it.
#[derive(Clone, Debug)]
pub struct UplinkFrame {
    /// Source lane (`< StreamConfig::clients`): completions are delivered
    /// in per-client submission order.
    pub client: usize,
    /// The channel realization the frame flies through (`Arc` so
    /// submission never copies matrices).
    pub channel: Arc<MimoChannel>,
    /// Operating SNR in dB.
    pub snr_db: f64,
    /// Seed for the frame's payload and noise draws.
    pub seed: u64,
    /// Overrides the stream's base `payload_bits` for this frame
    /// (`None` = the base config's length).
    pub payload_bits: Option<usize>,
    /// Optional completion deadline. Within a shard, detection is
    /// scheduled earliest-deadline-first; deadline-free frames run after
    /// all deadline-bearing ones, FIFO. A missed deadline never drops the
    /// frame — it is recorded ([`Completed::missed_deadline`],
    /// [`RuntimeStats::deadline_misses`]).
    pub deadline: Option<Instant>,
}

impl UplinkFrame {
    /// A deadline-free submission with the stream's base frame length.
    pub fn new(client: usize, channel: Arc<MimoChannel>, snr_db: f64, seed: u64) -> Self {
        UplinkFrame { client, channel, snr_db, seed, payload_bits: None, deadline: None }
    }
}

/// The stream can no longer make progress: a detection worker panicked
/// (poisoning the [`ShardedDetectionPool`]) or a planner/recovery thread
/// unwound. Outstanding frames will never complete; the stream must be
/// torn down. Returned as a typed error (rather than a panic on the
/// submitting thread) so fault-injection campaigns can record worker loss
/// as a scenario outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamDead;

impl std::fmt::Display for StreamDead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame stream is dead: a detection worker or stage thread panicked")
    }
}

impl std::error::Error for StreamDead {}

/// Refusal from [`FrameStream::try_submit`], returning the frame so the
/// source can retry, reroute, or drop it.
#[derive(Debug)]
pub enum TrySubmitError {
    /// Every slot is in flight — the documented loss-tolerant admission
    /// refusal (a load condition, not a failure).
    Full(UplinkFrame),
    /// The stream is dead ([`StreamDead`]); the frame can never complete
    /// here.
    Dead(UplinkFrame),
}

impl TrySubmitError {
    /// The refused frame, whichever way it was refused.
    pub fn into_frame(self) -> UplinkFrame {
        match self {
            TrySubmitError::Full(f) | TrySubmitError::Dead(f) => f,
        }
    }
}

/// Sizing and placement knobs for a [`FrameStream`].
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Distinct source lanes (ordering domains). Must be ≥ 1.
    pub clients: usize,
    /// Detection workers across all shards (`0` = machine parallelism).
    pub workers: usize,
    /// Detection shards (`0` = one per discovered memory domain; clamped
    /// to `1..=workers`).
    pub shards: usize,
    /// Frames admitted concurrently (the slot-pool bound; `0` resolves to
    /// `2 × workers + 2`, enough to keep every stage busy). **Admission
    /// policy:** [`FrameStream::submit`] blocks while all slots are in
    /// flight — backpressure propagates to sources — and
    /// [`FrameStream::try_submit`] refuses instead, for loss-tolerant
    /// sources. A slot is released when the consumer drops the frame's
    /// [`Completed`] guard.
    pub capacity: usize,
    /// Plan-stage threads (`0` resolves to 1; planning is cheap relative
    /// to detection, so 1 usually suffices).
    pub planners: usize,
    /// Pin detection workers inside their shard's memory domain (default:
    /// on, unless `GS_NO_PIN` opts out).
    pub pin: bool,
}

impl StreamConfig {
    /// Defaults for `clients` source lanes: machine-sized workers, one
    /// shard per memory domain, automatic capacity, one planner, pinning
    /// per `GS_NO_PIN`.
    pub fn new(clients: usize) -> Self {
        StreamConfig {
            clients,
            workers: 0,
            shards: 0,
            capacity: 0,
            planners: 1,
            pin: !geosphere_core::affinity::pinning_disabled_by_env(),
        }
    }
}

/// Per-frame bookkeeping carried through the pipeline.
struct SlotMeta {
    client: usize,
    client_seq: u64,
    snr_db: f64,
    seed: u64,
    payload_bits: usize,
    deadline: Option<Instant>,
    deadline_key: u64,
    channel: Option<Arc<MimoChannel>>,
    missed_deadline: bool,
    /// The detector tier the policy chose at admission.
    tier: DetectorTier,
    /// Admission wall stamp — the start of the submit→delivery latency the
    /// telemetry histograms record.
    submitted_at: Instant,
    /// Global submission ordinal — the flight recorder's frame id.
    frame_id: u64,
}

impl SlotMeta {
    fn empty() -> Self {
        SlotMeta {
            client: 0,
            client_seq: 0,
            snr_db: 0.0,
            seed: 0,
            payload_bits: 0,
            deadline: None,
            deadline_key: NO_DEADLINE,
            channel: None,
            missed_deadline: false,
            tier: DetectorTier::Sphere,
            submitted_at: Instant::now(),
            frame_id: 0,
        }
    }
}

/// The frame's plan/assembly state: written by the planner, read by the
/// shard workers, written again by the recovery stage. Lock order is
/// always core-then-portion.
struct SlotCore {
    ws: FrameWorkspace,
    /// Channel-grouped dispatch order over the planned jobs (scratch,
    /// reused every frame).
    order: Vec<usize>,
    /// Detector operation counts accumulated during recovery.
    stats: DetectorStats,
}

/// One shard's portion of a frame: the job indices it owns, its local
/// channel-table replica, and its detection outputs. The replica is
/// refreshed by the shard's *own* worker (not the planner), so first-touch
/// places it in the shard's memory domain; all three buffers are recycled
/// frame over frame.
struct Portion {
    indices: Vec<usize>,
    channels: Vec<Matrix>,
    n_channels: usize,
    out: Vec<Detection>,
}

impl Portion {
    fn empty() -> Self {
        Portion { indices: Vec::new(), channels: Vec::new(), n_channels: 0, out: Vec::new() }
    }
}

struct Slot {
    meta: Mutex<SlotMeta>,
    core: RwLock<SlotCore>,
    portions: Vec<Mutex<Portion>>,
    /// Shards still detecting this frame; the worker that decrements it to
    /// zero hands the frame to recovery.
    remaining: AtomicU64,
}

/// One client's ordering lane: sequence counters plus a parking ring for
/// frames that completed ahead of an earlier sibling.
struct ClientLane {
    next_submit: u64,
    next_deliver: u64,
    /// `parked[seq % capacity]` holds the slot of a finished frame waiting
    /// for its predecessors; at most `capacity` frames are in flight, so
    /// the ring can never wrap onto an occupied cell.
    parked: Vec<Option<usize>>,
}

struct StatsInner {
    submitted: AtomicU64,
    completed: AtomicU64,
    deadline_misses: AtomicU64,
    /// Per-stage progress counters: frames planned, frames whose last
    /// shard finished detecting, frames whose receive chains ran.
    planned: AtomicU64,
    detected: AtomicU64,
    recovered: AtomicU64,
    /// Admissions per detector tier, indexed by `DetectorTier::index()`.
    tier_admissions: [AtomicU64; DetectorTier::COUNT],
    /// The most recently selected tier (`DetectorTier` discriminant), for
    /// snapshots.
    last_tier: AtomicU8,
}

/// Recent deliveries observed: `capacity`-bounded bookkeeping for the last
/// [`WINDOW_EVENTS`] deliveries, each `(when, missed_deadline)`. The
/// windowed rates ([`DeliveryWindow::rates`]) count only events within the
/// trailing [`WINDOW_SPAN`], so an idle stream decays to zero throughput
/// and a drained stream sheds stale misses — the signals the control
/// plane consumes.
struct DeliveryWindow {
    events: Vec<(Instant, bool)>,
    /// Oldest entry once the ring is full; next write position.
    head: usize,
}

/// Ring capacity. Sized so the ring spans the full [`WINDOW_SPAN`] at any
/// rate the pipeline can physically sustain (bench_gate saturates in the
/// 400–1300 fps range; 4096 leaves 3× headroom): a ring shorter than one
/// second of deliveries silently **shrank the horizon** of the windowed
/// rates under load — throughput clamped at `WINDOW_EVENTS` fps and the
/// miss rate covered only the trailing fraction of a second, exactly when
/// the control plane needed the true figures. Should deliveries outpace
/// even this, [`DeliveryWindow::rates`] now divides by the span the
/// retained events actually cover, so the rate stays correct and only the
/// averaging horizon narrows.
const WINDOW_EVENTS: usize = 4096;
/// The trailing horizon of the windowed rates.
const WINDOW_SPAN: Duration = Duration::from_secs(1);
/// Floor of the covered-span divisor: a burst younger than this reports
/// the rate as if spread over 1 ms rather than dividing by a near-zero
/// span (one delivery must never read as "millions of fps").
const WINDOW_MIN_SPAN: Duration = Duration::from_millis(1);

impl DeliveryWindow {
    fn new() -> Self {
        DeliveryWindow { events: Vec::with_capacity(WINDOW_EVENTS), head: 0 }
    }

    /// Records one delivery; allocation-free (the ring is preallocated).
    fn record(&mut self, at: Instant, missed: bool) {
        if self.events.len() < WINDOW_EVENTS {
            self.events.push((at, missed));
        } else {
            self.events[self.head] = (at, missed);
            self.head = (self.head + 1) % WINDOW_EVENTS;
        }
    }

    /// `(frames_per_sec, miss_rate)` over the deliveries within
    /// [`WINDOW_SPAN`] of `now`; `(0.0, 0.0)` when none.
    ///
    /// The throughput divisor is the span the window **actually covers**:
    /// `min(WINDOW_SPAN, now − oldest_retained_event)`, floored at
    /// [`WINDOW_MIN_SPAN`]. Dividing by the full span unconditionally had
    /// two bugs: a stream younger than the span under-reported (3 frames
    /// in the first 100 ms of life is ~30 fps, not 3), and a ring that
    /// evicted events inside the span clamped throughput at
    /// `WINDOW_EVENTS` fps while bench_gate sustained 3–10× that.
    fn rates(&self, now: Instant) -> (f64, f64) {
        let mut n = 0u64;
        let mut missed = 0u64;
        let mut oldest: Option<Instant> = None;
        for &(at, m) in &self.events {
            // `duration_since` saturates to zero for future instants.
            if now.duration_since(at) <= WINDOW_SPAN {
                n += 1;
                if m {
                    missed += 1;
                }
            }
            // Oldest *retained* event, in or out of the span: events older
            // than the span prove the ring covers the whole span.
            if oldest.is_none_or(|o| at < o) {
                oldest = Some(at);
            }
        }
        if n == 0 {
            return (0.0, 0.0);
        }
        let covered = oldest
            .map(|o| now.duration_since(o))
            .unwrap_or(WINDOW_SPAN)
            .clamp(WINDOW_MIN_SPAN, WINDOW_SPAN);
        let fps = n as f64 / covered.as_secs_f64();
        (fps, missed as f64 / n as f64)
    }
}

struct Shared {
    base_cfg: PhyConfig,
    /// One detector per tier; `detect_portion` dispatches at the tier
    /// stamped on the frame. A fixed-detector stream is the uniform
    /// ladder.
    ladder: DetectorLadder,
    /// Consulted once per admission, on the submitting thread.
    policy: Mutex<Box<dyn AdaptationPolicy>>,
    /// Preallocated scratch for the admission-path queue-depth read, so
    /// `select_tier` stays allocation-free.
    depth_scratch: Mutex<Vec<usize>>,
    /// Recent-delivery ring backing the windowed rates. Lock order: this
    /// is a leaf (taken under `lanes` in the delivery path, alone
    /// elsewhere); never take another stream lock while holding it.
    window: Mutex<DeliveryWindow>,
    /// Submit→delivery latency per client lane, nanoseconds. Preallocated
    /// at build; recording is lock- and allocation-free.
    latency: Vec<LogHistogram>,
    /// Deadline slack (deadline − delivery) of on-time deliveries.
    slack: LogHistogram,
    /// Deadline overshoot (delivery − deadline) of missed deliveries —
    /// the negative half of the slack distribution, kept as its own
    /// histogram so both stay unsigned.
    lateness: LogHistogram,
    slots: Vec<Slot>,
    n_shards: usize,
    n_clients: usize,
    capacity: usize,
    pool: ShardedDetectionPool,
    free: Mutex<Vec<usize>>,
    free_cv: Condvar,
    plan_q: Mutex<VecDeque<usize>>,
    plan_cv: Condvar,
    recover_q: Mutex<VecDeque<usize>>,
    recover_cv: Condvar,
    done_q: Mutex<VecDeque<usize>>,
    done_cv: Condvar,
    lanes: Mutex<Vec<ClientLane>>,
    stats: StatsInner,
    shutdown: AtomicBool,
    /// Set when a planner or recovery thread unwound — the stage-thread
    /// counterpart of the detection pool's poison flag, so `recv`/`submit`
    /// fail fast instead of waiting on a frame that can never arrive.
    stage_panicked: AtomicBool,
    epoch: Instant,
}

impl Shared {
    fn is_dead(&self) -> bool {
        self.pool.is_poisoned() || self.stage_panicked.load(Ordering::SeqCst)
    }
}

/// Marks the engine dead when a stage thread unwinds (planner assert,
/// recovery panic, a detector panicking inside `plan`'s transmit chain…).
struct StagePoisonOnPanic<'a>(&'a Shared);

impl Drop for StagePoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.stage_panicked.store(true, Ordering::SeqCst);
            // Black-box the death: record the fault against whatever
            // frame this stage thread was working (ambient context), then
            // snapshot the rings before the stream winds down.
            gtrace::emit(gtrace::TracePoint::Fault);
            gtrace::trigger(gtrace::Trigger::Fault, gtrace::context().frame);
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The [`ShardedJob`] the runtime submits: a weak handle so queued tasks
/// never keep the engine alive (workers are joined before `Shared` drops;
/// the upgrade guard is belt-and-braces for mid-teardown pops).
struct DetectJob {
    shared: Weak<Shared>,
}

impl ShardedJob for DetectJob {
    fn run_shard(&self, shard: usize, token: usize, ws: &mut DetectorWorkspace) {
        if let Some(shared) = self.shared.upgrade() {
            shared.detect_portion(shard, token, ws);
        }
    }
}

impl Shared {
    /// The detect stage for one `(frame, shard)` portion, run on a pinned
    /// shard worker: refresh the shard's channel replica, detect its job
    /// indices through the worker's reusable workspace, and hand the frame
    /// to recovery when this was the last outstanding shard.
    fn detect_portion(&self, shard: usize, slot_idx: usize, ws: &mut DetectorWorkspace) {
        let slot = &self.slots[slot_idx];
        {
            // The shard worker set the frame context before dispatching.
            let _tspan = gtrace::span(gtrace::TracePoint::Detect);
            let core = slot.core.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut portion = lock(&slot.portions[shard]);
            let portion = &mut *portion;
            if portion.indices.is_empty() {
                portion.out.clear();
            } else {
                let src = core.ws.planned_channels();
                let jobs = core.ws.planned_jobs();
                // Refresh the shard's channel-table replica so detection
                // reads domain-local memory. With a single shard the
                // replica cannot improve locality (same domain as the
                // planner's table), so the copy is skipped outright; with
                // several, only the shard's own channel range is copied —
                // the portion is a contiguous slice of the channel-grouped
                // order, so its channels are exactly `c_lo..=c_hi`
                // (entries outside stay stale and are never indexed).
                let channels: &[Matrix] = if self.n_shards == 1 {
                    src
                } else {
                    let c_lo = jobs[portion.indices[0]].channel;
                    let c_hi = jobs[portion.indices[portion.indices.len() - 1]].channel;
                    if portion.channels.len() < src.len() {
                        portion.channels.resize_with(src.len(), Matrix::default);
                    }
                    for (dst, s) in portion.channels[c_lo..=c_hi].iter_mut().zip(&src[c_lo..=c_hi])
                    {
                        dst.copy_from(s);
                    }
                    portion.n_channels = src.len();
                    &portion.channels[..portion.n_channels]
                };
                let batch = DetectionBatch {
                    channels,
                    jobs: core.ws.planned_jobs(),
                    c: self.base_cfg.constellation,
                };
                self.ladder.detect_batch_indexed_with(
                    core.ws.detector_tier(),
                    &batch,
                    &portion.indices,
                    ws,
                    &mut portion.out,
                );
            }
        }
        if slot.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.stats.detected.fetch_add(1, Ordering::Relaxed);
            lock(&self.recover_q).push_back(slot_idx);
            self.recover_cv.notify_one();
        }
    }

    /// The plan stage for one frame, run on a planner thread.
    fn plan_frame(&self, slot_idx: usize, job: &Arc<dyn ShardedJob>) {
        let slot = &self.slots[slot_idx];
        let (channel, cfg, snr_db, seed, deadline_key, tier, frame_id, client) = {
            let meta = lock(&slot.meta);
            (
                Arc::clone(meta.channel.as_ref().expect("slot submitted without a channel")),
                PhyConfig { payload_bits: meta.payload_bits, ..self.base_cfg },
                meta.snr_db,
                meta.seed,
                meta.deadline_key,
                meta.tier,
                meta.frame_id,
                meta.client,
            )
        };
        // Ambient frame identity for the recorder: the phy plan scope and
        // the pool's enqueue instants pick it up without plumbing.
        gtrace::set_context(trace_ctx(frame_id, client, tier));
        {
            let mut core = slot.core.write().unwrap_or_else(std::sync::PoisonError::into_inner);
            let core = &mut *core;
            let mut rng = StdRng::seed_from_u64(seed);
            core.ws.plan_uplink(&cfg, &channel, snr_db, &mut rng);
            // Stamp the admission-time tier on the staged frame: the shard
            // workers dispatch at it, and `finish_uplink` reports it in
            // the outcome.
            core.ws.set_detector_tier(tier);

            // Channel-grouped dispatch order (the same deterministic
            // permutation `DetectionPool` uses), split into contiguous
            // per-shard ranges so each shard re-factorizes each of its
            // channels at most once per frame.
            let jobs = core.ws.planned_jobs();
            let n_jobs = jobs.len();
            core.order.clear();
            core.order.extend(0..n_jobs);
            let grouped = jobs.windows(2).all(|w| w[0].channel <= w[1].channel);
            if !grouped {
                core.order.sort_unstable_by_key(|&i| (jobs[i].channel, i));
            }
            let chunk = n_jobs.div_ceil(self.n_shards).max(1);
            for (s, portion) in slot.portions.iter().enumerate() {
                let lo = (s * chunk).min(n_jobs);
                let hi = ((s + 1) * chunk).min(n_jobs);
                let mut portion = lock(portion);
                portion.indices.clear();
                portion.indices.extend_from_slice(&core.order[lo..hi]);
            }
        }
        slot.remaining.store(self.n_shards as u64, Ordering::Release);
        self.stats.planned.fetch_add(1, Ordering::Relaxed);
        for s in 0..self.n_shards {
            if self.pool.submit(s, deadline_key, slot_idx, job).is_err() {
                // The pool died under us: the frame is abandoned (its
                // remaining shards will never run), and `is_dead()` already
                // reports the poisoning to submit/recv — nothing further
                // to do but stop feeding a dead pool.
                gtrace::clear_context();
                return;
            }
        }
        gtrace::clear_context();
    }

    /// The recover stage for one frame, run on the recovery thread:
    /// scatter every shard's detections back to job order, run the
    /// per-client receive chains, and deliver in per-client submission
    /// order. Deadline accounting happens in [`Shared::deliver`], not
    /// here — a frame parked behind a slow predecessor can still miss.
    fn recover_frame(&self, slot_idx: usize) {
        let slot = &self.slots[slot_idx];
        {
            let (frame_id, client, tier) = {
                let meta = lock(&slot.meta);
                (meta.frame_id, meta.client, meta.tier)
            };
            gtrace::set_context(trace_ctx(frame_id, client, tier));
        }
        {
            let mut core = slot.core.write().unwrap_or_else(std::sync::PoisonError::into_inner);
            let core = &mut *core;
            core.stats = DetectorStats::default();
            core.ws.begin_detection_assembly();
            let _prof = gs_prof::scope(gs_prof::Stage::Scatter);
            let _tspan = gtrace::span(gtrace::TracePoint::Stage(gs_prof::Stage::Scatter));
            for portion in &slot.portions {
                let portion = lock(portion);
                for (&idx, det) in portion.indices.iter().zip(portion.out.iter()) {
                    core.ws.absorb_detection(&mut core.stats, idx, det);
                }
            }
            drop(_tspan);
            drop(_prof);
            let cfg = PhyConfig { payload_bits: lock(&slot.meta).payload_bits, ..self.base_cfg };
            core.ws.finish_uplink(&cfg, core.stats);
        }

        self.stats.recovered.fetch_add(1, Ordering::Relaxed);
        let (client, seq) = {
            let mut meta = lock(&slot.meta);
            // Release the channel Arc now that the frame no longer needs it.
            meta.channel = None;
            (meta.client, meta.client_seq)
        };

        // Per-client in-order delivery: deliver this frame if it is the
        // lane's next expected sequence (then drain any parked
        // successors); otherwise park it.
        let mut lanes = lock(&self.lanes);
        let lane = &mut lanes[client];
        if seq == lane.next_deliver {
            self.deliver(slot_idx);
            lane.next_deliver += 1;
            while let Some(parked) =
                lane.parked[(lane.next_deliver % self.capacity as u64) as usize].take()
            {
                self.deliver(parked);
                lane.next_deliver += 1;
            }
        } else {
            gtrace::emit(gtrace::TracePoint::Park);
            let cell = &mut lane.parked[(seq % self.capacity as u64) as usize];
            // A hard assert, not a debug one: an occupied cell means a
            // sequencing bug is about to overwrite (lose) a completed
            // frame. Panicking here trips `StagePoisonOnPanic` — the
            // recovery thread unwinds and the stream reports dead, the
            // same fail-fast discipline as the detection pool's
            // panic-poisoning.
            assert!(cell.is_none(), "parking ring cell already occupied (seq {seq})");
            *cell = Some(slot_idx);
        }
        gtrace::clear_context();
    }

    /// Makes one frame observable: accounts its deadline **now** (a frame
    /// that waited in the parking ring past its deadline missed it, even
    /// though its own recovery finished in time), feeds the delivery
    /// window the control plane reads, and queues the completion.
    fn deliver(&self, slot_idx: usize) {
        let _prof = gs_prof::scope(gs_prof::Stage::Delivery);
        let now = Instant::now();
        let (missed, frame_id, client, tier) = {
            let mut meta = lock(&self.slots[slot_idx].meta);
            meta.missed_deadline = meta.deadline.is_some_and(|d| now > d);
            // Telemetry, recorded at the observability point the stats
            // counters use: submit→delivery latency on the client's lane,
            // and the signed deadline margin split into slack/lateness
            // (`duration_since` saturates, so each side stays unsigned).
            self.latency[meta.client].record_duration(now.duration_since(meta.submitted_at));
            match meta.deadline {
                Some(d) if meta.missed_deadline => {
                    self.lateness.record_duration(now.duration_since(d));
                }
                Some(d) => self.slack.record_duration(d.duration_since(now)),
                None => {}
            }
            (meta.missed_deadline, meta.frame_id, meta.client, meta.tier)
        };
        // Explicit identity: the recovery thread's ambient context is the
        // frame being recovered, which may differ when draining parked
        // successors.
        gtrace::emit_for(
            gtrace::TracePoint::Deliver,
            gtrace::EventKind::Instant,
            trace_ctx(frame_id, client, tier),
        );
        if missed {
            self.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
            gtrace::trigger(gtrace::Trigger::DeadlineMiss, frame_id);
        }
        lock(&self.window).record(now, missed);
        lock(&self.done_q).push_back(slot_idx);
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.done_cv.notify_one();
    }

    fn deadline_key(&self, deadline: Option<Instant>) -> u64 {
        match deadline {
            None => NO_DEADLINE,
            Some(d) => {
                let nanos = d.checked_duration_since(self.epoch).unwrap_or_default().as_nanos();
                u64::try_from(nanos).unwrap_or(NO_DEADLINE - 1).min(NO_DEADLINE - 1)
            }
        }
    }

    /// Consults the policy for the admission being installed. Runs on the
    /// submitting thread; allocation-free (preallocated depth scratch, no
    /// policy may allocate on its steady-state path).
    fn select_tier(&self) -> DetectorTier {
        let tier = {
            let mut depths = lock(&self.depth_scratch);
            self.pool.queue_depths(&mut depths);
            let in_flight = self.capacity - lock(&self.free).len();
            let (_, miss_rate) = lock(&self.window).rates(Instant::now());
            let signal = PressureSignal {
                shard_queue_depths: &depths,
                miss_rate,
                occupancy: in_flight as f64 / self.capacity as f64,
                in_flight,
                capacity: self.capacity,
            };
            lock(&self.policy).select_tier(&signal)
        };
        self.stats.tier_admissions[tier.index()].fetch_add(1, Ordering::Relaxed);
        self.stats.last_tier.store(tier as u8, Ordering::Relaxed);
        tier
    }
}

/// Flight-recorder identity for a frame (shard filled in by whoever is
/// shard-specific).
fn trace_ctx(frame_id: u64, client: usize, tier: DetectorTier) -> gtrace::FrameCtx {
    gtrace::FrameCtx {
        frame: frame_id,
        client: client as u32,
        shard: gtrace::NO_SHARD,
        tier: tier.index() as u8,
    }
}

fn planner_loop(shared: &Arc<Shared>) {
    let job: Arc<dyn ShardedJob> = Arc::new(DetectJob { shared: Arc::downgrade(shared) });
    let _poison = StagePoisonOnPanic(shared);
    loop {
        let slot_idx = {
            let mut q = lock(&shared.plan_q);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(idx) = q.pop_front() {
                    break idx;
                }
                q = shared.plan_cv.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        shared.plan_frame(slot_idx, &job);
    }
}

fn recover_loop(shared: &Arc<Shared>) {
    let _poison = StagePoisonOnPanic(shared);
    loop {
        let slot_idx = {
            let mut q = lock(&shared.recover_q);
            loop {
                // Shutdown wins over queued frames — dropping the stream
                // abandons in-flight work rather than draining it.
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(idx) = q.pop_front() {
                    break idx;
                }
                q = shared.recover_cv.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        shared.recover_frame(slot_idx);
    }
}

/// A streaming multi-frame uplink engine: admits [`UplinkFrame`]s from many
/// concurrent sources and pipelines them through *plan → detect → recover*
/// with cross-frame overlap. See the crate docs for the architecture and
/// guarantees, [`StreamConfig`] for sizing, [`FrameStream::submit`] /
/// [`FrameStream::recv`] for the ingress/egress pair.
pub struct FrameStream {
    shared: Arc<Shared>,
    planners: Vec<JoinHandle<()>>,
    recover: Option<JoinHandle<()>>,
}

impl FrameStream {
    /// Builds a stream decoding with `detector` under the fixed PHY
    /// `cfg` (per-frame `payload_bits` overrides aside). See
    /// [`StreamConfig`] for sizing; workers spawn immediately.
    ///
    /// Internally this is the degenerate control plane — the uniform
    /// ladder pinned to [`DetectorTier::Sphere`] — so every frame runs
    /// `detector` and the stream stays a pure function of its
    /// submissions.
    pub fn new<D: MimoDetector + 'static>(cfg: PhyConfig, detector: D, sc: StreamConfig) -> Self {
        Self::with_detector_arc(cfg, Arc::new(detector), sc)
    }

    /// [`FrameStream::new`] for an already type-erased detector.
    pub fn with_detector_arc(
        cfg: PhyConfig,
        detector: Arc<dyn MimoDetector>,
        sc: StreamConfig,
    ) -> Self {
        Self::adaptive(
            cfg,
            DetectorLadder::uniform(detector),
            PinnedPolicy(DetectorTier::Sphere),
            sc,
        )
    }

    /// Builds an **adaptive** stream: each admission consults `policy`
    /// (see [`crate::policy`]) and detects at the chosen rung of
    /// `ladder`. With [`PinnedPolicy`] this degenerates to a fixed
    /// detector; with
    /// [`HysteresisPolicy`](crate::policy::HysteresisPolicy) the stream
    /// degrades sphere → FSD → MMSE under deadline pressure and climbs
    /// back as the queue drains.
    pub fn adaptive<P: AdaptationPolicy + 'static>(
        cfg: PhyConfig,
        ladder: DetectorLadder,
        policy: P,
        sc: StreamConfig,
    ) -> Self {
        Self::build(cfg, ladder, Box::new(policy), sc)
    }

    fn build(
        cfg: PhyConfig,
        ladder: DetectorLadder,
        policy: Box<dyn AdaptationPolicy>,
        sc: StreamConfig,
    ) -> Self {
        assert!(sc.clients >= 1, "a stream needs at least one client lane");
        let workers = if sc.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            sc.workers
        };
        let capacity = if sc.capacity == 0 { 2 * workers + 2 } else { sc.capacity };
        let planners = sc.planners.max(1);

        // Every shard queue can hold every in-flight frame at once.
        let pool = ShardedDetectionPool::new_with_pinning(sc.shards, workers, capacity, sc.pin);
        let n_shards = pool.shards();

        let slots: Vec<Slot> = (0..capacity)
            .map(|_| Slot {
                meta: Mutex::new(SlotMeta::empty()),
                core: RwLock::new(SlotCore {
                    ws: FrameWorkspace::new(),
                    order: Vec::new(),
                    stats: DetectorStats::default(),
                }),
                portions: (0..n_shards).map(|_| Mutex::new(Portion::empty())).collect(),
                remaining: AtomicU64::new(0),
            })
            .collect();

        let lanes = (0..sc.clients)
            .map(|_| ClientLane { next_submit: 0, next_deliver: 0, parked: vec![None; capacity] })
            .collect();

        let shared = Arc::new(Shared {
            base_cfg: cfg,
            ladder,
            policy: Mutex::new(policy),
            depth_scratch: Mutex::new(Vec::with_capacity(n_shards)),
            window: Mutex::new(DeliveryWindow::new()),
            latency: (0..sc.clients).map(|_| LogHistogram::new()).collect(),
            slack: LogHistogram::new(),
            lateness: LogHistogram::new(),
            slots,
            n_shards,
            n_clients: sc.clients,
            capacity,
            pool,
            free: Mutex::new((0..capacity).rev().collect()),
            free_cv: Condvar::new(),
            plan_q: Mutex::new(VecDeque::with_capacity(capacity)),
            plan_cv: Condvar::new(),
            recover_q: Mutex::new(VecDeque::with_capacity(capacity)),
            recover_cv: Condvar::new(),
            done_q: Mutex::new(VecDeque::with_capacity(capacity)),
            done_cv: Condvar::new(),
            lanes: Mutex::new(lanes),
            stats: StatsInner {
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                deadline_misses: AtomicU64::new(0),
                planned: AtomicU64::new(0),
                detected: AtomicU64::new(0),
                recovered: AtomicU64::new(0),
                tier_admissions: std::array::from_fn(|_| AtomicU64::new(0)),
                last_tier: AtomicU8::new(DetectorTier::Sphere as u8),
            },
            shutdown: AtomicBool::new(false),
            stage_panicked: AtomicBool::new(false),
            epoch: Instant::now(),
        });

        let planner_handles = (0..planners)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gs-plan-{k}"))
                    .spawn(move || planner_loop(&shared))
                    .expect("spawn planner thread")
            })
            .collect();
        let recover = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gs-recover".into())
                .spawn(move || recover_loop(&shared))
                .expect("spawn recovery thread")
        };

        FrameStream { shared, planners: planner_handles, recover: Some(recover) }
    }

    /// The resolved shard count of the detect stage.
    pub fn shards(&self) -> usize {
        self.shared.n_shards
    }

    /// The total detection worker count.
    pub fn workers(&self) -> usize {
        self.shared.pool.workers()
    }

    /// The slot-pool bound (maximum frames in flight).
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Admits a frame, **blocking** while every slot is in flight — the
    /// documented backpressure policy: sources slow to the pipeline's
    /// sustained rate instead of growing an unbounded queue. Frames of one
    /// client submitted concurrently are ordered by their arrival here.
    ///
    /// Returns [`StreamDead`] when a detection worker or stage thread has
    /// panicked — the frame was *not* admitted and never will be; tear the
    /// stream down.
    ///
    /// # Panics
    /// Panics when `frame.client` is out of range or the channel shape
    /// mismatches the stream's PHY config (submitter bugs, not runtime
    /// conditions).
    pub fn submit(&self, frame: UplinkFrame) -> Result<(), StreamDead> {
        // Validate before taking a slot: a panic past this point must not
        // leak the slot it popped.
        self.assert_admissible(&frame);
        let slot_idx = {
            let mut free = lock(&self.shared.free);
            loop {
                if self.shared.is_dead() {
                    return Err(StreamDead);
                }
                if let Some(idx) = free.pop() {
                    break idx;
                }
                let (guard, _) = self
                    .shared
                    .free_cv
                    .wait_timeout(free, Duration::from_millis(100))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                free = guard;
            }
        };
        self.install(slot_idx, frame);
        Ok(())
    }

    /// Non-blocking admission: returns the frame back when no slot is
    /// free ([`TrySubmitError::Full`], for sources that prefer dropping to
    /// stalling) or the stream is dead ([`TrySubmitError::Dead`]).
    pub fn try_submit(&self, frame: UplinkFrame) -> Result<(), TrySubmitError> {
        self.assert_admissible(&frame);
        if self.shared.is_dead() {
            return Err(TrySubmitError::Dead(frame));
        }
        let slot_idx = match lock(&self.shared.free).pop() {
            Some(idx) => idx,
            None => {
                // Loss-tolerant refusal is an anomaly worth a flight
                // record: no frame id exists (nothing was admitted), so
                // the event rides the no-frame "stream" track.
                gtrace::emit_for(
                    gtrace::TracePoint::Refuse,
                    gtrace::EventKind::Instant,
                    gtrace::FrameCtx {
                        frame: gtrace::NO_FRAME,
                        client: frame.client as u32,
                        shard: gtrace::NO_SHARD,
                        tier: gtrace::NO_TIER,
                    },
                );
                gtrace::trigger(gtrace::Trigger::AdmissionRefusal, gtrace::NO_FRAME);
                return Err(TrySubmitError::Full(frame));
            }
        };
        self.install(slot_idx, frame);
        Ok(())
    }

    /// Fault injection: arms `shard`'s underlying detection-pool hook so
    /// the worker popping that shard's `pops`-th task from now panics
    /// instead of running it (see
    /// [`ShardedDetectionPool::inject_worker_panic_after`]). The poisoning
    /// then surfaces from [`FrameStream::submit`]/[`FrameStream::recv`] as
    /// [`StreamDead`]. For seeded fault-injection campaigns only —
    /// production embedders must never call this.
    pub fn inject_worker_panic_after(&self, shard: usize, pops: u64) {
        self.shared.pool.inject_worker_panic_after(shard, pops);
    }

    /// Whether the stream is dead — a detection worker or stage thread
    /// panicked. A dead stream refuses new work
    /// ([`StreamDead`] / [`TrySubmitError::Dead`]) but [`FrameStream::recv`]
    /// still drains completions that were already queued.
    pub fn is_dead(&self) -> bool {
        self.shared.is_dead()
    }

    fn assert_admissible(&self, frame: &UplinkFrame) {
        assert!(
            frame.client < self.shared.n_clients,
            "client {} out of range (stream has {} lanes)",
            frame.client,
            self.shared.n_clients
        );
        // Shape errors must surface on the submitting thread, not as a
        // planner-thread panic that would poison the whole stream.
        let sc = frame.channel.num_subcarriers();
        assert!(
            sc == 1 || sc == self.shared.base_cfg.n_subcarriers,
            "channel subcarrier count {sc} must be 1 or {}",
            self.shared.base_cfg.n_subcarriers
        );
    }

    fn install(&self, slot_idx: usize, frame: UplinkFrame) {
        let shared = &*self.shared;
        // One policy consultation per admission, before the frame enters
        // the plan queue, so the tier reflects pressure at admission time.
        let prev_tier = shared.stats.last_tier.load(Ordering::Relaxed);
        let tier = shared.select_tier();
        let client = frame.client;
        let client_seq = {
            let mut lanes = lock(&shared.lanes);
            let lane = &mut lanes[client];
            let seq = lane.next_submit;
            lane.next_submit += 1;
            seq
        };
        // The global submission ordinal doubles as the flight recorder's
        // frame id (the pre-increment value, so ids start at 0).
        let frame_id = shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        {
            let mut meta = lock(&shared.slots[slot_idx].meta);
            meta.client = client;
            meta.client_seq = client_seq;
            meta.snr_db = frame.snr_db;
            meta.seed = frame.seed;
            meta.payload_bits = frame.payload_bits.unwrap_or(shared.base_cfg.payload_bits);
            meta.deadline = frame.deadline;
            meta.deadline_key = shared.deadline_key(frame.deadline);
            meta.channel = Some(frame.channel);
            meta.missed_deadline = false;
            meta.tier = tier;
            meta.submitted_at = Instant::now();
            meta.frame_id = frame_id;
        }
        let tctx = trace_ctx(frame_id, client, tier);
        gtrace::emit_for(gtrace::TracePoint::Submit, gtrace::EventKind::Instant, tctx);
        gtrace::emit_for(gtrace::TracePoint::Admit, gtrace::EventKind::Instant, tctx);
        if tier as u8 != prev_tier {
            gtrace::emit_for(gtrace::TracePoint::TierSwitch, gtrace::EventKind::Instant, tctx);
            gtrace::trigger(gtrace::Trigger::TierSwitch, frame_id);
        }
        lock(&shared.plan_q).push_back(slot_idx);
        shared.plan_cv.notify_one();
    }

    /// Receives the next completed frame, blocking until one is ready.
    /// Frames of one client arrive in submission order (the runtime parks
    /// internally reordered completions until their predecessors deliver);
    /// frames of different clients interleave arbitrarily.
    ///
    /// Dropping the returned [`Completed`] guard releases the frame's slot
    /// back to admission — hold it only as long as the outcome is needed.
    ///
    /// Returns [`StreamDead`] when a detection worker or stage thread has
    /// panicked and no completed frame is queued — outstanding frames can
    /// never arrive, so waiting on would hang. Completions already
    /// delivered to the done queue before the failure are still handed
    /// out first.
    pub fn recv(&self) -> Result<Completed<'_>, StreamDead> {
        let slot_idx = {
            let mut q = lock(&self.shared.done_q);
            loop {
                if let Some(idx) = q.pop_front() {
                    break idx;
                }
                if self.shared.is_dead() {
                    return Err(StreamDead);
                }
                let (guard, _) = self
                    .shared
                    .done_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
            }
        };
        Ok(self.completed(slot_idx))
    }

    /// Non-blocking [`FrameStream::recv`].
    pub fn try_recv(&self) -> Option<Completed<'_>> {
        let slot_idx = lock(&self.shared.done_q).pop_front()?;
        Some(self.completed(slot_idx))
    }

    fn completed(&self, slot_idx: usize) -> Completed<'_> {
        let slot = &self.shared.slots[slot_idx];
        let (client, client_seq, missed_deadline, tier) = {
            let meta = lock(&slot.meta);
            (meta.client, meta.client_seq, meta.missed_deadline, meta.tier)
        };
        let core = slot.core.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        Completed { stream: self, slot_idx, core, client, client_seq, missed_deadline, tier }
    }

    /// A point-in-time stats snapshot (allocates; not a hot-path call).
    pub fn stats(&self) -> RuntimeStats {
        let shared = &*self.shared;
        let mut shard_queue_depths = Vec::new();
        shared.pool.queue_depths(&mut shard_queue_depths);
        let in_flight = shared.capacity - lock(&shared.free).len();
        let elapsed = shared.epoch.elapsed();
        let (windowed_frames_per_sec, windowed_miss_rate) =
            lock(&shared.window).rates(Instant::now());
        // Each stage counter is its own atomic, so a scrape racing the
        // pipeline can read a later stage ahead of an earlier one (e.g.
        // `recovered > detected` between a worker's two increments).
        // Clamp into the pipeline's monotone order so differenced gauges
        // (`submitted − completed`, per-stage backlogs) never go negative.
        let submitted = shared.stats.submitted.load(Ordering::Relaxed);
        let [planned, detected, recovered, completed, deadline_misses] = clamp_stage_counters(
            submitted,
            [
                shared.stats.planned.load(Ordering::Relaxed),
                shared.stats.detected.load(Ordering::Relaxed),
                shared.stats.recovered.load(Ordering::Relaxed),
                shared.stats.completed.load(Ordering::Relaxed),
                shared.stats.deadline_misses.load(Ordering::Relaxed),
            ],
        );
        RuntimeStats {
            submitted,
            completed,
            deadline_misses,
            planned,
            detected,
            recovered,
            tier_admissions: std::array::from_fn(|i| {
                shared.stats.tier_admissions[i].load(Ordering::Relaxed)
            }),
            current_tier: DetectorTier::from_index(
                shared.stats.last_tier.load(Ordering::Relaxed) as usize
            )
            .unwrap_or_default(),
            in_flight,
            capacity: shared.capacity,
            shards: shared.n_shards,
            workers: shared.pool.workers(),
            shard_queue_depths,
            elapsed,
            // Lifetime average: completes/elapsed, zero before the first
            // delivery rather than an absurd early-snapshot spike.
            frames_per_sec: if completed == 0 {
                0.0
            } else {
                completed as f64 / elapsed.as_secs_f64().max(1e-9)
            },
            windowed_frames_per_sec,
            windowed_miss_rate,
            latency_per_client: shared.latency.iter().map(LogHistogram::snapshot).collect(),
            queue_wait_per_shard: shared.pool.queue_wait_snapshots(),
            deadline_slack: shared.slack.snapshot(),
            deadline_lateness: shared.lateness.snapshot(),
        }
    }
}

/// Clamps the stage counters `[planned, detected, recovered, completed,
/// deadline_misses]` into the pipeline's monotone order under `submitted`:
/// each stage can never have processed more frames than the one feeding
/// it, and misses are a subset of completions. Raw reads can violate this
/// transiently (each counter is a separate atomic); exported snapshots
/// must not.
fn clamp_stage_counters(submitted: u64, raw: [u64; 5]) -> [u64; 5] {
    let planned = raw[0].min(submitted);
    let detected = raw[1].min(planned);
    let recovered = raw[2].min(detected);
    let completed = raw[3].min(recovered);
    let deadline_misses = raw[4].min(completed);
    [planned, detected, recovered, completed, deadline_misses]
}

impl Drop for FrameStream {
    fn drop(&mut self) {
        // Frames still in flight are abandoned: stop admissions/planning,
        // join the planners (no new detect tasks after this), join the
        // detection workers from *this* thread (a worker must never be the
        // one dropping `Shared`, or it would join itself), then the
        // recovery thread.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.plan_cv.notify_all();
        for h in self.planners.drain(..) {
            let _ = h.join();
        }
        self.shared.pool.shutdown_and_join();
        self.shared.recover_cv.notify_all();
        if let Some(h) = self.recover.take() {
            let _ = h.join();
        }
    }
}

/// A completed frame, borrowed from the stream. Dropping it releases the
/// frame's slot for re-admission; the outcome reference is valid for the
/// guard's lifetime.
pub struct Completed<'a> {
    stream: &'a FrameStream,
    slot_idx: usize,
    core: RwLockReadGuard<'a, SlotCore>,
    client: usize,
    client_seq: u64,
    missed_deadline: bool,
    tier: DetectorTier,
}

impl Completed<'_> {
    /// The decoded frame outcome (per-client CRC verdicts, operation
    /// counts, detection count).
    pub fn outcome(&self) -> &UplinkOutcome {
        self.core.ws.outcome()
    }

    /// The submitting client lane.
    pub fn client(&self) -> usize {
        self.client
    }

    /// The frame's per-client sequence number (0-based submission order;
    /// [`FrameStream::recv`] delivers each client's frames in exactly this
    /// order).
    pub fn seq(&self) -> u64 {
        self.client_seq
    }

    /// Whether the frame became observable (was delivered) after its
    /// deadline — including time spent parked behind slower predecessors.
    pub fn missed_deadline(&self) -> bool {
        self.missed_deadline
    }

    /// The detector tier that decoded this frame (the control plane's
    /// admission-time choice; also stamped on
    /// [`UplinkOutcome::tier`](gs_phy::UplinkOutcome)).
    pub fn tier(&self) -> DetectorTier {
        self.tier
    }
}

impl Drop for Completed<'_> {
    fn drop(&mut self) {
        let shared = &*self.stream.shared;
        lock(&shared.free).push(self.slot_idx);
        shared.free_cv.notify_one();
        // The core read guard releases right after this body; a planner
        // that races onto the freed slot blocks those few instructions on
        // the write lock, never deadlocks (this thread holds nothing else).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geosphere_core::geosphere_decoder;
    use gs_channel::{ChannelModel, RayleighChannel};
    use gs_modulation::Constellation;
    use gs_phy::decode_frame_batched_into;

    fn small_cfg() -> PhyConfig {
        PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qam16) }
    }

    fn channels(n: usize, seed: u64) -> Vec<Arc<MimoChannel>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Arc::new(RayleighChannel::new(4, 2).realize(&mut rng))).collect()
    }

    /// The serial reference for one submission.
    fn serial_outcome(cfg: &PhyConfig, f: &UplinkFrame, ws: &mut FrameWorkspace) -> UplinkOutcome {
        let cfg = PhyConfig { payload_bits: f.payload_bits.unwrap_or(cfg.payload_bits), ..*cfg };
        let mut rng = StdRng::seed_from_u64(f.seed);
        decode_frame_batched_into(&cfg, &f.channel, &geosphere_decoder(), f.snr_db, &mut rng, 1, ws)
            .clone()
    }

    /// PR 8 regression (the saturating-window bug): a 500 fps delivery
    /// stream must report ~500 windowed fps. Before the fix the 128-entry
    /// ring divided by the full 1 s span regardless of coverage, clamping
    /// the figure at 128 fps from ~430 fps onward — the exact signal the
    /// `HysteresisPolicy` reads.
    #[test]
    fn window_reports_true_rate_at_500_fps() {
        let mut w = DeliveryWindow::new();
        let now = Instant::now();
        // 600 deliveries at exactly 2 ms spacing, newest at `now`: 501
        // fall within the trailing second (offsets 0..=1000 ms).
        for k in (0..600u64).rev() {
            w.record(now - Duration::from_millis(2 * k), false);
        }
        let (fps, miss) = w.rates(now);
        assert!((fps - 501.0).abs() < 5.0, "expected ~500 fps, got {fps} (pre-fix: 128)");
        assert_eq!(miss, 0.0);
    }

    /// PR 8 regression (the shrinking miss horizon): under load the old
    /// ring retained only the trailing ~0.1 s of deliveries, so misses
    /// older than that vanished from the windowed miss rate. The horizon
    /// must stay pinned at the full covered second.
    #[test]
    fn window_miss_horizon_stays_one_second() {
        let mut w = DeliveryWindow::new();
        let now = Instant::now();
        // 500 deliveries over the last second; the *older* 250 all missed.
        // A horizon shrunk to the trailing 0.1 s would report ~0 misses.
        for k in (0..500u64).rev() {
            w.record(now - Duration::from_millis(2 * k), k >= 250);
        }
        let (fps, miss) = w.rates(now);
        assert!((fps - 500.0).abs() < 5.0, "expected ~500 fps, got {fps}");
        assert!((miss - 0.5).abs() < 0.01, "expected miss rate 0.5, got {miss}");
    }

    /// A stream younger than the window span reports its true rate over
    /// the covered span, not an average diluted by the uncovered future.
    #[test]
    fn window_young_stream_is_not_underestimated() {
        let mut w = DeliveryWindow::new();
        let now = Instant::now();
        // 50 deliveries over the last 100 ms — a 500 fps burst.
        for k in (0..50u64).rev() {
            w.record(now - Duration::from_millis(2 * k), false);
        }
        let (fps, _) = w.rates(now);
        assert!((fps - 500.0).abs() < 30.0, "expected ~500 fps over 98 ms, got {fps}");
        // Idle decay still works: a second later everything aged out.
        let (fps_idle, miss_idle) = w.rates(now + Duration::from_secs(2));
        assert_eq!((fps_idle, miss_idle), (0.0, 0.0));
    }

    /// Overflowing the (now much larger) ring narrows the averaging
    /// horizon but must not clamp the reported rate.
    #[test]
    fn window_overflow_keeps_rate_unclamped() {
        let mut w = DeliveryWindow::new();
        let now = Instant::now();
        // 2 × WINDOW_EVENTS deliveries at 10 µs spacing (100k fps): the
        // ring retains the newest WINDOW_EVENTS, covering ~41 ms.
        for k in (0..2 * WINDOW_EVENTS as u64).rev() {
            w.record(now - Duration::from_micros(10 * k), false);
        }
        let (fps, _) = w.rates(now);
        assert!(
            (fps - 100_000.0).abs() / 100_000.0 < 0.05,
            "expected ~100k fps over the covered span, got {fps}"
        );
    }

    /// Stage counters exported by a snapshot must be monotone along the
    /// pipeline even when the raw atomics were read mid-increment.
    #[test]
    fn stage_counter_clamp_restores_pipeline_order() {
        // A torn read: detection finished (7) before the scrape saw the
        // planner's increment (6), and a miss landed before `completed`.
        let [planned, detected, recovered, completed, misses] =
            clamp_stage_counters(8, [6, 7, 7, 5, 6]);
        assert!(planned <= 8 && detected <= planned && recovered <= detected);
        assert!(completed <= recovered && misses <= completed);
        assert_eq!([planned, detected, recovered, completed, misses], [6, 6, 6, 5, 5]);
        // An in-order read passes through untouched.
        assert_eq!(clamp_stage_counters(10, [9, 8, 7, 6, 2]), [9, 8, 7, 6, 2]);
    }

    #[test]
    fn stream_matches_serial_and_orders_per_client() {
        let cfg = small_cfg();
        let chans = channels(3, 41);
        let mut sc = StreamConfig::new(2);
        sc.workers = 3;
        sc.shards = 2;
        sc.capacity = 4;
        let stream = FrameStream::new(cfg, geosphere_decoder(), sc);
        assert!(stream.shards() >= 1 && stream.shards() <= 2);
        assert_eq!(stream.capacity(), 4);

        // Interleaved submissions across two clients.
        let frames: Vec<UplinkFrame> = (0..10)
            .map(|k| UplinkFrame::new(k % 2, Arc::clone(&chans[k % 3]), 20.0, 9000 + k as u64))
            .collect();
        let mut ws = FrameWorkspace::new();
        let reference: Vec<UplinkOutcome> =
            frames.iter().map(|f| serial_outcome(&cfg, f, &mut ws)).collect();

        // Submit from a separate source thread: with capacity 4 < 10
        // frames, blocking `submit` exercises real backpressure while the
        // main thread consumes.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for f in &frames {
                    stream.submit(f.clone()).unwrap();
                }
            });
            let mut next_seq = [0u64; 2];
            let mut seen = 0;
            while seen < frames.len() {
                let done = stream.recv().unwrap();
                let client = done.client();
                assert_eq!(done.seq(), next_seq[client], "per-client delivery order");
                next_seq[client] += 1;
                // Submission k of client c is the (2*seq + c)-th overall frame.
                let k = (2 * done.seq() + client as u64) as usize;
                assert_eq!(done.outcome().client_ok, reference[k].client_ok, "frame {k}");
                assert_eq!(done.outcome().stats, reference[k].stats, "frame {k}");
                assert_eq!(done.outcome().detections, reference[k].detections, "frame {k}");
                seen += 1;
            }
        });
        let stats = stream.stats();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.in_flight, 0, "all slots released");
        assert_eq!(stats.shard_queue_depths.len(), stream.shards());
    }

    #[test]
    fn try_submit_refuses_when_full_and_recovers() {
        let cfg = small_cfg();
        let chans = channels(1, 42);
        let mut sc = StreamConfig::new(1);
        sc.workers = 1;
        sc.capacity = 2;
        let stream = FrameStream::new(cfg, geosphere_decoder(), sc);

        // Saturate admission faster than the pipeline can drain; at some
        // point try_submit must refuse (capacity 2, 8 rapid submissions),
        // and the refused frame must come back intact. Every refusal is
        // resolved by consuming one completion (which frees a slot) and
        // retrying through the blocking path.
        let mut refused = 0;
        let mut received = 0u64;
        for k in 0..8u64 {
            let f = UplinkFrame::new(0, Arc::clone(&chans[0]), 20.0, k);
            match stream.try_submit(f) {
                Ok(()) => {}
                Err(TrySubmitError::Full(back)) => {
                    assert_eq!(back.seed, k, "refused frame returned unchanged");
                    refused += 1;
                    // recv frees a slot, proving the pipeline still flows,
                    // then blocking submit applies backpressure instead.
                    drop(stream.recv().unwrap());
                    received += 1;
                    stream.submit(back).unwrap();
                }
                Err(TrySubmitError::Dead(_)) => panic!("healthy stream reported dead"),
            }
        }
        assert!(refused > 0, "capacity 2 must refuse at least one of 8 rapid submissions");
        while received < 8 {
            drop(stream.recv().unwrap());
            received += 1;
        }
        let stats = stream.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn deadlines_are_recorded_not_dropped() {
        let cfg = small_cfg();
        let chans = channels(1, 43);
        let mut sc = StreamConfig::new(1);
        sc.workers = 2;
        sc.capacity = 3;
        let stream = FrameStream::new(cfg, geosphere_decoder(), sc);

        // An already-expired deadline must still complete, flagged missed;
        // a far-future deadline must complete unflagged.
        let mut expired = UplinkFrame::new(0, Arc::clone(&chans[0]), 20.0, 1);
        expired.deadline = Some(Instant::now() - Duration::from_secs(1));
        let mut roomy = UplinkFrame::new(0, Arc::clone(&chans[0]), 20.0, 2);
        roomy.deadline = Some(Instant::now() + Duration::from_secs(3600));
        stream.submit(expired).unwrap();
        stream.submit(roomy).unwrap();

        let first = stream.recv().unwrap();
        assert_eq!(first.seq(), 0);
        assert!(first.missed_deadline(), "expired deadline must be flagged");
        drop(first);
        let second = stream.recv().unwrap();
        assert!(!second.missed_deadline(), "one-hour deadline cannot be missed");
        drop(second);
        assert_eq!(stream.stats().deadline_misses, 1);
    }

    #[test]
    fn bad_channel_shape_fails_on_the_submitting_thread() {
        // A shape error must surface as a submit-side panic, not as a
        // planner-thread death that would leave recv() hanging.
        let cfg = small_cfg(); // 48 subcarriers
        let mut sc = StreamConfig::new(1);
        sc.workers = 1;
        let stream = FrameStream::new(cfg, geosphere_decoder(), sc);
        let bad = Arc::new(
            gs_channel::SelectiveRayleighChannel {
                n_fft: 64,
                n_subcarriers: 7,
                ..gs_channel::SelectiveRayleighChannel::indoor(4, 2)
            }
            .realize(&mut StdRng::seed_from_u64(9)),
        );
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = stream.submit(UplinkFrame::new(0, bad, 20.0, 1));
        }));
        assert!(res.is_err(), "mismatched subcarrier count must be rejected at submission");
        // The stream is still fully operational afterwards.
        let good = channels(1, 45);
        stream.submit(UplinkFrame::new(0, Arc::clone(&good[0]), 20.0, 2)).unwrap();
        let done = stream.recv().unwrap();
        assert_eq!(done.seq(), 0);
    }

    #[test]
    fn per_frame_payload_override_matches_serial() {
        let cfg = small_cfg();
        let chans = channels(2, 44);
        let mut sc = StreamConfig::new(1);
        sc.workers = 2;
        sc.shards = 2;
        let stream = FrameStream::new(cfg, geosphere_decoder(), sc);
        let mut ws = FrameWorkspace::new();
        // Alternate frame lengths (shrinking and growing) through one stream.
        let frames: Vec<UplinkFrame> = [512usize, 128, 384, 128]
            .iter()
            .enumerate()
            .map(|(k, &bits)| {
                let mut f = UplinkFrame::new(0, Arc::clone(&chans[k % 2]), 22.0, 500 + k as u64);
                f.payload_bits = Some(bits);
                f
            })
            .collect();
        let reference: Vec<UplinkOutcome> =
            frames.iter().map(|f| serial_outcome(&cfg, f, &mut ws)).collect();
        for f in &frames {
            stream.submit(f.clone()).unwrap();
        }
        for r in &reference {
            let done = stream.recv().unwrap();
            assert_eq!(done.outcome().client_ok, r.client_ok);
            assert_eq!(done.outcome().stats, r.stats);
        }
    }

    /// An injected worker fault must surface as typed [`StreamDead`]
    /// errors from `submit`/`recv` — never as a panic on the caller's
    /// thread — with the pre-fault completions still delivered and the
    /// fault position deterministic under lockstep submission.
    #[test]
    fn injected_worker_fault_reports_stream_dead() {
        let cfg = small_cfg();
        let chans = channels(1, 46);
        let mut sc = StreamConfig::new(1);
        sc.workers = 1;
        sc.shards = 1;
        sc.capacity = 2;
        let stream = FrameStream::new(cfg, geosphere_decoder(), sc);
        // Lockstep: one task in flight at a time, so pool pop k = frame k.
        // Armed at pop 3 → frames 0 and 1 complete, frame 2 is lost.
        stream.inject_worker_panic_after(0, 3);
        for k in 0..2u64 {
            stream.submit(UplinkFrame::new(0, Arc::clone(&chans[0]), 20.0, k)).unwrap();
            let done = stream.recv().unwrap();
            assert_eq!(done.seq(), k);
        }
        stream.submit(UplinkFrame::new(0, Arc::clone(&chans[0]), 20.0, 2)).unwrap();
        assert_eq!(stream.recv().err(), Some(StreamDead), "lost frame must report a dead stream");
        match stream.try_submit(UplinkFrame::new(0, Arc::clone(&chans[0]), 20.0, 3)) {
            Err(TrySubmitError::Dead(back)) => assert_eq!(back.seed, 3),
            other => panic!("dead stream must refuse admission, got {other:?}"),
        }
        assert_eq!(
            stream.submit(UplinkFrame::new(0, Arc::clone(&chans[0]), 20.0, 4)),
            Err(StreamDead)
        );
        let stats = stream.stats();
        assert_eq!(stats.completed, 2, "pre-fault completions are retained");
        drop(stream); // teardown must not hang on the dead worker
    }
}
