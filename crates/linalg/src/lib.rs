//! # gs-linalg
//!
//! Small dense **complex** linear algebra, purpose-built for MIMO detection.
//!
//! The Geosphere workspace operates on channel matrices no larger than about
//! 10×10 (AP antennas × client streams), so this crate trades asymptotic
//! sophistication for auditability: plain row-major storage, Householder QR,
//! partially-pivoted LU, one-sided Jacobi SVD, and a radix-2 FFT — each a
//! page of code with exhaustive tests, the way an SDR/ASIC implementation
//! team would actually build it.
//!
//! ## Quick tour
//!
//! ```
//! use gs_linalg::{Complex, Matrix, qr_decompose, condition_number};
//!
//! let h = Matrix::from_rows(2, 2, &[
//!     Complex::new(1.0, 0.1), Complex::new(0.3, -0.2),
//!     Complex::new(-0.4, 0.5), Complex::new(0.9, 0.0),
//! ]);
//! let qr = qr_decompose(&h);
//! assert!(qr.reconstruct().max_abs_diff(&h) < 1e-10);
//! assert!(condition_number(&h) >= 1.0);
//! ```

// Unsafe code is denied everywhere except the SIMD backends, whose vector
// intrinsics require it; those modules opt in locally with `#[allow]` and
// document the detection invariant that makes each call sound.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod complex;
pub mod env;
pub mod fft;
pub mod inverse;
pub mod matrix;
pub mod qr;
pub mod simd;
pub mod svd;

pub use cholesky::{cholesky, Cholesky};
pub use complex::Complex;
pub use fft::{fft, frequency_response, ifft};
pub use inverse::{
    invert, lu_decompose, pseudo_inverse, regularized_pseudo_inverse, LinalgError, Lu,
};
pub use matrix::{vec_dist_sqr, vec_dot, vec_norm_sqr, Matrix};
pub use qr::{
    qr_decompose, qr_decompose_into, sorted_qr_decompose, sorted_qr_decompose_into, Qr,
    QrWorkspace, SortedQr,
};
pub use svd::{condition_number, condition_number_sqr_db, singular_values, spectral_norm};
