//! Singular values and condition numbers via one-sided Jacobi iteration.
//!
//! The paper's channel characterization (§5.1) rests on the condition number
//! `κ(H) = σ_max / σ_min`, reported as `κ²` in decibels (Fig. 9). MIMO
//! channel matrices here are at most ~10×10, where one-sided Jacobi is
//! simple, numerically robust, and plenty fast.

use crate::complex::Complex;
use crate::matrix::Matrix;

/// Singular values of `a`, sorted descending. All values are ≥ 0.
///
/// Uses one-sided Jacobi: unitary plane rotations are applied on the right
/// until all column pairs are orthogonal; the singular values are then the
/// column norms. Works for any `m × n` with `m ≥ n`; for `m < n` the
/// transpose is factored instead (singular values are shared).
pub fn singular_values(a: &Matrix) -> Vec<f64> {
    let work = if a.rows() >= a.cols() { a.clone() } else { a.hermitian() };
    one_sided_jacobi(work)
}

fn one_sided_jacobi(mut u: Matrix) -> Vec<f64> {
    let n = u.cols();
    let m = u.rows();
    let max_sweeps = 60;
    let tol = 1e-14;

    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                // Gram entries for the (i, j) column pair.
                let mut aii = 0.0;
                let mut ajj = 0.0;
                let mut aij = Complex::ZERO;
                for r in 0..m {
                    let ci = u[(r, i)];
                    let cj = u[(r, j)];
                    aii += ci.norm_sqr();
                    ajj += cj.norm_sqr();
                    aij += ci.conj() * cj;
                }
                let denom = (aii * ajj).sqrt();
                if denom <= 0.0 || aij.abs() <= tol * denom {
                    continue;
                }
                off = off.max(aij.abs() / denom);

                // Phase-align: multiply column j by conj(phase(aij)) so the
                // cross term becomes real, then do a real Jacobi rotation.
                let phase = aij / aij.abs();
                let g = aij.abs();
                let tau = (ajj - aii) / (2.0 * g);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                for r in 0..m {
                    let ci = u[(r, i)];
                    let cj = u[(r, j)] * phase.conj();
                    u[(r, i)] = ci.scale(c) - cj.scale(s);
                    u[(r, j)] = (ci.scale(s) + cj.scale(c)) * phase;
                }
            }
        }
        if off < 1e-12 {
            break;
        }
    }

    let mut sv: Vec<f64> =
        (0..n).map(|c| (0..m).map(|r| u[(r, c)].norm_sqr()).sum::<f64>().sqrt()).collect();
    sv.sort_by(|a, b| b.partial_cmp(a).unwrap());
    sv
}

/// 2-norm condition number `κ(A) = σ_max / σ_min`.
///
/// Returns `f64::INFINITY` when the smallest singular value is zero to
/// working precision.
pub fn condition_number(a: &Matrix) -> f64 {
    let sv = singular_values(a);
    let smax = sv.first().copied().unwrap_or(0.0);
    let smin = sv.last().copied().unwrap_or(0.0);
    if smin < 1e-300 {
        f64::INFINITY
    } else {
        smax / smin
    }
}

/// `κ²(A)` in decibels: `10·log10(κ²) = 20·log10(κ)` — the exact quantity on
/// the x-axis of the paper's Figure 9.
pub fn condition_number_sqr_db(a: &Matrix) -> f64 {
    20.0 * condition_number(a).log10()
}

/// Spectral (2-) norm: the largest singular value.
pub fn spectral_norm(a: &Matrix) -> f64 {
    singular_values(a).first().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::qr_decompose;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |_, _| {
            Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn identity_has_unit_singular_values() {
        let sv = singular_values(&Matrix::identity(4));
        for s in sv {
            assert!((s - 1.0).abs() < 1e-10);
        }
        assert!((condition_number(&Matrix::identity(4)) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = Complex::real(3.0);
        a[(1, 1)] = Complex::new(0.0, -5.0); // magnitude 5
        a[(2, 2)] = Complex::real(1.0);
        let sv = singular_values(&a);
        assert!((sv[0] - 5.0).abs() < 1e-10);
        assert!((sv[1] - 3.0).abs() < 1e-10);
        assert!((sv[2] - 1.0).abs() < 1e-10);
        assert!((condition_number(&a) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn frobenius_matches_singular_value_energy() {
        let mut rng = StdRng::seed_from_u64(31);
        for &(m, n) in &[(4, 4), (6, 3), (3, 6), (10, 10)] {
            let a = random_matrix(&mut rng, m, n);
            let sv = singular_values(&a);
            let energy: f64 = sv.iter().map(|s| s * s).sum();
            assert!(
                (energy - a.frobenius_norm_sqr()).abs() < 1e-8 * energy.max(1.0),
                "{m}x{n}: {energy} vs {}",
                a.frobenius_norm_sqr()
            );
        }
    }

    #[test]
    fn unitary_factor_does_not_change_singular_values() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = random_matrix(&mut rng, 4, 4);
        let q = qr_decompose(&random_matrix(&mut rng, 4, 4)).q;
        let qa = q.mul_mat(&a);
        let sv_a = singular_values(&a);
        let sv_qa = singular_values(&qa);
        for (x, y) in sv_a.iter().zip(&sv_qa) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn singular_matrix_infinite_condition() {
        let a = Matrix::from_rows(
            2,
            2,
            &[Complex::real(1.0), Complex::real(2.0), Complex::real(2.0), Complex::real(4.0)],
        );
        assert!(condition_number(&a).is_infinite());
    }

    #[test]
    fn kappa_sqr_db_of_known_matrix() {
        // diag(10, 1): kappa = 10, kappa^2 = 100 => 20 dB.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = Complex::real(10.0);
        a[(1, 1)] = Complex::real(1.0);
        assert!((condition_number_sqr_db(&a) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn condition_always_at_least_one() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..50 {
            let a = random_matrix(&mut rng, 4, 4);
            assert!(condition_number(&a) >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn svd_invariant_under_transpose() {
        let mut rng = StdRng::seed_from_u64(34);
        let a = random_matrix(&mut rng, 5, 3);
        let sv1 = singular_values(&a);
        let sv2 = singular_values(&a.hermitian());
        for (x, y) in sv1.iter().zip(&sv2) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
