//! Cholesky decomposition of Hermitian positive-definite matrices.
//!
//! `A = L L*` with `L` lower-triangular. Gram matrices `H*H (+ λI)` —
//! which every MMSE/SIC filter forms — are Hermitian positive
//! (semi)definite, and Cholesky solves them in half the flops of LU while
//! failing loudly on non-PD inputs, which doubles as a numerical sanity
//! check on the filter math.

use crate::complex::Complex;
use crate::inverse::LinalgError;
use crate::matrix::Matrix;

/// A Cholesky factor `L` (lower triangular, real positive diagonal).
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

/// Factors a Hermitian positive-definite matrix.
///
/// Returns [`LinalgError::NotSquare`] for rectangular inputs and
/// [`LinalgError::Singular`] when a pivot is not strictly positive (the
/// matrix is not positive definite to working precision).
pub fn cholesky(a: &Matrix) -> Result<Cholesky, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut sum = a[(j, j)].re;
        for k in 0..j {
            sum -= l[(j, k)].norm_sqr();
        }
        if sum <= 1e-14 {
            return Err(LinalgError::Singular);
        }
        let ljj = sum.sqrt();
        l[(j, j)] = Complex::real(ljj);
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut acc = a[(i, j)];
            for k in 0..j {
                acc -= l[(i, k)] * l[(j, k)].conj();
            }
            l[(i, j)] = acc / ljj;
        }
    }
    Ok(Cholesky { l })
}

impl Cholesky {
    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/back substitution.
    pub fn solve(&self, b: &[Complex]) -> Vec<Complex> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        // Forward: L z = b.
        let mut z = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                let delta = self.l[(i, k)] * z[k];
                z[i] -= delta;
            }
            z[i] /= self.l[(i, i)];
        }
        // Back: L* x = z.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let delta = self.l[(k, i)].conj() * z[k];
                z[i] -= delta;
            }
            z[i] /= self.l[(i, i)];
        }
        z
    }

    /// Determinant of `A` (product of squared diagonal entries of `L`).
    pub fn det(&self) -> f64 {
        (0..self.l.rows()).map(|k| self.l[(k, k)].re * self.l[(k, k)].re).product()
    }

    /// Reconstructs `L L*` (testing/diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        self.l.mul_mat(&self.l.hermitian())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverse::lu_decompose;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_spd(rng: &mut StdRng, n: usize) -> Matrix {
        let b = Matrix::from_fn(n + 2, n, |_, _| {
            Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let mut g = b.gram();
        for k in 0..n {
            g[(k, k)] += Complex::real(0.1);
        }
        g
    }

    #[test]
    fn reconstructs_input() {
        let mut rng = StdRng::seed_from_u64(911);
        for n in 1..=8 {
            let a = random_spd(&mut rng, n);
            let ch = cholesky(&a).unwrap();
            assert!(ch.reconstruct().max_abs_diff(&a) < 1e-9, "n = {n}");
            // L lower triangular with real positive diagonal.
            for r in 0..n {
                for c in (r + 1)..n {
                    assert!(ch.l()[(r, c)].abs() < 1e-12);
                }
                assert!(ch.l()[(r, r)].re > 0.0 && ch.l()[(r, r)].im.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_lu() {
        let mut rng = StdRng::seed_from_u64(912);
        let a = random_spd(&mut rng, 5);
        let b: Vec<Complex> = (0..5)
            .map(|_| Complex::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)))
            .collect();
        let x_chol = cholesky(&a).unwrap().solve(&b);
        let x_lu = lu_decompose(&a).unwrap().solve(&b);
        for (u, v) in x_chol.iter().zip(&x_lu) {
            assert!((*u - *v).abs() < 1e-9);
        }
    }

    #[test]
    fn det_matches_lu() {
        let mut rng = StdRng::seed_from_u64(913);
        let a = random_spd(&mut rng, 4);
        let d_chol = cholesky(&a).unwrap().det();
        let d_lu = lu_decompose(&a).unwrap().det();
        assert!((d_chol - d_lu.re).abs() < 1e-9 * d_chol.max(1.0));
        assert!(d_lu.im.abs() < 1e-9);
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = Matrix::identity(2);
        a[(1, 1)] = Complex::real(-1.0);
        assert_eq!(cholesky(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_rectangular() {
        assert_eq!(cholesky(&Matrix::zeros(2, 3)).unwrap_err(), LinalgError::NotSquare);
    }
}
