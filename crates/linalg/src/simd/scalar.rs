//! The portable scalar backend — the kernel **specification**.
//!
//! Every function here spells out the exact lane structure, product
//! expressions, and reduction tree the SIMD backends implement with vector
//! instructions. The SIMD backends are written to match this module bit
//! for bit (see the module docs of [`super`]); when in doubt about kernel
//! semantics, this file is the answer.

use crate::complex::Complex;

/// Plain complex dot, two-lane spec: lane `l` accumulates the products of
/// the paired prefix at indices `j ≡ l (mod 2)`; reduction is
/// `lane0 + lane1`; the odd tail element (if any) is added last.
pub(super) fn cdot(a: &[Complex], b: &[Complex]) -> Complex {
    let pairs = a.len() / 2;
    let mut acc0 = Complex::ZERO;
    let mut acc1 = Complex::ZERO;
    for k in 0..pairs {
        acc0 += a[2 * k] * b[2 * k];
        acc1 += a[2 * k + 1] * b[2 * k + 1];
    }
    let mut total = acc0 + acc1;
    if a.len() % 2 == 1 {
        let j = a.len() - 1;
        total += a[j] * b[j];
    }
    total
}

/// Conjugated complex dot, same two-lane spec with `conj(a_j) · b_j`
/// products.
pub(super) fn cdotc(a: &[Complex], b: &[Complex]) -> Complex {
    let pairs = a.len() / 2;
    let mut acc0 = Complex::ZERO;
    let mut acc1 = Complex::ZERO;
    for k in 0..pairs {
        acc0 += a[2 * k].conj() * b[2 * k];
        acc1 += a[2 * k + 1].conj() * b[2 * k + 1];
    }
    let mut total = acc0 + acc1;
    if a.len() % 2 == 1 {
        let j = a.len() - 1;
        total += a[j].conj() * b[j];
    }
    total
}

/// Split-layout complex dot, four-lane spec: within each block of four,
/// lane `l` takes element `4k + l`; lanes reduce as `(l0+l2) + (l1+l3)`
/// (the AVX2/NEON half-then-horizontal tree); tail elements are added
/// sequentially afterwards. Products are `re = ar·br − ai·bi`,
/// `im = ar·bi + ai·br`, each rounding once — no FMA.
pub(super) fn cdot_soa(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) -> Complex {
    let n = ar.len();
    let blocks = n / 4;
    let mut re = [0.0f64; 4];
    let mut im = [0.0f64; 4];
    for k in 0..blocks {
        for l in 0..4 {
            let j = 4 * k + l;
            re[l] += ar[j] * br[j] - ai[j] * bi[j];
            im[l] += ar[j] * bi[j] + ai[j] * br[j];
        }
    }
    let mut tre = (re[0] + re[2]) + (re[1] + re[3]);
    let mut tim = (im[0] + im[2]) + (im[1] + im[3]);
    for j in 4 * blocks..n {
        tre += ar[j] * br[j] - ai[j] * bi[j];
        tim += ar[j] * bi[j] + ai[j] * br[j];
    }
    Complex::new(tre, tim)
}

/// Multi-symbol split-layout complex dot: one shared `a` vector (length
/// `m`) against `k` interleaved `b` vectors, where symbol `s`'s element
/// `j` lives at `b[j·k + s]`. Per symbol the lane structure, reduction
/// tree, and tail handling replicate [`cdot_soa`] exactly, so each output
/// is bit-identical to a per-symbol `cdot_soa` call on a contiguous copy
/// of that symbol's column.
pub(super) fn cdot_soa_multi(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    k: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    cdot_soa_multi_tail(ar, ai, br, bi, k, 0, out_re, out_im);
}

/// [`cdot_soa_multi`] restricted to symbols `s_from..k` — the remainder
/// path of the across-symbol SIMD backends (which handle `k mod lanes`
/// trailing symbols here, through the specification itself).
// The arguments are the kernel's slab ABI (four input slabs, the symbol
// count, the resume offset, two output slabs); a params struct would
// only rename them.
#[allow(clippy::too_many_arguments)]
pub(super) fn cdot_soa_multi_tail(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    k: usize,
    s_from: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    let m = ar.len();
    for s in s_from..k {
        let blocks = m / 4;
        let mut re = [0.0f64; 4];
        let mut im = [0.0f64; 4];
        for blk in 0..blocks {
            for l in 0..4 {
                let j = 4 * blk + l;
                let b_r = br[j * k + s];
                let b_i = bi[j * k + s];
                re[l] += ar[j] * b_r - ai[j] * b_i;
                im[l] += ar[j] * b_i + ai[j] * b_r;
            }
        }
        let mut tre = (re[0] + re[2]) + (re[1] + re[3]);
        let mut tim = (im[0] + im[2]) + (im[1] + im[3]);
        for j in 4 * blocks..m {
            let b_r = br[j * k + s];
            let b_i = bi[j * k + s];
            tre += ar[j] * b_r - ai[j] * b_i;
            tim += ar[j] * b_i + ai[j] * b_r;
        }
        out_re[s] = tre;
        out_im[s] = tim;
    }
}

/// Elementwise `out_j += conj(a_j) · y`: per element
/// `re += ar·yr + ai·yi`, `im += ar·yi − ai·yr` — no cross-element
/// reduction, so lane width cannot matter.
pub(super) fn caxpy_conj(a: &[Complex], y: Complex, out: &mut [Complex]) {
    for (o, &aj) in out.iter_mut().zip(a) {
        *o += aj.conj() * y;
    }
}

/// Elementwise batched PED: `out_j = gain · ((re_j − c.re)² + (im_j −
/// c.im)²)` — [`super::ped_point`] per lane.
pub(super) fn ped_soa(re: &[f64], im: &[f64], center: Complex, gain: f64, out: &mut [f64]) {
    for j in 0..re.len() {
        out[j] = super::ped_point(re[j], im[j], center, gain);
    }
}
