//! NEON backend (`aarch64`, 128-bit = 2 `f64` lanes, two registers per
//! iteration where the spec needs four lanes).
//!
//! Implements the exact lane structure and reduction trees specified by
//! [`super::scalar`] with vector instructions. Products use plain
//! mul/add/sub (no FMA contraction) so every intermediate rounds once, in
//! the same place as the scalar path — bit-identical by construction.
//!
//! Safety: every function is `unsafe fn` + `#[target_feature(enable =
//! "neon")]`; callers (the dispatch macros in [`super`]) only reach this
//! module after runtime detection confirmed NEON.

use crate::complex::Complex;
use std::arch::aarch64::*;

/// One complex product `[ar, ai] · [br, bi] = [ar·br − ai·bi,
/// ai·br + ar·bi]`, matching the scalar `Complex::mul` bitwise.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn cmul_f64(a: float64x2_t, b: float64x2_t) -> float64x2_t {
    let bre = vdupq_laneq_f64(b, 0);
    let bim = vdupq_laneq_f64(b, 1);
    let t1 = vmulq_f64(a, bre); // [ar·br, ai·br]
    let aswap = vextq_f64(a, a, 1); // [ai, ar]
    let t2 = vmulq_f64(aswap, bim); // [ai·bi, ar·bi]
                                    // [t1_0 − t2_0, t1_1 + t2_1] via exact even-lane negation of t2.
    let t2n = vcopyq_laneq_f64(t2, 0, vnegq_f64(t2), 0); // [−ai·bi, ar·bi]
    vaddq_f64(t1, t2n)
}

/// One conjugated product `conj([ar, ai]) · [br, bi] = [ar·br + ai·bi,
/// ar·bi − ai·br]`, matching the scalar `conj` + `mul` bitwise.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn cmulc_f64(a: float64x2_t, b: float64x2_t) -> float64x2_t {
    let bre = vdupq_laneq_f64(b, 0);
    let bim = vdupq_laneq_f64(b, 1);
    let t1 = vmulq_f64(a, bre); // [ar·br, ai·br]
    let aswap = vextq_f64(a, a, 1); // [ai, ar]
    let t2 = vmulq_f64(aswap, bim); // [ai·bi, ar·bi]
                                    // [t2_0 + t1_0, t2_1 − t1_1] via exact odd-lane negation of t1.
    let t1n = vcopyq_laneq_f64(t1, 1, vnegq_f64(t1), 1); // [ar·br, −ai·br]
    vaddq_f64(t2, t1n)
}

#[target_feature(enable = "neon")]
pub(super) unsafe fn cdot(a: &[Complex], b: &[Complex]) -> Complex {
    let n = a.len();
    let pairs = n / 2;
    let ap = a.as_ptr() as *const f64;
    let bp = b.as_ptr() as *const f64;
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    for k in 0..pairs {
        let a0 = vld1q_f64(ap.add(4 * k));
        let b0 = vld1q_f64(bp.add(4 * k));
        let a1 = vld1q_f64(ap.add(4 * k + 2));
        let b1 = vld1q_f64(bp.add(4 * k + 2));
        acc0 = vaddq_f64(acc0, cmul_f64(a0, b0));
        acc1 = vaddq_f64(acc1, cmul_f64(a1, b1));
    }
    let s = vaddq_f64(acc0, acc1); // lane0 + lane1
    let mut total = Complex::new(vgetq_lane_f64(s, 0), vgetq_lane_f64(s, 1));
    if n % 2 == 1 {
        total += a[n - 1] * b[n - 1];
    }
    total
}

#[target_feature(enable = "neon")]
pub(super) unsafe fn cdotc(a: &[Complex], b: &[Complex]) -> Complex {
    let n = a.len();
    let pairs = n / 2;
    let ap = a.as_ptr() as *const f64;
    let bp = b.as_ptr() as *const f64;
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    for k in 0..pairs {
        let a0 = vld1q_f64(ap.add(4 * k));
        let b0 = vld1q_f64(bp.add(4 * k));
        let a1 = vld1q_f64(ap.add(4 * k + 2));
        let b1 = vld1q_f64(bp.add(4 * k + 2));
        acc0 = vaddq_f64(acc0, cmulc_f64(a0, b0));
        acc1 = vaddq_f64(acc1, cmulc_f64(a1, b1));
    }
    let s = vaddq_f64(acc0, acc1);
    let mut total = Complex::new(vgetq_lane_f64(s, 0), vgetq_lane_f64(s, 1));
    if n % 2 == 1 {
        total += a[n - 1].conj() * b[n - 1];
    }
    total
}

#[target_feature(enable = "neon")]
pub(super) unsafe fn cdot_soa(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) -> Complex {
    let n = ar.len();
    let blocks = n / 4;
    // Four spec lanes as two registers per component: `a` holds lanes
    // {0, 1}, `b` holds lanes {2, 3}.
    let mut re_a = vdupq_n_f64(0.0);
    let mut re_b = vdupq_n_f64(0.0);
    let mut im_a = vdupq_n_f64(0.0);
    let mut im_b = vdupq_n_f64(0.0);
    for k in 0..blocks {
        let j = 4 * k;
        let ar0 = vld1q_f64(ar.as_ptr().add(j));
        let ar1 = vld1q_f64(ar.as_ptr().add(j + 2));
        let ai0 = vld1q_f64(ai.as_ptr().add(j));
        let ai1 = vld1q_f64(ai.as_ptr().add(j + 2));
        let br0 = vld1q_f64(br.as_ptr().add(j));
        let br1 = vld1q_f64(br.as_ptr().add(j + 2));
        let bi0 = vld1q_f64(bi.as_ptr().add(j));
        let bi1 = vld1q_f64(bi.as_ptr().add(j + 2));
        re_a = vaddq_f64(re_a, vsubq_f64(vmulq_f64(ar0, br0), vmulq_f64(ai0, bi0)));
        re_b = vaddq_f64(re_b, vsubq_f64(vmulq_f64(ar1, br1), vmulq_f64(ai1, bi1)));
        im_a = vaddq_f64(im_a, vaddq_f64(vmulq_f64(ar0, bi0), vmulq_f64(ai0, br0)));
        im_b = vaddq_f64(im_b, vaddq_f64(vmulq_f64(ar1, bi1), vmulq_f64(ai1, br1)));
    }
    // Half-then-horizontal tree: (l0+l2) + (l1+l3).
    let sre = vaddq_f64(re_a, re_b);
    let sim = vaddq_f64(im_a, im_b);
    let mut tre = vgetq_lane_f64(sre, 0) + vgetq_lane_f64(sre, 1);
    let mut tim = vgetq_lane_f64(sim, 0) + vgetq_lane_f64(sim, 1);
    for j in 4 * blocks..n {
        tre += ar[j] * br[j] - ai[j] * bi[j];
        tim += ar[j] * bi[j] + ai[j] * br[j];
    }
    Complex::new(tre, tim)
}

#[target_feature(enable = "neon")]
pub(super) unsafe fn caxpy_conj(a: &[Complex], y: Complex, out: &mut [Complex]) {
    let n = a.len();
    let ap = a.as_ptr() as *const f64;
    let op = out.as_mut_ptr() as *mut f64;
    let yv = vld1q_f64([y.re, y.im].as_ptr());
    for j in 0..n {
        let av = vld1q_f64(ap.add(2 * j));
        let p = cmulc_f64(av, yv);
        let ov = vld1q_f64(op.add(2 * j));
        vst1q_f64(op.add(2 * j), vaddq_f64(ov, p));
    }
}

#[target_feature(enable = "neon")]
pub(super) unsafe fn ped_soa(re: &[f64], im: &[f64], center: Complex, gain: f64, out: &mut [f64]) {
    let n = re.len();
    let blocks = n / 2;
    let cr = vdupq_n_f64(center.re);
    let ci = vdupq_n_f64(center.im);
    let g = vdupq_n_f64(gain);
    for k in 0..blocks {
        let dre = vsubq_f64(vld1q_f64(re.as_ptr().add(2 * k)), cr);
        let dim = vsubq_f64(vld1q_f64(im.as_ptr().add(2 * k)), ci);
        let d = vaddq_f64(vmulq_f64(dre, dre), vmulq_f64(dim, dim));
        vst1q_f64(out.as_mut_ptr().add(2 * k), vmulq_f64(g, d));
    }
    for j in 2 * blocks..n {
        out[j] = super::ped_point(re[j], im[j], center, gain);
    }
}
