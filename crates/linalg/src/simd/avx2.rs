//! AVX2 backend (`x86_64`, 256-bit = 4 `f64` lanes).
//!
//! Implements the exact lane structure and reduction trees specified by
//! [`super::scalar`] with vector instructions. Products use plain
//! mul/add/sub (no FMA contraction) so every intermediate rounds once, in
//! the same place as the scalar path — bit-identical by construction.
//!
//! Safety: every function is `unsafe fn` + `#[target_feature(enable =
//! "avx2")]`; callers (the dispatch macros in [`super`]) only reach this
//! module after runtime detection confirmed AVX2.

use crate::complex::Complex;
use std::arch::x86_64::*;

/// Interleaved complex product of packed pairs `[ar, ai, …] · [br, bi, …]`:
/// `[ar·br − ai·bi, ai·br + ar·bi, …]` — each component one mul pair and
/// one add/sub, matching the scalar `Complex::mul` bitwise.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmul_pd(a: __m256d, b: __m256d) -> __m256d {
    let bre = _mm256_movedup_pd(b); // [br0, br0, br1, br1]
    let bim = _mm256_permute_pd(b, 0xF); // [bi0, bi0, bi1, bi1]
    let t1 = _mm256_mul_pd(a, bre); // [ar·br, ai·br, …]
    let aswap = _mm256_permute_pd(a, 0x5); // [ai0, ar0, ai1, ar1]
    let t2 = _mm256_mul_pd(aswap, bim); // [ai·bi, ar·bi, …]
    _mm256_addsub_pd(t1, t2) // [ar·br − ai·bi, ai·br + ar·bi, …]
}

/// Interleaved conjugated product `conj(a) · b`: `[ar·br + ai·bi,
/// ar·bi − ai·br, …]` via an exact odd-lane sign flip.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmulc_pd(a: __m256d, b: __m256d) -> __m256d {
    let bre = _mm256_movedup_pd(b);
    let bim = _mm256_permute_pd(b, 0xF);
    let t1 = _mm256_mul_pd(a, bre); // [ar·br, ai·br, …]
    let aswap = _mm256_permute_pd(a, 0x5);
    let t2 = _mm256_mul_pd(aswap, bim); // [ai·bi, ar·bi, …]
                                        // Negate t1's odd lanes (exact), then add: even = ai·bi + ar·br,
                                        // odd = ar·bi − ai·br.
    let sign_odd = _mm256_castsi256_pd(_mm256_set_epi64x(i64::MIN, 0, i64::MIN, 0));
    _mm256_add_pd(t2, _mm256_xor_pd(t1, sign_odd))
}

/// Reduces a register holding two complex lanes `[re0, im0, re1, im1]` to
/// `lane0 + lane1`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn reduce_two_complex(acc: __m256d) -> Complex {
    let lo = _mm256_castpd256_pd128(acc); // [re0, im0]
    let hi = _mm256_extractf128_pd(acc, 1); // [re1, im1]
    let s = _mm_add_pd(lo, hi);
    let mut out = [0.0f64; 2];
    _mm_storeu_pd(out.as_mut_ptr(), s);
    Complex::new(out[0], out[1])
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn cdot(a: &[Complex], b: &[Complex]) -> Complex {
    let n = a.len();
    let pairs = n / 2;
    let ap = a.as_ptr() as *const f64;
    let bp = b.as_ptr() as *const f64;
    let mut acc = _mm256_setzero_pd();
    for k in 0..pairs {
        let av = _mm256_loadu_pd(ap.add(4 * k));
        let bv = _mm256_loadu_pd(bp.add(4 * k));
        acc = _mm256_add_pd(acc, cmul_pd(av, bv));
    }
    let mut total = reduce_two_complex(acc);
    if n % 2 == 1 {
        total += a[n - 1] * b[n - 1];
    }
    total
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn cdotc(a: &[Complex], b: &[Complex]) -> Complex {
    let n = a.len();
    let pairs = n / 2;
    let ap = a.as_ptr() as *const f64;
    let bp = b.as_ptr() as *const f64;
    let mut acc = _mm256_setzero_pd();
    for k in 0..pairs {
        let av = _mm256_loadu_pd(ap.add(4 * k));
        let bv = _mm256_loadu_pd(bp.add(4 * k));
        acc = _mm256_add_pd(acc, cmulc_pd(av, bv));
    }
    let mut total = reduce_two_complex(acc);
    if n % 2 == 1 {
        total += a[n - 1].conj() * b[n - 1];
    }
    total
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn cdot_soa(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) -> Complex {
    let n = ar.len();
    let blocks = n / 4;
    let mut accre = _mm256_setzero_pd();
    let mut accim = _mm256_setzero_pd();
    for k in 0..blocks {
        let arv = _mm256_loadu_pd(ar.as_ptr().add(4 * k));
        let aiv = _mm256_loadu_pd(ai.as_ptr().add(4 * k));
        let brv = _mm256_loadu_pd(br.as_ptr().add(4 * k));
        let biv = _mm256_loadu_pd(bi.as_ptr().add(4 * k));
        // re += ar·br − ai·bi ; im += ar·bi + ai·br (one rounding each).
        accre =
            _mm256_add_pd(accre, _mm256_sub_pd(_mm256_mul_pd(arv, brv), _mm256_mul_pd(aiv, biv)));
        accim =
            _mm256_add_pd(accim, _mm256_add_pd(_mm256_mul_pd(arv, biv), _mm256_mul_pd(aiv, brv)));
    }
    // Half-then-horizontal tree: (l0+l2) + (l1+l3).
    let reduce = |acc: __m256d| -> f64 {
        let lo = _mm256_castpd256_pd128(acc); // [l0, l1]
        let hi = _mm256_extractf128_pd(acc, 1); // [l2, l3]
        let s = _mm_add_pd(lo, hi); // [l0+l2, l1+l3]
        let mut out = [0.0f64; 2];
        _mm_storeu_pd(out.as_mut_ptr(), s);
        out[0] + out[1]
    };
    let mut tre = reduce(accre);
    let mut tim = reduce(accim);
    for j in 4 * blocks..n {
        tre += ar[j] * br[j] - ai[j] * bi[j];
        tim += ar[j] * bi[j] + ai[j] * br[j];
    }
    Complex::new(tre, tim)
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn cdot_soa_multi(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    k: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    let m = ar.len();
    let blocks = m / 4;
    // Vectorize ACROSS symbols: each vector holds one lane's accumulator
    // for four adjacent symbols, whose elements sit contiguously in the
    // interleaved `b` slabs. Per symbol the op sequence is exactly the
    // scalar spec's — four `j mod 4` lanes, `(l0+l2)+(l1+l3)` tree,
    // sequential tail — evaluated elementwise in the symbol dimension, so
    // bit-identity is inherited rather than re-proven.
    let mut s0 = 0;
    while s0 + 4 <= k {
        let mut acc_re = [_mm256_setzero_pd(); 4];
        let mut acc_im = [_mm256_setzero_pd(); 4];
        for blk in 0..blocks {
            for l in 0..4 {
                let j = 4 * blk + l;
                let arv = _mm256_set1_pd(ar[j]);
                let aiv = _mm256_set1_pd(ai[j]);
                let brv = _mm256_loadu_pd(br.as_ptr().add(j * k + s0));
                let biv = _mm256_loadu_pd(bi.as_ptr().add(j * k + s0));
                acc_re[l] = _mm256_add_pd(
                    acc_re[l],
                    _mm256_sub_pd(_mm256_mul_pd(arv, brv), _mm256_mul_pd(aiv, biv)),
                );
                acc_im[l] = _mm256_add_pd(
                    acc_im[l],
                    _mm256_add_pd(_mm256_mul_pd(arv, biv), _mm256_mul_pd(aiv, brv)),
                );
            }
        }
        let mut tre =
            _mm256_add_pd(_mm256_add_pd(acc_re[0], acc_re[2]), _mm256_add_pd(acc_re[1], acc_re[3]));
        let mut tim =
            _mm256_add_pd(_mm256_add_pd(acc_im[0], acc_im[2]), _mm256_add_pd(acc_im[1], acc_im[3]));
        for j in 4 * blocks..m {
            let arv = _mm256_set1_pd(ar[j]);
            let aiv = _mm256_set1_pd(ai[j]);
            let brv = _mm256_loadu_pd(br.as_ptr().add(j * k + s0));
            let biv = _mm256_loadu_pd(bi.as_ptr().add(j * k + s0));
            tre =
                _mm256_add_pd(tre, _mm256_sub_pd(_mm256_mul_pd(arv, brv), _mm256_mul_pd(aiv, biv)));
            tim =
                _mm256_add_pd(tim, _mm256_add_pd(_mm256_mul_pd(arv, biv), _mm256_mul_pd(aiv, brv)));
        }
        _mm256_storeu_pd(out_re.as_mut_ptr().add(s0), tre);
        _mm256_storeu_pd(out_im.as_mut_ptr().add(s0), tim);
        s0 += 4;
    }
    if s0 < k {
        // Remainder symbols take the scalar spec verbatim.
        super::scalar::cdot_soa_multi_tail(ar, ai, br, bi, k, s0, out_re, out_im);
    }
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn caxpy_conj(a: &[Complex], y: Complex, out: &mut [Complex]) {
    let n = a.len();
    let pairs = n / 2;
    let ap = a.as_ptr() as *const f64;
    let op = out.as_mut_ptr() as *mut f64;
    let vyr = _mm256_set1_pd(y.re);
    let vyi = _mm256_set1_pd(y.im);
    let sign_odd = _mm256_castsi256_pd(_mm256_set_epi64x(i64::MIN, 0, i64::MIN, 0));
    for k in 0..pairs {
        let av = _mm256_loadu_pd(ap.add(4 * k));
        let t1 = _mm256_mul_pd(av, vyr); // [ar·yr, ai·yr, …]
        let aswap = _mm256_permute_pd(av, 0x5); // [ai, ar, …]
        let t2 = _mm256_mul_pd(aswap, vyi); // [ai·yi, ar·yi, …]
                                            // conj(a)·y = [ar·yr + ai·yi, ar·yi − ai·yr] via exact odd negation.
        let p = _mm256_add_pd(t2, _mm256_xor_pd(t1, sign_odd));
        let ov = _mm256_loadu_pd(op.add(4 * k));
        _mm256_storeu_pd(op.add(4 * k), _mm256_add_pd(ov, p));
    }
    if n % 2 == 1 {
        out[n - 1] += a[n - 1].conj() * y;
    }
}

#[target_feature(enable = "avx2")]
pub(super) unsafe fn ped_soa(re: &[f64], im: &[f64], center: Complex, gain: f64, out: &mut [f64]) {
    let n = re.len();
    let blocks = n / 4;
    let cr = _mm256_set1_pd(center.re);
    let ci = _mm256_set1_pd(center.im);
    let g = _mm256_set1_pd(gain);
    for k in 0..blocks {
        let dre = _mm256_sub_pd(_mm256_loadu_pd(re.as_ptr().add(4 * k)), cr);
        let dim = _mm256_sub_pd(_mm256_loadu_pd(im.as_ptr().add(4 * k)), ci);
        let d = _mm256_add_pd(_mm256_mul_pd(dre, dre), _mm256_mul_pd(dim, dim));
        _mm256_storeu_pd(out.as_mut_ptr().add(4 * k), _mm256_mul_pd(g, d));
    }
    for j in 4 * blocks..n {
        out[j] = super::ped_point(re[j], im[j], center, gain);
    }
}
