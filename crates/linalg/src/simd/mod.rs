//! Lane-ordered SIMD kernels for the hot complex arithmetic, with one-time
//! runtime dispatch.
//!
//! Every distance computation, interference accumulation, and filter apply
//! in the workspace bottoms out in a handful of complex-vector primitives:
//! dot products (plain and conjugated), elementwise axpy, and batched
//! partial-Euclidean-distance (PED) evaluation. This module provides those
//! primitives in three backends — an always-available scalar path, AVX2 on
//! `x86_64`, and NEON on `aarch64` — selected once at runtime and
//! overridable by the `GS_SIMD` environment variable or the gs-linalg
//! `force-scalar` cargo feature.
//!
//! ## Bit-identical by construction
//!
//! The backends are not merely "close": for every kernel, the scalar and
//! SIMD paths produce **bit-identical** results, so the oracle and
//! determinism suites remain the cross-path ground truth
//! (`tests/simd_parity.rs` proves it over random shapes). Floating-point
//! addition is not associative, so this property has to be designed in:
//!
//! * Every reducing kernel fixes a **lane-then-tree** order. [`cdot`] and
//!   [`cdotc`] accumulate into two complex lanes (lane `l` takes elements
//!   `j ≡ l (mod 2)` of the paired prefix), then reduce `lane0 + lane1`;
//!   [`cdot_soa`] uses four lanes reduced as `(l0+l2) + (l1+l3)` — exactly
//!   the shuffle tree the AVX2/NEON horizontal reductions perform. Tail
//!   elements past the last full block are added sequentially afterwards,
//!   in index order, on every backend.
//! * Elementwise kernels ([`caxpy_conj`], [`ped_soa`]) use the same
//!   per-element expression on every backend, so lane width cannot matter.
//! * No backend uses FMA contraction: each product and sum rounds exactly
//!   once, in the same order, everywhere. (FMA would be admissible only if
//!   the scalar path used the same fused form; plain mul/add keeps the
//!   scalar fallback fast on targets without hardware FMA.)
//!
//! ## Dispatch
//!
//! [`active_tier`] resolves once (feature detection + `GS_SIMD`) and the
//! kernels branch on a relaxed atomic load — cheap enough for the short
//! vectors MIMO detection works on. `GS_SIMD` accepts:
//!
//! | value                          | effect                             |
//! |--------------------------------|------------------------------------|
//! | unset, `on`, `auto`, `native`, `1` | best tier the CPU supports     |
//! | `off`, `scalar`, `0`           | force the scalar path              |
//! | `avx2`                         | force AVX2 (scalar if unsupported) |
//! | `avx512`                       | recognized, tier not yet implemented: best supported tier (AVX2, else scalar), no warning |
//! | `neon`                         | force NEON (scalar if unsupported) |
//! | anything else                  | warning on stderr listing the valid values + scalar path |
//!
//! [`force_tier`]/[`reset_tier`] expose the same control programmatically
//! for tests and benches; because backends are bit-identical, switching
//! tiers mid-process is observable only in throughput.
//!
//! ## Why there is no "batched PED" kernel for Geosphere
//!
//! ETH-SD's row-parallel enumeration pays √|O| PEDs up front per node —
//! a natural [`ped_soa`] batch. Geosphere's whole point (paper §3.1.1) is
//! to *avoid* that batch: its zigzag computes at most two PEDs per
//! exploration, one point at a time, so its per-point PED goes through the
//! shared scalar unit [`ped_point`] instead. The kernels make the
//! comparison decoder as fast as vectors allow; Geosphere still wins by
//! doing less arithmetic, which is precisely the claim the benches measure.

use crate::complex::Complex;
use std::sync::atomic::{AtomicU8, Ordering};

mod scalar;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2;

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon;

/// A SIMD backend tier. Variants exist on every target so configuration
/// code can name them portably; forcing a tier the CPU (or target) does
/// not support falls back to [`Tier::Scalar`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Tier {
    /// The portable scalar path — the kernel specification itself.
    Scalar = 0,
    /// 256-bit AVX2 on `x86_64` (4 `f64` lanes).
    Avx2 = 1,
    /// 128-bit NEON on `aarch64` (2 `f64` lanes, paired per iteration).
    Neon = 2,
}

impl Tier {
    /// Short lowercase name (`scalar`, `avx2`, `neon`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Avx2 => "avx2",
            Tier::Neon => "neon",
        }
    }
}

const TIER_UNSET: u8 = u8::MAX;

/// The resolved tier, encoded as its discriminant; `TIER_UNSET` before the
/// first dispatch.
static ACTIVE: AtomicU8 = AtomicU8::new(TIER_UNSET);

/// The best tier this CPU supports (honouring the `force-scalar` feature).
pub fn detected_tier() -> Tier {
    if cfg!(feature = "force-scalar") {
        return Tier::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Tier::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Tier::Neon;
        }
    }
    Tier::Scalar
}

/// Whether `tier` can actually run on this CPU/target.
pub fn tier_supported(tier: Tier) -> bool {
    match tier {
        Tier::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => {
            !cfg!(feature = "force-scalar") && std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(target_arch = "aarch64")]
        Tier::Neon => {
            !cfg!(feature = "force-scalar") && std::arch::is_aarch64_feature_detected!("neon")
        }
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// Resolves the tier from `GS_SIMD` (see the module docs for the accepted
/// values), falling back to detection. An unrecognized value warns on
/// stderr and takes the **scalar** path: the knob exists for debugging,
/// and a typo of `off` must not silently re-enable vector code.
fn tier_from_env() -> Tier {
    crate::env::env_knob(
        "GS_SIMD",
        "off|scalar|0|on|auto|native|1|avx2|avx512|neon",
        "using the scalar path",
        detected_tier(),
        Tier::Scalar,
        parse_tier_value,
    )
}

/// The `GS_SIMD` value grammar, factored out of [`tier_from_env`] so the
/// accepted spellings are unit-testable without touching the process
/// environment. `None` means unrecognized (the knob then warns, listing
/// the valid values, and falls back to scalar).
fn parse_tier_value(v: &str) -> Option<Tier> {
    match v {
        "" | "on" | "auto" | "native" | "1" => Some(detected_tier()),
        "off" | "scalar" | "0" => Some(Tier::Scalar),
        "avx2" => Some(if tier_supported(Tier::Avx2) { Tier::Avx2 } else { Tier::Scalar }),
        // Forward-compat for the planned AVX-512 tier: recognized (no
        // warning), falls back to the best tier this build implements on
        // the requested family — AVX2 where supported, else scalar.
        "avx512" => Some(if tier_supported(Tier::Avx2) { Tier::Avx2 } else { Tier::Scalar }),
        "neon" => Some(if tier_supported(Tier::Neon) { Tier::Neon } else { Tier::Scalar }),
        _ => None,
    }
}

/// The tier the kernels currently dispatch to. Resolved once from
/// `GS_SIMD`/feature detection on first call; later calls are a relaxed
/// atomic load.
pub fn active_tier() -> Tier {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => Tier::Scalar,
        1 => Tier::Avx2,
        2 => Tier::Neon,
        _ => {
            let t = tier_from_env();
            ACTIVE.store(t as u8, Ordering::Relaxed);
            t
        }
    }
}

/// Forces a specific tier (testing/bench hook). Returns `false` — leaving
/// the active tier unchanged — when the CPU does not support `tier`.
/// Safe to call at any time: all tiers are bit-identical, so the only
/// observable effect is throughput.
pub fn force_tier(tier: Tier) -> bool {
    if !tier_supported(tier) {
        return false;
    }
    ACTIVE.store(tier as u8, Ordering::Relaxed);
    true
}

/// Reverts [`force_tier`], re-resolving from `GS_SIMD`/detection on the
/// next dispatch.
pub fn reset_tier() {
    ACTIVE.store(TIER_UNSET, Ordering::Relaxed);
}

/// The shared per-point PED unit: `gain · |p − center|²` with `p = (re,
/// im)`. Both [`ped_soa`] lanes and the one-point-at-a-time enumeration
/// paths (Geosphere's zigzag) evaluate exactly this expression, so scalar
/// and batched PEDs agree bit for bit.
#[inline]
pub fn ped_point(re: f64, im: f64, center: Complex, gain: f64) -> f64 {
    let dre = re - center.re;
    let dim = im - center.im;
    gain * (dre * dre + dim * dim)
}

macro_rules! dispatch {
    ($name:ident ( $($arg:expr),* )) => {{
        match active_tier() {
            Tier::Scalar => scalar::$name($($arg),*),
            #[cfg(target_arch = "x86_64")]
            // Safety: `active_tier()` only returns `Avx2` when runtime
            // detection confirmed AVX2 support.
            #[allow(unsafe_code)]
            Tier::Avx2 => unsafe { avx2::$name($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            // Safety: `active_tier()` only returns `Neon` when runtime
            // detection confirmed NEON support.
            #[allow(unsafe_code)]
            Tier::Neon => unsafe { neon::$name($($arg),*) },
            #[allow(unreachable_patterns)]
            _ => scalar::$name($($arg),*),
        }
    }};
}

macro_rules! dispatch_with {
    ($tier:expr, $name:ident ( $($arg:expr),* )) => {{
        match $tier {
            #[cfg(target_arch = "x86_64")]
            // Safety: guarded by `tier_supported` below.
            #[allow(unsafe_code)]
            Tier::Avx2 if tier_supported(Tier::Avx2) => unsafe { avx2::$name($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            // Safety: guarded by `tier_supported` below.
            #[allow(unsafe_code)]
            Tier::Neon if tier_supported(Tier::Neon) => unsafe { neon::$name($($arg),*) },
            _ => scalar::$name($($arg),*),
        }
    }};
}

/// Plain complex dot `Σ_j a_j · b_j` (no conjugation) in the fixed
/// two-lane order. The inner product of [`crate::Matrix::mul_vec_into`]
/// and the cached filter-row applies.
///
/// # Panics
/// Panics when lengths differ.
pub fn cdot(a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len(), "cdot length mismatch");
    dispatch!(cdot(a, b))
}

/// [`cdot`] forced onto a specific tier (falls back to scalar when the
/// tier is unsupported) — the parity-test entry point.
pub fn cdot_with(tier: Tier, a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len(), "cdot length mismatch");
    dispatch_with!(tier, cdot(a, b))
}

/// Conjugated complex dot `Σ_j conj(a_j) · b_j` in the fixed two-lane
/// order — the MMSE filter-row apply (`w* y`) and [`crate::vec_dot`].
///
/// # Panics
/// Panics when lengths differ.
pub fn cdotc(a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len(), "cdotc length mismatch");
    dispatch!(cdotc(a, b))
}

/// [`cdotc`] forced onto a specific tier.
pub fn cdotc_with(tier: Tier, a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len(), "cdotc length mismatch");
    dispatch_with!(tier, cdotc(a, b))
}

/// Split-layout (SoA) complex dot `Σ_j (ar_j + i·ai_j) · (br_j + i·bi_j)`
/// in the fixed four-lane order — the sphere engine's interference
/// accumulation over the workspace's split re/im slabs, where lanes load
/// contiguously.
///
/// # Panics
/// Panics when the four slices' lengths differ.
pub fn cdot_soa(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) -> Complex {
    assert!(
        ar.len() == ai.len() && ar.len() == br.len() && ar.len() == bi.len(),
        "cdot_soa length mismatch"
    );
    dispatch!(cdot_soa(ar, ai, br, bi))
}

/// [`cdot_soa`] forced onto a specific tier.
pub fn cdot_soa_with(tier: Tier, ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) -> Complex {
    assert!(
        ar.len() == ai.len() && ar.len() == br.len() && ar.len() == bi.len(),
        "cdot_soa length mismatch"
    );
    dispatch_with!(tier, cdot_soa(ar, ai, br, bi))
}

/// Multi-symbol [`cdot_soa`]: one shared `a` vector (length `m`) dotted
/// against `k` symbol columns stored interleaved (`b[j·k + s]` is symbol
/// `s`'s element `j`) — the sphere engine's lockstep interference
/// accumulation when sibling symbols share one channel's `R`. Output `s`
/// is bit-identical to `cdot_soa(a, column_s)` on every backend: the
/// scalar path replicates the per-symbol spec verbatim and the AVX2 path
/// vectorizes across the symbol dimension (elementwise there, so the
/// per-symbol op order is unchanged). NEON currently takes the scalar
/// path — the across-symbol layout needs ≥4 lanes to pay for itself.
///
/// # Panics
/// Panics when `a` slices differ in length, `b` slices are shorter than
/// `m·k`, or the outputs are shorter than `k`.
pub fn cdot_soa_multi(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    k: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    assert_cdot_soa_multi(ar, ai, br, bi, k, out_re, out_im);
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        // Safety: `active_tier()` only returns `Avx2` when runtime
        // detection confirmed AVX2 support.
        #[allow(unsafe_code)]
        Tier::Avx2 => unsafe { avx2::cdot_soa_multi(ar, ai, br, bi, k, out_re, out_im) },
        _ => scalar::cdot_soa_multi(ar, ai, br, bi, k, out_re, out_im),
    }
}

/// [`cdot_soa_multi`] forced onto a specific tier (unsupported tiers fall
/// back to scalar) — the parity-test entry point.
// Tier selector plus the kernel's slab ABI; same shape as the kernel.
#[allow(clippy::too_many_arguments)]
pub fn cdot_soa_multi_with(
    tier: Tier,
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    k: usize,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    assert_cdot_soa_multi(ar, ai, br, bi, k, out_re, out_im);
    match tier {
        #[cfg(target_arch = "x86_64")]
        // Safety: guarded by `tier_supported`.
        #[allow(unsafe_code)]
        Tier::Avx2 if tier_supported(Tier::Avx2) => unsafe {
            avx2::cdot_soa_multi(ar, ai, br, bi, k, out_re, out_im)
        },
        _ => scalar::cdot_soa_multi(ar, ai, br, bi, k, out_re, out_im),
    }
}

fn assert_cdot_soa_multi(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    k: usize,
    out_re: &[f64],
    out_im: &[f64],
) {
    assert_eq!(ar.len(), ai.len(), "cdot_soa_multi a-length mismatch");
    assert!(
        br.len() >= ar.len() * k && bi.len() >= ar.len() * k,
        "cdot_soa_multi b slabs too short"
    );
    assert!(out_re.len() >= k && out_im.len() >= k, "cdot_soa_multi outputs too short");
}

/// Elementwise conjugated axpy `out_j += conj(a_j) · y` — one row step of
/// the Q*-rotation ([`crate::Qr::rotate_into`]). Elementwise, so every
/// backend is trivially bit-identical.
///
/// # Panics
/// Panics when lengths differ.
pub fn caxpy_conj(a: &[Complex], y: Complex, out: &mut [Complex]) {
    assert_eq!(a.len(), out.len(), "caxpy_conj length mismatch");
    dispatch!(caxpy_conj(a, y, out))
}

/// [`caxpy_conj`] forced onto a specific tier.
pub fn caxpy_conj_with(tier: Tier, a: &[Complex], y: Complex, out: &mut [Complex]) {
    assert_eq!(a.len(), out.len(), "caxpy_conj length mismatch");
    dispatch_with!(tier, caxpy_conj(a, y, out))
}

/// Batched PED evaluation over split-layout points: `out_j = gain · ((re_j
/// − center.re)² + (im_j − center.im)²)` — the row-head batch of the
/// ETH-SD enumerator. Elementwise ([`ped_point`] per lane), so every
/// backend is trivially bit-identical.
///
/// # Panics
/// Panics when slice lengths differ.
pub fn ped_soa(re: &[f64], im: &[f64], center: Complex, gain: f64, out: &mut [f64]) {
    assert!(re.len() == im.len() && re.len() == out.len(), "ped_soa length mismatch");
    let _prof = gs_prof::scope(gs_prof::Stage::PedKernel);
    _prof.add_bytes((re.len() * 3 * std::mem::size_of::<f64>()) as u64);
    dispatch!(ped_soa(re, im, center, gain, out))
}

/// [`ped_soa`] forced onto a specific tier.
pub fn ped_soa_with(
    tier: Tier,
    re: &[f64],
    im: &[f64],
    center: Complex,
    gain: f64,
    out: &mut [f64],
) {
    assert!(re.len() == im.len() && re.len() == out.len(), "ped_soa length mismatch");
    dispatch_with!(tier, ped_soa(re, im, center, gain, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn sample_vecs(n: usize) -> (Vec<Complex>, Vec<Complex>) {
        // Deterministic, awkward values (different magnitudes force real
        // rounding differences under reassociation).
        let a: Vec<Complex> = (0..n)
            .map(|j| {
                c(((j * 7 + 1) as f64).sin() * 1e3f64.powi((j % 5) as i32 - 2), (j as f64).cos())
            })
            .collect();
        let b: Vec<Complex> =
            (0..n).map(|j| c((j as f64 * 0.37).cos(), ((j * 3) as f64).sin() * 0.5)).collect();
        (a, b)
    }

    #[test]
    fn active_and_forced_tiers_agree_bitwise() {
        for n in 0..17 {
            let (a, b) = sample_vecs(n);
            let want = cdot_with(Tier::Scalar, &a, &b);
            let got = cdot(&a, &b);
            assert_eq!(got.re.to_bits(), want.re.to_bits(), "n={n}");
            assert_eq!(got.im.to_bits(), want.im.to_bits(), "n={n}");
            let wantc = cdotc_with(Tier::Scalar, &a, &b);
            let gotc = cdotc(&a, &b);
            assert_eq!(gotc.re.to_bits(), wantc.re.to_bits(), "n={n}");
            assert_eq!(gotc.im.to_bits(), wantc.im.to_bits(), "n={n}");
        }
    }

    #[test]
    fn cdot_matches_naive_sum_closely() {
        let (a, b) = sample_vecs(9);
        let naive: Complex = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        let got = cdot(&a, &b);
        assert!((got - naive).abs() <= 1e-9 * naive.abs().max(1.0));
    }

    #[test]
    fn forced_unsupported_tier_falls_back_to_scalar() {
        // On x86_64, Neon is never supported (and vice versa); the _with
        // entry points must fall back rather than crash.
        let (a, b) = sample_vecs(6);
        let scalar = cdot_with(Tier::Scalar, &a, &b);
        #[cfg(target_arch = "x86_64")]
        let other = cdot_with(Tier::Neon, &a, &b);
        #[cfg(not(target_arch = "x86_64"))]
        let other = cdot_with(Tier::Avx2, &a, &b);
        assert_eq!(scalar.re.to_bits(), other.re.to_bits());
        assert_eq!(scalar.im.to_bits(), other.im.to_bits());
    }

    #[test]
    fn gs_simd_grammar_recognizes_every_documented_value() {
        for v in ["", "on", "auto", "native", "1", "off", "scalar", "0", "avx2", "avx512", "neon"] {
            assert!(parse_tier_value(v).is_some(), "documented value {v:?} must parse");
        }
        assert_eq!(parse_tier_value("off"), Some(Tier::Scalar));
        // avx512 is recognized but unimplemented: it must resolve to a
        // supported tier (never warn, never crash) — AVX2 on machines
        // that have it, scalar elsewhere.
        let resolved = parse_tier_value("avx512").unwrap();
        assert!(tier_supported(resolved), "avx512 must fall back to a supported tier");
        assert_ne!(resolved, Tier::Neon);
        for v in ["of", "AVX2", "avx-512", "2", "best"] {
            assert_eq!(parse_tier_value(v), None, "{v:?} must be rejected (warn + scalar)");
        }
    }

    #[test]
    fn force_tier_roundtrip() {
        let before = active_tier();
        assert!(force_tier(Tier::Scalar));
        assert_eq!(active_tier(), Tier::Scalar);
        reset_tier();
        let _ = active_tier(); // re-resolves without panicking
        assert!(force_tier(before));
    }
}
