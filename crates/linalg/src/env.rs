//! Shared parse-warn-fallback handling for the `GS_*` environment knobs.
//!
//! The workspace exposes a small family of runtime knobs — `GS_SIMD`
//! (kernel tier, [`crate::simd`]), `GS_NO_PIN` (worker pinning opt-out)
//! and `GS_DOMAINS` (memory-domain override), both consumed by
//! `geosphere-core`'s affinity module — and they must all behave the same
//! way when misused: **warn on stderr and fall back to a safe value**,
//! never silently ignore a typo (a mistyped `GS_SIMD=of` must not quietly
//! re-enable vector code, a mistyped `GS_NO_PIN=flase` must not quietly
//! re-enable pinning).
//!
//! This module lives in `gs-linalg` rather than `geosphere-core` because
//! it is the lowest layer that reads a knob (`GS_SIMD`); `geosphere-core`
//! depends on `gs-linalg`, so one helper can serve every knob without a
//! dependency cycle. `geosphere-core` re-exports it as
//! `geosphere_core::env`.

/// Reads and parses the environment knob `name` with one shared policy:
///
/// * **unset** → `default` (the knob's do-nothing value),
/// * **set and recognized** → whatever `parse` returns for the trimmed,
///   ASCII-lowercased value,
/// * **set but unrecognized** → a warning on stderr naming the knob, the
///   offending value, the `expected` grammar and the `fallback_desc`
///   action taken — then `fallback` (the knob's *safe* value, which is
///   not necessarily its default).
pub fn env_knob<T>(
    name: &str,
    expected: &str,
    fallback_desc: &str,
    default: T,
    fallback: T,
    parse: impl FnOnce(&str) -> Option<T>,
) -> T {
    let Ok(raw) = std::env::var(name) else {
        return default;
    };
    match parse(&raw.trim().to_ascii_lowercase()) {
        Some(v) => v,
        None => {
            eprintln!(
                "geosphere: unrecognized {name} value {raw:?} (expected {expected}); \
                 {fallback_desc}"
            );
            fallback
        }
    }
}

/// Boolean knob under the shared policy: unset → `false`; empty or
/// `1`/`true`/`yes`/`on` → `true`; `0`/`false`/`no`/`off` → `false`;
/// anything else warns and counts as **set** (`true`) — the user clearly
/// reached for the knob, and for opt-outs like `GS_NO_PIN` honouring the
/// attempt is the safe reading.
pub fn env_flag(name: &str) -> bool {
    env_knob(
        name,
        "1|true|yes|on|0|false|no|off (or empty)",
        "treating the flag as set",
        false,
        true,
        |v| match v {
            "" | "1" | "true" | "yes" | "on" => Some(true),
            "0" | "false" | "no" | "off" => Some(false),
            _ => None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; each test uses its own variable name
    // so parallel test threads cannot race on a shared knob.

    #[test]
    fn unset_yields_default() {
        assert_eq!(env_knob("GS_TEST_KNOB_UNSET", "x", "d", 7, 9, |_| Some(1)), 7);
        assert!(!env_flag("GS_TEST_FLAG_UNSET"));
    }

    #[test]
    fn recognized_value_parses() {
        std::env::set_var("GS_TEST_KNOB_OK", "  Fast ");
        let v =
            env_knob("GS_TEST_KNOB_OK", "fast|slow", "d", 0, -1, |v| (v == "fast").then_some(42));
        assert_eq!(v, 42, "value is trimmed and lowercased before parsing");
    }

    #[test]
    fn unrecognized_value_falls_back() {
        std::env::set_var("GS_TEST_KNOB_BAD", "garbage");
        let v =
            env_knob("GS_TEST_KNOB_BAD", "fast|slow", "d", 0, -1, |v| (v == "fast").then_some(42));
        assert_eq!(v, -1, "unrecognized values take the fallback, not the default");
    }

    #[test]
    fn flag_grammar() {
        for (raw, want) in [
            ("", true),
            ("1", true),
            ("true", true),
            ("YES", true),
            ("on", true),
            ("0", false),
            ("false", false),
            ("no", false),
            ("OFF", false),
            ("flase", true), // typo: warn, but honour the attempt to set it
        ] {
            std::env::set_var("GS_TEST_FLAG_GRAMMAR", raw);
            assert_eq!(env_flag("GS_TEST_FLAG_GRAMMAR"), want, "raw {raw:?}");
        }
        std::env::remove_var("GS_TEST_FLAG_GRAMMAR");
    }
}
