//! In-place radix-2 FFT.
//!
//! Used to turn tapped-delay-line channel impulse responses into
//! per-subcarrier frequency responses (the OFDM channels the detectors see),
//! and by the OFDM modulator in `gs-phy`.

use crate::complex::Complex;

/// Forward DFT, in place. Length must be a power of two.
///
/// Convention: `X[k] = Σ_n x[n]·e^{−2πi kn/N}` (no normalization).
pub fn fft(data: &mut [Complex]) {
    transform(data, false);
}

/// Inverse DFT, in place, including the `1/N` normalization so that
/// `ifft(fft(x)) == x`.
pub fn ifft(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = *z / n;
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Cooley–Tukey butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::cis(ang);
        let mut start = 0;
        while start < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Frequency response of a (short) impulse response over `n_fft` bins:
/// zero-pads `taps` to `n_fft` and returns the forward DFT.
pub fn frequency_response(taps: &[Complex], n_fft: usize) -> Vec<Complex> {
    assert!(taps.len() <= n_fft, "impulse response longer than FFT size");
    let mut buf = vec![Complex::ZERO; n_fft];
    buf[..taps.len()].copy_from_slice(taps);
    fft(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft(&mut data);
        for z in &data {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::ONE; 8];
        fft(&mut data);
        assert!((data[0] - Complex::real(8.0)).abs() < 1e-12);
        for z in &data[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip() {
        let orig: Vec<Complex> =
            (0..64).map(|k| Complex::new((k as f64).sin(), (k as f64 * 0.7).cos())).collect();
        let mut data = orig.clone();
        fft(&mut data);
        ifft(&mut data);
        assert_close(&data, &orig, 1e-10);
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> =
            (0..16).map(|k| Complex::new(k as f64 * 0.25 - 1.0, (k as f64 * 0.5).sin())).collect();
        let mut fast = x.clone();
        fft(&mut fast);
        for (k, &f) in fast.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (n, &xn) in x.iter().enumerate() {
                acc += xn * Complex::cis(-std::f64::consts::TAU * (k * n) as f64 / 16.0);
            }
            assert!((f - acc).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<Complex> =
            (0..32).map(|k| Complex::new((k as f64).cos(), 0.3 * k as f64)).collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = x.clone();
        fft(&mut freq);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn single_tap_frequency_response_is_flat() {
        let h = frequency_response(&[Complex::new(0.5, -0.5)], 16);
        for z in &h {
            assert!((*z - Complex::new(0.5, -0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn delay_tap_is_linear_phase() {
        // h[n] = delta[n-1] => H[k] = e^{-2pi i k / N}.
        let h = frequency_response(&[Complex::ZERO, Complex::ONE], 8);
        for (k, z) in h.iter().enumerate() {
            let expect = Complex::cis(-std::f64::consts::TAU * k as f64 / 8.0);
            assert!((*z - expect).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex::ZERO; 6];
        fft(&mut data);
    }
}
