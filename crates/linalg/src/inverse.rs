//! Matrix inversion and linear solves via partially-pivoted LU.
//!
//! Used by the zero-forcing receiver (`H⁻¹` / pseudo-inverse), the MMSE
//! filter (`(H*H + σ²I)⁻¹H*`), and the Λ channel metric
//! (`[(H*H)⁻¹]_kk`, paper §5.1).

use crate::complex::Complex;
use crate::matrix::Matrix;

/// Error type for singular or non-square systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix was singular to working precision.
    Singular,
    /// An operation requiring a square matrix received a rectangular one.
    NotSquare,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotSquare => write!(f, "operation requires a square matrix"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// LU decomposition with partial pivoting: `P A = L U`.
#[derive(Clone, Debug)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `pivots[k]` = original row in position `k`.
    pivots: Vec<usize>,
}

/// Factors a square matrix.
pub fn lu_decompose(a: &Matrix) -> Result<Lu, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.rows();
    let mut lu = a.clone();
    let mut pivots: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // Partial pivot: largest |entry| in column k at or below the diagonal.
        let (pivot_row, pivot_mag) = (k..n)
            .map(|r| (r, lu[(r, k)].abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        if pivot_mag < 1e-14 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != k {
            lu = lu.with_swapped_rows(pivot_row, k);
            pivots.swap(pivot_row, k);
        }
        let inv_pivot = lu[(k, k)].inv();
        for r in (k + 1)..n {
            let factor = lu[(r, k)] * inv_pivot;
            lu[(r, k)] = factor;
            for c in (k + 1)..n {
                let delta = factor * lu[(k, c)];
                lu[(r, c)] -= delta;
            }
        }
    }
    Ok(Lu { lu, pivots })
}

impl Lu {
    /// Solves `A x = b` for one right-hand side.
    pub fn solve(&self, b: &[Complex]) -> Vec<Complex> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n);
        // Apply permutation.
        let mut x: Vec<Complex> = self.pivots.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for r in 1..n {
            for c in 0..r {
                let delta = self.lu[(r, c)] * x[c];
                x[r] -= delta;
            }
        }
        // Back substitution.
        for r in (0..n).rev() {
            for c in (r + 1)..n {
                let delta = self.lu[(r, c)] * x[c];
                x[r] -= delta;
            }
            x[r] /= self.lu[(r, r)];
        }
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> Complex {
        let n = self.lu.rows();
        // Sign of the permutation.
        let mut seen = vec![false; n];
        let mut sign = 1.0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut len = 0;
            let mut i = start;
            while !seen[i] {
                seen[i] = true;
                i = self.pivots[i];
                len += 1;
            }
            if len % 2 == 0 {
                sign = -sign;
            }
        }
        let mut det = Complex::real(sign);
        for k in 0..n {
            det *= self.lu[(k, k)];
        }
        det
    }
}

/// Inverts a square matrix.
pub fn invert(a: &Matrix) -> Result<Matrix, LinalgError> {
    let lu = lu_decompose(a)?;
    let n = a.rows();
    let mut inv = Matrix::zeros(n, n);
    for c in 0..n {
        let mut e = vec![Complex::ZERO; n];
        e[c] = Complex::ONE;
        let col = lu.solve(&e);
        for r in 0..n {
            inv[(r, c)] = col[r];
        }
    }
    Ok(inv)
}

/// Moore–Penrose pseudo-inverse for full-column-rank `m × n` matrices
/// (`m ≥ n`): `H⁺ = (H*H)⁻¹ H*`.
///
/// This is the zero-forcing filter when the AP has more antennas than there
/// are streams.
pub fn pseudo_inverse(h: &Matrix) -> Result<Matrix, LinalgError> {
    let gram = h.gram();
    let gram_inv = invert(&gram)?;
    Ok(gram_inv.mul_mat(&h.hermitian()))
}

/// Solves the regularized system used by MMSE: `(H*H + λI)⁻¹ H*`.
pub fn regularized_pseudo_inverse(h: &Matrix, lambda: f64) -> Result<Matrix, LinalgError> {
    let n = h.cols();
    let mut gram = h.gram();
    for k in 0..n {
        gram[(k, k)] += Complex::real(lambda);
    }
    let gram_inv = invert(&gram)?;
    Ok(gram_inv.mul_mat(&h.hermitian()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |_, _| {
            Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in 1..=8 {
            let a = random_matrix(&mut rng, n, n);
            let inv = invert(&a).expect("random matrices are a.s. nonsingular");
            assert!(inv.mul_mat(&a).max_abs_diff(&Matrix::identity(n)) < 1e-9, "n = {n}");
            assert!(a.mul_mat(&inv).max_abs_diff(&Matrix::identity(n)) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn solve_matches_mul() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = random_matrix(&mut rng, 5, 5);
        let x: Vec<Complex> = (0..5)
            .map(|_| Complex::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)))
            .collect();
        let b = a.mul_vec(&x);
        let lu = lu_decompose(&a).unwrap();
        let x2 = lu.solve(&b);
        for (u, v) in x.iter().zip(&x2) {
            assert!((*u - *v).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(
            2,
            2,
            &[Complex::real(1.0), Complex::real(2.0), Complex::real(2.0), Complex::real(4.0)],
        );
        assert_eq!(invert(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn not_square_detected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(invert(&a).unwrap_err(), LinalgError::NotSquare);
    }

    #[test]
    fn det_of_diagonal() {
        let mut a = Matrix::identity(3);
        a[(0, 0)] = Complex::real(2.0);
        a[(1, 1)] = Complex::real(3.0);
        a[(2, 2)] = Complex::new(0.0, 1.0);
        let lu = lu_decompose(&a).unwrap();
        assert!((lu.det() - Complex::new(0.0, 6.0)).abs() < 1e-12);
    }

    #[test]
    fn det_sign_under_row_swap() {
        // A matrix needing pivoting: the permutation sign must be tracked.
        let a = Matrix::from_rows(
            2,
            2,
            &[Complex::ZERO, Complex::real(1.0), Complex::real(1.0), Complex::ZERO],
        );
        let lu = lu_decompose(&a).unwrap();
        assert!((lu.det() - Complex::real(-1.0)).abs() < 1e-12);
    }

    #[test]
    fn pseudo_inverse_is_left_inverse() {
        let mut rng = StdRng::seed_from_u64(23);
        let h = random_matrix(&mut rng, 6, 3);
        let pinv = pseudo_inverse(&h).unwrap();
        assert!(pinv.mul_mat(&h).max_abs_diff(&Matrix::identity(3)) < 1e-9);
    }

    #[test]
    fn regularized_pinv_approaches_pinv_as_lambda_to_zero() {
        let mut rng = StdRng::seed_from_u64(24);
        let h = random_matrix(&mut rng, 4, 4);
        let pinv = pseudo_inverse(&h).unwrap();
        let reg = regularized_pseudo_inverse(&h, 1e-12).unwrap();
        assert!(pinv.max_abs_diff(&reg) < 1e-6);
    }
}
