//! Householder QR decomposition of complex matrices.
//!
//! The sphere decoder (paper §2.2) requires `H = QR` with `Q* Q = I` and `R`
//! upper-triangular. We additionally normalize the decomposition so that the
//! diagonal of `R` is **real and non-negative**: the Geosphere enumeration
//! divides by `r_ll` (Eq. 8), and a positive real diagonal turns that into a
//! cheap real division while leaving `‖ŷ − Rs‖` unchanged.

use crate::complex::Complex;
use crate::matrix::Matrix;

/// The result of a thin QR decomposition `H = Q R`.
///
/// For an `m × n` input with `m ≥ n`, `q` is `m × n` with orthonormal
/// columns and `r` is `n × n` upper-triangular with a real, non-negative
/// diagonal.
#[derive(Clone, Debug)]
pub struct Qr {
    /// Orthonormal factor (`m × n`, thin).
    pub q: Matrix,
    /// Upper-triangular factor (`n × n`), real non-negative diagonal.
    pub r: Matrix,
}

impl Qr {
    /// Applies `Q*` to a received vector: `ŷ = Q* y` (paper Eq. 3).
    pub fn rotate(&self, y: &[Complex]) -> Vec<Complex> {
        self.q.hermitian().mul_vec(y)
    }

    /// Reconstructs `Q R`, for testing and diagnostics.
    pub fn reconstruct(&self) -> Matrix {
        self.q.mul_mat(&self.r)
    }
}

/// Computes the thin Householder QR decomposition of `h`.
///
/// # Panics
/// Panics if `h` has fewer rows than columns (the MIMO uplink always has
/// `na ≥ nc`; rank-deficient "generalized sphere decoder" setups are out of
/// scope, as in the paper §6.1).
pub fn qr_decompose(h: &Matrix) -> Qr {
    let (m, n) = h.shape();
    assert!(m >= n, "QR requires rows >= cols (na >= nc), got {m}x{n}");

    // Work on a full copy; accumulate the reflections into q_full.
    let mut r_full = h.clone();
    let mut q_full = Matrix::identity(m);

    for k in 0..n {
        // Householder vector for column k, rows k..m.
        let mut x: Vec<Complex> = (k..m).map(|i| r_full[(i, k)]).collect();
        let xnorm = x.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if xnorm < f64::EPSILON {
            continue;
        }
        // alpha = -sign(x0) * |x|, where sign(z) = z/|z| (phase); this choice
        // avoids cancellation and makes the pivot -phase(x0)*|x|.
        let x0 = x[0];
        let phase = if x0.abs() < f64::EPSILON { Complex::ONE } else { x0 / x0.abs() };
        let alpha = -phase * xnorm;
        x[0] -= alpha;
        let vnorm_sqr: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        if vnorm_sqr < f64::EPSILON * f64::EPSILON {
            continue;
        }

        // Apply I - 2 v v*/|v|^2 to the trailing block of R (columns k..n).
        for c in k..n {
            let dot: Complex = (k..m).map(|i| x[i - k].conj() * r_full[(i, c)]).sum();
            let f = dot.scale(2.0 / vnorm_sqr);
            for i in k..m {
                let delta = x[i - k] * f;
                r_full[(i, c)] -= delta;
            }
        }
        // Accumulate into Q (apply reflection on the right of q_full).
        for rrow in 0..m {
            let dot: Complex = (k..m).map(|i| q_full[(rrow, i)] * x[i - k]).sum();
            let f = dot.scale(2.0 / vnorm_sqr);
            for i in k..m {
                let delta = f * x[i - k].conj();
                q_full[(rrow, i)] -= delta;
            }
        }
    }

    // Thin factors.
    let mut q = Matrix::from_fn(m, n, |r, c| q_full[(r, c)]);
    let mut r = Matrix::from_fn(n, n, |rr, cc| if rr <= cc { r_full[(rr, cc)] } else { Complex::ZERO });

    // Normalize so diag(R) is real and non-negative: R <- D* R, Q <- Q D,
    // with D = diag(phase(r_kk)).
    for k in 0..n {
        let d = r[(k, k)];
        if d.abs() < f64::EPSILON {
            continue;
        }
        let phase = d / d.abs();
        let phase_conj = phase.conj();
        for c in k..n {
            r[(k, c)] = phase_conj * r[(k, c)];
        }
        for rr in 0..m {
            q[(rr, k)] *= phase;
        }
    }
    Qr { q, r }
}

/// A sorted QR decomposition: columns of `H` are permuted before QR so that
/// detection proceeds from the strongest stream (largest post-QR diagonal)
/// at the tree root. `perm[i]` gives the original column index of permuted
/// column `i`.
///
/// Sorted QR (V-BLAST style norm ordering) is the standard preprocessing for
/// SIC-type and sphere detectors; the sphere decoders in this workspace can
/// run with or without it.
#[derive(Clone, Debug)]
pub struct SortedQr {
    /// The QR factors of the permuted matrix.
    pub qr: Qr,
    /// `perm[i]` = original column of permuted column `i`.
    pub perm: Vec<usize>,
}

impl SortedQr {
    /// Restores a detected symbol vector to the original stream order.
    pub fn unpermute<T: Copy + Default>(&self, s: &[T]) -> Vec<T> {
        let mut out = vec![T::default(); s.len()];
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = s[i];
        }
        out
    }
}

/// QR with column-norm sorting: weakest column first so the *last* detected
/// level (tree root) carries the largest diagonal.
///
/// Sorting ascending by column norm puts low-confidence streams deep in the
/// tree where the sphere search can compensate, which empirically reduces
/// visited nodes for every Schnorr–Euchner decoder.
pub fn sorted_qr_decompose(h: &Matrix) -> SortedQr {
    let n = h.cols();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut norms: Vec<f64> = (0..n)
        .map(|c| h.col(c).iter().map(|z| z.norm_sqr()).sum())
        .collect();
    // Ascending column norms: weakest stream detected first in natural
    // column order = last in the tree walk.
    perm.sort_by(|&a, &b| norms[a].partial_cmp(&norms[b]).unwrap());
    norms.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let permuted = Matrix::from_fn(h.rows(), n, |r, c| h[(r, perm[c])]);
    SortedQr { qr: qr_decompose(&permuted), perm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |_, _| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
    }

    #[test]
    fn qr_reconstructs_input() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, n) in &[(2, 2), (4, 4), (4, 2), (8, 4), (10, 10), (3, 1)] {
            let h = random_matrix(&mut rng, m, n);
            let qr = qr_decompose(&h);
            assert!(
                qr.reconstruct().max_abs_diff(&h) < 1e-10,
                "QR reconstruction failed for {m}x{n}"
            );
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let mut rng = StdRng::seed_from_u64(8);
        for &(m, n) in &[(2, 2), (4, 4), (6, 3), (10, 10)] {
            let h = random_matrix(&mut rng, m, n);
            let qr = qr_decompose(&h);
            let gram = qr.q.gram();
            assert!(gram.max_abs_diff(&Matrix::identity(n)) < 1e-10);
        }
    }

    #[test]
    fn r_is_upper_triangular_with_positive_diagonal() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let h = random_matrix(&mut rng, 4, 4);
            let qr = qr_decompose(&h);
            for r in 0..4 {
                for c in 0..4 {
                    if r > c {
                        assert!(qr.r[(r, c)].abs() < 1e-12, "R not triangular");
                    }
                }
                assert!(qr.r[(r, r)].im.abs() < 1e-12, "diag not real");
                assert!(qr.r[(r, r)].re >= 0.0, "diag negative");
            }
        }
    }

    #[test]
    fn rotate_preserves_residual_norm() {
        // ||y - Hs||^2 = ||Q*y - Rs||^2 + const for any s, when na == nc the
        // const vanishes; check the na == nc case numerically.
        let mut rng = StdRng::seed_from_u64(10);
        let h = random_matrix(&mut rng, 4, 4);
        let qr = qr_decompose(&h);
        let s: Vec<Complex> =
            (0..4).map(|_| Complex::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0))).collect();
        let y: Vec<Complex> =
            (0..4).map(|_| Complex::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0))).collect();
        let lhs = crate::matrix::vec_dist_sqr(&y, &h.mul_vec(&s));
        let yhat = qr.rotate(&y);
        let rhs = crate::matrix::vec_dist_sqr(&yhat, &qr.r.mul_vec(&s));
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn sorted_qr_unpermute_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let h = random_matrix(&mut rng, 4, 4);
        let sqr = sorted_qr_decompose(&h);
        // Reconstruct permuted H and check column mapping.
        let rec = sqr.qr.reconstruct();
        for c in 0..4 {
            for r in 0..4 {
                assert!((rec[(r, c)] - h[(r, sqr.perm[c])]).abs() < 1e-10);
            }
        }
        // unpermute puts values back.
        let vals: Vec<usize> = (0..4).collect();
        let restored = sqr.unpermute(&vals);
        for (i, &p) in sqr.perm.iter().enumerate() {
            assert_eq!(restored[p], vals[i]);
        }
    }

    #[test]
    fn sorted_qr_diagonal_ordering_tends_ascending() {
        // With ascending column-norm sorting the first diagonal entry should
        // not exceed the norm of the largest column.
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let h = random_matrix(&mut rng, 4, 4);
            let sqr = sorted_qr_decompose(&h);
            let d0 = sqr.qr.r[(0, 0)].re;
            let max_norm = (0..4)
                .map(|c| h.col(c).iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt())
                .fold(0.0, f64::max);
            assert!(d0 <= max_norm + 1e-9);
        }
    }

    #[test]
    fn qr_of_identity() {
        let qr = qr_decompose(&Matrix::identity(3));
        assert!(qr.q.max_abs_diff(&Matrix::identity(3)) < 1e-12);
        assert!(qr.r.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }
}
