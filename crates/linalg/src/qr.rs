//! Householder QR decomposition of complex matrices.
//!
//! The sphere decoder (paper §2.2) requires `H = QR` with `Q* Q = I` and `R`
//! upper-triangular. We additionally normalize the decomposition so that the
//! diagonal of `R` is **real and non-negative**: the Geosphere enumeration
//! divides by `r_ll` (Eq. 8), and a positive real diagonal turns that into a
//! cheap real division while leaving `‖ŷ − Rs‖` unchanged.
//!
//! Every entry point has an allocation-free `_into` variant backed by a
//! [`QrWorkspace`]: detection pipelines re-factorize per channel and rotate
//! per received vector, so the hot path reuses one workspace's buffers
//! instead of allocating fresh matrices each time. The allocating wrappers
//! delegate to the `_into` forms, so both produce bit-identical factors.

use crate::complex::Complex;
use crate::matrix::Matrix;

/// The result of a thin QR decomposition `H = Q R`.
///
/// For an `m × n` input with `m ≥ n`, `q` is `m × n` with orthonormal
/// columns and `r` is `n × n` upper-triangular with a real, non-negative
/// diagonal.
#[derive(Clone, Debug, Default)]
pub struct Qr {
    /// Orthonormal factor (`m × n`, thin).
    pub q: Matrix,
    /// Upper-triangular factor (`n × n`), real non-negative diagonal.
    pub r: Matrix,
}

impl Qr {
    /// Applies `Q*` to a received vector: `ŷ = Q* y` (paper Eq. 3).
    pub fn rotate(&self, y: &[Complex]) -> Vec<Complex> {
        let mut out = Vec::new();
        self.rotate_into(y, &mut out);
        out
    }

    /// [`Qr::rotate`] into a caller-owned buffer (cleared first): zero heap
    /// allocations once `out`'s capacity has warmed up.
    ///
    /// # Panics
    /// Panics when `y.len()` differs from the number of rows of `Q`.
    pub fn rotate_into(&self, y: &[Complex], out: &mut Vec<Complex>) {
        let _prof = gs_prof::scope(gs_prof::Stage::Rotate);
        self.rotate_into_unscoped(y, out);
    }

    /// [`Qr::rotate_into`] without opening a `Rotate` profiling scope.
    ///
    /// For a small `nc` the scope entry/exit costs a visible fraction of
    /// the rotation itself, so batched callers (the multi-symbol lockstep
    /// rotates up to 16 vectors back-to-back) bracket the whole run under
    /// one caller-held scope and call this per vector.
    pub fn rotate_into_unscoped(&self, y: &[Complex], out: &mut Vec<Complex>) {
        assert_eq!(y.len(), self.q.rows(), "rotate dimension mismatch");
        out.clear();
        out.resize(self.q.cols(), Complex::ZERO);
        // Accumulate row-by-row: `out[i] += conj(q[j, i]) · y_j` for j in
        // ascending order — the same per-element accumulation order as the
        // old column-walk, but with contiguous row loads the SIMD axpy
        // kernel can vectorize across `i`.
        for (j, &yj) in y.iter().enumerate() {
            crate::simd::caxpy_conj(self.q.row(j), yj, out);
        }
    }

    /// Reconstructs `Q R`, for testing and diagnostics.
    pub fn reconstruct(&self) -> Matrix {
        self.q.mul_mat(&self.r)
    }
}

/// Reusable scratch buffers for the `_into` decomposition variants.
///
/// One workspace per worker thread is the intended ownership model (it is
/// embedded in the detection `SearchWorkspace`); after the first
/// factorization of a given shape, subsequent calls perform no heap
/// allocations.
#[derive(Clone, Debug, Default)]
pub struct QrWorkspace {
    /// Full working copy of the input, reduced in place.
    r_full: Matrix,
    /// Accumulated reflections (full `m × m`).
    q_full: Matrix,
    /// Householder vector for the current column.
    x: Vec<Complex>,
    /// Column-norm scratch for the sorted variant.
    norms: Vec<f64>,
    /// Column-permuted copy of the input for the sorted variant.
    permuted: Matrix,
}

impl QrWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes the thin Householder QR decomposition of `h`.
///
/// # Panics
/// Panics if `h` has fewer rows than columns (the MIMO uplink always has
/// `na ≥ nc`; rank-deficient "generalized sphere decoder" setups are out of
/// scope, as in the paper §6.1).
pub fn qr_decompose(h: &Matrix) -> Qr {
    let mut ws = QrWorkspace::new();
    let mut out = Qr::default();
    qr_decompose_into(h, &mut ws, &mut out);
    out
}

/// [`qr_decompose`] into a caller-owned output, with scratch taken from
/// `ws`: zero heap allocations once both have warmed up on this shape.
/// Factors are bit-identical to [`qr_decompose`] (same arithmetic, same
/// operation order).
pub fn qr_decompose_into(h: &Matrix, ws: &mut QrWorkspace, out: &mut Qr) {
    let _prof = gs_prof::scope(gs_prof::Stage::QrDecompose);
    qr_core(h, &mut ws.r_full, &mut ws.q_full, &mut ws.x, out);
}

/// The Householder reduction shared by the plain and sorted variants,
/// parameterized over its scratch buffers so callers control reuse.
fn qr_core(
    h: &Matrix,
    r_full: &mut Matrix,
    q_full: &mut Matrix,
    x: &mut Vec<Complex>,
    out: &mut Qr,
) {
    let (m, n) = h.shape();
    assert!(m >= n, "QR requires rows >= cols (na >= nc), got {m}x{n}");

    // Work on a full copy; accumulate the reflections into q_full.
    r_full.copy_from(h);
    q_full.reset_identity(m);

    for k in 0..n {
        // Householder vector for column k, rows k..m.
        x.clear();
        x.extend((k..m).map(|i| r_full[(i, k)]));
        let xnorm = x.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if xnorm < f64::EPSILON {
            continue;
        }
        // alpha = -sign(x0) * |x|, where sign(z) = z/|z| (phase); this choice
        // avoids cancellation and makes the pivot -phase(x0)*|x|.
        let x0 = x[0];
        let phase = if x0.abs() < f64::EPSILON { Complex::ONE } else { x0 / x0.abs() };
        let alpha = -phase * xnorm;
        x[0] -= alpha;
        let vnorm_sqr: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        if vnorm_sqr < f64::EPSILON * f64::EPSILON {
            continue;
        }

        // Apply I - 2 v v*/|v|^2 to the trailing block of R (columns k..n).
        for c in k..n {
            let dot: Complex = (k..m).map(|i| x[i - k].conj() * r_full[(i, c)]).sum();
            let f = dot.scale(2.0 / vnorm_sqr);
            for i in k..m {
                let delta = x[i - k] * f;
                r_full[(i, c)] -= delta;
            }
        }
        // Accumulate into Q (apply reflection on the right of q_full).
        for rrow in 0..m {
            let dot: Complex = (k..m).map(|i| q_full[(rrow, i)] * x[i - k]).sum();
            let f = dot.scale(2.0 / vnorm_sqr);
            for i in k..m {
                let delta = f * x[i - k].conj();
                q_full[(rrow, i)] -= delta;
            }
        }
    }

    // Thin factors, written into the reused output storage.
    out.q.reset_zeros(m, n);
    for r in 0..m {
        for c in 0..n {
            out.q[(r, c)] = q_full[(r, c)];
        }
    }
    out.r.reset_zeros(n, n);
    for rr in 0..n {
        for cc in rr..n {
            out.r[(rr, cc)] = r_full[(rr, cc)];
        }
    }

    // Normalize so diag(R) is real and non-negative: R <- D* R, Q <- Q D,
    // with D = diag(phase(r_kk)).
    for k in 0..n {
        let d = out.r[(k, k)];
        if d.abs() < f64::EPSILON {
            continue;
        }
        let phase = d / d.abs();
        let phase_conj = phase.conj();
        for c in k..n {
            out.r[(k, c)] = phase_conj * out.r[(k, c)];
        }
        for rr in 0..m {
            out.q[(rr, k)] *= phase;
        }
    }
}

/// A sorted QR decomposition: columns of `H` are permuted before QR so that
/// detection proceeds from the strongest stream (largest post-QR diagonal)
/// at the tree root. `perm[i]` gives the original column index of permuted
/// column `i`.
///
/// Sorted QR (V-BLAST style norm ordering) is the standard preprocessing for
/// SIC-type and sphere detectors; the sphere decoders in this workspace can
/// run with or without it.
#[derive(Clone, Debug, Default)]
pub struct SortedQr {
    /// The QR factors of the permuted matrix.
    pub qr: Qr,
    /// `perm[i]` = original column of permuted column `i`.
    pub perm: Vec<usize>,
}

impl SortedQr {
    /// Restores a detected symbol vector to the original stream order.
    pub fn unpermute<T: Copy + Default>(&self, s: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.unpermute_into(s, &mut out);
        out
    }

    /// [`SortedQr::unpermute`] into a caller-owned buffer (cleared first);
    /// allocation-free once `out`'s capacity has warmed up.
    pub fn unpermute_into<T: Copy + Default>(&self, s: &[T], out: &mut Vec<T>) {
        out.clear();
        out.resize(s.len(), T::default());
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = s[i];
        }
    }
}

/// QR with column-norm sorting: weakest column first so the *last* detected
/// level (tree root) carries the largest diagonal.
///
/// Sorting ascending by column norm puts low-confidence streams deep in the
/// tree where the sphere search can compensate, which empirically reduces
/// visited nodes for every Schnorr–Euchner decoder.
pub fn sorted_qr_decompose(h: &Matrix) -> SortedQr {
    let mut ws = QrWorkspace::new();
    let mut out = SortedQr::default();
    sorted_qr_decompose_into(h, &mut ws, &mut out);
    out
}

/// [`sorted_qr_decompose`] into a caller-owned output with scratch from
/// `ws`; allocation-free after shape warmup, bit-identical factors.
pub fn sorted_qr_decompose_into(h: &Matrix, ws: &mut QrWorkspace, out: &mut SortedQr) {
    let _prof = gs_prof::scope(gs_prof::Stage::QrDecompose);
    let n = h.cols();
    out.perm.clear();
    out.perm.extend(0..n);
    ws.norms.clear();
    ws.norms.extend((0..n).map(|c| (0..h.rows()).map(|r| h[(r, c)].norm_sqr()).sum::<f64>()));
    // Ascending column norms: weakest stream detected first in natural
    // column order = last in the tree walk.
    let norms = &ws.norms;
    out.perm.sort_by(|&a, &b| norms[a].partial_cmp(&norms[b]).unwrap());

    ws.permuted.reset_zeros(h.rows(), n);
    for r in 0..h.rows() {
        for c in 0..n {
            ws.permuted[(r, c)] = h[(r, out.perm[c])];
        }
    }
    qr_core(&ws.permuted, &mut ws.r_full, &mut ws.q_full, &mut ws.x, &mut out.qr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |_, _| {
            Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn qr_reconstructs_input() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, n) in &[(2, 2), (4, 4), (4, 2), (8, 4), (10, 10), (3, 1)] {
            let h = random_matrix(&mut rng, m, n);
            let qr = qr_decompose(&h);
            assert!(
                qr.reconstruct().max_abs_diff(&h) < 1e-10,
                "QR reconstruction failed for {m}x{n}"
            );
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let mut rng = StdRng::seed_from_u64(8);
        for &(m, n) in &[(2, 2), (4, 4), (6, 3), (10, 10)] {
            let h = random_matrix(&mut rng, m, n);
            let qr = qr_decompose(&h);
            let gram = qr.q.gram();
            assert!(gram.max_abs_diff(&Matrix::identity(n)) < 1e-10);
        }
    }

    #[test]
    fn r_is_upper_triangular_with_positive_diagonal() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let h = random_matrix(&mut rng, 4, 4);
            let qr = qr_decompose(&h);
            for r in 0..4 {
                for c in 0..4 {
                    if r > c {
                        assert!(qr.r[(r, c)].abs() < 1e-12, "R not triangular");
                    }
                }
                assert!(qr.r[(r, r)].im.abs() < 1e-12, "diag not real");
                assert!(qr.r[(r, r)].re >= 0.0, "diag negative");
            }
        }
    }

    #[test]
    fn rotate_preserves_residual_norm() {
        // ||y - Hs||^2 = ||Q*y - Rs||^2 + const for any s, when na == nc the
        // const vanishes; check the na == nc case numerically.
        let mut rng = StdRng::seed_from_u64(10);
        let h = random_matrix(&mut rng, 4, 4);
        let qr = qr_decompose(&h);
        let s: Vec<Complex> = (0..4)
            .map(|_| Complex::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)))
            .collect();
        let y: Vec<Complex> = (0..4)
            .map(|_| Complex::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)))
            .collect();
        let lhs = crate::matrix::vec_dist_sqr(&y, &h.mul_vec(&s));
        let yhat = qr.rotate(&y);
        let rhs = crate::matrix::vec_dist_sqr(&yhat, &qr.r.mul_vec(&s));
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn rotate_into_matches_hermitian_mul() {
        // rotate_into is the hot-path form of Q*·y; it must agree exactly
        // with its definition — `out[i] = Σ_j conj(q[j,i])·y_j` accumulated
        // in ascending j, the order both the scalar and SIMD axpy paths
        // follow. (The kernel-routed `hermitian().mul_vec(y)` uses the
        // two-lane dot reduction instead, so it is only near-equal.)
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, n) in &[(2, 2), (4, 4), (6, 3)] {
            let h = random_matrix(&mut rng, m, n);
            let qr = qr_decompose(&h);
            let y: Vec<Complex> = (0..m)
                .map(|_| Complex::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)))
                .collect();
            let mut reference = vec![Complex::ZERO; n];
            for (j, &yj) in y.iter().enumerate() {
                for (i, slot) in reference.iter_mut().enumerate() {
                    *slot += qr.q[(j, i)].conj() * yj;
                }
            }
            let via_mul = qr.q.hermitian().mul_vec(&y);
            for (a, b) in via_mul.iter().zip(&reference) {
                assert!((*a - *b).abs() < 1e-12, "{m}x{n}: kernel dot drifted");
            }
            let mut out = Vec::new();
            qr.rotate_into(&y, &mut out);
            assert_eq!(out.len(), reference.len());
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "{m}x{n}: re differs");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "{m}x{n}: im differs");
            }
        }
    }

    #[test]
    fn decompose_into_reuses_and_matches() {
        // One workspace + output pair across many shapes/instances must give
        // bit-identical factors to the allocating path.
        let mut rng = StdRng::seed_from_u64(22);
        let mut ws = QrWorkspace::new();
        let mut out = Qr::default();
        for &(m, n) in &[(4, 4), (2, 2), (8, 4), (4, 4), (3, 1)] {
            let h = random_matrix(&mut rng, m, n);
            qr_decompose_into(&h, &mut ws, &mut out);
            let reference = qr_decompose(&h);
            assert_eq!(out.q.shape(), reference.q.shape());
            for (a, b) in out.q.as_slice().iter().zip(reference.q.as_slice()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
            for (a, b) in out.r.as_slice().iter().zip(reference.r.as_slice()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn sorted_decompose_into_matches() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut ws = QrWorkspace::new();
        let mut out = SortedQr::default();
        for _ in 0..5 {
            let h = random_matrix(&mut rng, 4, 4);
            sorted_qr_decompose_into(&h, &mut ws, &mut out);
            let reference = sorted_qr_decompose(&h);
            assert_eq!(out.perm, reference.perm);
            for (a, b) in out.qr.r.as_slice().iter().zip(reference.qr.r.as_slice()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn sorted_qr_unpermute_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let h = random_matrix(&mut rng, 4, 4);
        let sqr = sorted_qr_decompose(&h);
        // Reconstruct permuted H and check column mapping.
        let rec = sqr.qr.reconstruct();
        for c in 0..4 {
            for r in 0..4 {
                assert!((rec[(r, c)] - h[(r, sqr.perm[c])]).abs() < 1e-10);
            }
        }
        // unpermute puts values back.
        let vals: Vec<usize> = (0..4).collect();
        let restored = sqr.unpermute(&vals);
        for (i, &p) in sqr.perm.iter().enumerate() {
            assert_eq!(restored[p], vals[i]);
        }
    }

    #[test]
    fn sorted_qr_diagonal_ordering_tends_ascending() {
        // With ascending column-norm sorting the first diagonal entry should
        // not exceed the norm of the largest column.
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let h = random_matrix(&mut rng, 4, 4);
            let sqr = sorted_qr_decompose(&h);
            let d0 = sqr.qr.r[(0, 0)].re;
            let max_norm = (0..4)
                .map(|c| h.col(c).iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt())
                .fold(0.0, f64::max);
            assert!(d0 <= max_norm + 1e-9);
        }
    }

    #[test]
    fn qr_of_identity() {
        let qr = qr_decompose(&Matrix::identity(3));
        assert!(qr.q.max_abs_diff(&Matrix::identity(3)) < 1e-12);
        assert!(qr.r.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }
}
