//! Dense complex matrices in row-major storage.
//!
//! MIMO detection works on tiny matrices (at most ~10×10 in this workspace:
//! the number of AP antennas by the number of client antennas), so the
//! representation favours clarity and cache-friendliness over blocking or
//! SIMD heroics: a flat `Vec<Complex>` with row-major indexing.

use crate::complex::Complex;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense `rows × cols` complex matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Default for Matrix {
    /// The empty `0 × 0` matrix — the natural seed for workspace slots that
    /// are later filled in place via [`Matrix::copy_from`] and friends.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![Complex::ZERO; rows * cols] }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major slice of entries.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[Complex]) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Matrix { rows, cols, data: data.to_vec() }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a column vector (an `n × 1` matrix) from a slice.
    pub fn col_vector(data: &[Complex]) -> Self {
        Matrix::from_rows(data.len(), 1, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True for `n × n` matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row-major view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable row-major view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Complex] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One column, copied out.
    pub fn col(&self, c: usize) -> Vec<Complex> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Conjugate (Hermitian) transpose `A*`.
    pub fn hermitian(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)].conj())
    }

    /// Scales every entry by a real factor.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)].scale(k))
    }

    /// Makes `self` an entry-wise scaled copy of `src` (`self = k·src`),
    /// reusing storage — the in-place counterpart of [`Matrix::scale`],
    /// bit-identical to it entry by entry.
    pub fn scale_from(&mut self, src: &Matrix, k: f64) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend(src.data.iter().map(|z| z.scale(k)));
    }

    /// Matrix-vector product written into a reused output buffer —
    /// bit-identical to [`Matrix::mul_vec`] without its allocation (both
    /// run every row through the same [`crate::simd::cdot`] kernel).
    ///
    /// # Panics
    /// Panics when `x.len() != self.cols()`.
    pub fn mul_vec_into(&self, x: &[Complex], out: &mut Vec<Complex>) {
        assert_eq!(x.len(), self.cols, "matrix-vector dimension mismatch");
        out.clear();
        for r in 0..self.rows {
            out.push(crate::simd::cdot(self.row(r), x));
        }
    }

    /// Reshapes `self` into an all-zero `rows × cols` matrix, reusing the
    /// existing storage (no heap traffic once capacity suffices).
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Complex::ZERO);
    }

    /// Reshapes `self` into the `n × n` identity, reusing storage.
    pub fn reset_identity(&mut self, n: usize) {
        self.reset_zeros(n, n);
        for i in 0..n {
            self[(i, i)] = Complex::ONE;
        }
    }

    /// Makes `self` an entry-wise copy of `src`, reusing storage.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// `A* A` — the Gram matrix, used for SNR-degradation metrics.
    pub fn gram(&self) -> Matrix {
        self.hermitian().mul_mat(self)
    }

    /// Matrix-matrix product.
    ///
    /// # Panics
    /// Panics when inner dimensions disagree.
    pub fn mul_mat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matrix product dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `A x`, each row through the lane-ordered
    /// [`crate::simd::cdot`] kernel.
    ///
    /// # Panics
    /// Panics when `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "matrix-vector dimension mismatch");
        (0..self.rows).map(|r| crate::simd::cdot(self.row(r), x)).collect()
    }

    /// Frobenius norm `sqrt(Σ |a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>()
    }

    /// Largest entry-wise deviation from another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data.iter().zip(&other.data).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max)
    }

    /// Extracts the upper-left `rows × cols` block.
    pub fn submatrix(&self, rows: usize, cols: usize) -> Matrix {
        assert!(rows <= self.rows && cols <= self.cols);
        Matrix::from_fn(rows, cols, |r, c| self[(r, c)])
    }

    /// Returns a copy with row `a` and row `b` swapped.
    pub fn with_swapped_rows(&self, a: usize, b: usize) -> Matrix {
        let mut m = self.clone();
        for c in 0..self.cols {
            let t = m[(a, c)];
            m[(a, c)] = m[(b, c)];
            m[(b, c)] = t;
        }
        m
    }

    /// Returns a copy with column `a` and column `b` swapped.
    pub fn with_swapped_cols(&self, a: usize, b: usize) -> Matrix {
        let mut m = self.clone();
        for r in 0..self.rows {
            let t = m[(r, a)];
            m[(r, a)] = m[(r, b)];
            m[(r, b)] = t;
        }
        m
    }

    /// Removes one column, returning an `rows × (cols−1)` matrix.
    pub fn without_col(&self, col: usize) -> Matrix {
        assert!(col < self.cols);
        Matrix::from_fn(self.rows, self.cols - 1, |r, c| self[(r, if c < col { c } else { c + 1 })])
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] + rhs[(r, c)])
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] - rhs[(r, c)])
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.mul_mat(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:?}  ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Squared Euclidean distance between two complex vectors.
///
/// # Panics
/// Panics when lengths disagree.
pub fn vec_dist_sqr(a: &[Complex], b: &[Complex]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y).norm_sqr()).sum()
}

/// Squared Euclidean norm of a complex vector.
pub fn vec_norm_sqr(a: &[Complex]) -> f64 {
    a.iter().map(|z| z.norm_sqr()).sum()
}

/// Inner product `⟨a, b⟩ = Σ conj(a_i)·b_i`, through the lane-ordered
/// [`crate::simd::cdotc`] kernel.
pub fn vec_dot(a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len());
    crate::simd::cdotc(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(2, 2, &[c(1.0, 2.0), c(3.0, -1.0), c(0.5, 0.0), c(-2.0, 2.0)]);
        let i = Matrix::identity(2);
        assert_eq!(a.mul_mat(&i), a);
        assert_eq!(i.mul_mat(&a), a);
    }

    #[test]
    fn hermitian_reverses_product() {
        let a = Matrix::from_rows(2, 3, &[c(1.0, 1.0); 6]);
        let b = Matrix::from_rows(3, 2, &[c(2.0, -1.0); 6]);
        let lhs = a.mul_mat(&b).hermitian();
        let rhs = b.hermitian().mul_mat(&a.hermitian());
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn mul_vec_matches_mul_mat() {
        let a = Matrix::from_rows(2, 2, &[c(1.0, 0.0), c(0.0, 1.0), c(2.0, 0.0), c(0.0, -3.0)]);
        let x = vec![c(1.0, 1.0), c(-2.0, 0.5)];
        let via_vec = a.mul_vec(&x);
        let via_mat = a.mul_mat(&Matrix::col_vector(&x));
        for (i, v) in via_vec.iter().enumerate() {
            assert!((*v - via_mat[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_is_hermitian_psd() {
        let a = Matrix::from_rows(
            3,
            2,
            &[c(1.0, 0.2), c(0.0, 1.0), c(2.0, -0.3), c(0.4, -3.0), c(-1.0, 0.0), c(0.1, 0.1)],
        );
        let g = a.gram();
        assert!(g.max_abs_diff(&g.hermitian()) < 1e-12);
        for i in 0..2 {
            assert!(g[(i, i)].re >= 0.0);
            assert!(g[(i, i)].im.abs() < 1e-12);
        }
    }

    #[test]
    fn frobenius_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn swap_rows_and_cols() {
        let a = Matrix::from_fn(2, 2, |r, c_| Complex::real((2 * r + c_) as f64));
        let swapped = a.with_swapped_rows(0, 1);
        assert_eq!(swapped[(0, 0)].re, 2.0);
        let cswapped = a.with_swapped_cols(0, 1);
        assert_eq!(cswapped[(0, 0)].re, 1.0);
    }

    #[test]
    fn without_col_drops_the_right_one() {
        let a = Matrix::from_fn(2, 3, |r, c_| Complex::real((3 * r + c_) as f64));
        let b = a.without_col(1);
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b[(0, 1)].re, 2.0);
        assert_eq!(b[(1, 0)].re, 3.0);
    }

    #[test]
    fn vector_helpers() {
        let a = [c(1.0, 0.0), c(0.0, 1.0)];
        let b = [c(0.0, 0.0), c(0.0, 0.0)];
        assert!((vec_dist_sqr(&a, &b) - 2.0).abs() < 1e-12);
        assert!((vec_norm_sqr(&a) - 2.0).abs() < 1e-12);
        let d = vec_dot(&a, &a);
        assert!((d - Complex::real(2.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul_mat(&b);
    }
}
