//! Complex scalar arithmetic.
//!
//! A minimal, `f64`-backed complex number. Everything in the workspace that
//! touches baseband samples, channel coefficients, or constellation points
//! goes through this type, so it is deliberately small, `Copy`, and fully
//! `#[inline]`d.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` with `f64` components.
///
/// `repr(C)` guarantees the `(re, im)` interleaved layout the SIMD kernels
/// ([`crate::simd`]) rely on when viewing `&[Complex]` as packed `f64`
/// pairs.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Builds a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Builds a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Builds a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a unit-magnitude phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    ///
    /// This is the workhorse of every Euclidean-distance computation in the
    /// sphere decoder, so it avoids the square root of [`Complex::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value when `z == 0`, matching `f64` division
    /// semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        Complex::new(re, if self.im < 0.0 { -im_mag } else { im_mag })
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add: `self * b + c`.
    #[inline]
    pub fn mul_add(self, b: Complex, c: Complex) -> Complex {
        self * b + c
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}i", self.re, if self.im < 0.0 { "-" } else { "+" }, self.im.abs())
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 4.0);
        assert!(close(a + b - b, a));
    }

    #[test]
    fn mul_matches_foil() {
        let a = Complex::new(3.0, 2.0);
        let b = Complex::new(1.0, 7.0);
        // (3+2i)(1+7i) = 3 + 21i + 2i + 14i^2 = -11 + 23i
        assert!(close(a * b, Complex::new(-11.0, 23.0)));
    }

    #[test]
    fn div_is_mul_inverse() {
        let a = Complex::new(3.0, 2.0);
        let b = Complex::new(1.0, 7.0);
        assert!(close(a / b * b, a));
        assert!(close(b * b.inv(), Complex::ONE));
    }

    #[test]
    fn conj_properties() {
        let a = Complex::new(3.0, 2.0);
        assert!(close(a * a.conj(), Complex::real(a.norm_sqr())));
        assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-4.0, 0.0), (3.0, -4.0), (0.0, 2.0), (-1.0, -1.0)] {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt({z:?}) = {s:?}");
            assert!(s.re >= 0.0, "principal branch");
        }
    }

    #[test]
    fn cis_unit_magnitude() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.5);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_folds() {
        let total: Complex = (0..10).map(|k| Complex::new(k as f64, -(k as f64))).sum();
        assert!(close(total, Complex::new(45.0, -45.0)));
    }
}
