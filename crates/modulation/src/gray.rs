//! Gray bit mapping between bit groups and constellation points.
//!
//! Square QAM is Gray-coded independently per axis (as in 802.11): the first
//! `Q/2` bits of a symbol select the in-phase level, the rest the quadrature
//! level, each through a reflected binary Gray code so that adjacent levels
//! differ in exactly one bit. This makes symbol errors between neighbouring
//! points cost a single bit — the property the convolutional code relies on.

use crate::constellation::{Constellation, GridPoint};

/// Binary-reflected Gray code of `n`.
#[inline]
pub fn gray_encode(n: usize) -> usize {
    n ^ (n >> 1)
}

/// Inverse of [`gray_encode`].
#[inline]
pub fn gray_decode(g: usize) -> usize {
    let mut n = g;
    let mut shift = 1;
    while (g >> shift) > 0 {
        n ^= g >> shift;
        shift += 1;
    }
    n
}

/// Maps a group of `Q` bits (MSB-first) to a constellation point.
///
/// # Panics
/// Panics when `bits.len() != c.bits_per_symbol()`.
pub fn map_bits(c: Constellation, bits: &[bool]) -> GridPoint {
    assert_eq!(bits.len(), c.bits_per_symbol(), "wrong number of bits for {c:?}");
    let half = c.bits_per_axis();
    let i = axis_from_bits(c, &bits[..half]);
    let q = axis_from_bits(c, &bits[half..]);
    GridPoint { i, q }
}

/// Recovers the `Q` bits (MSB-first) of an exact constellation point.
pub fn unmap_point(c: Constellation, p: GridPoint) -> Vec<bool> {
    let mut bits = Vec::with_capacity(c.bits_per_symbol());
    unmap_point_into(c, p, &mut bits);
    bits
}

/// Appends the `Q` bits (MSB-first) of an exact constellation point to a
/// caller-owned buffer — the allocation-free form of [`unmap_point`].
pub fn unmap_point_into(c: Constellation, p: GridPoint, out: &mut Vec<bool>) {
    let half = c.bits_per_axis();
    axis_to_bits(c, p.i, half, out);
    axis_to_bits(c, p.q, half, out);
}

fn axis_from_bits(c: Constellation, bits: &[bool]) -> i32 {
    let mut g = 0usize;
    for &b in bits {
        g = (g << 1) | b as usize;
    }
    c.coord_of_index(gray_decode(g))
}

fn axis_to_bits(c: Constellation, coord: i32, nbits: usize, out: &mut Vec<bool>) {
    let g = gray_encode(c.index_of_coord(coord));
    for k in (0..nbits).rev() {
        out.push((g >> k) & 1 == 1);
    }
}

/// Maps a bitstream to a sequence of constellation points, `Q` bits per
/// symbol.
///
/// # Panics
/// Panics unless `bits.len()` is a multiple of `Q`.
pub fn map_bitstream(c: Constellation, bits: &[bool]) -> Vec<GridPoint> {
    let mut out = Vec::with_capacity(bits.len() / c.bits_per_symbol().max(1));
    map_bitstream_into(c, bits, &mut out);
    out
}

/// [`map_bitstream`] into a reused output buffer (cleared first).
///
/// # Panics
/// Panics unless `bits.len()` is a multiple of `Q`.
pub fn map_bitstream_into(c: Constellation, bits: &[bool], out: &mut Vec<GridPoint>) {
    let q = c.bits_per_symbol();
    assert_eq!(bits.len() % q, 0, "bitstream not a multiple of {q} bits");
    out.clear();
    out.extend(bits.chunks(q).map(|chunk| map_bits(c, chunk)));
}

/// Recovers the bitstream from a sequence of constellation points.
pub fn unmap_points(c: Constellation, points: &[GridPoint]) -> Vec<bool> {
    let mut out = Vec::with_capacity(points.len() * c.bits_per_symbol());
    unmap_points_into(c, points, &mut out);
    out
}

/// [`unmap_points`] into a reused output buffer (cleared first).
pub fn unmap_points_into(c: Constellation, points: &[GridPoint], out: &mut Vec<bool>) {
    out.clear();
    for &p in points {
        unmap_point_into(c, p, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_small_values() {
        let expect = [0, 1, 3, 2, 6, 7, 5, 4];
        for (n, &g) in expect.iter().enumerate() {
            assert_eq!(gray_encode(n), g);
            assert_eq!(gray_decode(g), n);
        }
    }

    #[test]
    fn gray_roundtrip_wide() {
        for n in 0..1024 {
            assert_eq!(gray_decode(gray_encode(n)), n);
        }
    }

    #[test]
    fn map_unmap_roundtrip_all_points() {
        for c in Constellation::ALL {
            for sym in 0..c.size() {
                let bits: Vec<bool> =
                    (0..c.bits_per_symbol()).rev().map(|k| (sym >> k) & 1 == 1).collect();
                let p = map_bits(c, &bits);
                assert_eq!(unmap_point(c, p), bits, "{c:?} symbol {sym}");
            }
        }
    }

    #[test]
    fn mapping_is_bijective() {
        for c in Constellation::ALL {
            let mut seen = std::collections::HashSet::new();
            for sym in 0..c.size() {
                let bits: Vec<bool> =
                    (0..c.bits_per_symbol()).rev().map(|k| (sym >> k) & 1 == 1).collect();
                let p = map_bits(c, &bits);
                assert!(seen.insert((p.i, p.q)), "{c:?}: point {p:?} mapped twice");
            }
            assert_eq!(seen.len(), c.size());
        }
    }

    #[test]
    fn axis_neighbours_differ_in_one_bit() {
        // The Gray property: horizontally or vertically adjacent points
        // differ in exactly one bit.
        for c in Constellation::ALL {
            let levels = c.axis_levels();
            for w in levels.windows(2) {
                let a = unmap_point(c, GridPoint { i: w[0], q: levels[0] });
                let b = unmap_point(c, GridPoint { i: w[1], q: levels[0] });
                let diff: usize = a.iter().zip(&b).filter(|(x, y)| x != y).count();
                assert_eq!(diff, 1, "{c:?} I-neighbours {} and {}", w[0], w[1]);

                let a = unmap_point(c, GridPoint { i: levels[0], q: w[0] });
                let b = unmap_point(c, GridPoint { i: levels[0], q: w[1] });
                let diff: usize = a.iter().zip(&b).filter(|(x, y)| x != y).count();
                assert_eq!(diff, 1, "{c:?} Q-neighbours {} and {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn bitstream_roundtrip() {
        let c = Constellation::Qam64;
        let bits: Vec<bool> = (0..120).map(|k| (k * 7 + 3) % 5 < 2).collect();
        let pts = map_bitstream(c, &bits);
        assert_eq!(pts.len(), 20);
        assert_eq!(unmap_points(c, &pts), bits);
    }

    #[test]
    #[should_panic(expected = "wrong number of bits")]
    fn wrong_bit_count_panics() {
        map_bits(Constellation::Qam16, &[true, false, true]);
    }
}
