//! # gs-modulation
//!
//! Square QAM constellations and bit mappings for the Geosphere workspace.
//!
//! Everything operates on the **odd-integer grid** (points at
//! `{±1, ±3, …}²`, spacing 2 — the paper's Figure 7 geometry). Power
//! normalization is a scalar ([`Constellation::scale`]) that the PHY folds
//! into the channel matrix, so detectors see integer-valued constellations
//! and the geometric pruning table of Eq. 9 applies exactly.
//!
//! ```
//! use gs_modulation::{Constellation, map_bits, unmap_point};
//!
//! let c = Constellation::Qam16;
//! let p = map_bits(c, &[true, false, false, true]);
//! assert_eq!(unmap_point(c, p), vec![true, false, false, true]);
//! assert_eq!(c.slice(p.to_complex()), p);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod constellation;
pub mod gray;
pub mod zigzag;

pub use bits::{bit_of_point, pack_point_bits, BitTable};
pub use constellation::{Constellation, GridPoint};
pub use gray::{
    gray_decode, gray_encode, map_bits, map_bitstream, map_bitstream_into, unmap_point,
    unmap_point_into, unmap_points, unmap_points_into,
};
pub use zigzag::AxisZigzag;
