//! Square QAM constellations on the odd-integer grid.
//!
//! Constellation points live at `{±1, ±3, …, ±(m−1)}²` where `m = √|O|` is
//! the number of PAM levels per axis — the grid of the paper's Figure 7
//! ("constellation points are spaced two units apart"). Transmit-power
//! normalization is exposed as a scale factor ([`Constellation::scale`])
//! that callers fold into the *channel*, so the sphere decoder always works
//! on the integer grid and the geometric-pruning lookup table (Eq. 9) is
//! exact.

use gs_linalg::Complex;

/// The four square QAM constellations used in the paper (§4: 4-, 16-,
/// 64-QAM on the testbed; §5.3: 256-QAM in simulation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Constellation {
    /// 4-QAM (QPSK): 2 bits/symbol.
    Qpsk,
    /// 16-QAM: 4 bits/symbol.
    Qam16,
    /// 64-QAM: 6 bits/symbol.
    Qam64,
    /// 256-QAM: 8 bits/symbol.
    Qam256,
}

impl Constellation {
    /// All supported constellations, sparsest first.
    pub const ALL: [Constellation; 4] =
        [Constellation::Qpsk, Constellation::Qam16, Constellation::Qam64, Constellation::Qam256];

    /// Constellation size `|O|`.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            Constellation::Qpsk => 4,
            Constellation::Qam16 => 16,
            Constellation::Qam64 => 64,
            Constellation::Qam256 => 256,
        }
    }

    /// Bits per symbol `Q = log2 |O|`.
    #[inline]
    pub const fn bits_per_symbol(self) -> usize {
        match self {
            Constellation::Qpsk => 2,
            Constellation::Qam16 => 4,
            Constellation::Qam64 => 6,
            Constellation::Qam256 => 8,
        }
    }

    /// PAM levels per axis, `m = √|O|`.
    #[inline]
    pub const fn side(self) -> usize {
        match self {
            Constellation::Qpsk => 2,
            Constellation::Qam16 => 4,
            Constellation::Qam64 => 8,
            Constellation::Qam256 => 16,
        }
    }

    /// Bits per axis, `Q/2`.
    #[inline]
    pub const fn bits_per_axis(self) -> usize {
        self.bits_per_symbol() / 2
    }

    /// Average symbol energy on the unnormalized grid:
    /// `E_s = 2(m² − 1)/3` for square QAM with spacing 2.
    #[inline]
    pub fn energy(self) -> f64 {
        let m = self.side() as f64;
        2.0 * (m * m - 1.0) / 3.0
    }

    /// Amplitude normalization `1/√E_s`: multiplying grid-domain symbols by
    /// this yields unit average symbol energy.
    #[inline]
    pub fn scale(self) -> f64 {
        1.0 / self.energy().sqrt()
    }

    /// Largest axis coordinate, `m − 1`.
    #[inline]
    pub const fn max_coord(self) -> i32 {
        self.side() as i32 - 1
    }

    /// Parses names like `"16-QAM"`, `"qam64"`, `"qpsk"`, `"256"`.
    pub fn parse(name: &str) -> Option<Constellation> {
        let lower: String =
            name.to_ascii_lowercase().chars().filter(|c| c.is_alphanumeric()).collect();
        match lower.as_str() {
            "qpsk" | "4qam" | "qam4" | "4" => Some(Constellation::Qpsk),
            "16qam" | "qam16" | "16" => Some(Constellation::Qam16),
            "64qam" | "qam64" | "64" => Some(Constellation::Qam64),
            "256qam" | "qam256" | "256" => Some(Constellation::Qam256),
            _ => None,
        }
    }

    /// All axis levels `{−(m−1), …, −1, 1, …, m−1}` in ascending order.
    pub fn axis_levels(self) -> Vec<i32> {
        let m = self.side() as i32;
        (0..m).map(|i| 2 * i - (m - 1)).collect()
    }

    /// All `|O|` constellation points (grid domain), in row-major
    /// (Q-major, then I) order.
    pub fn points(self) -> Vec<GridPoint> {
        let levels = self.axis_levels();
        let mut pts = Vec::with_capacity(self.size());
        for &q in &levels {
            for &i in &levels {
                pts.push(GridPoint { i, q });
            }
        }
        pts
    }

    /// True when `c` is a valid axis coordinate: odd and `|c| ≤ m−1`.
    #[inline]
    pub fn is_valid_coord(self, c: i32) -> bool {
        c.rem_euclid(2) == 1 && c.abs() <= self.max_coord()
    }

    /// Nearest axis level to a continuous coordinate (slicing on the
    /// decision boundaries, clamped to the grid edge).
    #[inline]
    pub fn slice_axis(self, x: f64) -> i32 {
        let m = self.side() as i32;
        // Round to nearest odd integer: shift by (m-1) to a 0..2(m-1) even
        // grid, round to nearest multiple of 2, shift back, clamp.
        let idx = ((x + (m - 1) as f64) / 2.0).round() as i64;
        let idx = idx.clamp(0, (m - 1) as i64) as i32;
        2 * idx - (m - 1)
    }

    /// Nearest constellation point to an arbitrary received symbol.
    #[inline]
    pub fn slice(self, y: Complex) -> GridPoint {
        GridPoint { i: self.slice_axis(y.re), q: self.slice_axis(y.im) }
    }

    /// Axis level for a 0-based level index.
    #[inline]
    pub fn coord_of_index(self, idx: usize) -> i32 {
        debug_assert!(idx < self.side());
        2 * idx as i32 - self.max_coord()
    }

    /// 0-based level index of an axis coordinate.
    #[inline]
    pub fn index_of_coord(self, coord: i32) -> usize {
        debug_assert!(self.is_valid_coord(coord), "invalid coord {coord}");
        ((coord + self.max_coord()) / 2) as usize
    }
}

/// A constellation point on the odd-integer grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct GridPoint {
    /// In-phase coordinate (odd integer).
    pub i: i32,
    /// Quadrature coordinate (odd integer).
    pub q: i32,
}

impl GridPoint {
    /// Converts to a complex sample in the grid domain.
    #[inline]
    pub fn to_complex(self) -> Complex {
        Complex::new(self.i as f64, self.q as f64)
    }

    /// Converts to a unit-average-energy complex sample.
    #[inline]
    pub fn to_normalized(self, c: Constellation) -> Complex {
        self.to_complex() * c.scale()
    }

    /// Squared Euclidean distance to a received symbol.
    #[inline]
    pub fn dist_sqr(self, y: Complex) -> f64 {
        let di = self.i as f64 - y.re;
        let dq = self.q as f64 - y.im;
        di * di + dq * dq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_bits() {
        assert_eq!(Constellation::Qpsk.size(), 4);
        assert_eq!(Constellation::Qam256.bits_per_symbol(), 8);
        for c in Constellation::ALL {
            assert_eq!(c.size(), 1 << c.bits_per_symbol());
            assert_eq!(c.side() * c.side(), c.size());
        }
    }

    #[test]
    fn axis_levels_are_odd_and_symmetric() {
        for c in Constellation::ALL {
            let levels = c.axis_levels();
            assert_eq!(levels.len(), c.side());
            for &l in &levels {
                assert!(c.is_valid_coord(l), "{l} invalid for {c:?}");
            }
            let sum: i32 = levels.iter().sum();
            assert_eq!(sum, 0, "levels not symmetric for {c:?}");
        }
    }

    #[test]
    fn energy_matches_bruteforce() {
        for c in Constellation::ALL {
            let avg: f64 =
                c.points().iter().map(|p| p.to_complex().norm_sqr()).sum::<f64>() / c.size() as f64;
            assert!((avg - c.energy()).abs() < 1e-12, "{c:?}");
            // Normalized constellation has unit average energy.
            let avg_norm: f64 =
                c.points().iter().map(|p| p.to_normalized(c).norm_sqr()).sum::<f64>()
                    / c.size() as f64;
            assert!((avg_norm - 1.0).abs() < 1e-12, "{c:?}");
        }
    }

    #[test]
    fn slice_returns_nearest_point() {
        for c in Constellation::ALL {
            let pts = c.points();
            for &(re, im) in &[(0.3, -0.7), (5.9, 5.9), (-100.0, 100.0), (1.0, 1.0), (-0.99, 2.01)]
            {
                let y = Complex::new(re, im);
                let sliced = c.slice(y);
                let best = pts
                    .iter()
                    .min_by(|a, b| a.dist_sqr(y).partial_cmp(&b.dist_sqr(y)).unwrap())
                    .unwrap();
                assert!(
                    (sliced.dist_sqr(y) - best.dist_sqr(y)).abs() < 1e-12,
                    "{c:?} slice({y:?}) = {sliced:?}, best {best:?}"
                );
            }
        }
    }

    #[test]
    fn slice_axis_ties_and_clamping() {
        let c = Constellation::Qam16; // levels -3,-1,1,3
        assert_eq!(c.slice_axis(-10.0), -3);
        assert_eq!(c.slice_axis(10.0), 3);
        assert_eq!(c.slice_axis(0.1), 1);
        assert_eq!(c.slice_axis(-0.1), -1);
        assert_eq!(c.slice_axis(2.2), 3);
        assert_eq!(c.slice_axis(1.9), 1);
    }

    #[test]
    fn coord_index_roundtrip() {
        for c in Constellation::ALL {
            for idx in 0..c.side() {
                let coord = c.coord_of_index(idx);
                assert!(c.is_valid_coord(coord));
                assert_eq!(c.index_of_coord(coord), idx);
            }
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(Constellation::parse("QPSK"), Some(Constellation::Qpsk));
        assert_eq!(Constellation::parse("16-QAM"), Some(Constellation::Qam16));
        assert_eq!(Constellation::parse("qam64"), Some(Constellation::Qam64));
        assert_eq!(Constellation::parse("256"), Some(Constellation::Qam256));
        assert_eq!(Constellation::parse("8psk"), None);
    }

    #[test]
    fn points_count_and_uniqueness() {
        for c in Constellation::ALL {
            let pts = c.points();
            assert_eq!(pts.len(), c.size());
            let mut seen = std::collections::HashSet::new();
            for p in pts {
                assert!(seen.insert((p.i, p.q)), "duplicate point {p:?}");
            }
        }
    }
}
