//! Fast symbol↔bit-pattern lookups for soft-output detection.
//!
//! The soft sphere decoder needs to test "what is bit `k` of this
//! constellation point" millions of times; going through the `Vec<bool>`
//! mapping would allocate per query. This module packs each point's Gray
//! bits into a `u16` (MSB-first within the symbol, matching
//! [`crate::gray::unmap_point`]).

use crate::constellation::{Constellation, GridPoint};
use crate::gray::unmap_point;

/// Bits of a constellation point packed into a `u16`, MSB-first: bit
/// index 0 (as used by [`bit_of_point`]) is the most significant of the
/// `Q` bits.
pub fn pack_point_bits(c: Constellation, p: GridPoint) -> u16 {
    unmap_point(c, p).into_iter().fold(0u16, |acc, b| (acc << 1) | b as u16)
}

/// Bit `k` (0 = first/MSB of the symbol's `Q` bits) of a constellation
/// point, without allocation.
#[inline]
pub fn bit_of_point(c: Constellation, p: GridPoint, k: usize) -> bool {
    debug_assert!(k < c.bits_per_symbol());
    let packed = pack_point_bits(c, p);
    (packed >> (c.bits_per_symbol() - 1 - k)) & 1 == 1
}

/// A precomputed point→bits table for one constellation, indexed by
/// `(level index of I) * side + (level index of Q)`.
#[derive(Clone, Debug)]
pub struct BitTable {
    c: Constellation,
    packed: Vec<u16>,
}

impl BitTable {
    /// Builds the table for a constellation (|O| entries).
    pub fn new(c: Constellation) -> Self {
        let side = c.side();
        let mut packed = vec![0u16; side * side];
        for p in c.points() {
            let idx = c.index_of_coord(p.i) * side + c.index_of_coord(p.q);
            packed[idx] = pack_point_bits(c, p);
        }
        BitTable { c, packed }
    }

    /// The packed bits of a point.
    #[inline]
    pub fn packed(&self, p: GridPoint) -> u16 {
        let side = self.c.side();
        self.packed[self.c.index_of_coord(p.i) * side + self.c.index_of_coord(p.q)]
    }

    /// Bit `k` (MSB-first) of a point.
    #[inline]
    pub fn bit(&self, p: GridPoint, k: usize) -> bool {
        (self.packed(p) >> (self.c.bits_per_symbol() - 1 - k)) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_matches_unmap() {
        for c in Constellation::ALL {
            for p in c.points() {
                let bits = unmap_point(c, p);
                let packed = pack_point_bits(c, p);
                for (k, &b) in bits.iter().enumerate() {
                    assert_eq!(
                        (packed >> (c.bits_per_symbol() - 1 - k)) & 1 == 1,
                        b,
                        "{c:?} {p:?} bit {k}"
                    );
                    assert_eq!(bit_of_point(c, p, k), b);
                }
            }
        }
    }

    #[test]
    fn table_matches_direct() {
        for c in Constellation::ALL {
            let table = BitTable::new(c);
            for p in c.points() {
                assert_eq!(table.packed(p), pack_point_bits(c, p));
                for k in 0..c.bits_per_symbol() {
                    assert_eq!(table.bit(p, k), bit_of_point(c, p, k));
                }
            }
        }
    }

    #[test]
    fn packed_values_unique() {
        for c in Constellation::ALL {
            let mut seen = std::collections::HashSet::new();
            for p in c.points() {
                assert!(seen.insert(pack_point_bits(c, p)), "{c:?}: duplicate bit pattern");
            }
            assert_eq!(seen.len(), c.size());
        }
    }
}
