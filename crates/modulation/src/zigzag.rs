//! One-dimensional (PAM) zigzag enumeration.
//!
//! The zigzag rule of the paper's Figure 4 (left): starting from the sliced
//! level, visit the remaining levels of a PAM (sub)constellation in
//! nondecreasing distance from a continuous target, alternating sides. This
//! iterator is the shared building block of both Geosphere's 2-D zigzag
//! (vertical *and* horizontal legs) and the ETH-SD/Hess row enumeration.

use crate::constellation::Constellation;

/// Iterator over the axis levels of a constellation in nondecreasing
/// distance from a continuous target coordinate.
#[derive(Clone, Debug)]
pub struct AxisZigzag {
    constellation: Constellation,
    /// Continuous target (e.g. `ỹ` projected on this axis).
    target: f64,
    /// Next candidate below the target (level index), if any remain.
    lo: Option<usize>,
    /// Next candidate at-or-above the target (level index), if any remain.
    hi: Option<usize>,
}

impl AxisZigzag {
    /// Starts a zigzag toward `target` on the axis levels of `c`.
    pub fn new(c: Constellation, target: f64) -> Self {
        let first = c.index_of_coord(c.slice_axis(target));
        // Split the level line at the sliced index: `hi` walks up from the
        // slice, `lo` walks down from just below it.
        let (lo, hi) = (first.checked_sub(1), Some(first));
        let mut z = AxisZigzag { constellation: c, target, lo, hi };
        // Decide which side the slice actually belongs to so alternation is
        // seeded correctly (the slice is returned first regardless).
        if (c.coord_of_index(first) as f64) > target {
            // Slice is above target: treat it as the hi side (already is).
        }
        z.normalize();
        z
    }

    fn normalize(&mut self) {
        if let Some(hi) = self.hi {
            if hi >= self.constellation.side() {
                self.hi = None;
            }
        }
    }

    fn dist(&self, idx: usize) -> f64 {
        (self.constellation.coord_of_index(idx) as f64 - self.target).abs()
    }

    /// Number of levels not yet yielded.
    pub fn remaining(&self) -> usize {
        let lo = self.lo.map_or(0, |l| l + 1);
        let hi = self.hi.map_or(0, |h| self.constellation.side() - h);
        lo + hi
    }
}

impl Iterator for AxisZigzag {
    type Item = i32;

    fn next(&mut self) -> Option<i32> {
        let pick_lo = match (self.lo, self.hi) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(l), Some(h)) => self.dist(l) < self.dist(h),
        };
        if pick_lo {
            let l = self.lo.unwrap();
            self.lo = l.checked_sub(1);
            Some(self.constellation.coord_of_index(l))
        } else {
            let h = self.hi.unwrap();
            self.hi = if h + 1 < self.constellation.side() { Some(h + 1) } else { None };
            Some(self.constellation.coord_of_index(h))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining();
        (r, Some(r))
    }
}

impl ExactSizeIterator for AxisZigzag {}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_order(c: Constellation, target: f64) {
        let order: Vec<i32> = AxisZigzag::new(c, target).collect();
        assert_eq!(order.len(), c.side(), "must enumerate all levels");
        // Distances must be nondecreasing.
        for w in order.windows(2) {
            let d0 = (w[0] as f64 - target).abs();
            let d1 = (w[1] as f64 - target).abs();
            assert!(d0 <= d1 + 1e-12, "{c:?} target {target}: {order:?}");
        }
        // All levels present exactly once.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, c.axis_levels());
    }

    #[test]
    fn enumerates_in_nondecreasing_distance() {
        for c in Constellation::ALL {
            for &t in &[-100.0, -2.3, -1.0, -0.2, 0.0, 0.4, 1.0, 1.7, 2.0, 3.6, 100.0] {
                check_order(c, t);
            }
        }
    }

    #[test]
    fn first_is_slice() {
        for c in Constellation::ALL {
            for &t in &[-5.2, -0.3, 0.9, 4.4] {
                let first = AxisZigzag::new(c, t).next().unwrap();
                assert_eq!(first, c.slice_axis(t));
            }
        }
    }

    #[test]
    fn figure4_example_order() {
        // Figure 4 (left): 4-PAM levels, target between the two middle
        // levels, slightly right of centre: slice = 1, then -1, then 3, -3.
        let order: Vec<i32> = AxisZigzag::new(Constellation::Qam16, 0.4).collect();
        assert_eq!(order, vec![1, -1, 3, -3]);
    }

    #[test]
    fn edge_target_walks_inward() {
        let order: Vec<i32> = AxisZigzag::new(Constellation::Qam16, 9.0).collect();
        assert_eq!(order, vec![3, 1, -1, -3]);
    }

    #[test]
    fn remaining_counts_down() {
        let mut z = AxisZigzag::new(Constellation::Qam64, 0.3);
        for left in (0..8).rev() {
            assert_eq!(z.remaining(), left + 1);
            z.next();
        }
        assert_eq!(z.remaining(), 0);
        assert_eq!(z.next(), None);
    }
}
