//! 802.11 frame scrambler.
//!
//! The self-synchronizing 7-bit LFSR (polynomial `x⁷ + x⁴ + 1`) that
//! whitens payload bits before coding, preventing long constant runs from
//! producing spectral lines or degenerate interleaver patterns. Scrambling
//! is an involution given the same seed: applying it twice restores the
//! input.

/// The 802.11 scrambler (7-bit LFSR, `x⁷ + x⁴ + 1`).
#[derive(Clone, Debug)]
pub struct Scrambler {
    state: u8,
}

impl Scrambler {
    /// Creates a scrambler with the given 7-bit seed (must be nonzero, or
    /// the LFSR degenerates to the identity).
    ///
    /// # Panics
    /// Panics when `seed == 0` or `seed > 0x7f`.
    pub fn new(seed: u8) -> Self {
        assert!(seed != 0 && seed <= 0x7f, "seed must be a nonzero 7-bit value");
        Scrambler { state: seed }
    }

    /// The 802.11 reference seed used throughout the workspace.
    pub fn default_seed() -> Self {
        Scrambler::new(0b1011101)
    }

    /// Advances the LFSR one step, returning the keystream bit.
    #[inline]
    fn step(&mut self) -> bool {
        let bit = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | bit) & 0x7f;
        bit == 1
    }

    /// Scrambles (or descrambles) a bit slice in place.
    pub fn apply_in_place(&mut self, bits: &mut [bool]) {
        for b in bits {
            *b ^= self.step();
        }
    }

    /// Scrambles (or descrambles) a bit slice, returning a new vector.
    pub fn apply(&mut self, bits: &[bool]) -> Vec<bool> {
        let mut out = bits.to_vec();
        self.apply_in_place(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_is_involution() {
        let bits: Vec<bool> = (0..500).map(|k| k % 7 == 0).collect();
        let scrambled = Scrambler::default_seed().apply(&bits);
        let restored = Scrambler::default_seed().apply(&scrambled);
        assert_eq!(restored, bits);
        assert_ne!(scrambled, bits, "scrambler must actually change the data");
    }

    #[test]
    fn keystream_has_period_127() {
        // A maximal-length 7-bit LFSR has period 2^7 - 1 = 127.
        let mut s = Scrambler::new(1);
        let stream: Vec<bool> = (0..254).map(|_| s.step()).collect();
        assert_eq!(&stream[..127], &stream[127..]);
        // and no shorter period dividing 127 (127 is prime, so just check
        // the stream isn't constant).
        assert!(stream[..127].iter().any(|&b| b));
        assert!(stream[..127].iter().any(|&b| !b));
    }

    #[test]
    fn whitens_constant_input() {
        let zeros = vec![false; 127];
        let out = Scrambler::default_seed().apply(&zeros);
        let ones = out.iter().filter(|&&b| b).count();
        // A maximal LFSR outputs 64 ones per 127-bit period.
        assert_eq!(ones, 64);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_seed_panics() {
        Scrambler::new(0);
    }
}
