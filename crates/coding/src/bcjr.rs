//! Max-log BCJR soft-input / soft-output decoding of the K=7 code.
//!
//! The Viterbi decoder returns hard information bits; iterative ("turbo")
//! receivers additionally need *extrinsic* reliabilities on the **coded**
//! bits to feed back to the detector (paper §7: "iterative soft receiver
//! processing is required to reach MIMO capacity"). This is the standard
//! max-log approximation of the BCJR forward–backward algorithm over the
//! terminated 64-state trellis.
//!
//! LLR convention throughout: **positive = bit 0 more likely**.

use crate::conv::{branch_output, next_state, CONSTRAINT, NUM_STATES};

/// Output of one SISO decoding pass.
#[derive(Clone, Debug)]
pub struct SisoOutput {
    /// Hard decisions on the information bits (tail stripped).
    pub info_bits: Vec<bool>,
    /// A-posteriori LLRs of the information bits.
    pub info_llrs: Vec<f64>,
    /// **Extrinsic** LLRs of the coded bits (a-posteriori minus input):
    /// what an iterative detector should use as its prior.
    pub coded_extrinsic: Vec<f64>,
}

const NEG_INF: f64 = -1.0e300;

/// Runs max-log BCJR over a terminated rate-1/2 stream of coded-bit LLRs.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn siso_decode(coded_llrs: &[f64]) -> SisoOutput {
    assert_eq!(coded_llrs.len() % 2, 0, "rate-1/2 stream must have even length");
    let steps = coded_llrs.len() / 2;
    assert!(steps >= CONSTRAINT - 1, "stream shorter than the termination tail");

    // Branch metric: correlation form, gamma = Σ_bits (b ? −L/2 : +L/2).
    #[inline]
    fn gamma(l0: f64, l1: f64, o0: bool, o1: bool) -> f64 {
        let g0 = if o0 { -l0 / 2.0 } else { l0 / 2.0 };
        let g1 = if o1 { -l1 / 2.0 } else { l1 / 2.0 };
        g0 + g1
    }

    // Forward recursion.
    let mut alpha = vec![vec![NEG_INF; NUM_STATES]; steps + 1];
    alpha[0][0] = 0.0;
    for t in 0..steps {
        let (l0, l1) = (coded_llrs[2 * t], coded_llrs[2 * t + 1]);
        for s in 0..NUM_STATES {
            let a = alpha[t][s];
            if a <= NEG_INF {
                continue;
            }
            for input in [false, true] {
                let (o0, o1) = branch_output(s, input);
                let ns = next_state(s, input);
                let m = a + gamma(l0, l1, o0, o1);
                if m > alpha[t + 1][ns] {
                    alpha[t + 1][ns] = m;
                }
            }
        }
    }

    // Backward recursion (terminated trellis: end in state 0).
    let mut beta = vec![vec![NEG_INF; NUM_STATES]; steps + 1];
    beta[steps][0] = 0.0;
    for t in (0..steps).rev() {
        let (l0, l1) = (coded_llrs[2 * t], coded_llrs[2 * t + 1]);
        for s in 0..NUM_STATES {
            let mut best = NEG_INF;
            for input in [false, true] {
                let (o0, o1) = branch_output(s, input);
                let ns = next_state(s, input);
                let b = beta[t + 1][ns];
                if b <= NEG_INF {
                    continue;
                }
                let m = b + gamma(l0, l1, o0, o1);
                if m > best {
                    best = m;
                }
            }
            beta[t][s] = best;
        }
    }

    // Per-trellis-step a-posteriori maxima, split by hypothesized bits.
    let mut info_llrs = Vec::with_capacity(steps);
    let mut coded_post = Vec::with_capacity(2 * steps);
    for t in 0..steps {
        let (l0, l1) = (coded_llrs[2 * t], coded_llrs[2 * t + 1]);
        // [input=0/1], [coded0=0/1], [coded1=0/1] maxima.
        let mut best_in = [NEG_INF; 2];
        let mut best_c0 = [NEG_INF; 2];
        let mut best_c1 = [NEG_INF; 2];
        for s in 0..NUM_STATES {
            let a = alpha[t][s];
            if a <= NEG_INF {
                continue;
            }
            for input in [false, true] {
                let (o0, o1) = branch_output(s, input);
                let ns = next_state(s, input);
                let b = beta[t + 1][ns];
                if b <= NEG_INF {
                    continue;
                }
                let m = a + gamma(l0, l1, o0, o1) + b;
                let iu = input as usize;
                if m > best_in[iu] {
                    best_in[iu] = m;
                }
                if m > best_c0[o0 as usize] {
                    best_c0[o0 as usize] = m;
                }
                if m > best_c1[o1 as usize] {
                    best_c1[o1 as usize] = m;
                }
            }
        }
        info_llrs.push(best_in[0] - best_in[1]);
        coded_post.push(best_c0[0] - best_c0[1]);
        coded_post.push(best_c1[0] - best_c1[1]);
    }

    let info_bits: Vec<bool> =
        info_llrs.iter().take(steps - (CONSTRAINT - 1)).map(|&l| l < 0.0).collect();
    info_llrs.truncate(steps - (CONSTRAINT - 1));
    let coded_extrinsic: Vec<f64> =
        coded_post.iter().zip(coded_llrs).map(|(&post, &input)| post - input).collect();

    SisoOutput { info_bits, info_llrs, coded_extrinsic }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::encode;
    use crate::viterbi;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn to_llrs(coded: &[bool], confidence: f64) -> Vec<f64> {
        coded.iter().map(|&b| if b { -confidence } else { confidence }).collect()
    }

    #[test]
    fn matches_viterbi_on_clean_input() {
        let mut rng = StdRng::seed_from_u64(961);
        let bits: Vec<bool> = (0..150).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        let out = siso_decode(&to_llrs(&coded, 4.0));
        assert_eq!(out.info_bits, bits);
        assert_eq!(out.info_bits, viterbi::decode(&coded));
    }

    #[test]
    fn info_llr_signs_match_bits() {
        let mut rng = StdRng::seed_from_u64(962);
        let bits: Vec<bool> = (0..100).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        let out = siso_decode(&to_llrs(&coded, 3.0));
        for (l, &b) in out.info_llrs.iter().zip(&bits) {
            assert_eq!(*l < 0.0, b);
            assert!(l.abs() > 0.5, "confident input ⇒ confident output");
        }
    }

    #[test]
    fn extrinsic_rescues_erased_coded_bits() {
        // Erase (zero-LLR) some coded bits: the code structure must give
        // them nonzero extrinsic information with the correct sign.
        let mut rng = StdRng::seed_from_u64(963);
        let bits: Vec<bool> = (0..80).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        let mut llrs = to_llrs(&coded, 4.0);
        let erased: Vec<usize> = (5..llrs.len()).step_by(17).collect();
        for &k in &erased {
            llrs[k] = 0.0;
        }
        let out = siso_decode(&llrs);
        assert_eq!(out.info_bits, bits, "erasures must be recovered");
        for &k in &erased {
            let ext = out.coded_extrinsic[k];
            assert!(
                (ext < 0.0) == coded[k],
                "extrinsic sign at erased position {k}: {ext} vs bit {}",
                coded[k]
            );
            assert!(ext.abs() > 0.5, "extrinsic at {k} should be informative: {ext}");
        }
    }

    #[test]
    fn extrinsic_excludes_input() {
        // For a systematic-ish check: extrinsic of a position must not just
        // echo its own input — set ONE coded bit's input wrong but weak and
        // everything else strong; extrinsic must correct it.
        let mut rng = StdRng::seed_from_u64(964);
        let bits: Vec<bool> = (0..60).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        let mut llrs = to_llrs(&coded, 5.0);
        llrs[20] = if coded[20] { 0.4 } else { -0.4 }; // weakly wrong
        let out = siso_decode(&llrs);
        let ext = out.coded_extrinsic[20];
        assert!((ext < 0.0) == coded[20], "extrinsic must overrule the weak wrong input: {ext}");
    }

    #[test]
    fn noisy_channel_bcjr_at_least_viterbi() {
        // On an AWGN-ish LLR channel, max-log BCJR hard decisions equal
        // soft Viterbi (both max-log sequence/symbol detectors are close);
        // check bit error counts are comparable.
        let mut rng = StdRng::seed_from_u64(965);
        let mut bcjr_errs = 0usize;
        let mut vit_errs = 0usize;
        let sigma = 0.95;
        for _ in 0..40 {
            let bits: Vec<bool> = (0..100).map(|_| rng.gen_bool(0.5)).collect();
            let coded = encode(&bits);
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    let tx = if b { -1.0 } else { 1.0 };
                    let r = tx + sigma * crate::tests_helper_gaussian(&mut rng);
                    2.0 * r / (sigma * sigma)
                })
                .collect();
            bcjr_errs +=
                siso_decode(&llrs).info_bits.iter().zip(&bits).filter(|(a, b)| a != b).count();
            vit_errs +=
                viterbi::decode_soft(&llrs).iter().zip(&bits).filter(|(a, b)| a != b).count();
        }
        let tol = 1 + vit_errs / 5;
        assert!(
            bcjr_errs <= vit_errs + tol,
            "BCJR ({bcjr_errs}) should track soft Viterbi ({vit_errs})"
        );
    }
}
