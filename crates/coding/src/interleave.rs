//! 802.11-style per-OFDM-symbol block interleaver.
//!
//! The two-permutation interleaver of 802.11a/g/n clause 17: the first
//! permutation spreads adjacent coded bits across nonadjacent subcarriers;
//! the second rotates bits across constellation bit positions so long runs
//! of low-reliability (LSB-like) positions are broken up.

/// Interleaver for one OFDM symbol of `n_cbps` coded bits with `n_bpsc`
/// coded bits per subcarrier.
#[derive(Clone, Copy, Debug)]
pub struct Interleaver {
    /// Coded bits per OFDM symbol.
    pub n_cbps: usize,
    /// Coded bits per subcarrier (the constellation's bits/symbol).
    pub n_bpsc: usize,
}

impl Interleaver {
    /// Builds an interleaver.
    ///
    /// # Panics
    /// Panics unless `n_cbps` is a positive multiple of both 16 and
    /// `n_bpsc` (the 802.11 interleaver is defined in 16 columns).
    pub fn new(n_cbps: usize, n_bpsc: usize) -> Self {
        assert!(
            n_cbps > 0 && n_cbps.is_multiple_of(16),
            "n_cbps must be a positive multiple of 16"
        );
        assert!(n_bpsc > 0 && n_cbps.is_multiple_of(n_bpsc), "n_cbps must be a multiple of n_bpsc");
        Interleaver { n_cbps, n_bpsc }
    }

    /// Index mapping for one bit: position `k` in the input stream goes to
    /// position `j` in the transmitted stream.
    fn map_index(&self, k: usize) -> usize {
        let n = self.n_cbps;
        let s = (self.n_bpsc / 2).max(1);
        // First permutation (writes row-wise, reads column-wise, 16 cols).
        let i = (n / 16) * (k % 16) + k / 16;
        // Second permutation (rotation within groups of s).
        s * (i / s) + (i + n - (16 * i / n)) % s
    }

    /// Interleaves exactly one OFDM symbol's worth of bits.
    ///
    /// # Panics
    /// Panics when `bits.len() != n_cbps`.
    pub fn interleave(&self, bits: &[bool]) -> Vec<bool> {
        assert_eq!(bits.len(), self.n_cbps);
        let mut out = vec![false; self.n_cbps];
        for (k, &b) in bits.iter().enumerate() {
            out[self.map_index(k)] = b;
        }
        out
    }

    /// Inverse of [`Interleaver::interleave`].
    pub fn deinterleave(&self, bits: &[bool]) -> Vec<bool> {
        assert_eq!(bits.len(), self.n_cbps);
        let mut out = vec![false; self.n_cbps];
        for k in 0..self.n_cbps {
            out[k] = bits[self.map_index(k)];
        }
        out
    }

    /// Interleaves a multi-symbol stream, one OFDM symbol at a time.
    ///
    /// # Panics
    /// Panics unless the length is a multiple of `n_cbps`.
    pub fn interleave_stream(&self, bits: &[bool]) -> Vec<bool> {
        let mut out = Vec::new();
        self.interleave_stream_into(bits, &mut out);
        out
    }

    /// [`Interleaver::interleave_stream`] into a reused output buffer
    /// (cleared first): the scatter writes directly into `out`, so a warm
    /// buffer makes the call allocation-free.
    pub fn interleave_stream_into(&self, bits: &[bool], out: &mut Vec<bool>) {
        assert_eq!(bits.len() % self.n_cbps, 0);
        out.clear();
        out.resize(bits.len(), false);
        for (chunk_in, chunk_out) in bits.chunks(self.n_cbps).zip(out.chunks_mut(self.n_cbps)) {
            for (k, &b) in chunk_in.iter().enumerate() {
                chunk_out[self.map_index(k)] = b;
            }
        }
    }

    /// Inverse of [`Interleaver::interleave_stream`].
    pub fn deinterleave_stream(&self, bits: &[bool]) -> Vec<bool> {
        let mut out = Vec::new();
        self.deinterleave_stream_into(bits, &mut out);
        out
    }

    /// [`Interleaver::deinterleave_stream`] into a reused output buffer
    /// (cleared first).
    pub fn deinterleave_stream_into(&self, bits: &[bool], out: &mut Vec<bool>) {
        assert_eq!(bits.len() % self.n_cbps, 0);
        out.clear();
        for chunk in bits.chunks(self.n_cbps) {
            out.extend((0..self.n_cbps).map(|k| chunk[self.map_index(k)]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn configs() -> Vec<Interleaver> {
        // 48 data subcarriers x Q bits for Q = 2,4,6,8.
        vec![
            Interleaver::new(96, 2),
            Interleaver::new(192, 4),
            Interleaver::new(288, 6),
            Interleaver::new(384, 8),
        ]
    }

    #[test]
    fn mapping_is_a_permutation() {
        for il in configs() {
            let mut seen = vec![false; il.n_cbps];
            for k in 0..il.n_cbps {
                let j = il.map_index(k);
                assert!(j < il.n_cbps);
                assert!(!seen[j], "collision at {j} ({:?})", il);
                seen[j] = true;
            }
        }
    }

    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(61);
        for il in configs() {
            let bits: Vec<bool> = (0..il.n_cbps).map(|_| rng.gen_bool(0.5)).collect();
            assert_eq!(il.deinterleave(&il.interleave(&bits)), bits);
        }
    }

    #[test]
    fn stream_roundtrip() {
        let mut rng = StdRng::seed_from_u64(62);
        let il = Interleaver::new(192, 4);
        let bits: Vec<bool> = (0..192 * 5).map(|_| rng.gen_bool(0.5)).collect();
        assert_eq!(il.deinterleave_stream(&il.interleave_stream(&bits)), bits);
    }

    #[test]
    fn adjacent_bits_separated() {
        // The defining property: adjacent coded bits end up far apart
        // (at least n/16 positions for the first permutation).
        let il = Interleaver::new(192, 4);
        for k in 0..il.n_cbps - 1 {
            let a = il.map_index(k) as isize;
            let b = il.map_index(k + 1) as isize;
            assert!((a - b).abs() >= (192 / 16) as isize - 2, "bits {k},{} map to {a},{b}", k + 1);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn bad_size_panics() {
        Interleaver::new(100, 4);
    }
}

impl Interleaver {
    /// Inverse permutation over arbitrary per-position values (e.g. LLRs):
    /// element at transmitted position `map_index(k)` returns to position
    /// `k`.
    pub fn deinterleave_values<T: Copy + Default>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.n_cbps);
        let mut out = vec![T::default(); self.n_cbps];
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = values[self.map_index(k)];
        }
        out
    }

    /// Stream version of [`Interleaver::deinterleave_values`].
    pub fn deinterleave_values_stream<T: Copy + Default>(&self, values: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.deinterleave_values_stream_into(values, &mut out);
        out
    }

    /// [`Interleaver::deinterleave_values_stream`] into a reused output
    /// buffer (cleared first).
    pub fn deinterleave_values_stream_into<T: Copy + Default>(
        &self,
        values: &[T],
        out: &mut Vec<T>,
    ) {
        assert_eq!(values.len() % self.n_cbps, 0);
        out.clear();
        for chunk in values.chunks(self.n_cbps) {
            out.extend((0..self.n_cbps).map(|k| chunk[self.map_index(k)]));
        }
    }
}

#[cfg(test)]
mod value_tests {
    use super::*;

    #[test]
    fn value_deinterleave_matches_bool_path() {
        let il = Interleaver::new(192, 4);
        let bits: Vec<bool> = (0..192).map(|k| (k * 29) % 3 == 0).collect();
        let tx = il.interleave(&bits);
        let vals: Vec<u32> = tx.iter().map(|&b| b as u32).collect();
        let back_bits = il.deinterleave(&tx);
        let back_vals = il.deinterleave_values(&vals);
        for (b, v) in back_bits.iter().zip(&back_vals) {
            assert_eq!(*b as u32, *v);
        }
    }

    #[test]
    fn float_values_roundtrip_positionally() {
        let il = Interleaver::new(96, 2);
        // Tag every position with its own value, interleave positions by
        // scattering as the transmitter would, then recover.
        let tagged: Vec<f64> = (0..96).map(|k| k as f64).collect();
        let mut tx = vec![0.0f64; 96];
        // Build the transmitted order using the bool API on unit bits.
        for (k, &v) in tagged.iter().enumerate() {
            let mut probe = vec![false; 96];
            probe[k] = true;
            let mapped = il.interleave(&probe);
            let pos = mapped.iter().position(|&b| b).unwrap();
            tx[pos] = v;
        }
        assert_eq!(il.deinterleave_values(&tx), tagged);
    }
}
