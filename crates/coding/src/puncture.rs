//! Puncturing for higher code rates.
//!
//! The 802.11 puncturing patterns derive rate-2/3 and rate-3/4 codes from
//! the mother rate-1/2 code by deleting coded bits in a fixed periodic
//! pattern; the receiver reinserts erasures before Viterbi decoding. The
//! paper's experiments use rate 1/2 throughout, but rate adaptation
//! (emulated in `gs-sim`) benefits from the standard rate set.

use crate::viterbi::CodedBit;

/// Code rate of the (punctured) convolutional code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Mother code, no puncturing.
    Half,
    /// Rate 2/3 (pattern period 4: keep 1 of every 4th bit pair's second bit).
    TwoThirds,
    /// Rate 3/4 (pattern period 6).
    ThreeQuarters,
}

impl CodeRate {
    /// Numerator of the rate fraction.
    pub const fn numerator(self) -> usize {
        match self {
            CodeRate::Half => 1,
            CodeRate::TwoThirds => 2,
            CodeRate::ThreeQuarters => 3,
        }
    }

    /// Denominator of the rate fraction.
    pub const fn denominator(self) -> usize {
        match self {
            CodeRate::Half => 2,
            CodeRate::TwoThirds => 3,
            CodeRate::ThreeQuarters => 4,
        }
    }

    /// The rate as a float.
    pub fn as_f64(self) -> f64 {
        self.numerator() as f64 / self.denominator() as f64
    }

    /// 802.11 puncture pattern over the rate-1/2 output stream: `true` =
    /// transmit, `false` = puncture. The pattern repeats.
    pub fn keep_pattern(self) -> &'static [bool] {
        self.pattern()
    }

    fn pattern(self) -> &'static [bool] {
        match self {
            CodeRate::Half => &[true],
            // A: 1 1, B: 1 0  (interleaved as A0 B0 A1 B1): keep, keep, keep, drop
            CodeRate::TwoThirds => &[true, true, true, false],
            // A: 1 1 0, B: 1 0 1: keep keep | keep drop | drop keep
            CodeRate::ThreeQuarters => &[true, true, true, false, false, true],
        }
    }
}

/// Removes punctured positions from a rate-1/2 coded stream.
pub fn puncture(coded: &[bool], rate: CodeRate) -> Vec<bool> {
    let mut out = Vec::new();
    puncture_into(coded, rate, &mut out);
    out
}

/// [`puncture`] into a reused output buffer (cleared first).
pub fn puncture_into(coded: &[bool], rate: CodeRate, out: &mut Vec<bool>) {
    let pat = rate.pattern();
    out.clear();
    out.extend(coded.iter().enumerate().filter(|(k, _)| pat[k % pat.len()]).map(|(_, &b)| b));
}

/// Reinserts erasures at punctured positions, restoring the rate-1/2 stream
/// length (`mother_len` = the pre-puncturing length).
pub fn depuncture(received: &[bool], rate: CodeRate, mother_len: usize) -> Vec<CodedBit> {
    let mut out = Vec::with_capacity(mother_len);
    depuncture_into(received, rate, mother_len, &mut out);
    out
}

/// [`depuncture`] into a reused output buffer (cleared first).
pub fn depuncture_into(
    received: &[bool],
    rate: CodeRate,
    mother_len: usize,
    out: &mut Vec<CodedBit>,
) {
    let pat = rate.pattern();
    out.clear();
    let mut it = received.iter();
    for k in 0..mother_len {
        if pat[k % pat.len()] {
            let &b = it.next().expect("received stream shorter than pattern implies");
            out.push(CodedBit::from_bool(b));
        } else {
            out.push(CodedBit::Erased);
        }
    }
    assert!(it.next().is_none(), "received stream longer than pattern implies");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::encode;
    use crate::viterbi::decode_with_erasures;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rate_fractions() {
        assert!((CodeRate::Half.as_f64() - 0.5).abs() < 1e-12);
        assert!((CodeRate::TwoThirds.as_f64() - 2.0 / 3.0).abs() < 1e-12);
        assert!((CodeRate::ThreeQuarters.as_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn puncture_lengths_match_rate() {
        // 24 information bits -> 60 mother bits (24+6 tail, x2) ... use a
        // pattern-aligned length for exact ratios: 48 mother bits.
        let coded = vec![true; 48];
        assert_eq!(puncture(&coded, CodeRate::Half).len(), 48);
        assert_eq!(puncture(&coded, CodeRate::TwoThirds).len(), 36); // 48 * 3/4
        assert_eq!(puncture(&coded, CodeRate::ThreeQuarters).len(), 32); // 48 * 2/3
    }

    #[test]
    fn punctured_roundtrip_noiseless() {
        let mut rng = StdRng::seed_from_u64(51);
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let bits: Vec<bool> = (0..120).map(|_| rng.gen_bool(0.5)).collect();
            let mother = encode(&bits);
            let tx = puncture(&mother, rate);
            let rx = depuncture(&tx, rate, mother.len());
            assert_eq!(decode_with_erasures(&rx), bits, "{rate:?}");
        }
    }

    #[test]
    fn depuncture_restores_positions() {
        let coded: Vec<bool> = (0..24).map(|k| k % 3 == 0).collect();
        let tx = puncture(&coded, CodeRate::ThreeQuarters);
        let rx = depuncture(&tx, CodeRate::ThreeQuarters, coded.len());
        assert_eq!(rx.len(), coded.len());
        for (k, cb) in rx.iter().enumerate() {
            match cb {
                CodedBit::Erased => {}
                _ => assert_eq!(*cb, CodedBit::from_bool(coded[k]), "position {k}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "longer than pattern")]
    fn depuncture_length_mismatch_panics() {
        depuncture(&[true; 10], CodeRate::Half, 8);
    }
}

/// Reinserts zero LLRs (erasures) at punctured positions of a soft
/// (log-likelihood-ratio) stream.
pub fn depuncture_soft(received: &[f64], rate: CodeRate, mother_len: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(mother_len);
    depuncture_soft_into(received, rate, mother_len, &mut out);
    out
}

/// [`depuncture_soft`] into a reused output buffer (cleared first).
pub fn depuncture_soft_into(
    received: &[f64],
    rate: CodeRate,
    mother_len: usize,
    out: &mut Vec<f64>,
) {
    let pat = rate.pattern();
    out.clear();
    let mut it = received.iter();
    for k in 0..mother_len {
        if pat[k % pat.len()] {
            let &l = it.next().expect("received stream shorter than pattern implies");
            out.push(l);
        } else {
            out.push(0.0);
        }
    }
    assert!(it.next().is_none(), "received stream longer than pattern implies");
}

#[cfg(test)]
mod soft_tests {
    use super::*;
    use crate::conv::encode;
    use crate::viterbi::decode_soft;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn soft_punctured_roundtrip() {
        let mut rng = StdRng::seed_from_u64(405);
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let bits: Vec<bool> = (0..120).map(|_| rng.gen_bool(0.5)).collect();
            let mother = encode(&bits);
            let tx = puncture(&mother, rate);
            let llrs: Vec<f64> = tx.iter().map(|&b| if b { -3.0 } else { 3.0 }).collect();
            let rx = depuncture_soft(&llrs, rate, mother.len());
            assert_eq!(decode_soft(&rx), bits, "{rate:?}");
        }
    }
}
