//! CRC-32 (IEEE 802.3) frame check sequence.
//!
//! Frames carry a 32-bit CRC so the receiver can decide frame success —
//! the quantity behind every FER and throughput measurement in the
//! evaluation (a frame counts toward throughput only if its CRC verifies,
//! exactly like an 802.11 FCS).

const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7

/// Folds one byte into a running CRC-32 — the single implementation of
/// the polynomial math, shared by the byte-slice and bit-slice fronts.
#[inline]
fn crc_fold_byte(mut crc: u32, byte: u8) -> u32 {
    crc ^= byte as u32;
    for _ in 0..8 {
        let mask = (crc & 1).wrapping_neg();
        crc = (crc >> 1) ^ (POLY & mask);
    }
    crc
}

/// Computes the IEEE CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    !data.iter().fold(0xFFFF_FFFFu32, |crc, &byte| crc_fold_byte(crc, byte))
}

/// Computes the CRC-32 of a bit slice (bits packed LSB-first into bytes,
/// trailing partial byte zero-padded).
///
/// Packs on the fly — no heap allocation — but is bit-identical to
/// `crc32(&pack_bits(bits))`, zero padding included.
pub fn crc32_bits(bits: &[bool]) -> u32 {
    let _prof = gs_prof::scope(gs_prof::Stage::Crc);
    _prof.add_bytes(bits.len() as u64 / 8);
    let mut crc = 0xFFFF_FFFFu32;
    for chunk in bits.chunks(8) {
        let mut byte = 0u8;
        for (k, &b) in chunk.iter().enumerate() {
            if b {
                byte |= 1 << k;
            }
        }
        crc = crc_fold_byte(crc, byte);
    }
    !crc
}

/// Packs bits LSB-first into bytes (zero-padding the final byte).
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (k, &b) in bits.iter().enumerate() {
        if b {
            out[k / 8] |= 1 << (k % 8);
        }
    }
    out
}

/// Unpacks bytes into `n` bits, LSB-first.
pub fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    assert!(n <= bytes.len() * 8);
    (0..n).map(|k| bytes[k / 8] >> (k % 8) & 1 == 1).collect()
}

/// Appends a 32-bit CRC (LSB-first) to a bit payload.
pub fn append_crc(bits: &[bool]) -> Vec<bool> {
    let crc = crc32_bits(bits);
    let mut out = bits.to_vec();
    out.extend((0..32).map(|k| crc >> k & 1 == 1));
    out
}

/// Verifies and strips a trailing CRC appended by [`append_crc`]. Returns
/// the payload when the CRC matches, `None` otherwise.
pub fn check_crc(bits: &[bool]) -> Option<Vec<bool>> {
    if check_crc_ok(bits) {
        Some(bits[..bits.len() - 32].to_vec())
    } else {
        None
    }
}

/// Verifies a trailing CRC appended by [`append_crc`] without allocating
/// or copying the payload — `check_crc(bits).is_some()` in a form fit for
/// the allocation-free receive chain.
pub fn check_crc_ok(bits: &[bool]) -> bool {
    if bits.len() < 32 {
        return false;
    }
    let (payload, tail) = bits.split_at(bits.len() - 32);
    let got = tail.iter().enumerate().fold(0u32, |acc, (k, &b)| acc | ((b as u32) << k));
    got == crc32_bits(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The canonical check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bits: Vec<bool> = (0..45).map(|k| k % 3 == 1).collect();
        assert_eq!(unpack_bits(&pack_bits(&bits), 45), bits);
    }

    #[test]
    fn append_check_roundtrip() {
        let bits: Vec<bool> = (0..100).map(|k| (k * k) % 5 == 0).collect();
        let framed = append_crc(&bits);
        assert_eq!(framed.len(), 132);
        assert_eq!(check_crc(&framed), Some(bits));
    }

    #[test]
    fn detects_single_bit_error() {
        let bits: Vec<bool> = (0..100).map(|k| k % 2 == 0).collect();
        for pos in [0usize, 31, 50, 99, 100, 131] {
            let mut framed = append_crc(&bits);
            framed[pos] = !framed[pos];
            assert_eq!(check_crc(&framed), None, "error at {pos} undetected");
        }
    }

    #[test]
    fn detects_burst_errors() {
        let bits: Vec<bool> = (0..200).map(|k| k % 7 < 3).collect();
        let mut framed = append_crc(&bits);
        for b in framed[40..72].iter_mut() {
            *b = !*b;
        }
        assert_eq!(check_crc(&framed), None);
    }

    #[test]
    fn short_input_rejected() {
        assert_eq!(check_crc(&[true; 10]), None);
    }
}
