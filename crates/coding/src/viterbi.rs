//! Viterbi decoding for the K=7 rate-1/2 code.
//!
//! Hard-decision decoding over Hamming metrics plus an erasure-aware variant
//! used after depuncturing. The trellis is the 64-state one defined in
//! [`crate::conv`]; decoding assumes the encoder appended the 6 zero tail
//! bits (terminated trellis).

use crate::conv::{branch_output, next_state, CONSTRAINT, NUM_STATES};

/// A received coded bit: a hard decision or an erasure (from depuncturing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodedBit {
    /// Received as 0.
    Zero,
    /// Received as 1.
    One,
    /// Punctured away at the transmitter; contributes no metric.
    Erased,
}

impl CodedBit {
    /// Converts a plain bool.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            CodedBit::One
        } else {
            CodedBit::Zero
        }
    }

    /// Hamming cost of hypothesizing transmitted bit `tx`.
    #[inline]
    fn cost(self, tx: bool) -> u32 {
        match self {
            CodedBit::Erased => 0,
            CodedBit::Zero => tx as u32,
            CodedBit::One => !tx as u32,
        }
    }
}

/// Decodes a terminated, rate-1/2 coded stream of hard bits.
///
/// `coded.len()` must be even and at least `2·(K−1)`; returns the
/// `coded.len()/2 − 6` information bits.
pub fn decode(coded: &[bool]) -> Vec<bool> {
    let symbols: Vec<CodedBit> = coded.iter().map(|&b| CodedBit::from_bool(b)).collect();
    decode_with_erasures(&symbols)
}

/// Branch outputs for every (state, input), packed as `o0 | o1 << 1`.
///
/// Precomputing the table once per decode keeps the add-compare-select
/// inner loop free of the per-transition parity computations (two popcounts
/// per branch otherwise — the dominant cost of the frame receive chain).
fn output_table() -> [u8; 2 * NUM_STATES] {
    let mut table = [0u8; 2 * NUM_STATES];
    for state in 0..NUM_STATES {
        for input in [false, true] {
            let (o0, o1) = branch_output(state, input);
            table[(state << 1) | input as usize] = (o0 as u8) | ((o1 as u8) << 1);
        }
    }
    table
}

/// Reusable trellis scratch for the Viterbi decoders: hard/soft path
/// metrics plus the flat survivor slab. Hold one per receiver and pass it
/// to [`decode_with_erasures_into`]/[`decode_soft_into`] — after the first
/// frame of a given length, decoding performs zero heap allocations.
#[derive(Clone, Debug, Default)]
pub struct ViterbiWorkspace {
    metric_u: Vec<u32>,
    next_u: Vec<u32>,
    metric_f: Vec<f64>,
    next_f: Vec<f64>,
    survivors: Vec<u8>,
}

impl ViterbiWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Decodes a terminated, rate-1/2 coded stream that may contain erasures.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_with_erasures(coded: &[CodedBit]) -> Vec<bool> {
    let mut ws = ViterbiWorkspace::new();
    let mut out = Vec::new();
    decode_with_erasures_into(coded, &mut ws, &mut out);
    out
}

/// [`decode_with_erasures`] with the trellis state and the output buffer
/// reused in place — bit-identical output, zero heap allocations once the
/// workspace has warmed up to the stream length.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_with_erasures_into(
    coded: &[CodedBit],
    ws: &mut ViterbiWorkspace,
    out: &mut Vec<bool>,
) {
    assert_eq!(coded.len() % 2, 0, "rate-1/2 stream must have even length");
    let steps = coded.len() / 2;
    assert!(steps >= CONSTRAINT - 1, "stream shorter than the termination tail");
    let outputs = output_table();

    const INF: u32 = u32::MAX / 2;
    ws.metric_u.clear();
    ws.metric_u.resize(NUM_STATES, INF);
    ws.metric_u[0] = 0;
    // survivors[t*NUM_STATES + state] = predecessor input bit packed with
    // predecessor state: bit 7 = input, low 6 bits = previous state. One
    // flat slab for the whole trellis — no per-step allocation.
    ws.survivors.clear();
    ws.survivors.resize(steps * NUM_STATES, 0);

    ws.next_u.clear();
    ws.next_u.resize(NUM_STATES, INF);
    for t in 0..steps {
        let rx0 = coded[2 * t];
        let rx1 = coded[2 * t + 1];
        // Branch metric for each packed output pair against this step's
        // received pair: 4 values cover all 128 transitions.
        let branch_cost = [
            rx0.cost(false) + rx1.cost(false),
            rx0.cost(true) + rx1.cost(false),
            rx0.cost(false) + rx1.cost(true),
            rx0.cost(true) + rx1.cost(true),
        ];
        ws.next_u.iter_mut().for_each(|m| *m = INF);
        let surv = &mut ws.survivors[t * NUM_STATES..(t + 1) * NUM_STATES];
        for state in 0..NUM_STATES {
            let m = ws.metric_u[state];
            if m >= INF {
                continue;
            }
            for input in [false, true] {
                let out = outputs[(state << 1) | input as usize];
                let cost = m + branch_cost[out as usize];
                let ns = next_state(state, input);
                if cost < ws.next_u[ns] {
                    ws.next_u[ns] = cost;
                    surv[ns] = ((input as u8) << 7) | state as u8;
                }
            }
        }
        std::mem::swap(&mut ws.metric_u, &mut ws.next_u);
    }

    // Terminated trellis: trace back from state 0, writing each step's bit
    // straight to its final position.
    let mut state = 0usize;
    out.clear();
    out.resize(steps, false);
    for t in (0..steps).rev() {
        let s = ws.survivors[t * NUM_STATES + state];
        out[t] = s & 0x80 != 0;
        state = (s & 0x3f) as usize;
    }
    out.truncate(steps - (CONSTRAINT - 1)); // drop tail bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::encode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(rng: &mut StdRng, n: usize) -> Vec<bool> {
        (0..n).map(|_| rng.gen_bool(0.5)).collect()
    }

    #[test]
    fn noiseless_roundtrip() {
        let mut rng = StdRng::seed_from_u64(41);
        for len in [1usize, 2, 7, 50, 333] {
            let bits = random_bits(&mut rng, len);
            let coded = encode(&bits);
            assert_eq!(decode(&coded), bits, "len {len}");
        }
    }

    #[test]
    fn corrects_isolated_bit_errors() {
        let mut rng = StdRng::seed_from_u64(42);
        let bits = random_bits(&mut rng, 120);
        let mut coded = encode(&bits);
        // Flip well-separated bits: free distance 10 means isolated single
        // errors are always correctable.
        for pos in [5usize, 60, 130, 200] {
            coded[pos] = !coded[pos];
        }
        assert_eq!(decode(&coded), bits);
    }

    #[test]
    fn corrects_short_burst() {
        let mut rng = StdRng::seed_from_u64(43);
        let bits = random_bits(&mut rng, 200);
        let mut coded = encode(&bits);
        // A 2-bit burst within one trellis step (still within d_free/2).
        coded[100] = !coded[100];
        coded[101] = !coded[101];
        assert_eq!(decode(&coded), bits);
    }

    #[test]
    fn handles_erasures() {
        let mut rng = StdRng::seed_from_u64(44);
        let bits = random_bits(&mut rng, 100);
        let coded = encode(&bits);
        let mut symbols: Vec<CodedBit> = coded.iter().map(|&b| CodedBit::from_bool(b)).collect();
        // Erase every 6th symbol (a 1/6 erasure rate is far below capacity
        // for this code).
        for k in (0..symbols.len()).step_by(6) {
            symbols[k] = CodedBit::Erased;
        }
        assert_eq!(decode_with_erasures(&symbols), bits);
    }

    #[test]
    fn high_noise_fails_gracefully() {
        // Under 30% BER the decoder cannot win, but it must return the right
        // number of bits without panicking.
        let mut rng = StdRng::seed_from_u64(45);
        let bits = random_bits(&mut rng, 64);
        let mut coded = encode(&bits);
        for b in coded.iter_mut() {
            if rng.gen_bool(0.3) {
                *b = !*b;
            }
        }
        assert_eq!(decode(&coded).len(), 64);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_panics() {
        decode(&[true; 15]);
    }
}

/// Decodes a terminated rate-1/2 stream from per-bit log-likelihood
/// ratios (positive = bit 0 more likely, e.g. from a soft MIMO detector).
/// Punctured positions should carry LLR `0.0` (no information).
///
/// The branch metric for hypothesizing transmitted bit `b` against LLR `L`
/// is `|L|` when the hypothesis contradicts the LLR's hard decision and
/// `0` otherwise — the max-log-optimal soft Viterbi metric.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_soft(llrs: &[f64]) -> Vec<bool> {
    let mut ws = ViterbiWorkspace::new();
    let mut out = Vec::new();
    decode_soft_into(llrs, &mut ws, &mut out);
    out
}

/// [`decode_soft`] with the trellis state and the output buffer reused in
/// place — bit-identical output, zero heap allocations once the workspace
/// has warmed up to the stream length.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_soft_into(llrs: &[f64], ws: &mut ViterbiWorkspace, out: &mut Vec<bool>) {
    assert_eq!(llrs.len() % 2, 0, "rate-1/2 stream must have even length");
    let steps = llrs.len() / 2;
    assert!(steps >= CONSTRAINT - 1, "stream shorter than the termination tail");

    #[inline]
    fn cost(llr: f64, tx: bool) -> f64 {
        // Positive LLR favours bit 0: penalize a `1` hypothesis by +L, a
        // `0` hypothesis by −L when L is negative.
        if tx {
            llr.max(0.0)
        } else {
            (-llr).max(0.0)
        }
    }

    let outputs = output_table();
    const INF: f64 = f64::INFINITY;
    ws.metric_f.clear();
    ws.metric_f.resize(NUM_STATES, INF);
    ws.metric_f[0] = 0.0;
    // Flat survivor slab, as in `decode_with_erasures`.
    ws.survivors.clear();
    ws.survivors.resize(steps * NUM_STATES, 0);
    ws.next_f.clear();
    ws.next_f.resize(NUM_STATES, INF);

    for t in 0..steps {
        let l0 = llrs[2 * t];
        let l1 = llrs[2 * t + 1];
        let branch_cost = [
            cost(l0, false) + cost(l1, false),
            cost(l0, true) + cost(l1, false),
            cost(l0, false) + cost(l1, true),
            cost(l0, true) + cost(l1, true),
        ];
        ws.next_f.iter_mut().for_each(|m| *m = INF);
        let surv = &mut ws.survivors[t * NUM_STATES..(t + 1) * NUM_STATES];
        for state in 0..NUM_STATES {
            let m = ws.metric_f[state];
            if !m.is_finite() {
                continue;
            }
            for input in [false, true] {
                let out = outputs[(state << 1) | input as usize];
                let c = m + branch_cost[out as usize];
                let ns = next_state(state, input);
                if c < ws.next_f[ns] {
                    ws.next_f[ns] = c;
                    surv[ns] = ((input as u8) << 7) | state as u8;
                }
            }
        }
        std::mem::swap(&mut ws.metric_f, &mut ws.next_f);
    }

    let mut state = 0usize;
    out.clear();
    out.resize(steps, false);
    for t in (0..steps).rev() {
        let s = ws.survivors[t * NUM_STATES + state];
        out[t] = s & 0x80 != 0;
        state = (s & 0x3f) as usize;
    }
    out.truncate(steps - (CONSTRAINT - 1));
}

#[cfg(test)]
mod soft_tests {
    use super::*;
    use crate::conv::encode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn to_llrs(coded: &[bool], confidence: f64) -> Vec<f64> {
        coded.iter().map(|&b| if b { -confidence } else { confidence }).collect()
    }

    #[test]
    fn soft_matches_hard_on_clean_input() {
        let mut rng = StdRng::seed_from_u64(401);
        let bits: Vec<bool> = (0..150).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        assert_eq!(decode_soft(&to_llrs(&coded, 4.0)), bits);
    }

    #[test]
    fn soft_uses_reliability_to_beat_hard() {
        // Two coded bits are wrong, but their LLRs are weak while the
        // correct bits are strong — soft decoding must recover where a
        // hard decoder sees genuine errors.
        let mut rng = StdRng::seed_from_u64(402);
        let bits: Vec<bool> = (0..80).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        let mut llrs = to_llrs(&coded, 5.0);
        // Flip the sign of a burst of bits but with tiny magnitude.
        for k in 40..46 {
            llrs[k] = -llrs[k].signum() * 0.1;
        }
        assert_eq!(decode_soft(&llrs), bits);
    }

    #[test]
    fn zero_llrs_are_erasures() {
        let mut rng = StdRng::seed_from_u64(403);
        let bits: Vec<bool> = (0..100).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        let mut llrs = to_llrs(&coded, 3.0);
        for k in (0..llrs.len()).step_by(6) {
            llrs[k] = 0.0;
        }
        assert_eq!(decode_soft(&llrs), bits);
    }

    #[test]
    fn gaussian_channel_soft_beats_hard() {
        // BPSK over AWGN at an SNR where hard decisions fail often: soft
        // decoding must deliver strictly fewer bit errors over many frames.
        let mut rng = StdRng::seed_from_u64(404);
        let mut hard_errs = 0usize;
        let mut soft_errs = 0usize;
        let sigma = 0.9;
        for _ in 0..60 {
            let bits: Vec<bool> = (0..120).map(|_| rng.gen_bool(0.5)).collect();
            let coded = encode(&bits);
            // BPSK: 0 -> +1, 1 -> -1, AWGN, LLR = 2r/sigma^2.
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    let tx = if b { -1.0 } else { 1.0 };
                    let r = tx + sigma * crate::tests_helper_gaussian(&mut rng);
                    2.0 * r / (sigma * sigma)
                })
                .collect();
            let hard: Vec<bool> = llrs.iter().map(|&l| l < 0.0).collect();
            hard_errs += decode(&hard).iter().zip(&bits).filter(|(a, b)| a != b).count();
            soft_errs += decode_soft(&llrs).iter().zip(&bits).filter(|(a, b)| a != b).count();
        }
        assert!(soft_errs < hard_errs, "soft ({soft_errs}) must beat hard ({hard_errs}) on AWGN");
    }
}
