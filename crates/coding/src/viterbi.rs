//! Viterbi decoding for the K=7 rate-1/2 code.
//!
//! Hard-decision decoding over Hamming metrics plus an erasure-aware variant
//! used after depuncturing. The trellis is the 64-state one defined in
//! [`crate::conv`]; decoding assumes the encoder appended the 6 zero tail
//! bits (terminated trellis).

use crate::conv::{CONSTRAINT, NUM_STATES, OUTPUT_TABLE};

/// A received coded bit: a hard decision or an erasure (from depuncturing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodedBit {
    /// Received as 0.
    Zero,
    /// Received as 1.
    One,
    /// Punctured away at the transmitter; contributes no metric.
    Erased,
}

impl CodedBit {
    /// Converts a plain bool.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            CodedBit::One
        } else {
            CodedBit::Zero
        }
    }

    /// Hamming cost of hypothesizing transmitted bit `tx`.
    #[inline]
    fn cost(self, tx: bool) -> u32 {
        match self {
            CodedBit::Erased => 0,
            CodedBit::Zero => tx as u32,
            CodedBit::One => !tx as u32,
        }
    }
}

/// Decodes a terminated, rate-1/2 coded stream of hard bits.
///
/// `coded.len()` must be even and at least `2·(K−1)`; returns the
/// `coded.len()/2 − 6` information bits.
pub fn decode(coded: &[bool]) -> Vec<bool> {
    let symbols: Vec<CodedBit> = coded.iter().map(|&b| CodedBit::from_bool(b)).collect();
    decode_with_erasures(&symbols)
}

/// Half the butterfly count: destinations `k` and `k + HALF` share the
/// predecessor pair `{2k, 2k+1}`.
const HALF: usize = NUM_STATES / 2;

/// Per-butterfly branch-output bits, hoisted from [`OUTPUT_TABLE`] at
/// compile time so the add-compare-select loop is pure contiguous
/// arithmetic — no per-transition table gathers, which is what lets the
/// compiler vectorize it.
///
/// `BFLY[input][src]` with `input ∈ {0, 1}` (the destination's new bit)
/// and `src ∈ {0, 1}` (lower/upper predecessor `2k`/`2k+1`) holds, per
/// butterfly index `k`, the two output bits as 0/1 words: `.0[k]` = first
/// generator bit, `.1[k]` = second.
struct ButterflyBits {
    o0: [u32; HALF],
    o1: [u32; HALF],
}

const fn butterfly_bits(src_odd: usize, input: usize) -> ButterflyBits {
    let mut b = ButterflyBits { o0: [0; HALF], o1: [0; HALF] };
    let mut k = 0;
    while k < HALF {
        let state = 2 * k + src_odd;
        let packed = OUTPUT_TABLE[(state << 1) | input];
        b.o0[k] = (packed & 1) as u32;
        b.o1[k] = ((packed >> 1) & 1) as u32;
        k += 1;
    }
    b
}

/// Transition bits for (lower predecessor, input 0) … (upper, input 1).
const B_LO_IN0: ButterflyBits = butterfly_bits(0, 0);
const B_HI_IN0: ButterflyBits = butterfly_bits(1, 0);
const B_LO_IN1: ButterflyBits = butterfly_bits(0, 1);
const B_HI_IN1: ButterflyBits = butterfly_bits(1, 1);

/// Reusable trellis scratch for the Viterbi decoders: hard/soft path
/// metrics plus the flat survivor slab. Hold one per receiver and pass it
/// to [`decode_with_erasures_into`]/[`decode_soft_into`] — after the first
/// frame of a given length, decoding performs zero heap allocations.
#[derive(Clone, Debug, Default)]
pub struct ViterbiWorkspace {
    metric_u: Vec<u32>,
    next_u: Vec<u32>,
    metric_f: Vec<f64>,
    next_f: Vec<f64>,
    survivors: Vec<u8>,
}

impl ViterbiWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Decodes a terminated, rate-1/2 coded stream that may contain erasures.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_with_erasures(coded: &[CodedBit]) -> Vec<bool> {
    let mut ws = ViterbiWorkspace::new();
    let mut out = Vec::new();
    decode_with_erasures_into(coded, &mut ws, &mut out);
    out
}

/// [`decode_with_erasures`] with the trellis state and the output buffer
/// reused in place — bit-identical output, zero heap allocations once the
/// workspace has warmed up to the stream length.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_with_erasures_into(
    coded: &[CodedBit],
    ws: &mut ViterbiWorkspace,
    out: &mut Vec<bool>,
) {
    assert_eq!(coded.len() % 2, 0, "rate-1/2 stream must have even length");
    let steps = coded.len() / 2;
    assert!(steps >= CONSTRAINT - 1, "stream shorter than the termination tail");

    const INF: u32 = u32::MAX / 2;
    ws.metric_u.clear();
    ws.metric_u.resize(NUM_STATES, INF);
    ws.metric_u[0] = 0;
    // survivors[t*NUM_STATES + state] = predecessor input bit packed with
    // predecessor state: bit 7 = input, low 6 bits = previous state. One
    // flat slab for the whole trellis — no per-step allocation.
    ws.survivors.clear();
    ws.survivors.resize(steps * NUM_STATES, 0);

    ws.next_u.clear();
    ws.next_u.resize(NUM_STATES, 0);
    for t in 0..steps {
        let rx0 = coded[2 * t];
        let rx1 = coded[2 * t + 1];
        // Branch metric components: a transition emitting bits (o0, o1)
        // costs `c0f + o0·d0 + c1f + o1·d1` — pure 0/1-mask arithmetic,
        // identical to the four-entry table the scalar loop used.
        let c0f = rx0.cost(false);
        let c1f = rx1.cost(false);
        let d0 = rx0.cost(true).wrapping_sub(c0f);
        let d1 = rx1.cost(true).wrapping_sub(c1f);
        let base = c0f + c1f;
        let surv = &mut ws.survivors[t * NUM_STATES..(t + 1) * NUM_STATES];
        let (surv_in0, surv_in1) = surv.split_at_mut(HALF);
        let (next_in0, next_in1) = ws.next_u.split_at_mut(HALF);
        // Destination-major butterflies: dest k (new bit 0) and k + HALF
        // (new bit 1) both choose between predecessors 2k and 2k+1 —
        // branchless, every destination written exactly once. Unreachable
        // predecessors carry metrics ≥ INF and lose every comparison that
        // matters (real path metrics are bounded by 2·steps), so outputs
        // match the old skip-INF source-major loop bit for bit, including
        // its tie-breaking (the lower predecessor was enumerated first and
        // only a strictly better cost replaced it).
        for k in 0..HALF {
            let m0 = ws.metric_u[2 * k];
            let m1 = ws.metric_u[2 * k + 1];
            let bc_lo0 = base
                .wrapping_add(B_LO_IN0.o0[k].wrapping_mul(d0))
                .wrapping_add(B_LO_IN0.o1[k].wrapping_mul(d1));
            let bc_hi0 = base
                .wrapping_add(B_HI_IN0.o0[k].wrapping_mul(d0))
                .wrapping_add(B_HI_IN0.o1[k].wrapping_mul(d1));
            let c0 = m0 + bc_lo0;
            let c1 = m1 + bc_hi0;
            let take_hi = (c1 < c0) as u32;
            next_in0[k] = if c1 < c0 { c1 } else { c0 };
            surv_in0[k] = (2 * k) as u8 + take_hi as u8;

            let bc_lo1 = base
                .wrapping_add(B_LO_IN1.o0[k].wrapping_mul(d0))
                .wrapping_add(B_LO_IN1.o1[k].wrapping_mul(d1));
            let bc_hi1 = base
                .wrapping_add(B_HI_IN1.o0[k].wrapping_mul(d0))
                .wrapping_add(B_HI_IN1.o1[k].wrapping_mul(d1));
            let c0 = m0 + bc_lo1;
            let c1 = m1 + bc_hi1;
            let take_hi = (c1 < c0) as u32;
            next_in1[k] = if c1 < c0 { c1 } else { c0 };
            surv_in1[k] = 0x80 | ((2 * k) as u8 + take_hi as u8);
        }
        std::mem::swap(&mut ws.metric_u, &mut ws.next_u);
    }

    // Terminated trellis: trace back from state 0, writing each step's bit
    // straight to its final position.
    let mut state = 0usize;
    out.clear();
    out.resize(steps, false);
    for t in (0..steps).rev() {
        let s = ws.survivors[t * NUM_STATES + state];
        out[t] = s & 0x80 != 0;
        state = (s & 0x3f) as usize;
    }
    out.truncate(steps - (CONSTRAINT - 1)); // drop tail bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::encode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(rng: &mut StdRng, n: usize) -> Vec<bool> {
        (0..n).map(|_| rng.gen_bool(0.5)).collect()
    }

    #[test]
    fn noiseless_roundtrip() {
        let mut rng = StdRng::seed_from_u64(41);
        for len in [1usize, 2, 7, 50, 333] {
            let bits = random_bits(&mut rng, len);
            let coded = encode(&bits);
            assert_eq!(decode(&coded), bits, "len {len}");
        }
    }

    #[test]
    fn corrects_isolated_bit_errors() {
        let mut rng = StdRng::seed_from_u64(42);
        let bits = random_bits(&mut rng, 120);
        let mut coded = encode(&bits);
        // Flip well-separated bits: free distance 10 means isolated single
        // errors are always correctable.
        for pos in [5usize, 60, 130, 200] {
            coded[pos] = !coded[pos];
        }
        assert_eq!(decode(&coded), bits);
    }

    #[test]
    fn corrects_short_burst() {
        let mut rng = StdRng::seed_from_u64(43);
        let bits = random_bits(&mut rng, 200);
        let mut coded = encode(&bits);
        // A 2-bit burst within one trellis step (still within d_free/2).
        coded[100] = !coded[100];
        coded[101] = !coded[101];
        assert_eq!(decode(&coded), bits);
    }

    #[test]
    fn handles_erasures() {
        let mut rng = StdRng::seed_from_u64(44);
        let bits = random_bits(&mut rng, 100);
        let coded = encode(&bits);
        let mut symbols: Vec<CodedBit> = coded.iter().map(|&b| CodedBit::from_bool(b)).collect();
        // Erase every 6th symbol (a 1/6 erasure rate is far below capacity
        // for this code).
        for k in (0..symbols.len()).step_by(6) {
            symbols[k] = CodedBit::Erased;
        }
        assert_eq!(decode_with_erasures(&symbols), bits);
    }

    #[test]
    fn high_noise_fails_gracefully() {
        // Under 30% BER the decoder cannot win, but it must return the right
        // number of bits without panicking.
        let mut rng = StdRng::seed_from_u64(45);
        let bits = random_bits(&mut rng, 64);
        let mut coded = encode(&bits);
        for b in coded.iter_mut() {
            if rng.gen_bool(0.3) {
                *b = !*b;
            }
        }
        assert_eq!(decode(&coded).len(), 64);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_panics() {
        decode(&[true; 15]);
    }
}

/// Decodes a terminated rate-1/2 stream from per-bit log-likelihood
/// ratios (positive = bit 0 more likely, e.g. from a soft MIMO detector).
/// Punctured positions should carry LLR `0.0` (no information).
///
/// The branch metric for hypothesizing transmitted bit `b` against LLR `L`
/// is `|L|` when the hypothesis contradicts the LLR's hard decision and
/// `0` otherwise — the max-log-optimal soft Viterbi metric.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_soft(llrs: &[f64]) -> Vec<bool> {
    let mut ws = ViterbiWorkspace::new();
    let mut out = Vec::new();
    decode_soft_into(llrs, &mut ws, &mut out);
    out
}

/// [`decode_soft`] with the trellis state and the output buffer reused in
/// place — bit-identical output, zero heap allocations once the workspace
/// has warmed up to the stream length.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_soft_into(llrs: &[f64], ws: &mut ViterbiWorkspace, out: &mut Vec<bool>) {
    assert_eq!(llrs.len() % 2, 0, "rate-1/2 stream must have even length");
    let steps = llrs.len() / 2;
    assert!(steps >= CONSTRAINT - 1, "stream shorter than the termination tail");

    #[inline]
    fn cost(llr: f64, tx: bool) -> f64 {
        // Positive LLR favours bit 0: penalize a `1` hypothesis by +L, a
        // `0` hypothesis by −L when L is negative.
        if tx {
            llr.max(0.0)
        } else {
            (-llr).max(0.0)
        }
    }

    const INF: f64 = f64::INFINITY;
    ws.metric_f.clear();
    ws.metric_f.resize(NUM_STATES, INF);
    ws.metric_f[0] = 0.0;
    // Flat survivor slab, as in `decode_with_erasures`.
    ws.survivors.clear();
    ws.survivors.resize(steps * NUM_STATES, 0);
    ws.next_f.clear();
    ws.next_f.resize(NUM_STATES, 0.0);

    for t in 0..steps {
        let l0 = llrs[2 * t];
        let l1 = llrs[2 * t + 1];
        let c0f = cost(l0, false);
        let c0t = cost(l0, true);
        let c1f = cost(l1, false);
        let c1t = cost(l1, true);
        let surv = &mut ws.survivors[t * NUM_STATES..(t + 1) * NUM_STATES];
        let (surv_in0, surv_in1) = surv.split_at_mut(HALF);
        let (next_in0, next_in1) = ws.next_f.split_at_mut(HALF);
        // The same destination-major butterfly as the hard path, with
        // branchless selects instead of mask arithmetic (f64 selection must
        // stay exact). A transition emitting (o0, o1) costs
        // `sel(o0) + sel(o1)` — the one addition the old four-entry table
        // performed, so metrics are bit-identical. Unreachable predecessors
        // carry `+∞` and lose every comparison that matters; the old loop's
        // tie-breaking (lower predecessor first, strict improvement only)
        // is preserved by `take_hi = c1 < c0`.
        for k in 0..HALF {
            let m0 = ws.metric_f[2 * k];
            let m1 = ws.metric_f[2 * k + 1];
            let bc_lo0 = (if B_LO_IN0.o0[k] == 1 { c0t } else { c0f })
                + (if B_LO_IN0.o1[k] == 1 { c1t } else { c1f });
            let bc_hi0 = (if B_HI_IN0.o0[k] == 1 { c0t } else { c0f })
                + (if B_HI_IN0.o1[k] == 1 { c1t } else { c1f });
            let c0 = m0 + bc_lo0;
            let c1 = m1 + bc_hi0;
            let take_hi = c1 < c0;
            next_in0[k] = if take_hi { c1 } else { c0 };
            surv_in0[k] = (2 * k) as u8 + take_hi as u8;

            let bc_lo1 = (if B_LO_IN1.o0[k] == 1 { c0t } else { c0f })
                + (if B_LO_IN1.o1[k] == 1 { c1t } else { c1f });
            let bc_hi1 = (if B_HI_IN1.o0[k] == 1 { c0t } else { c0f })
                + (if B_HI_IN1.o1[k] == 1 { c1t } else { c1f });
            let c0 = m0 + bc_lo1;
            let c1 = m1 + bc_hi1;
            let take_hi = c1 < c0;
            next_in1[k] = if take_hi { c1 } else { c0 };
            surv_in1[k] = 0x80 | ((2 * k) as u8 + take_hi as u8);
        }
        std::mem::swap(&mut ws.metric_f, &mut ws.next_f);
    }

    let mut state = 0usize;
    out.clear();
    out.resize(steps, false);
    for t in (0..steps).rev() {
        let s = ws.survivors[t * NUM_STATES + state];
        out[t] = s & 0x80 != 0;
        state = (s & 0x3f) as usize;
    }
    out.truncate(steps - (CONSTRAINT - 1));
}

#[cfg(test)]
mod soft_tests {
    use super::*;
    use crate::conv::encode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn to_llrs(coded: &[bool], confidence: f64) -> Vec<f64> {
        coded.iter().map(|&b| if b { -confidence } else { confidence }).collect()
    }

    #[test]
    fn soft_matches_hard_on_clean_input() {
        let mut rng = StdRng::seed_from_u64(401);
        let bits: Vec<bool> = (0..150).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        assert_eq!(decode_soft(&to_llrs(&coded, 4.0)), bits);
    }

    #[test]
    fn soft_uses_reliability_to_beat_hard() {
        // Two coded bits are wrong, but their LLRs are weak while the
        // correct bits are strong — soft decoding must recover where a
        // hard decoder sees genuine errors.
        let mut rng = StdRng::seed_from_u64(402);
        let bits: Vec<bool> = (0..80).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        let mut llrs = to_llrs(&coded, 5.0);
        // Flip the sign of a burst of bits but with tiny magnitude.
        for k in 40..46 {
            llrs[k] = -llrs[k].signum() * 0.1;
        }
        assert_eq!(decode_soft(&llrs), bits);
    }

    #[test]
    fn zero_llrs_are_erasures() {
        let mut rng = StdRng::seed_from_u64(403);
        let bits: Vec<bool> = (0..100).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        let mut llrs = to_llrs(&coded, 3.0);
        for k in (0..llrs.len()).step_by(6) {
            llrs[k] = 0.0;
        }
        assert_eq!(decode_soft(&llrs), bits);
    }

    #[test]
    fn gaussian_channel_soft_beats_hard() {
        // BPSK over AWGN at an SNR where hard decisions fail often: soft
        // decoding must deliver strictly fewer bit errors over many frames.
        let mut rng = StdRng::seed_from_u64(404);
        let mut hard_errs = 0usize;
        let mut soft_errs = 0usize;
        let sigma = 0.9;
        for _ in 0..60 {
            let bits: Vec<bool> = (0..120).map(|_| rng.gen_bool(0.5)).collect();
            let coded = encode(&bits);
            // BPSK: 0 -> +1, 1 -> -1, AWGN, LLR = 2r/sigma^2.
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    let tx = if b { -1.0 } else { 1.0 };
                    let r = tx + sigma * crate::tests_helper_gaussian(&mut rng);
                    2.0 * r / (sigma * sigma)
                })
                .collect();
            let hard: Vec<bool> = llrs.iter().map(|&l| l < 0.0).collect();
            hard_errs += decode(&hard).iter().zip(&bits).filter(|(a, b)| a != b).count();
            soft_errs += decode_soft(&llrs).iter().zip(&bits).filter(|(a, b)| a != b).count();
        }
        assert!(soft_errs < hard_errs, "soft ({soft_errs}) must beat hard ({hard_errs}) on AWGN");
    }
}
