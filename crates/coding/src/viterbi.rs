//! Viterbi decoding for the K=7 rate-1/2 code.
//!
//! Hard-decision decoding over Hamming metrics plus an erasure-aware variant
//! used after depuncturing. The trellis is the 64-state one defined in
//! [`crate::conv`]; decoding assumes the encoder appended the 6 zero tail
//! bits (terminated trellis).

use crate::conv::{CONSTRAINT, NUM_STATES, OUTPUT_TABLE};

/// A received coded bit: a hard decision or an erasure (from depuncturing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodedBit {
    /// Received as 0.
    Zero,
    /// Received as 1.
    One,
    /// Punctured away at the transmitter; contributes no metric.
    Erased,
}

impl CodedBit {
    /// Converts a plain bool.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            CodedBit::One
        } else {
            CodedBit::Zero
        }
    }

    /// Hamming cost of hypothesizing transmitted bit `tx`.
    #[inline]
    fn cost(self, tx: bool) -> u32 {
        match self {
            CodedBit::Erased => 0,
            CodedBit::Zero => tx as u32,
            CodedBit::One => !tx as u32,
        }
    }
}

/// Decodes a terminated, rate-1/2 coded stream of hard bits.
///
/// `coded.len()` must be even and at least `2·(K−1)`; returns the
/// `coded.len()/2 − 6` information bits.
pub fn decode(coded: &[bool]) -> Vec<bool> {
    let symbols: Vec<CodedBit> = coded.iter().map(|&b| CodedBit::from_bool(b)).collect();
    decode_with_erasures(&symbols)
}

/// Half the butterfly count: destinations `k` and `k + HALF` share the
/// predecessor pair `{2k, 2k+1}`.
const HALF: usize = NUM_STATES / 2;

/// Per-butterfly branch-output bits, hoisted from [`OUTPUT_TABLE`] at
/// compile time so the add-compare-select loop is pure contiguous
/// arithmetic — no per-transition table gathers, which is what lets the
/// compiler vectorize it.
///
/// `BFLY[input][src]` with `input ∈ {0, 1}` (the destination's new bit)
/// and `src ∈ {0, 1}` (lower/upper predecessor `2k`/`2k+1`) holds, per
/// butterfly index `k`, the two output bits as 0/1 words: `.0[k]` = first
/// generator bit, `.1[k]` = second.
struct ButterflyBits {
    o0: [u32; HALF],
    o1: [u32; HALF],
}

const fn butterfly_bits(src_odd: usize, input: usize) -> ButterflyBits {
    let mut b = ButterflyBits { o0: [0; HALF], o1: [0; HALF] };
    let mut k = 0;
    while k < HALF {
        let state = 2 * k + src_odd;
        let packed = OUTPUT_TABLE[(state << 1) | input];
        b.o0[k] = (packed & 1) as u32;
        b.o1[k] = ((packed >> 1) & 1) as u32;
        k += 1;
    }
    b
}

/// Transition bits for (lower predecessor, input 0) … (upper, input 1).
const B_LO_IN0: ButterflyBits = butterfly_bits(0, 0);
const B_HI_IN0: ButterflyBits = butterfly_bits(1, 0);
const B_LO_IN1: ButterflyBits = butterfly_bits(0, 1);
const B_HI_IN1: ButterflyBits = butterfly_bits(1, 1);

/// A transition's output pair packed as a branch-cost index `o0·2 + o1`
/// into the four-entry per-stream cost row `{base, base+d1, base+d0,
/// base+d0+d1}` the multi-stream decoder builds each step.
const fn pattern_indices(b: &ButterflyBits) -> [u8; HALF] {
    let mut out = [0u8; HALF];
    let mut k = 0;
    while k < HALF {
        out[k] = (b.o0[k] * 2 + b.o1[k]) as u8;
        k += 1;
    }
    out
}

/// Branch-cost indices per butterfly for the four transition kinds.
const IDX_LO0: [u8; HALF] = pattern_indices(&B_LO_IN0);
const IDX_HI0: [u8; HALF] = pattern_indices(&B_HI_IN0);
const IDX_LO1: [u8; HALF] = pattern_indices(&B_LO_IN1);
const IDX_HI1: [u8; HALF] = pattern_indices(&B_HI_IN1);

/// Reusable trellis scratch for the Viterbi decoders: hard/soft path
/// metrics plus the flat survivor slab. Hold one per receiver and pass it
/// to [`decode_with_erasures_into`]/[`decode_soft_into`] — after the first
/// frame of a given length, decoding performs zero heap allocations.
#[derive(Clone, Debug, Default)]
pub struct ViterbiWorkspace {
    metric_u: Vec<u32>,
    next_u: Vec<u32>,
    metric_f: Vec<f64>,
    next_f: Vec<f64>,
    survivors: Vec<u8>,
    /// Per-step branch-cost table for the multi-stream decoder:
    /// `cost[idx · n + s]` for pattern `idx ∈ 0..4` and stream `s`.
    cost: Vec<u32>,
}

impl ViterbiWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Decodes a terminated, rate-1/2 coded stream that may contain erasures.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_with_erasures(coded: &[CodedBit]) -> Vec<bool> {
    let mut ws = ViterbiWorkspace::new();
    let mut out = Vec::new();
    decode_with_erasures_into(coded, &mut ws, &mut out);
    out
}

/// [`decode_with_erasures`] with the trellis state and the output buffer
/// reused in place — bit-identical output, zero heap allocations once the
/// workspace has warmed up to the stream length.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_with_erasures_into(
    coded: &[CodedBit],
    ws: &mut ViterbiWorkspace,
    out: &mut Vec<bool>,
) {
    assert_eq!(coded.len() % 2, 0, "rate-1/2 stream must have even length");
    let steps = coded.len() / 2;
    assert!(steps >= CONSTRAINT - 1, "stream shorter than the termination tail");
    let _prof = gs_prof::scope(gs_prof::Stage::Viterbi);
    _prof.add_bytes(steps as u64 / 8);

    const INF: u32 = u32::MAX / 2;
    ws.metric_u.clear();
    ws.metric_u.resize(NUM_STATES, INF);
    ws.metric_u[0] = 0;
    // survivors[t*NUM_STATES + state] = predecessor input bit packed with
    // predecessor state: bit 7 = input, low 6 bits = previous state. One
    // flat slab for the whole trellis — no per-step allocation.
    ws.survivors.clear();
    ws.survivors.resize(steps * NUM_STATES, 0);

    ws.next_u.clear();
    ws.next_u.resize(NUM_STATES, 0);
    for t in 0..steps {
        let rx0 = coded[2 * t];
        let rx1 = coded[2 * t + 1];
        // Branch metric components: a transition emitting bits (o0, o1)
        // costs `c0f + o0·d0 + c1f + o1·d1` — pure 0/1-mask arithmetic,
        // identical to the four-entry table the scalar loop used.
        let c0f = rx0.cost(false);
        let c1f = rx1.cost(false);
        let d0 = rx0.cost(true).wrapping_sub(c0f);
        let d1 = rx1.cost(true).wrapping_sub(c1f);
        let base = c0f + c1f;
        let surv = &mut ws.survivors[t * NUM_STATES..(t + 1) * NUM_STATES];
        let (surv_in0, surv_in1) = surv.split_at_mut(HALF);
        let (next_in0, next_in1) = ws.next_u.split_at_mut(HALF);
        // Destination-major butterflies: dest k (new bit 0) and k + HALF
        // (new bit 1) both choose between predecessors 2k and 2k+1 —
        // branchless, every destination written exactly once. Unreachable
        // predecessors carry metrics ≥ INF and lose every comparison that
        // matters (real path metrics are bounded by 2·steps), so outputs
        // match the old skip-INF source-major loop bit for bit, including
        // its tie-breaking (the lower predecessor was enumerated first and
        // only a strictly better cost replaced it).
        for k in 0..HALF {
            let m0 = ws.metric_u[2 * k];
            let m1 = ws.metric_u[2 * k + 1];
            let bc_lo0 = base
                .wrapping_add(B_LO_IN0.o0[k].wrapping_mul(d0))
                .wrapping_add(B_LO_IN0.o1[k].wrapping_mul(d1));
            let bc_hi0 = base
                .wrapping_add(B_HI_IN0.o0[k].wrapping_mul(d0))
                .wrapping_add(B_HI_IN0.o1[k].wrapping_mul(d1));
            let c0 = m0 + bc_lo0;
            let c1 = m1 + bc_hi0;
            let take_hi = (c1 < c0) as u32;
            next_in0[k] = if c1 < c0 { c1 } else { c0 };
            surv_in0[k] = (2 * k) as u8 + take_hi as u8;

            let bc_lo1 = base
                .wrapping_add(B_LO_IN1.o0[k].wrapping_mul(d0))
                .wrapping_add(B_LO_IN1.o1[k].wrapping_mul(d1));
            let bc_hi1 = base
                .wrapping_add(B_HI_IN1.o0[k].wrapping_mul(d0))
                .wrapping_add(B_HI_IN1.o1[k].wrapping_mul(d1));
            let c0 = m0 + bc_lo1;
            let c1 = m1 + bc_hi1;
            let take_hi = (c1 < c0) as u32;
            next_in1[k] = if c1 < c0 { c1 } else { c0 };
            surv_in1[k] = 0x80 | ((2 * k) as u8 + take_hi as u8);
        }
        std::mem::swap(&mut ws.metric_u, &mut ws.next_u);
    }

    // Terminated trellis: trace back from state 0, writing each step's bit
    // straight to its final position.
    let mut state = 0usize;
    out.clear();
    out.resize(steps, false);
    for t in (0..steps).rev() {
        let s = ws.survivors[t * NUM_STATES + state];
        out[t] = s & 0x80 != 0;
        state = (s & 0x3f) as usize;
    }
    out.truncate(steps - (CONSTRAINT - 1)); // drop tail bits
}

/// Decodes `n_streams` equal-length terminated rate-1/2 streams in one
/// lockstep trellis pass — the multi-symbol SoA form of
/// [`decode_with_erasures_into`].
///
/// `streams` is stream-major flat: stream `s` occupies
/// `s·len..(s+1)·len` where `len = streams.len() / n_streams`. `out` is
/// filled stream-major with `steps − (K−1)` information bits per stream
/// (`steps = len / 2`), so stream `s`'s bits are
/// `out[s·info_len..(s+1)·info_len]`.
///
/// Path metrics live in stream-interleaved SoA rows (`metric[state·n + s]`)
/// so the 32-butterfly add-compare-select inner loop walks contiguous
/// slabs — one pass advances every stream's trellis, and with four streams
/// on `x86_64`/AVX2 each butterfly is a handful of 128-bit integer ops.
/// Every stream's metrics, tie-breaks, and traceback are the *same
/// arithmetic* as the single-stream decoder (exact integer ops, identical
/// `c1 < c0` selection), so output is bit-identical per stream.
///
/// # Panics
/// Panics when `n_streams` is zero, `streams.len()` is not divisible by
/// `n_streams`, or the per-stream length is odd or shorter than the tail.
pub fn decode_multi_with_erasures_into(
    streams: &[CodedBit],
    n_streams: usize,
    ws: &mut ViterbiWorkspace,
    out: &mut Vec<bool>,
) {
    let n = n_streams;
    assert!(n > 0, "need at least one stream");
    assert_eq!(streams.len() % n, 0, "streams must share one length");
    let len = streams.len() / n;
    assert_eq!(len % 2, 0, "rate-1/2 stream must have even length");
    let steps = len / 2;
    assert!(steps >= CONSTRAINT - 1, "stream shorter than the termination tail");
    let _prof = gs_prof::scope(gs_prof::Stage::Viterbi);
    _prof.add_bytes((n * steps) as u64 / 8);

    const INF: u32 = u32::MAX / 2;
    ws.metric_u.clear();
    ws.metric_u.resize(NUM_STATES * n, INF);
    ws.metric_u[..n].fill(0); // state 0, every stream
    ws.next_u.clear();
    ws.next_u.resize(NUM_STATES * n, 0);
    // survivors[t·NUM_STATES·n + state·n + s], packed as in the
    // single-stream decoder (bit 7 = input, low 6 bits = predecessor).
    ws.survivors.clear();
    ws.survivors.resize(steps * NUM_STATES * n, 0);
    ws.cost.clear();
    ws.cost.resize(4 * n, 0);

    #[cfg(target_arch = "x86_64")]
    let use_avx2 = n == 4 && std::arch::is_x86_feature_detected!("avx2");

    for t in 0..steps {
        // Per-stream branch-cost row: a transition emitting (o0, o1) costs
        // cost[(o0·2 + o1)·n + s] — the same wrapping `base + o·d` sums the
        // single-stream loop forms, precomputed once per step.
        for s in 0..n {
            let rx0 = streams[s * len + 2 * t];
            let rx1 = streams[s * len + 2 * t + 1];
            let c0f = rx0.cost(false);
            let c1f = rx1.cost(false);
            let d0 = rx0.cost(true).wrapping_sub(c0f);
            let d1 = rx1.cost(true).wrapping_sub(c1f);
            let base = c0f + c1f;
            ws.cost[s] = base;
            ws.cost[n + s] = base.wrapping_add(d1);
            ws.cost[2 * n + s] = base.wrapping_add(d0);
            ws.cost[3 * n + s] = base.wrapping_add(d0).wrapping_add(d1);
        }
        let surv = &mut ws.survivors[t * NUM_STATES * n..(t + 1) * NUM_STATES * n];
        #[cfg(target_arch = "x86_64")]
        if use_avx2 {
            // Safety: AVX2 confirmed by runtime detection above.
            #[allow(unsafe_code)]
            unsafe {
                avx2::acs_step_n4(&ws.metric_u, &mut ws.next_u, &ws.cost, surv)
            };
            std::mem::swap(&mut ws.metric_u, &mut ws.next_u);
            continue;
        }
        let (surv_in0, surv_in1) = surv.split_at_mut(HALF * n);
        let (next_in0, next_in1) = ws.next_u.split_at_mut(HALF * n);
        // The single-stream destination-major butterfly with streams as the
        // innermost (contiguous) axis; identical metric arithmetic and
        // tie-breaking per stream.
        for k in 0..HALF {
            let row0 = &ws.metric_u[2 * k * n..(2 * k + 1) * n];
            let row1 = &ws.metric_u[(2 * k + 1) * n..(2 * k + 2) * n];
            let lo0 = &ws.cost[IDX_LO0[k] as usize * n..][..n];
            let hi0 = &ws.cost[IDX_HI0[k] as usize * n..][..n];
            let lo1 = &ws.cost[IDX_LO1[k] as usize * n..][..n];
            let hi1 = &ws.cost[IDX_HI1[k] as usize * n..][..n];
            for s in 0..n {
                let m0 = row0[s];
                let m1 = row1[s];
                let c0 = m0 + lo0[s];
                let c1 = m1 + hi0[s];
                let take_hi = c1 < c0;
                next_in0[k * n + s] = if take_hi { c1 } else { c0 };
                surv_in0[k * n + s] = (2 * k) as u8 + take_hi as u8;

                let c0 = m0 + lo1[s];
                let c1 = m1 + hi1[s];
                let take_hi = c1 < c0;
                next_in1[k * n + s] = if take_hi { c1 } else { c0 };
                surv_in1[k * n + s] = 0x80 | ((2 * k) as u8 + take_hi as u8);
            }
        }
        std::mem::swap(&mut ws.metric_u, &mut ws.next_u);
    }

    // Per-stream traceback from state 0 (terminated trellis), writing each
    // stream's bits to its slice of the flat output.
    let info_len = steps - (CONSTRAINT - 1);
    out.clear();
    out.resize(n * info_len, false);
    for s in 0..n {
        let mut state = 0usize;
        for t in (0..steps).rev() {
            let sv = ws.survivors[t * NUM_STATES * n + state * n + s];
            if t < info_len {
                out[s * info_len + t] = sv & 0x80 != 0;
            }
            state = (sv & 0x3f) as usize;
        }
    }
}

/// AVX2 backend for the four-stream add-compare-select step. Same safety
/// contract as the `gs-linalg` SIMD backends: `unsafe fn` +
/// `#[target_feature]`, reached only after runtime detection.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::{HALF, IDX_HI0, IDX_HI1, IDX_LO0, IDX_LO1};
    use std::arch::x86_64::*;

    /// One trellis step for exactly four streams: `metric`/`next` are
    /// `NUM_STATES·4` stream-interleaved u32 rows, `cost` the 4×4 branch
    /// table, `surv` the step's `NUM_STATES·4` survivor bytes.
    ///
    /// Per butterfly `k` one 256-bit load yields both predecessor rows ×
    /// four streams; unsigned `min` and a `min == c0` compare reproduce
    /// the scalar `c1 < c0` selection exactly (ties keep the lower
    /// predecessor in both).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn acs_step_n4(
        metric: &[u32],
        next: &mut [u32],
        cost: &[u32],
        surv: &mut [u8],
    ) {
        debug_assert_eq!(metric.len(), HALF * 8);
        debug_assert_eq!(next.len(), HALF * 8);
        debug_assert_eq!(cost.len(), 16);
        debug_assert_eq!(surv.len(), HALF * 8);
        let costs: [__m128i; 4] = [
            _mm_loadu_si128(cost.as_ptr().cast()),
            _mm_loadu_si128(cost.as_ptr().add(4).cast()),
            _mm_loadu_si128(cost.as_ptr().add(8).cast()),
            _mm_loadu_si128(cost.as_ptr().add(12).cast()),
        ];
        // Low byte of each 32-bit lane → bytes 0..4 of the vector.
        let pack = _mm_set_epi8(-1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 12, 8, 4, 0);
        let one = _mm_set1_epi32(1);
        let in1_flag = _mm_set1_epi32(0x80);
        for k in 0..HALF {
            let m = _mm256_loadu_si256(metric.as_ptr().add(8 * k).cast());
            let m0 = _mm256_castsi256_si128(m);
            let m1 = _mm256_extracti128_si256::<1>(m);
            let base = _mm_set1_epi32(2 * k as i32);

            let c0 = _mm_add_epi32(m0, costs[IDX_LO0[k] as usize]);
            let c1 = _mm_add_epi32(m1, costs[IDX_HI0[k] as usize]);
            let best = _mm_min_epu32(c0, c1);
            _mm_storeu_si128(next.as_mut_ptr().add(4 * k).cast(), best);
            // take_hi ⇔ best ≠ c0 (a tie keeps the lower predecessor).
            let keep_lo = _mm_cmpeq_epi32(best, c0);
            let sv = _mm_add_epi32(base, _mm_andnot_si128(keep_lo, one));
            let packed = _mm_cvtsi128_si32(_mm_shuffle_epi8(sv, pack)) as u32;
            surv.as_mut_ptr().add(4 * k).cast::<u32>().write_unaligned(packed.to_le());

            let c0 = _mm_add_epi32(m0, costs[IDX_LO1[k] as usize]);
            let c1 = _mm_add_epi32(m1, costs[IDX_HI1[k] as usize]);
            let best = _mm_min_epu32(c0, c1);
            _mm_storeu_si128(next.as_mut_ptr().add(4 * (k + HALF)).cast(), best);
            let keep_lo = _mm_cmpeq_epi32(best, c0);
            let sv = _mm_or_si128(in1_flag, _mm_add_epi32(base, _mm_andnot_si128(keep_lo, one)));
            let packed = _mm_cvtsi128_si32(_mm_shuffle_epi8(sv, pack)) as u32;
            surv.as_mut_ptr().add(4 * (k + HALF)).cast::<u32>().write_unaligned(packed.to_le());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::encode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(rng: &mut StdRng, n: usize) -> Vec<bool> {
        (0..n).map(|_| rng.gen_bool(0.5)).collect()
    }

    #[test]
    fn noiseless_roundtrip() {
        let mut rng = StdRng::seed_from_u64(41);
        for len in [1usize, 2, 7, 50, 333] {
            let bits = random_bits(&mut rng, len);
            let coded = encode(&bits);
            assert_eq!(decode(&coded), bits, "len {len}");
        }
    }

    #[test]
    fn corrects_isolated_bit_errors() {
        let mut rng = StdRng::seed_from_u64(42);
        let bits = random_bits(&mut rng, 120);
        let mut coded = encode(&bits);
        // Flip well-separated bits: free distance 10 means isolated single
        // errors are always correctable.
        for pos in [5usize, 60, 130, 200] {
            coded[pos] = !coded[pos];
        }
        assert_eq!(decode(&coded), bits);
    }

    #[test]
    fn corrects_short_burst() {
        let mut rng = StdRng::seed_from_u64(43);
        let bits = random_bits(&mut rng, 200);
        let mut coded = encode(&bits);
        // A 2-bit burst within one trellis step (still within d_free/2).
        coded[100] = !coded[100];
        coded[101] = !coded[101];
        assert_eq!(decode(&coded), bits);
    }

    #[test]
    fn handles_erasures() {
        let mut rng = StdRng::seed_from_u64(44);
        let bits = random_bits(&mut rng, 100);
        let coded = encode(&bits);
        let mut symbols: Vec<CodedBit> = coded.iter().map(|&b| CodedBit::from_bool(b)).collect();
        // Erase every 6th symbol (a 1/6 erasure rate is far below capacity
        // for this code).
        for k in (0..symbols.len()).step_by(6) {
            symbols[k] = CodedBit::Erased;
        }
        assert_eq!(decode_with_erasures(&symbols), bits);
    }

    #[test]
    fn high_noise_fails_gracefully() {
        // Under 30% BER the decoder cannot win, but it must return the right
        // number of bits without panicking.
        let mut rng = StdRng::seed_from_u64(45);
        let bits = random_bits(&mut rng, 64);
        let mut coded = encode(&bits);
        for b in coded.iter_mut() {
            if rng.gen_bool(0.3) {
                *b = !*b;
            }
        }
        assert_eq!(decode(&coded).len(), 64);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_panics() {
        decode(&[true; 15]);
    }

    /// Corrupts a coded stream with bit flips and erasures, seeded per
    /// stream so lockstep siblings genuinely differ.
    fn noisy_stream(rng: &mut StdRng, bits: &[bool]) -> Vec<CodedBit> {
        let coded = encode(bits);
        coded
            .iter()
            .map(|&b| {
                if rng.gen_bool(0.03) {
                    CodedBit::Erased
                } else if rng.gen_bool(0.04) {
                    CodedBit::from_bool(!b)
                } else {
                    CodedBit::from_bool(b)
                }
            })
            .collect()
    }

    #[test]
    fn multi_stream_matches_single_stream_bitwise() {
        // The batching contract: for every stream count (scalar fallback
        // and the 4-stream AVX2 path alike), lockstep decoding returns
        // exactly what per-stream decoding returns — survivors, ties, and
        // all — on noisy, erasure-bearing, disagreeing streams.
        let mut rng = StdRng::seed_from_u64(46);
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        for n in 1..=6usize {
            for len in [80usize, 257] {
                let per: Vec<Vec<bool>> = (0..n).map(|_| random_bits(&mut rng, len)).collect();
                let streams: Vec<Vec<CodedBit>> =
                    per.iter().map(|bits| noisy_stream(&mut rng, bits)).collect();
                let flat: Vec<CodedBit> = streams.concat();
                decode_multi_with_erasures_into(&flat, n, &mut ws, &mut out);
                let info_len = out.len() / n;
                for (s, coded) in streams.iter().enumerate() {
                    let single = decode_with_erasures(coded);
                    assert_eq!(
                        &out[s * info_len..(s + 1) * info_len],
                        &single[..],
                        "n={n} len={len} stream {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_stream_recovers_clean_payloads() {
        let mut rng = StdRng::seed_from_u64(47);
        let n = 4;
        let per: Vec<Vec<bool>> = (0..n).map(|_| random_bits(&mut rng, 120)).collect();
        let flat: Vec<CodedBit> = per
            .iter()
            .flat_map(|bits| {
                encode(bits).iter().map(|&b| CodedBit::from_bool(b)).collect::<Vec<_>>()
            })
            .collect();
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        decode_multi_with_erasures_into(&flat, n, &mut ws, &mut out);
        let info_len = out.len() / n;
        for (s, bits) in per.iter().enumerate() {
            assert_eq!(&out[s * info_len..s * info_len + 120], &bits[..], "stream {s}");
        }
    }
}

/// Decodes a terminated rate-1/2 stream from per-bit log-likelihood
/// ratios (positive = bit 0 more likely, e.g. from a soft MIMO detector).
/// Punctured positions should carry LLR `0.0` (no information).
///
/// The branch metric for hypothesizing transmitted bit `b` against LLR `L`
/// is `|L|` when the hypothesis contradicts the LLR's hard decision and
/// `0` otherwise — the max-log-optimal soft Viterbi metric.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_soft(llrs: &[f64]) -> Vec<bool> {
    let mut ws = ViterbiWorkspace::new();
    let mut out = Vec::new();
    decode_soft_into(llrs, &mut ws, &mut out);
    out
}

/// [`decode_soft`] with the trellis state and the output buffer reused in
/// place — bit-identical output, zero heap allocations once the workspace
/// has warmed up to the stream length.
///
/// # Panics
/// Panics when the stream length is odd or shorter than the tail.
pub fn decode_soft_into(llrs: &[f64], ws: &mut ViterbiWorkspace, out: &mut Vec<bool>) {
    assert_eq!(llrs.len() % 2, 0, "rate-1/2 stream must have even length");
    let steps = llrs.len() / 2;
    assert!(steps >= CONSTRAINT - 1, "stream shorter than the termination tail");
    let _prof = gs_prof::scope(gs_prof::Stage::Viterbi);
    _prof.add_bytes(steps as u64 / 8);

    #[inline]
    fn cost(llr: f64, tx: bool) -> f64 {
        // Positive LLR favours bit 0: penalize a `1` hypothesis by +L, a
        // `0` hypothesis by −L when L is negative.
        if tx {
            llr.max(0.0)
        } else {
            (-llr).max(0.0)
        }
    }

    const INF: f64 = f64::INFINITY;
    ws.metric_f.clear();
    ws.metric_f.resize(NUM_STATES, INF);
    ws.metric_f[0] = 0.0;
    // Flat survivor slab, as in `decode_with_erasures`.
    ws.survivors.clear();
    ws.survivors.resize(steps * NUM_STATES, 0);
    ws.next_f.clear();
    ws.next_f.resize(NUM_STATES, 0.0);

    for t in 0..steps {
        let l0 = llrs[2 * t];
        let l1 = llrs[2 * t + 1];
        let c0f = cost(l0, false);
        let c0t = cost(l0, true);
        let c1f = cost(l1, false);
        let c1t = cost(l1, true);
        let surv = &mut ws.survivors[t * NUM_STATES..(t + 1) * NUM_STATES];
        let (surv_in0, surv_in1) = surv.split_at_mut(HALF);
        let (next_in0, next_in1) = ws.next_f.split_at_mut(HALF);
        // The same destination-major butterfly as the hard path, with
        // branchless selects instead of mask arithmetic (f64 selection must
        // stay exact). A transition emitting (o0, o1) costs
        // `sel(o0) + sel(o1)` — the one addition the old four-entry table
        // performed, so metrics are bit-identical. Unreachable predecessors
        // carry `+∞` and lose every comparison that matters; the old loop's
        // tie-breaking (lower predecessor first, strict improvement only)
        // is preserved by `take_hi = c1 < c0`.
        for k in 0..HALF {
            let m0 = ws.metric_f[2 * k];
            let m1 = ws.metric_f[2 * k + 1];
            let bc_lo0 = (if B_LO_IN0.o0[k] == 1 { c0t } else { c0f })
                + (if B_LO_IN0.o1[k] == 1 { c1t } else { c1f });
            let bc_hi0 = (if B_HI_IN0.o0[k] == 1 { c0t } else { c0f })
                + (if B_HI_IN0.o1[k] == 1 { c1t } else { c1f });
            let c0 = m0 + bc_lo0;
            let c1 = m1 + bc_hi0;
            let take_hi = c1 < c0;
            next_in0[k] = if take_hi { c1 } else { c0 };
            surv_in0[k] = (2 * k) as u8 + take_hi as u8;

            let bc_lo1 = (if B_LO_IN1.o0[k] == 1 { c0t } else { c0f })
                + (if B_LO_IN1.o1[k] == 1 { c1t } else { c1f });
            let bc_hi1 = (if B_HI_IN1.o0[k] == 1 { c0t } else { c0f })
                + (if B_HI_IN1.o1[k] == 1 { c1t } else { c1f });
            let c0 = m0 + bc_lo1;
            let c1 = m1 + bc_hi1;
            let take_hi = c1 < c0;
            next_in1[k] = if take_hi { c1 } else { c0 };
            surv_in1[k] = 0x80 | ((2 * k) as u8 + take_hi as u8);
        }
        std::mem::swap(&mut ws.metric_f, &mut ws.next_f);
    }

    let mut state = 0usize;
    out.clear();
    out.resize(steps, false);
    for t in (0..steps).rev() {
        let s = ws.survivors[t * NUM_STATES + state];
        out[t] = s & 0x80 != 0;
        state = (s & 0x3f) as usize;
    }
    out.truncate(steps - (CONSTRAINT - 1));
}

#[cfg(test)]
mod soft_tests {
    use super::*;
    use crate::conv::encode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn to_llrs(coded: &[bool], confidence: f64) -> Vec<f64> {
        coded.iter().map(|&b| if b { -confidence } else { confidence }).collect()
    }

    #[test]
    fn soft_matches_hard_on_clean_input() {
        let mut rng = StdRng::seed_from_u64(401);
        let bits: Vec<bool> = (0..150).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        assert_eq!(decode_soft(&to_llrs(&coded, 4.0)), bits);
    }

    #[test]
    fn soft_uses_reliability_to_beat_hard() {
        // Two coded bits are wrong, but their LLRs are weak while the
        // correct bits are strong — soft decoding must recover where a
        // hard decoder sees genuine errors.
        let mut rng = StdRng::seed_from_u64(402);
        let bits: Vec<bool> = (0..80).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        let mut llrs = to_llrs(&coded, 5.0);
        // Flip the sign of a burst of bits but with tiny magnitude.
        for k in 40..46 {
            llrs[k] = -llrs[k].signum() * 0.1;
        }
        assert_eq!(decode_soft(&llrs), bits);
    }

    #[test]
    fn zero_llrs_are_erasures() {
        let mut rng = StdRng::seed_from_u64(403);
        let bits: Vec<bool> = (0..100).map(|_| rng.gen_bool(0.5)).collect();
        let coded = encode(&bits);
        let mut llrs = to_llrs(&coded, 3.0);
        for k in (0..llrs.len()).step_by(6) {
            llrs[k] = 0.0;
        }
        assert_eq!(decode_soft(&llrs), bits);
    }

    #[test]
    fn gaussian_channel_soft_beats_hard() {
        // BPSK over AWGN at an SNR where hard decisions fail often: soft
        // decoding must deliver strictly fewer bit errors over many frames.
        let mut rng = StdRng::seed_from_u64(404);
        let mut hard_errs = 0usize;
        let mut soft_errs = 0usize;
        let sigma = 0.9;
        for _ in 0..60 {
            let bits: Vec<bool> = (0..120).map(|_| rng.gen_bool(0.5)).collect();
            let coded = encode(&bits);
            // BPSK: 0 -> +1, 1 -> -1, AWGN, LLR = 2r/sigma^2.
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    let tx = if b { -1.0 } else { 1.0 };
                    let r = tx + sigma * crate::tests_helper_gaussian(&mut rng);
                    2.0 * r / (sigma * sigma)
                })
                .collect();
            let hard: Vec<bool> = llrs.iter().map(|&l| l < 0.0).collect();
            hard_errs += decode(&hard).iter().zip(&bits).filter(|(a, b)| a != b).count();
            soft_errs += decode_soft(&llrs).iter().zip(&bits).filter(|(a, b)| a != b).count();
        }
        assert!(soft_errs < hard_errs, "soft ({soft_errs}) must beat hard ({hard_errs}) on AWGN");
    }
}
