//! Rate-1/2 convolutional encoder, constraint length 7.
//!
//! The industry-standard K=7 code with generator polynomials 133/171
//! (octal) used by 802.11 — the paper's §4: "All clients send data using
//! 1/2-rate convolutional coding (similar to recent 802.11 standards)".
//! Higher rates (2/3, 3/4) are derived by puncturing (the `puncture` module).

/// Constraint length of the code.
pub const CONSTRAINT: usize = 7;
/// Number of trellis states, `2^(K−1)`.
pub const NUM_STATES: usize = 1 << (CONSTRAINT - 1);
/// First generator polynomial (octal 133).
pub const G0: u32 = 0o133;
/// Second generator polynomial (octal 171).
pub const G1: u32 = 0o171;

/// Parity (mod-2 sum of bits) of `x`.
#[inline]
const fn parity(x: u32) -> bool {
    x.count_ones() % 2 == 1
}

/// Output pair for one input bit given the 6-bit shift-register `state`.
///
/// The register convention: `state` holds the previous 6 input bits, most
/// recent in the MSB (bit 5). The generator taps see `[input, state]` as a
/// 7-bit window with the input in bit 6.
#[inline]
pub const fn branch_output(state: usize, input: bool) -> (bool, bool) {
    let window = ((input as u32) << 6) | state as u32;
    (parity(window & G0), parity(window & G1))
}

/// Branch outputs for every `(state, input)`, packed as `o0 | o1 << 1` and
/// indexed by `(state << 1) | input` — the encoder's and the Viterbi
/// decoders' shared transition table, built at compile time.
pub const OUTPUT_TABLE: [u8; 2 * NUM_STATES] = {
    let mut table = [0u8; 2 * NUM_STATES];
    let mut state = 0;
    while state < NUM_STATES {
        let (z0, z1) = branch_output(state, false);
        table[state << 1] = z0 as u8 | ((z1 as u8) << 1);
        let (o0, o1) = branch_output(state, true);
        table[(state << 1) | 1] = o0 as u8 | ((o1 as u8) << 1);
        state += 1;
    }
    table
};

/// Next shift-register state after feeding `input`.
#[inline]
pub fn next_state(state: usize, input: bool) -> usize {
    ((state >> 1) | ((input as usize) << 5)) & (NUM_STATES - 1)
}

/// Encodes `bits`, appending `K−1 = 6` zero tail bits so the trellis ends in
/// the all-zero state. Output length is `2·(bits.len() + 6)`.
pub fn encode(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(2 * (bits.len() + CONSTRAINT - 1));
    encode_into(bits, &mut out);
    out
}

/// [`encode`] into a reused output buffer (cleared first): no heap traffic
/// once the buffer has warmed up to the frame's coded length.
pub fn encode_into(bits: &[bool], out: &mut Vec<bool>) {
    out.clear();
    let mut state = 0usize;
    for &b in bits.iter().chain(std::iter::repeat_n(&false, CONSTRAINT - 1)) {
        let packed = OUTPUT_TABLE[(state << 1) | b as usize];
        out.push(packed & 1 == 1);
        out.push(packed & 2 == 2);
        state = next_state(state, b);
    }
}

/// Encodes without tail bits (for streaming uses where the caller manages
/// termination). Output length is exactly `2·bits.len()`.
pub fn encode_unterminated(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(2 * bits.len());
    let mut state = 0usize;
    for &b in bits {
        let (o0, o1) = branch_output(state, b);
        out.push(o0);
        out.push(o1);
        state = next_state(state, b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_input_gives_all_zero_output() {
        let out = encode(&[false; 10]);
        assert_eq!(out.len(), 32);
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn impulse_response_is_generators() {
        // A single 1 followed by zeros: the two output streams spell out the
        // generator polynomials' taps, MSB (current input) first.
        let out = encode(&[true]);
        // 7 trellis steps (1 data + 6 tail), 2 bits each.
        assert_eq!(out.len(), 14);
        let g0_bits: Vec<bool> = (0..7).map(|k| out[2 * k]).collect();
        let g1_bits: Vec<bool> = (0..7).map(|k| out[2 * k + 1]).collect();
        let g0_val =
            g0_bits.iter().enumerate().fold(0u32, |acc, (k, &b)| acc | ((b as u32) << (6 - k)));
        let g1_val =
            g1_bits.iter().enumerate().fold(0u32, |acc, (k, &b)| acc | ((b as u32) << (6 - k)));
        assert_eq!(g0_val, G0);
        assert_eq!(g1_val, G1);
    }

    #[test]
    fn encoder_is_linear() {
        // Conv codes are linear: enc(a XOR b) = enc(a) XOR enc(b).
        let a = [true, false, true, true, false, false, true, false];
        let b = [false, true, true, false, true, false, false, true];
        let x: Vec<bool> = a.iter().zip(&b).map(|(&u, &v)| u ^ v).collect();
        let ea = encode(&a);
        let eb = encode(&b);
        let ex = encode(&x);
        for i in 0..ex.len() {
            assert_eq!(ex[i], ea[i] ^ eb[i]);
        }
    }

    #[test]
    fn termination_returns_to_zero_state() {
        let bits = [true, true, false, true, false, true, true, false, false, true];
        let mut state = 0;
        for &b in bits.iter().chain(std::iter::repeat_n(&false, 6)) {
            state = next_state(state, b);
        }
        assert_eq!(state, 0);
    }

    #[test]
    fn unterminated_length() {
        assert_eq!(encode_unterminated(&[true; 5]).len(), 10);
    }
}
