//! # gs-coding
//!
//! Link-layer coding substrate for the Geosphere workspace, mirroring the
//! 802.11 transmit pipeline the paper's implementation uses (§4): a K=7
//! rate-1/2 convolutional code (with standard puncturing to 2/3 and 3/4),
//! hard-decision Viterbi decoding with erasure support, the two-permutation
//! block interleaver, the 7-bit LFSR scrambler, and a CRC-32 frame check.
//!
//! ```
//! use gs_coding::{conv, viterbi};
//!
//! let info = vec![true, false, true, true, false];
//! let coded = conv::encode(&info);
//! assert_eq!(viterbi::decode(&coded), info);
//! ```

// `deny` rather than `forbid`: the multi-stream Viterbi butterfly has an
// AVX2 backend that locally re-allows `unsafe` for intrinsics, exactly as
// the `gs-linalg` SIMD backends do.
#![deny(unsafe_code)]
// Trellis/detector inner loops index several arrays by the same state or
// stream variable; iterator rewrites obscure the recurrences.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod bcjr;
pub mod conv;
pub mod crc;
pub mod interleave;
pub mod puncture;
pub mod scramble;
pub mod viterbi;

pub use bcjr::{siso_decode, SisoOutput};
pub use crc::{append_crc, check_crc, check_crc_ok, crc32, pack_bits, unpack_bits};
pub use interleave::Interleaver;
pub use puncture::{
    depuncture, depuncture_into, depuncture_soft, depuncture_soft_into, puncture, puncture_into,
    CodeRate,
};
pub use scramble::Scrambler;
pub use viterbi::{decode_multi_with_erasures_into, CodedBit, ViterbiWorkspace};

/// Box–Muller Gaussian used only by in-crate tests (kept here so the crate
/// stays dependency-free outside dev builds).
#[cfg(test)]
pub(crate) fn tests_helper_gaussian<R: rand::Rng>(rng: &mut R) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    let v: f64 = rng.gen();
    (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
}
