//! Parsing and linting of Prometheus text expositions.
//!
//! A deliberately small parser for the text format the renderer emits —
//! enough for the e2e scrape tests to read values back and for CI to lint
//! the endpoint: every sample must belong to a declared `# TYPE` family,
//! family names must be unique and well-formed, values must parse, and
//! (given two scrapes) counters must be monotone.

use std::collections::BTreeMap;

/// One parsed sample line: a metric name, its labels in source order, and
/// the value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (the part before the label braces).
    pub name: String,
    /// `(key, value)` label pairs, in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// A canonical series identity: name plus sorted labels. Two scrapes
    /// of the same endpoint pair up series by this key.
    pub fn series_id(&self) -> String {
        let mut labels = self.labels.clone();
        labels.sort();
        let mut id = self.name.clone();
        for (k, v) in labels {
            id.push_str(&format!("|{k}={v}"));
        }
        id
    }
}

/// A parsed exposition: declared families and every sample line.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    /// `# TYPE` declarations: family name → type (`counter`, `gauge`,
    /// `summary`, ...), in declaration order.
    pub types: BTreeMap<String, String>,
    /// Every sample line, in document order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// All samples named exactly `name` (no label filtering).
    pub fn series(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The value of the unique sample with this exact name and label set
    /// (`&[]` for an unlabeled sample). `None` when absent or ambiguous.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let matches: Vec<&Sample> = self
            .samples
            .iter()
            .filter(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels.iter().all(|(k, v)| s.label(k) == Some(v))
            })
            .collect();
        match matches[..] {
            [one] => Some(one.value),
            _ => None,
        }
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `name{k="v",...}` into the name and its label pairs.
fn parse_series(text: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(open) = text.find('{') else {
        return Ok((text.to_string(), Vec::new()));
    };
    let name = text[..open].to_string();
    let rest = &text[open + 1..];
    let Some(body) = rest.strip_suffix('}') else {
        return Err(format!("unterminated label braces in `{text}`"));
    };
    let mut labels = Vec::new();
    for pair in body.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("label pair `{pair}` in `{text}` has no `=`"))?;
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("label value in `{pair}` is not quoted"))?;
        if !valid_name(k) {
            return Err(format!("invalid label name `{k}` in `{text}`"));
        }
        labels.push((k.to_string(), v.to_string()));
    }
    Ok((name, labels))
}

/// Parses a text exposition into its `# TYPE` table and sample list.
/// Rejects malformed lines; does **not** enforce the family rules — that
/// is [`lint_exposition`]'s job.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let (name, kind) = (parts.next(), parts.next());
                let (Some(name), Some(kind)) = (name, kind) else {
                    return Err(format!("line {}: malformed # TYPE line", lineno + 1));
                };
                if out.types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {}: duplicate # TYPE for `{name}`", lineno + 1));
                }
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(char::is_whitespace)
            .ok_or_else(|| format!("line {}: no value on sample line", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: unparseable value `{value}`", lineno + 1))?;
        let (name, labels) =
            parse_series(series.trim()).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        out.samples.push(Sample { name, labels, value });
    }
    Ok(out)
}

/// The `# TYPE` family a sample belongs to: its own name, or — for
/// summary/histogram child series — the name with the `_sum`/`_count`
/// suffix stripped.
fn family_of<'a>(expo: &Exposition, sample_name: &'a str) -> Option<&'a str> {
    if expo.types.contains_key(sample_name) {
        return Some(sample_name);
    }
    for suffix in ["_sum", "_count"] {
        if let Some(stem) = sample_name.strip_suffix(suffix) {
            if matches!(expo.types.get(stem).map(String::as_str), Some("summary" | "histogram")) {
                return Some(stem);
            }
        }
    }
    None
}

/// Parses and lints one exposition. Checks, on top of parsing:
///
/// - every metric/label name is well-formed;
/// - every sample belongs to a declared `# TYPE` family (family names are
///   unique by construction — duplicates already fail the parse);
/// - every value is not NaN (counters and our gauges never emit NaN);
/// - counter samples are non-negative;
/// - no two samples share a series identity (name + label set).
pub fn lint_exposition(text: &str) -> Result<Exposition, String> {
    let expo = parse_exposition(text)?;
    for name in expo.types.keys() {
        if !valid_name(name) {
            return Err(format!("invalid family name `{name}`"));
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for s in &expo.samples {
        if !valid_name(&s.name) {
            return Err(format!("invalid metric name `{}`", s.name));
        }
        let Some(family) = family_of(&expo, &s.name) else {
            return Err(format!("sample `{}` has no # TYPE declaration", s.name));
        };
        if s.value.is_nan() {
            return Err(format!("sample `{}` is NaN", s.name));
        }
        if expo.types[family] == "counter" && s.value < 0.0 {
            return Err(format!("counter `{}` is negative ({})", s.name, s.value));
        }
        if !seen.insert(s.series_id()) {
            return Err(format!("duplicate series `{}`", s.series_id()));
        }
    }
    Ok(expo)
}

/// Given two scrapes of the same endpoint (`before` first), checks every
/// counter series present in both is monotone non-decreasing. Returns the
/// number of counter series compared.
pub fn assert_counters_monotone(before: &Exposition, after: &Exposition) -> Result<usize, String> {
    let mut earlier: BTreeMap<String, f64> = BTreeMap::new();
    for s in &before.samples {
        if family_of(before, &s.name).map(|f| before.types[f].as_str()) == Some("counter") {
            earlier.insert(s.series_id(), s.value);
        }
    }
    let mut compared = 0;
    for s in &after.samples {
        if let Some(&was) = earlier.get(&s.series_id()) {
            if s.value < was {
                return Err(format!(
                    "counter `{}` went backwards: {} -> {}",
                    s.series_id(),
                    was,
                    s.value
                ));
            }
            compared += 1;
        }
    }
    Ok(compared)
}
