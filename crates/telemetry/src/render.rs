//! [`RuntimeStats`] → Prometheus text exposition format (version 0.0.4).
//!
//! Pure string rendering: no I/O, no locks, deterministic for a given
//! snapshot. The renderer is what the [`MetricsServer`](crate::MetricsServer)
//! serves and what the e2e tests compare against [`RuntimeStats`] field by
//! field. Histograms are exported as Prometheus *summaries* (pre-computed
//! quantiles, `_sum`, `_count`) because the log-bucketed edges are an
//! implementation detail — plus an explicit `_max` gauge per family, which
//! a summary cannot carry but an operator staring at deadline overshoot
//! wants.

use geosphere_core::DetectorTier;
use gs_prof::hist::HistogramSnapshot;
use gs_prof::trace;
use gs_runtime::RuntimeStats;
use std::fmt::Write as _;

/// Quantiles exported for every histogram-backed summary family.
pub const QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Default cap on per-client latency summary lanes. Clients beyond the
/// cap are merged into one `client="other"` lane so a base station with
/// hundreds of attached clients cannot blow up scrape cardinality.
pub const DEFAULT_MAX_CLIENT_LANES: usize = 16;

const NS_PER_SEC: f64 = 1e9;

/// Appends one `# TYPE` header.
fn type_line(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one unlabeled sample.
fn sample(out: &mut String, name: &str, value: f64) {
    let _ = writeln!(out, "{name} {value}");
}

/// Appends one sample with a single `key="value"` label.
fn sample1(out: &mut String, name: &str, key: &str, label: &str, value: f64) {
    let _ = writeln!(out, "{name}{{{key}=\"{label}\"}} {value}");
}

/// Renders nanosecond histograms as one summary family in **seconds**,
/// one series per `(key, value)` label.
fn summary(out: &mut String, name: &str, key: &str, series: &[(String, &HistogramSnapshot)]) {
    type_line(out, name, "summary");
    for (value, hist) in series {
        for q in QUANTILES {
            let _ = writeln!(
                out,
                "{name}{{{key}=\"{value}\",quantile=\"{q}\"}} {}",
                hist.quantile(q) as f64 / NS_PER_SEC
            );
        }
        sample1(out, &format!("{name}_sum"), key, value, hist.sum() as f64 / NS_PER_SEC);
        sample1(out, &format!("{name}_count"), key, value, hist.count() as f64);
    }
    // The exact observed maximum, as its own gauge family (summaries have
    // no max series in the exposition format).
    let max_name = format!("{name}_max");
    type_line(out, &max_name, "gauge");
    for (value, hist) in series {
        sample1(out, &max_name, key, value, hist.max() as f64 / NS_PER_SEC);
    }
}

/// Renders an *unlabeled* summary family from one histogram.
fn summary_single(out: &mut String, name: &str, hist: &HistogramSnapshot) {
    type_line(out, name, "summary");
    for q in QUANTILES {
        let _ =
            writeln!(out, "{name}{{quantile=\"{q}\"}} {}", hist.quantile(q) as f64 / NS_PER_SEC);
    }
    sample(out, &format!("{name}_sum"), hist.sum() as f64 / NS_PER_SEC);
    sample(out, &format!("{name}_count"), hist.count() as f64);
    type_line(out, &format!("{name}_max"), "gauge");
    sample(out, &format!("{name}_max"), hist.max() as f64 / NS_PER_SEC);
}

/// Renders a [`RuntimeStats`] snapshot as a complete Prometheus text
/// exposition: lifetime counters, instantaneous gauges (including the
/// corrected windowed rates), latency/queue-wait/deadline summaries, and
/// — when the workspace is built with `--features profile` — the
/// stage-attributed cycle table as `gs_stage_*_total{stage=...}` series.
///
/// Every metric name is emitted exactly once with a `# TYPE` header, so
/// the output always passes [`lint_exposition`](crate::lint_exposition).
///
/// Per-client latency lanes are capped at [`DEFAULT_MAX_CLIENT_LANES`];
/// use [`render_runtime_stats_capped`] to pick a different cap.
pub fn render_runtime_stats(stats: &RuntimeStats) -> String {
    render_runtime_stats_capped(stats, DEFAULT_MAX_CLIENT_LANES)
}

/// [`render_runtime_stats`] with an explicit cap on per-client latency
/// lanes: clients `0..cap` keep their own `client="<i>"` series (stable
/// labels — a client's lane never changes identity as others join), and
/// everything at index `cap` and beyond is merged into a single
/// `client="other"` summary. A cap of 0 folds every client into `other`.
pub fn render_runtime_stats_capped(stats: &RuntimeStats, max_client_lanes: usize) -> String {
    let mut out = String::with_capacity(4096);

    // Lifetime pipeline counters, in stage order (already clamped
    // monotone by the snapshot).
    for (name, v) in [
        ("gs_frames_submitted_total", stats.submitted),
        ("gs_frames_planned_total", stats.planned),
        ("gs_frames_detected_total", stats.detected),
        ("gs_frames_recovered_total", stats.recovered),
        ("gs_frames_completed_total", stats.completed),
        ("gs_deadline_misses_total", stats.deadline_misses),
    ] {
        type_line(&mut out, name, "counter");
        sample(&mut out, name, v as f64);
    }

    type_line(&mut out, "gs_tier_admissions_total", "counter");
    for tier in DetectorTier::ALL {
        sample1(
            &mut out,
            "gs_tier_admissions_total",
            "tier",
            tier.name(),
            stats.tier_admissions[tier.index()] as f64,
        );
    }

    // Instantaneous gauges.
    for (name, v) in [
        ("gs_current_tier", stats.current_tier.index() as f64),
        ("gs_in_flight", stats.in_flight as f64),
        ("gs_capacity", stats.capacity as f64),
        ("gs_occupancy", stats.occupancy()),
        ("gs_shards", stats.shards as f64),
        ("gs_workers", stats.workers as f64),
        ("gs_uptime_seconds", stats.elapsed.as_secs_f64()),
        ("gs_frames_per_sec", stats.frames_per_sec),
        ("gs_windowed_frames_per_sec", stats.windowed_frames_per_sec),
        ("gs_windowed_miss_rate", stats.windowed_miss_rate),
    ] {
        type_line(&mut out, name, "gauge");
        sample(&mut out, name, v);
    }

    type_line(&mut out, "gs_shard_queue_depth", "gauge");
    for (i, depth) in stats.shard_queue_depths.iter().enumerate() {
        sample1(&mut out, "gs_shard_queue_depth", "shard", &i.to_string(), *depth as f64);
    }

    // Latency summaries (nanosecond histograms exported in seconds).
    // Per-client lanes are capped: the tail merges into `client="other"`.
    let mut other = HistogramSnapshot::empty();
    let mut per_client: Vec<(String, &HistogramSnapshot)> = Vec::new();
    for (i, h) in stats.latency_per_client.iter().enumerate() {
        if i < max_client_lanes {
            per_client.push((i.to_string(), h));
        } else {
            other.merge(h);
        }
    }
    if stats.latency_per_client.len() > max_client_lanes {
        per_client.push((String::from("other"), &other));
    }
    summary(&mut out, "gs_submit_delivery_latency_seconds", "client", &per_client);

    let per_shard: Vec<(String, &HistogramSnapshot)> =
        stats.queue_wait_per_shard.iter().enumerate().map(|(i, h)| (i.to_string(), h)).collect();
    summary(&mut out, "gs_shard_queue_wait_seconds", "shard", &per_shard);

    summary_single(&mut out, "gs_deadline_slack_seconds", &stats.deadline_slack);
    summary_single(&mut out, "gs_deadline_lateness_seconds", &stats.deadline_lateness);

    // Stage-attributed cycle table (all-zero and therefore elided unless
    // the workspace was built with the `profile` feature).
    if gs_prof::enabled() {
        let profile = stats.stage_profile();
        type_line(&mut out, "gs_stage_cycles_total", "counter");
        for r in &profile.stages {
            sample1(&mut out, "gs_stage_cycles_total", "stage", r.stage.name(), r.cycles as f64);
        }
        type_line(&mut out, "gs_stage_invocations_total", "counter");
        for r in &profile.stages {
            sample1(
                &mut out,
                "gs_stage_invocations_total",
                "stage",
                r.stage.name(),
                r.invocations as f64,
            );
        }
        type_line(&mut out, "gs_stage_bytes_total", "counter");
        for r in &profile.stages {
            sample1(&mut out, "gs_stage_bytes_total", "stage", r.stage.name(), r.bytes as f64);
        }
    }

    // Flight-recorder anomaly families. Trigger counts are maintained even
    // when the recorder is compiled out, so these are always present (the
    // dump gauge just stays 0 without `--features trace`).
    type_line(&mut out, "gs_trace_triggers_total", "counter");
    let triggers = trace::trigger_counts();
    for t in trace::Trigger::ALL {
        sample1(
            &mut out,
            "gs_trace_triggers_total",
            "trigger",
            t.name(),
            triggers[t.index()] as f64,
        );
    }
    type_line(&mut out, "gs_trace_dumps", "gauge");
    sample(&mut out, "gs_trace_dumps", trace::dump_count() as f64);
    type_line(&mut out, "gs_trace_recording_enabled", "gauge");
    sample(&mut out, "gs_trace_recording_enabled", trace::recording_enabled() as u64 as f64);

    out
}

/// Sentinel-aware integer: [`trace::NO_SHARD`]-style "none" markers render
/// as `-1` so the JSON consumer gets one honest convention instead of
/// magic max values.
fn opt_int(raw: u64, none: u64) -> i64 {
    if raw == none {
        -1
    } else {
        raw as i64
    }
}

/// Renders the retained flight-recorder dumps as the `/trace` JSON
/// payload: trigger counters, recorder state, and — per dump — the
/// assembled per-frame timelines with span/instant offsets in
/// microseconds relative to each dump's earliest event. Hand-rolled like
/// the rest of the crate (no serde in an offline workspace); every string
/// emitted is a static identifier, so no escaping is needed.
pub fn render_trace_dumps(dumps: &[trace::TraceDump]) -> String {
    let mut out = String::with_capacity(1024 + dumps.len() * 4096);
    out.push_str("{\"recording_enabled\":");
    let _ = write!(out, "{}", trace::recording_enabled());
    let _ = write!(out, ",\"armed\":{}", trace::armed());
    out.push_str(",\"triggers\":{");
    let triggers = trace::trigger_counts();
    for (i, t) in trace::Trigger::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", t.name(), triggers[t.index()]);
    }
    out.push_str("},\"dumps\":[");
    for (di, dump) in dumps.iter().enumerate() {
        if di > 0 {
            out.push(',');
        }
        let tpu = if dump.ticks_per_us > 0.0 { dump.ticks_per_us } else { 1.0 };
        let t0 = dump.events.iter().map(|e| e.tsc).min().unwrap_or(0);
        let us = |t: u64| t.saturating_sub(t0) as f64 / tpu;
        let _ = write!(
            out,
            "{{\"seq\":{},\"trigger\":\"{}\",\"frame\":{},\"unix_ms\":{},\"event_count\":{},\"timelines\":[",
            dump.seq,
            dump.trigger.name(),
            opt_int(dump.frame, trace::NO_FRAME),
            dump.unix_ms,
            dump.events.len()
        );
        for (ti, tl) in dump.timelines.iter().enumerate() {
            if ti > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"frame\":{},\"client\":{},\"tier\":{},\"begin_us\":{:.3},\"duration_us\":{:.3},\"spans\":[",
                tl.frame,
                opt_int(tl.client as u64, trace::NO_CLIENT as u64),
                opt_int(tl.tier as u64, trace::NO_TIER as u64),
                us(tl.begin),
                us(tl.end) - us(tl.begin)
            );
            for (si, s) in tl.spans.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"point\":\"{}\",\"thread\":{},\"shard\":{},\"start_us\":{:.3},\"dur_us\":{:.3}}}",
                    s.point.name(),
                    s.thread,
                    opt_int(s.shard as u64, trace::NO_SHARD as u64),
                    us(s.begin),
                    us(s.end) - us(s.begin)
                );
            }
            out.push_str("],\"instants\":[");
            for (ii, ev) in tl.instants.iter().enumerate() {
                if ii > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"point\":\"{}\",\"thread\":{},\"shard\":{},\"at_us\":{:.3}}}",
                    ev.point.name(),
                    ev.thread,
                    opt_int(ev.shard as u64, trace::NO_SHARD as u64),
                    us(ev.tsc)
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}
