//! [`RuntimeStats`] → Prometheus text exposition format (version 0.0.4).
//!
//! Pure string rendering: no I/O, no locks, deterministic for a given
//! snapshot. The renderer is what the [`MetricsServer`](crate::MetricsServer)
//! serves and what the e2e tests compare against [`RuntimeStats`] field by
//! field. Histograms are exported as Prometheus *summaries* (pre-computed
//! quantiles, `_sum`, `_count`) because the log-bucketed edges are an
//! implementation detail — plus an explicit `_max` gauge per family, which
//! a summary cannot carry but an operator staring at deadline overshoot
//! wants.

use geosphere_core::DetectorTier;
use gs_prof::hist::HistogramSnapshot;
use gs_runtime::RuntimeStats;
use std::fmt::Write as _;

/// Quantiles exported for every histogram-backed summary family.
pub const QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

const NS_PER_SEC: f64 = 1e9;

/// Appends one `# TYPE` header.
fn type_line(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one unlabeled sample.
fn sample(out: &mut String, name: &str, value: f64) {
    let _ = writeln!(out, "{name} {value}");
}

/// Appends one sample with a single `key="value"` label.
fn sample1(out: &mut String, name: &str, key: &str, label: &str, value: f64) {
    let _ = writeln!(out, "{name}{{{key}=\"{label}\"}} {value}");
}

/// Renders nanosecond histograms as one summary family in **seconds**,
/// one series per `(key, value)` label.
fn summary(out: &mut String, name: &str, key: &str, series: &[(String, &HistogramSnapshot)]) {
    type_line(out, name, "summary");
    for (value, hist) in series {
        for q in QUANTILES {
            let _ = writeln!(
                out,
                "{name}{{{key}=\"{value}\",quantile=\"{q}\"}} {}",
                hist.quantile(q) as f64 / NS_PER_SEC
            );
        }
        sample1(out, &format!("{name}_sum"), key, value, hist.sum() as f64 / NS_PER_SEC);
        sample1(out, &format!("{name}_count"), key, value, hist.count() as f64);
    }
    // The exact observed maximum, as its own gauge family (summaries have
    // no max series in the exposition format).
    let max_name = format!("{name}_max");
    type_line(out, &max_name, "gauge");
    for (value, hist) in series {
        sample1(out, &max_name, key, value, hist.max() as f64 / NS_PER_SEC);
    }
}

/// Renders an *unlabeled* summary family from one histogram.
fn summary_single(out: &mut String, name: &str, hist: &HistogramSnapshot) {
    type_line(out, name, "summary");
    for q in QUANTILES {
        let _ =
            writeln!(out, "{name}{{quantile=\"{q}\"}} {}", hist.quantile(q) as f64 / NS_PER_SEC);
    }
    sample(out, &format!("{name}_sum"), hist.sum() as f64 / NS_PER_SEC);
    sample(out, &format!("{name}_count"), hist.count() as f64);
    type_line(out, &format!("{name}_max"), "gauge");
    sample(out, &format!("{name}_max"), hist.max() as f64 / NS_PER_SEC);
}

/// Renders a [`RuntimeStats`] snapshot as a complete Prometheus text
/// exposition: lifetime counters, instantaneous gauges (including the
/// corrected windowed rates), latency/queue-wait/deadline summaries, and
/// — when the workspace is built with `--features profile` — the
/// stage-attributed cycle table as `gs_stage_*_total{stage=...}` series.
///
/// Every metric name is emitted exactly once with a `# TYPE` header, so
/// the output always passes [`lint_exposition`](crate::lint_exposition).
pub fn render_runtime_stats(stats: &RuntimeStats) -> String {
    let mut out = String::with_capacity(4096);

    // Lifetime pipeline counters, in stage order (already clamped
    // monotone by the snapshot).
    for (name, v) in [
        ("gs_frames_submitted_total", stats.submitted),
        ("gs_frames_planned_total", stats.planned),
        ("gs_frames_detected_total", stats.detected),
        ("gs_frames_recovered_total", stats.recovered),
        ("gs_frames_completed_total", stats.completed),
        ("gs_deadline_misses_total", stats.deadline_misses),
    ] {
        type_line(&mut out, name, "counter");
        sample(&mut out, name, v as f64);
    }

    type_line(&mut out, "gs_tier_admissions_total", "counter");
    for tier in DetectorTier::ALL {
        sample1(
            &mut out,
            "gs_tier_admissions_total",
            "tier",
            tier.name(),
            stats.tier_admissions[tier.index()] as f64,
        );
    }

    // Instantaneous gauges.
    for (name, v) in [
        ("gs_current_tier", stats.current_tier.index() as f64),
        ("gs_in_flight", stats.in_flight as f64),
        ("gs_capacity", stats.capacity as f64),
        ("gs_occupancy", stats.occupancy()),
        ("gs_shards", stats.shards as f64),
        ("gs_workers", stats.workers as f64),
        ("gs_uptime_seconds", stats.elapsed.as_secs_f64()),
        ("gs_frames_per_sec", stats.frames_per_sec),
        ("gs_windowed_frames_per_sec", stats.windowed_frames_per_sec),
        ("gs_windowed_miss_rate", stats.windowed_miss_rate),
    ] {
        type_line(&mut out, name, "gauge");
        sample(&mut out, name, v);
    }

    type_line(&mut out, "gs_shard_queue_depth", "gauge");
    for (i, depth) in stats.shard_queue_depths.iter().enumerate() {
        sample1(&mut out, "gs_shard_queue_depth", "shard", &i.to_string(), *depth as f64);
    }

    // Latency summaries (nanosecond histograms exported in seconds).
    let per_client: Vec<(String, &HistogramSnapshot)> =
        stats.latency_per_client.iter().enumerate().map(|(i, h)| (i.to_string(), h)).collect();
    summary(&mut out, "gs_submit_delivery_latency_seconds", "client", &per_client);

    let per_shard: Vec<(String, &HistogramSnapshot)> =
        stats.queue_wait_per_shard.iter().enumerate().map(|(i, h)| (i.to_string(), h)).collect();
    summary(&mut out, "gs_shard_queue_wait_seconds", "shard", &per_shard);

    summary_single(&mut out, "gs_deadline_slack_seconds", &stats.deadline_slack);
    summary_single(&mut out, "gs_deadline_lateness_seconds", &stats.deadline_lateness);

    // Stage-attributed cycle table (all-zero and therefore elided unless
    // the workspace was built with the `profile` feature).
    if gs_prof::enabled() {
        let profile = stats.stage_profile();
        type_line(&mut out, "gs_stage_cycles_total", "counter");
        for r in &profile.stages {
            sample1(&mut out, "gs_stage_cycles_total", "stage", r.stage.name(), r.cycles as f64);
        }
        type_line(&mut out, "gs_stage_invocations_total", "counter");
        for r in &profile.stages {
            sample1(
                &mut out,
                "gs_stage_invocations_total",
                "stage",
                r.stage.name(),
                r.invocations as f64,
            );
        }
        type_line(&mut out, "gs_stage_bytes_total", "counter");
        for r in &profile.stages {
            sample1(&mut out, "gs_stage_bytes_total", "stage", r.stage.name(), r.bytes as f64);
        }
    }

    out
}
