//! The ops endpoint: a minimal HTTP/1.1 server over std
//! [`TcpListener`] — no async runtime, no HTTP crate, no new
//! dependencies. One accept thread serves `/metrics` (Prometheus text),
//! `/trace` (flight-recorder dump JSON), `/trace/latest` (Chrome
//! trace-event export of the newest dump), and `/` (the live dashboard).
//! Every response renders from a fresh snapshot per request; scrapes
//! never touch the frame hot path beyond relaxed atomic reads.

use crate::dashboard::DASHBOARD_HTML;
use crate::render::{render_runtime_stats_capped, render_trace_dumps, DEFAULT_MAX_CLIENT_LANES};
use gs_prof::trace;
use gs_runtime::FrameStream;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection I/O deadline: a stuck scraper must not wedge the
/// single-threaded accept loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Overall deadline for one [`scrape`]: covers connect plus the whole
/// response, so a byte-at-a-time server cannot keep the client pinned by
/// resetting the per-read timeout forever.
const SCRAPE_DEADLINE: Duration = Duration::from_secs(5);

/// Environment variable overriding the per-client latency-lane cap
/// ([`DEFAULT_MAX_CLIENT_LANES`]) for a spawned server.
pub const MAX_CLIENT_LANES_ENV: &str = "GS_METRICS_MAX_CLIENT_LANES";

/// A running ops endpoint bound to a local TCP port.
///
/// Serves `GET /metrics` (text format 0.0.4) rendered from the stream's
/// [`stats`](FrameStream::stats) snapshot at request time, `GET /trace`
/// (retained flight-recorder dumps as JSON), `GET /trace/latest` (the
/// newest dump as Chrome trace-event JSON, Perfetto-loadable), and
/// `GET /` (the live dashboard). Any other path gets `404`, any other
/// method `405`. The server owns one accept thread and shuts down on
/// [`Drop`] (or explicit [`MetricsServer::shutdown`]), joining the
/// thread so no socket outlives the value.
///
/// The per-client latency-lane cap defaults to
/// [`DEFAULT_MAX_CLIENT_LANES`], overridable via the
/// [`MAX_CLIENT_LANES_ENV`] environment variable (read once at spawn).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (use port 0 to let the OS pick — read it back with
    /// [`MetricsServer::addr`]) and starts serving the stream's stats.
    pub fn spawn(addr: &str, stream: Arc<FrameStream>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let lanes = std::env::var(MAX_CLIENT_LANES_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_MAX_CLIENT_LANES);
        let handle = std::thread::Builder::new().name("gs-metrics".into()).spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                // Serve inline: scrapes are rare, tiny, and deadline-bounded.
                let _ = serve_one(conn, &stream, lanes);
            }
        })?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address, e.g. to build a scrape URL for port 0 binds.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent;
    /// also called by [`Drop`].
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            // The accept loop is parked in `accept`; poke it awake with a
            // throwaway connection to our own port.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handles one connection: parse the request line, answer, close.
fn serve_one(conn: TcpStream, stream: &Arc<FrameStream>, lanes: usize) -> std::io::Result<()> {
    conn.set_read_timeout(Some(IO_TIMEOUT))?;
    conn.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(conn);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so the peer never sees a reset before our response.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut conn = reader.into_inner();

    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4",
            render_runtime_stats_capped(&stream.stats(), lanes),
        ),
        ("GET", "/") | ("GET", "/index.html") => {
            ("200 OK", "text/html; charset=utf-8", DASHBOARD_HTML.to_string())
        }
        ("GET", "/trace") => {
            ("200 OK", "application/json", render_trace_dumps(&trace::recent_dumps()))
        }
        ("GET", "/trace/latest") => match trace::recent_dumps().last() {
            Some(dump) => ("200 OK", "application/json", trace::chrome_trace_json(dump)),
            None => ("404 Not Found", "text/plain", String::from("no trace dumps captured\n")),
        },
        ("GET", _) => ("404 Not Found", "text/plain", String::from("not found\n")),
        _ => ("405 Method Not Allowed", "text/plain", String::from("method not allowed\n")),
    };
    write!(
        conn,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()?;
    let _ = conn.shutdown(Shutdown::Both);
    Ok(())
}

/// Performs one `GET` against a [`MetricsServer`] (or anything speaking
/// HTTP/1.1 on `addr`) and returns the response body. Errors on non-200
/// statuses. This is the scrape side of the e2e tests and the CI smoke
/// job — a plain [`TcpStream`], mirroring the server's no-deps stance.
///
/// The whole request — connect, write, and reading the full response —
/// is bounded by a 5 s deadline (see [`scrape_deadline`] for an explicit
/// budget): a per-read timeout alone would let a byte-at-a-time peer
/// hold the client forever by resetting the clock on every byte.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    scrape_deadline(addr, path, SCRAPE_DEADLINE)
}

/// [`scrape`] with an explicit overall deadline.
pub fn scrape_deadline(
    addr: SocketAddr,
    path: &str,
    deadline: Duration,
) -> std::io::Result<String> {
    let start = Instant::now();
    let timed_out = |what: &str| {
        std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("scrape of {path} timed out ({what})"),
        )
    };
    let remaining = |start: Instant| {
        let left = deadline.saturating_sub(start.elapsed());
        if left.is_zero() {
            None
        } else {
            Some(left)
        }
    };
    let mut conn = TcpStream::connect_timeout(&addr, deadline)?;
    conn.set_write_timeout(remaining(start).ok_or_else(|| timed_out("connect"))?.into())?;
    write!(conn, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    conn.flush()?;
    // Read to EOF under the *overall* deadline: each read's timeout is
    // whatever budget is left, not a fresh per-read allowance.
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let Some(left) = remaining(start) else { return Err(timed_out("read")) };
        conn.set_read_timeout(Some(left))?;
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(timed_out("read"))
            }
            Err(e) => return Err(e),
        }
    }
    let response = String::from_utf8(response)
        .map_err(|_| std::io::Error::other("non-UTF-8 response body"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("no header/body separator in response"))?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains("200") {
        return Err(std::io::Error::other(format!("scrape of {path} failed: {status_line}")));
    }
    Ok(body.to_string())
}
