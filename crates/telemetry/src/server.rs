//! The `/metrics` endpoint: a minimal HTTP/1.1 server over std
//! [`TcpListener`] — no async runtime, no HTTP crate, no new
//! dependencies. One accept thread renders a fresh [`RuntimeStats`]
//! snapshot per request; scrapes never touch the frame hot path beyond
//! the relaxed atomic reads a snapshot performs.

use crate::render::render_runtime_stats;
use gs_runtime::FrameStream;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection I/O deadline: a stuck scraper must not wedge the
/// single-threaded accept loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running Prometheus scrape endpoint bound to a local TCP port.
///
/// Serves `GET /metrics` (text format 0.0.4) rendered from the stream's
/// [`stats`](FrameStream::stats) snapshot at request time; any other path
/// gets `404`, any other method `405`. The server owns one accept thread
/// and shuts down on [`Drop`] (or explicit [`MetricsServer::shutdown`]),
/// joining the thread so no socket outlives the value.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (use port 0 to let the OS pick — read it back with
    /// [`MetricsServer::addr`]) and starts serving the stream's stats.
    pub fn spawn(addr: &str, stream: Arc<FrameStream>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new().name("gs-metrics".into()).spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                // Serve inline: scrapes are rare, tiny, and deadline-bounded.
                let _ = serve_one(conn, &stream);
            }
        })?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address, e.g. to build a scrape URL for port 0 binds.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent;
    /// also called by [`Drop`].
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            // The accept loop is parked in `accept`; poke it awake with a
            // throwaway connection to our own port.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handles one connection: parse the request line, answer, close.
fn serve_one(conn: TcpStream, stream: &Arc<FrameStream>) -> std::io::Result<()> {
    conn.set_read_timeout(Some(IO_TIMEOUT))?;
    conn.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(conn);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so the peer never sees a reset before our response.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut conn = reader.into_inner();

    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = match (method, path) {
        ("GET", "/metrics") => ("200 OK", render_runtime_stats(&stream.stats())),
        ("GET", _) => ("404 Not Found", String::from("not found\n")),
        _ => ("405 Method Not Allowed", String::from("method not allowed\n")),
    };
    let content_type =
        if status.starts_with("200") { "text/plain; version=0.0.4" } else { "text/plain" };
    write!(
        conn,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()?;
    let _ = conn.shutdown(Shutdown::Both);
    Ok(())
}

/// Performs one `GET` against a [`MetricsServer`] (or anything speaking
/// HTTP/1.1 on `addr`) and returns the response body. Errors on non-200
/// statuses. This is the scrape side of the e2e tests and the CI smoke
/// job — a plain [`TcpStream`], mirroring the server's no-deps stance.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(IO_TIMEOUT))?;
    conn.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(conn, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    conn.flush()?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("no header/body separator in response"))?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains("200") {
        return Err(std::io::Error::other(format!("scrape of {path} failed: {status_line}")));
    }
    Ok(body.to_string())
}
