//! Operations cockpit for the Geosphere streaming runtime: a Prometheus
//! text-format `/metrics` endpoint over [`gs_runtime::RuntimeStats`].
//!
//! The paper's base-station framing makes the runtime an *operated*
//! system, and operated systems get scraped: this crate turns the
//! snapshot the control plane already consumes into the exposition a
//! dashboard consumes, without adding a single dependency — the server is
//! std [`std::net::TcpListener`] plus a hand-rolled slice of HTTP/1.1
//! (the workspace builds offline, so `hyper`/`prometheus` were never on
//! the table).
//!
//! Three layers, deliberately separable:
//!
//! - [`render_runtime_stats`] — pure snapshot → text rendering: lifetime
//!   counters, the corrected windowed rates, tier admissions, per-shard
//!   queue depths, and quantile summaries (p50/p90/p99 with `_sum`,
//!   `_count`, and an exact `_max` gauge) over the zero-allocation log-bucketed
//!   histograms ([`gs_prof::hist`]) the hot path records into. Built with
//!   `--features profile`, the per-stage cycle table rides along as
//!   `gs_stage_*_total{stage=...}`.
//! - [`MetricsServer`] — one accept thread serving `GET /metrics`, the
//!   live dashboard at `/` ([`DASHBOARD_HTML`]), the flight-recorder
//!   dump JSON at `/trace` ([`render_trace_dumps`]), and the newest
//!   dump's Chrome trace-event export at `/trace/latest`; port-0
//!   friendly, joined on drop. [`scrape`] is the matching client, with
//!   an overall response deadline ([`scrape_deadline`]).
//! - [`parse_exposition`] / [`lint_exposition`] /
//!   [`assert_counters_monotone`] — the read side: a small parser the e2e
//!   tests use to compare scraped values against [`gs_runtime::RuntimeStats`]
//!   exactly,
//!   and the lint CI runs against the live endpoint (declared `# TYPE`
//!   per family, unique well-formed names, no NaN, counters monotone
//!   across scrapes).
//!
//! Recording stays allocation-free on the frame path (pinned by
//! `tests/alloc_regression.rs`); rendering allocates freely but only on
//! scrape.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod dashboard;
mod expo;
mod render;
mod server;

pub use dashboard::DASHBOARD_HTML;
pub use expo::{assert_counters_monotone, lint_exposition, parse_exposition, Exposition, Sample};
pub use render::{
    render_runtime_stats, render_runtime_stats_capped, render_trace_dumps,
    DEFAULT_MAX_CLIENT_LANES, QUANTILES,
};
pub use server::{scrape, scrape_deadline, MetricsServer, MAX_CLIENT_LANES_ENV};

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_err(text: &str) -> String {
        lint_exposition(text).expect_err("lint should fail")
    }

    #[test]
    fn parses_names_labels_and_values() {
        let expo = parse_exposition(
            "# HELP x ignored\n# TYPE gs_x_total counter\ngs_x_total 3\n\
             # TYPE gs_lat summary\ngs_lat{client=\"0\",quantile=\"0.5\"} 0.25\n\
             gs_lat_sum{client=\"0\"} 9.5\ngs_lat_count{client=\"0\"} 12\n",
        )
        .unwrap();
        assert_eq!(expo.types["gs_x_total"], "counter");
        assert_eq!(expo.value("gs_x_total", &[]), Some(3.0));
        assert_eq!(expo.value("gs_lat", &[("client", "0"), ("quantile", "0.5")]), Some(0.25));
        assert_eq!(expo.value("gs_lat_count", &[("client", "0")]), Some(12.0));
        assert_eq!(expo.value("gs_lat", &[("client", "1")]), None);
    }

    #[test]
    fn lint_rejects_malformed_expositions() {
        assert!(lint_err("gs_x 1\n").contains("no # TYPE"));
        assert!(lint_err("# TYPE gs_x gauge\n# TYPE gs_x counter\ngs_x 1\n").contains("duplicate"));
        assert!(lint_err("# TYPE gs_x gauge\ngs_x 1\ngs_x 2\n").contains("duplicate series"));
        assert!(lint_err("# TYPE gs_x counter\ngs_x -1\n").contains("negative"));
        assert!(lint_err("# TYPE gs_x gauge\ngs_x NaN\n").contains("NaN"));
        assert!(lint_err("# TYPE 9bad gauge\n").contains("invalid"));
        assert!(parse_exposition("# TYPE gs_x gauge\ngs_x notanumber\n").is_err());
        assert!(parse_exposition("# TYPE gs_x gauge\ngs_x{open=\"1\" 2\n").is_err());
    }

    #[test]
    fn monotone_check_catches_regressing_counter() {
        let a = lint_exposition("# TYPE gs_x_total counter\ngs_x_total 5\n").unwrap();
        let b = lint_exposition("# TYPE gs_x_total counter\ngs_x_total 7\n").unwrap();
        assert_eq!(assert_counters_monotone(&a, &b), Ok(1));
        assert!(assert_counters_monotone(&b, &a).unwrap_err().contains("went backwards"));
    }
}
