//! The live ops dashboard served at `/`: one self-contained HTML page
//! with inline CSS/JS and zero external assets (the workspace builds and
//! runs offline, so no CDN, no chart library). The page polls `/metrics`
//! and `/trace` once a second, parses the Prometheus text exposition in
//! ~20 lines of JS, and renders the operator's working set: windowed
//! fps / miss rate, tier occupancy, per-shard queue depths, per-client
//! latency quantiles, and the recent anomaly timelines the flight
//! recorder retained.

/// The dashboard page, embedded at compile time so the server binary
/// stays a single artifact.
pub const DASHBOARD_HTML: &str = r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Geosphere ops cockpit</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         background: #10141a; color: #d6dde6; margin: 0; padding: 1rem 2rem; }
  h1 { font-size: 1.1rem; color: #7fd1b9; }
  h2 { font-size: .9rem; color: #8aa3b8; border-bottom: 1px solid #2a3442;
       padding-bottom: .2rem; margin-top: 1.4rem; }
  table { border-collapse: collapse; }
  td, th { padding: .15rem .7rem; text-align: right; }
  th { color: #8aa3b8; font-weight: normal; }
  td:first-child, th:first-child { text-align: left; }
  .cards { display: flex; flex-wrap: wrap; gap: .6rem; }
  .card { background: #1a212b; border: 1px solid #2a3442; border-radius: 6px;
          padding: .5rem .9rem; min-width: 9rem; }
  .card .v { font-size: 1.3rem; color: #e8f0f7; }
  .card .k { color: #8aa3b8; font-size: .75rem; }
  .bad .v { color: #ff7a7a; }
  .bar { display: inline-block; height: .7rem; background: #4f8fca;
         vertical-align: middle; min-width: 1px; }
  .anom { background: #1a212b; border: 1px solid #3a2a2a; border-radius: 6px;
          padding: .5rem .9rem; margin-bottom: .6rem; }
  .anom .hdr { color: #ffb27a; }
  .tl { color: #9db4c8; white-space: pre; overflow-x: auto; }
  #err { color: #ff7a7a; }
</style>
</head>
<body>
<h1>Geosphere ops cockpit</h1>
<div id="err"></div>
<div class="cards" id="cards"></div>
<h2>Shard queue depths</h2>
<div id="shards"></div>
<h2>Tier admissions</h2>
<table id="tiers"></table>
<h2>Submit&rarr;delivery latency (s)</h2>
<table id="lat"></table>
<h2>Recent anomalies</h2>
<div id="anoms">none yet</div>
<script>
"use strict";
// Prometheus text -> { name -> [{labels:{}, value}] }.
function parseProm(text) {
  const fams = {};
  for (const line of text.split("\n")) {
    if (!line || line[0] === "#") continue;
    const sp = line.lastIndexOf(" ");
    let key = line.slice(0, sp), value = parseFloat(line.slice(sp + 1));
    let name = key, labels = {};
    const br = key.indexOf("{");
    if (br >= 0) {
      name = key.slice(0, br);
      for (const kv of key.slice(br + 1, key.length - 1).split(",")) {
        const eq = kv.indexOf("=");
        if (eq > 0) labels[kv.slice(0, eq)] = kv.slice(eq + 2, kv.length - 1);
      }
    }
    (fams[name] = fams[name] || []).push({ labels, value });
  }
  return fams;
}
function one(fams, name) {
  const f = fams[name];
  return f && f.length ? f[0].value : NaN;
}
function fmt(v, d) { return isFinite(v) ? v.toFixed(d === undefined ? 1 : d) : "–"; }
function card(k, v, bad) {
  return `<div class="card${bad ? " bad" : ""}"><div class="v">${v}</div><div class="k">${k}</div></div>`;
}
function render(fams, trace) {
  const miss = one(fams, "gs_windowed_miss_rate");
  const tiers = ["zigzag", "hess", "sphere"];
  document.getElementById("cards").innerHTML =
    card("windowed fps", fmt(one(fams, "gs_windowed_frames_per_sec"))) +
    card("windowed miss rate", fmt(miss * 100, 2) + "%", miss > 0) +
    card("tier", tiers[one(fams, "gs_current_tier")] || fmt(one(fams, "gs_current_tier"), 0)) +
    card("occupancy", fmt(one(fams, "gs_occupancy") * 100) + "%") +
    card("in flight", fmt(one(fams, "gs_in_flight"), 0) + "/" + fmt(one(fams, "gs_capacity"), 0)) +
    card("completed", fmt(one(fams, "gs_frames_completed_total"), 0)) +
    card("deadline misses", fmt(one(fams, "gs_deadline_misses_total"), 0),
         one(fams, "gs_deadline_misses_total") > 0) +
    card("trace dumps", fmt(one(fams, "gs_trace_dumps"), 0)) +
    card("uptime", fmt(one(fams, "gs_uptime_seconds"), 0) + "s");
  const depths = fams["gs_shard_queue_depth"] || [];
  document.getElementById("shards").innerHTML = depths.map(s =>
    `shard ${s.labels.shard}: <span class="bar" style="width:${8 * s.value}px"></span> ${s.value}`
  ).join("<br>");
  const adm = fams["gs_tier_admissions_total"] || [];
  document.getElementById("tiers").innerHTML =
    "<tr><th>tier</th><th>admissions</th></tr>" +
    adm.map(s => `<tr><td>${s.labels.tier}</td><td>${s.value}</td></tr>`).join("");
  const lat = fams["gs_submit_delivery_latency_seconds"] || [];
  const byClient = {};
  for (const s of lat) (byClient[s.labels.client] = byClient[s.labels.client] || {})[s.labels.quantile] = s.value;
  document.getElementById("lat").innerHTML =
    "<tr><th>client</th><th>p50</th><th>p90</th><th>p99</th></tr>" +
    Object.keys(byClient).map(c => {
      const q = byClient[c];
      return `<tr><td>${c}</td><td>${fmt(q["0.5"], 4)}</td><td>${fmt(q["0.9"], 4)}</td><td>${fmt(q["0.99"], 4)}</td></tr>`;
    }).join("");
  const dumps = (trace && trace.dumps) || [];
  if (dumps.length) {
    document.getElementById("anoms").innerHTML = dumps.slice().reverse().map(d => {
      const focus = d.timelines.filter(t => t.frame === d.frame).concat(d.timelines).slice(0, 3);
      const lines = focus.map(t =>
        `  frame ${t.frame} (client ${t.client}): ` +
        t.spans.map(s => `${s.point}@${fmt(s.start_us, 0)}us+${fmt(s.dur_us, 0)}`).join(" ")
      ).join("\n");
      return `<div class="anom"><div class="hdr">#${d.seq} ${d.trigger} — frame ${d.frame}, ` +
             `${d.event_count} events, ${d.timelines.length} frame timelines</div>` +
             `<div class="tl">${lines}</div></div>`;
    }).join("");
  }
}
async function tick() {
  try {
    const [m, t] = await Promise.all([
      fetch("/metrics").then(r => r.text()),
      fetch("/trace").then(r => r.json()),
    ]);
    render(parseProm(m), t);
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent = "poll failed: " + e;
  }
}
tick();
setInterval(tick, 1000);
</script>
</body>
</html>
"##;
