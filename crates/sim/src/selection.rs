//! SNR-band user selection (paper §5.2 methodology).
//!
//! "We consider three SNR ranges, 15 dB ±5 dB, 20 dB ±5 dB, and 25 dB ±5
//! dB, where the quoted SNR is the average SNR over all transmitted
//! streams. Selecting users in a small SNR range around a specific value is
//! a practical user selection method to keep the condition number small."

use gs_channel::Testbed;

/// A selected uplink group: one AP, a set of clients, and the group's
/// average link SNR.
#[derive(Clone, Debug)]
pub struct UserGroup {
    /// AP index in the testbed.
    pub ap: usize,
    /// Client indices.
    pub clients: Vec<usize>,
    /// Mean large-scale link SNR over the group (dB).
    pub mean_snr_db: f64,
}

/// Selects up to `max_groups` groups of `n_clients` whose per-client link
/// SNRs all fall within `target ± half_width` dB, preferring groups whose
/// mean is closest to the target. Falls back to closest-mean groups when
/// the strict band is under-populated (mirroring a real measurement
/// campaign that reuses the positions it has).
pub fn select_groups(
    tb: &Testbed,
    n_clients: usize,
    target_snr_db: f64,
    half_width_db: f64,
    max_groups: usize,
) -> Vec<UserGroup> {
    let mut in_band: Vec<UserGroup> = Vec::new();
    let mut near_band: Vec<(f64, UserGroup)> = Vec::new();

    for ap in 0..tb.aps.len() {
        for subset in tb.client_subsets(n_clients) {
            let snrs: Vec<f64> = subset.iter().map(|&c| tb.link_snr_db(ap, c)).collect();
            let mean = snrs.iter().sum::<f64>() / snrs.len() as f64;
            let group = UserGroup { ap, clients: subset, mean_snr_db: mean };
            let all_in = snrs.iter().all(|s| (s - target_snr_db).abs() <= half_width_db);
            if all_in {
                in_band.push(group);
            } else {
                near_band.push(((mean - target_snr_db).abs(), group));
            }
        }
    }

    in_band.sort_by(|a, b| {
        (a.mean_snr_db - target_snr_db)
            .abs()
            .partial_cmp(&(b.mean_snr_db - target_snr_db).abs())
            .unwrap()
    });
    if in_band.len() >= max_groups {
        in_band.truncate(max_groups);
        return in_band;
    }
    near_band.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    in_band.extend(near_band.into_iter().map(|(_, g)| g).take(max_groups - in_band.len()));
    in_band
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_requested_count() {
        let tb = Testbed::office();
        for n in 1..=4 {
            let groups = select_groups(&tb, n, 20.0, 5.0, 6);
            assert_eq!(groups.len(), 6, "n = {n}");
            for g in &groups {
                assert_eq!(g.clients.len(), n);
                assert!(g.ap < tb.aps.len());
            }
        }
    }

    #[test]
    fn groups_ordered_by_band_fit() {
        let tb = Testbed::office();
        let groups = select_groups(&tb, 2, 20.0, 5.0, 10);
        // The first group's mean must be the best fit of the list's
        // in-band prefix.
        let d0 = (groups[0].mean_snr_db - 20.0).abs();
        assert!(d0 <= (groups[1].mean_snr_db - 20.0).abs() + 10.0);
        // All selected groups have plausible SNRs.
        for g in &groups {
            assert!(g.mean_snr_db.is_finite());
        }
    }

    #[test]
    fn different_targets_select_different_groups() {
        let tb = Testbed::office();
        let low = select_groups(&tb, 2, 12.0, 5.0, 5);
        let high = select_groups(&tb, 2, 28.0, 5.0, 5);
        assert!(low[0].mean_snr_db < high[0].mean_snr_db);
    }
}
