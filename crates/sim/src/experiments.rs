//! Experiment runners for every figure and table in the paper's §5.
//!
//! Each function reproduces one evaluation artifact; the `gs-bench` binaries
//! are thin printers over these. Parameters are scaled by
//! [`ExperimentParams`] so the same code serves quick smoke tests and
//! full-fidelity runs.

use crate::selection::{select_groups, UserGroup};
use geosphere_core::{
    ethsd_decoder, geosphere_decoder, geosphere_zigzag_only_decoder, MimoDetector, MmseDetector,
    MmseSicDetector, ZfDetector,
};
use gs_channel::{noise_variance_for_snr_db, Cdf, RayleighChannel, Testbed};
use gs_modulation::Constellation;
use gs_phy::{
    measure_batched_in, measure_in, snr_for_target_fer, snr_for_target_fer_batched, FrameWorkspace,
    Measurement, PhyConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale knobs shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentParams {
    /// Master RNG seed (every experiment derives from it deterministically).
    pub seed: u64,
    /// Frames measured per (group, constellation, detector) point.
    pub frames_per_point: usize,
    /// Testbed user groups averaged per operating point.
    pub groups_per_point: usize,
    /// Payload bits per client frame.
    pub payload_bits: usize,
    /// Decode worker threads: `1` = the serial reference receive path,
    /// `>1` = fan per-subcarrier detections out via
    /// [`gs_phy::decode_frame_batched`] (`0` = machine parallelism).
    /// Measured numbers are bit-identical either way; only wall-clock
    /// changes. Each experiment holds one [`gs_phy::FrameWorkspace`] for
    /// its *entire* sweep (every SNR point, constellation, and group) and
    /// routes it through [`measure_in`]/[`measure_batched_in`], so
    /// per-frame planning and receive-chain buffers warm up once per run,
    /// not once per point.
    pub workers: usize,
}

impl ExperimentParams {
    /// Fast parameters for smoke tests and CI.
    pub fn quick() -> Self {
        ExperimentParams {
            seed: 2014,
            frames_per_point: 3,
            groups_per_point: 3,
            payload_bits: 512,
            workers: 1,
        }
    }

    /// Full-fidelity parameters for regenerating the figures.
    pub fn full() -> Self {
        ExperimentParams {
            seed: 2014,
            frames_per_point: 12,
            groups_per_point: 8,
            payload_bits: 2048,
            workers: 0,
        }
    }

    /// Routes one measurement through the serial or batched decode path
    /// according to [`ExperimentParams::workers`], recycling the
    /// experiment's sweep-long workspace.
    #[allow(clippy::too_many_arguments)]
    fn measure<M: gs_channel::ChannelModel, D: MimoDetector + ?Sized>(
        &self,
        cfg: &PhyConfig,
        model: &M,
        detector: &D,
        snr_db: f64,
        frames: usize,
        rng: &mut StdRng,
        ws: &mut FrameWorkspace,
    ) -> Measurement {
        if self.workers == 1 {
            measure_in(cfg, model, detector, snr_db, frames, rng, ws)
        } else {
            measure_batched_in(cfg, model, detector, snr_db, frames, rng, self.workers, ws)
        }
    }

    /// Like [`Self::measure`] for the target-FER SNR bisection, so the
    /// calibration phase of the complexity experiments parallelizes too.
    fn snr_for_target_fer<M: gs_channel::ChannelModel, D: MimoDetector + ?Sized>(
        &self,
        cfg: &PhyConfig,
        model: &M,
        detector: &D,
        target_fer: f64,
        frames: usize,
        rng: &mut StdRng,
    ) -> f64 {
        if self.workers == 1 {
            snr_for_target_fer(cfg, model, detector, target_fer, frames, rng)
        } else {
            snr_for_target_fer_batched(cfg, model, detector, target_fer, frames, rng, self.workers)
        }
    }

    fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt))
    }

    fn cfg(&self, c: Constellation) -> PhyConfig {
        PhyConfig { payload_bits: self.payload_bits, ..PhyConfig::new(c) }
    }
}

/// The detectors the evaluation compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// Zero-forcing (the paper's primary baseline).
    Zf,
    /// Linear MMSE.
    Mmse,
    /// MMSE with successive interference cancellation.
    MmseSic,
    /// Full Geosphere (2-D zigzag + geometric pruning).
    Geosphere,
    /// Geosphere ablation: 2-D zigzag only.
    GeosphereZigzagOnly,
    /// The ETH-SD baseline sphere decoder.
    EthSd,
}

impl DetectorKind {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::Zf => "Zero-forcing",
            DetectorKind::Mmse => "MMSE",
            DetectorKind::MmseSic => "MMSE-SIC",
            DetectorKind::Geosphere => "Geosphere",
            DetectorKind::GeosphereZigzagOnly => "Geosphere (2D zigzag only)",
            DetectorKind::EthSd => "ETH-SD",
        }
    }

    /// Builds the detector for a given operating SNR.
    pub fn build(self, snr_db: f64) -> Box<dyn MimoDetector> {
        let sigma2 = noise_variance_for_snr_db(snr_db);
        match self {
            DetectorKind::Zf => Box::new(ZfDetector),
            DetectorKind::Mmse => Box::new(MmseDetector::new(sigma2)),
            DetectorKind::MmseSic => Box::new(MmseSicDetector::new(sigma2)),
            // Sphere decoders carry a generous runtime guard (50k visited
            // nodes per vector): exact ML at every sane operating point, but
            // bounded on hopeless SNR/constellation pairs that rate
            // adaptation probes and discards (e.g. 64-QAM at 10x10, 20 dB).
            DetectorKind::Geosphere => Box::new(geosphere_decoder().with_node_budget(50_000)),
            DetectorKind::GeosphereZigzagOnly => {
                Box::new(geosphere_zigzag_only_decoder().with_node_budget(50_000))
            }
            DetectorKind::EthSd => Box::new(ethsd_decoder().with_node_budget(50_000)),
        }
    }
}

/// One throughput operating point (a bar of Fig. 11/12 or a point of
/// Fig. 13).
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    /// The detector measured.
    pub detector: DetectorKind,
    /// Number of clients.
    pub clients: usize,
    /// AP antennas.
    pub ap_antennas: usize,
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// The oracle-rate-adaptation constellation choice.
    pub constellation: Constellation,
    /// Net uplink throughput (Mbps).
    pub throughput_mbps: f64,
    /// Pooled frame error rate at the chosen constellation.
    pub fer: f64,
    /// Average PED calculations per subcarrier (sphere decoders).
    pub ped_per_subcarrier: f64,
    /// Average visited nodes per subcarrier (sphere decoders).
    pub nodes_per_subcarrier: f64,
}

fn merge_measurements(points: &[Measurement]) -> (f64, f64, f64, f64) {
    let n = points.len().max(1) as f64;
    let mbps = points.iter().map(|m| m.throughput_mbps).sum::<f64>() / n;
    let fer = points.iter().map(|m| m.fer).sum::<f64>() / n;
    let ped = points.iter().map(|m| m.per_subcarrier.ped_calcs).sum::<f64>() / n;
    let nodes = points.iter().map(|m| m.per_subcarrier.visited_nodes).sum::<f64>() / n;
    (mbps, fer, ped, nodes)
}

/// Fig. 11 / Fig. 12 point: testbed uplink throughput with SNR-band user
/// selection and oracle rate adaptation.
pub fn testbed_throughput(
    params: &ExperimentParams,
    tb: &Testbed,
    n_clients: usize,
    ap_antennas: usize,
    snr_db: f64,
    detector: DetectorKind,
) -> ThroughputPoint {
    let groups = select_groups(tb, n_clients, snr_db, 5.0, params.groups_per_point);
    let mut best: Option<(Constellation, Vec<Measurement>)> = None;
    // One workspace across every (constellation, group) measurement.
    let mut ws = FrameWorkspace::new();
    for c in Constellation::ALL {
        let cfg = params.cfg(c);
        let det = detector.build(snr_db);
        let mut rng = params.rng(snr_db as u64 * 1000 + n_clients as u64 * 10 + c.size() as u64);
        let ms: Vec<Measurement> = groups
            .iter()
            .map(|g: &UserGroup| {
                let model = tb.channel(g.ap, &g.clients, ap_antennas);
                params.measure(
                    &cfg,
                    &model,
                    det.as_ref(),
                    snr_db,
                    params.frames_per_point,
                    &mut rng,
                    &mut ws,
                )
            })
            .collect();
        let (mbps, _, _, _) = merge_measurements(&ms);
        let better = match &best {
            None => true,
            Some((_, prev)) => mbps > merge_measurements(prev).0,
        };
        if better {
            best = Some((c, ms));
        }
    }
    let (constellation, ms) = best.expect("nonempty constellation set");
    let (throughput_mbps, fer, ped, nodes) = merge_measurements(&ms);
    ThroughputPoint {
        detector,
        clients: n_clients,
        ap_antennas,
        snr_db,
        constellation,
        throughput_mbps,
        fer,
        ped_per_subcarrier: ped,
        nodes_per_subcarrier: nodes,
    }
}

/// Fig. 13 point: Rayleigh-channel uplink throughput (simulated ten-antenna
/// AP, varying client counts).
pub fn rayleigh_throughput(
    params: &ExperimentParams,
    n_clients: usize,
    ap_antennas: usize,
    snr_db: f64,
    detector: DetectorKind,
) -> ThroughputPoint {
    let model = RayleighChannel::new(ap_antennas, n_clients);
    let mut best: Option<(Constellation, Measurement)> = None;
    // One workspace across the constellation scan.
    let mut ws = FrameWorkspace::new();
    for c in Constellation::ALL {
        let cfg = params.cfg(c);
        let det = detector.build(snr_db);
        let mut rng = params.rng(7_000_000 + n_clients as u64 * 100 + c.size() as u64);
        let m = params.measure(
            &cfg,
            &model,
            det.as_ref(),
            snr_db,
            params.frames_per_point * params.groups_per_point,
            &mut rng,
            &mut ws,
        );
        let better = match &best {
            None => true,
            Some((_, b)) => m.throughput_mbps > b.throughput_mbps,
        };
        if better {
            best = Some((c, m));
        }
    }
    let (constellation, m) = best.expect("nonempty constellation set");
    ThroughputPoint {
        detector,
        clients: n_clients,
        ap_antennas,
        snr_db,
        constellation,
        throughput_mbps: m.throughput_mbps,
        fer: m.fer,
        ped_per_subcarrier: m.per_subcarrier.ped_calcs,
        nodes_per_subcarrier: m.per_subcarrier.visited_nodes,
    }
}

/// One Fig. 15 bar: average PED calculations per subcarrier for one
/// decoder at the SNR hitting a target FER.
#[derive(Clone, Debug)]
pub struct ComplexityPoint {
    /// The decoder measured.
    pub detector: DetectorKind,
    /// Constellation.
    pub constellation: Constellation,
    /// Channel family label ("Rayleigh" or "Testbed").
    pub channel: &'static str,
    /// Operating SNR found for the target FER (dB).
    pub snr_db: f64,
    /// Average exact PED calculations per subcarrier.
    pub ped_per_subcarrier: f64,
    /// Average visited nodes per subcarrier.
    pub nodes_per_subcarrier: f64,
}

/// Fig. 15 column: complexity of ETH-SD vs zigzag-only vs full Geosphere
/// at the SNR where the constellation reaches `target_fer`, on Rayleigh or
/// testbed channels.
pub fn complexity_at_target_fer(
    params: &ExperimentParams,
    tb: Option<&Testbed>,
    n_clients: usize,
    ap_antennas: usize,
    constellation: Constellation,
    target_fer: f64,
) -> Vec<ComplexityPoint> {
    let cfg = params.cfg(constellation);
    let channel_label = if tb.is_some() { "Testbed" } else { "Rayleigh" };

    // Calibrate the operating SNR with the (ML) Geosphere decoder.
    let mut rng = params.rng(9_000_000 + constellation.size() as u64 + n_clients as u64);
    let snr_db = match tb {
        Some(tb) => {
            let groups = select_groups(tb, n_clients, 22.0, 20.0, 1);
            let model = tb.channel(groups[0].ap, &groups[0].clients, ap_antennas);
            params.snr_for_target_fer(
                &cfg,
                &model,
                &geosphere_decoder(),
                target_fer,
                params.frames_per_point,
                &mut rng,
            )
        }
        None => {
            let model = RayleighChannel::new(ap_antennas, n_clients);
            params.snr_for_target_fer(
                &cfg,
                &model,
                &geosphere_decoder(),
                target_fer,
                params.frames_per_point,
                &mut rng,
            )
        }
    };

    // One workspace across all three decoders' measurements.
    let mut ws = FrameWorkspace::new();
    [DetectorKind::EthSd, DetectorKind::GeosphereZigzagOnly, DetectorKind::Geosphere]
        .into_iter()
        .map(|kind| {
            let det = kind.build(snr_db);
            // Identical seed across decoders: all three see the *same*
            // channel and noise realizations, which is what makes the
            // visited-node counts comparable (and equal, per the paper).
            let mut rng = params.rng(11_000_000 + constellation.size() as u64 * 7);
            let m = match tb {
                Some(tb) => {
                    let groups = select_groups(tb, n_clients, 22.0, 20.0, 1);
                    let model = tb.channel(groups[0].ap, &groups[0].clients, ap_antennas);
                    params.measure(
                        &cfg,
                        &model,
                        det.as_ref(),
                        snr_db,
                        params.frames_per_point,
                        &mut rng,
                        &mut ws,
                    )
                }
                None => {
                    let model = RayleighChannel::new(ap_antennas, n_clients);
                    params.measure(
                        &cfg,
                        &model,
                        det.as_ref(),
                        snr_db,
                        params.frames_per_point,
                        &mut rng,
                        &mut ws,
                    )
                }
            };
            ComplexityPoint {
                detector: kind,
                constellation,
                channel: channel_label,
                snr_db,
                ped_per_subcarrier: m.per_subcarrier.ped_calcs,
                nodes_per_subcarrier: m.per_subcarrier.visited_nodes,
            }
        })
        .collect()
}

/// Fig. 9 / Fig. 10 data: κ² and Λ CDFs for one antenna configuration.
pub fn conditioning_cdfs(
    params: &ExperimentParams,
    tb: &Testbed,
    n_clients: usize,
    ap_antennas: usize,
    max_links: usize,
) -> (Cdf, Cdf) {
    let mut rng = params.rng(13_000_000 + n_clients as u64 * 31 + ap_antennas as u64);
    let kappa = tb.kappa_cdf(&mut rng, n_clients, ap_antennas, max_links);
    let mut rng = params.rng(15_000_000 + n_clients as u64 * 31 + ap_antennas as u64);
    let lambda = tb.lambda_cdf(&mut rng, n_clients, ap_antennas, max_links);
    (kappa, lambda)
}

/// The four antenna configurations the paper sweeps in Figs. 9–11 and 14:
/// `(clients, AP antennas)`.
pub const PAPER_CONFIGS: [(usize, usize); 4] = [(2, 2), (2, 4), (3, 4), (4, 4)];

/// The three SNR bands of Fig. 11/14.
pub const PAPER_SNRS: [f64; 3] = [15.0, 20.0, 25.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_kind_builds_all() {
        for kind in [
            DetectorKind::Zf,
            DetectorKind::Mmse,
            DetectorKind::MmseSic,
            DetectorKind::Geosphere,
            DetectorKind::GeosphereZigzagOnly,
            DetectorKind::EthSd,
        ] {
            let det = kind.build(20.0);
            assert!(!det.name().is_empty());
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn testbed_throughput_point_sane() {
        let params = ExperimentParams::quick();
        let tb = Testbed::office();
        let p = testbed_throughput(&params, &tb, 2, 2, 25.0, DetectorKind::Geosphere);
        assert_eq!(p.clients, 2);
        assert!(p.throughput_mbps >= 0.0);
        assert!(p.fer >= 0.0 && p.fer <= 1.0);
        assert!(p.ped_per_subcarrier > 0.0, "sphere decoder must compute PEDs");
    }

    #[test]
    fn geosphere_at_least_zf_throughput_quick() {
        // The paper's headline direction, at smoke-test scale.
        let params = ExperimentParams::quick();
        let tb = Testbed::office();
        let geo = testbed_throughput(&params, &tb, 4, 4, 20.0, DetectorKind::Geosphere);
        let zf = testbed_throughput(&params, &tb, 4, 4, 20.0, DetectorKind::Zf);
        assert!(
            geo.throughput_mbps >= zf.throughput_mbps,
            "Geosphere {:.1} vs ZF {:.1} Mbps",
            geo.throughput_mbps,
            zf.throughput_mbps
        );
    }

    #[test]
    fn rayleigh_throughput_point_sane() {
        let params = ExperimentParams::quick();
        let p = rayleigh_throughput(&params, 2, 4, 20.0, DetectorKind::MmseSic);
        assert!(p.throughput_mbps > 0.0, "2x4 at 20 dB should carry traffic");
    }

    #[test]
    fn conditioning_cdfs_nonempty() {
        let params = ExperimentParams::quick();
        let tb = Testbed::office();
        let (kappa, lambda) = conditioning_cdfs(&params, &tb, 2, 2, 10);
        assert!(!kappa.is_empty());
        assert!(!lambda.is_empty());
        assert!(kappa.quantile(0.5) >= 0.0);
        assert!(lambda.quantile(0.5) >= 0.0);
    }
}
