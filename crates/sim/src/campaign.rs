//! The campaign runner: thousands of seeded scenarios, executed in
//! parallel, invariant-checked, and rendered into one deterministic
//! report.
//!
//! A campaign ([`run_campaign`]) expands a base seed into [`Scenario`]s
//! ([`Scenario::sampled`]), runs them across runner threads — each
//! thread reusing one serial-reference [`FrameWorkspace`] and caching its
//! last [`FrameStream`] across same-shaped scenarios, so the campaign
//! itself obeys the runtime's zero-alloc steady-state discipline — and
//! checks per-scenario invariants:
//!
//! * **bit-identity**: every delivered frame's detection outcome (CRC
//!   bits, detection count, PED work) equals the serial
//!   `decode_frame_batched_into` reference at the scenario's pinned tier;
//! * **in-order delivery**: per-client completion sequences are contiguous
//!   and monotone;
//! * **miss accounting**: frames in pre-expired deadline windows are all
//!   delivered and all recorded as misses, generous/deadline-free frames
//!   never are, and the stream's [`RuntimeStats`] deltas (submitted,
//!   completed, deadline misses) agree exactly with the driver's counts;
//! * **fault containment**: a lethal fault fires where armed, kills
//!   exactly the frames after its position, and surfaces as typed
//!   `StreamDead`/`PoolPoisoned` errors — never an abort or a hang; a
//!   slot-exhaustion burst is refused at exactly the pool capacity.
//!
//! Scenario outcomes carry an FNV-1a checksum over every delivered
//! frame's bits, and [`CampaignReport::render_json`] contains no
//! wall-clock fields, so a campaign report is **byte-identical** across
//! re-runs, runner thread counts, and machines — re-running one failing
//! seed locally reproduces CI's line exactly
//! (`tests/campaign_determinism.rs`).
//!
//! Fidelity scales with the `GS_SPEEDUP` knob
//! ([`CampaignConfig::from_env`]): speedup 1 is the full 1024-scenario
//! campaign, higher values shrink both the scenario count (÷ speedup)
//! and the per-client frame count (÷ √speedup). CI runs speedup 16
//! (64 scenarios); release qualification runs 1.
//!
//! [`RuntimeStats`]: gs_runtime::RuntimeStats

use crate::faults::FaultSpec;
use crate::scenario::{DeadlineKind, PlannedFrame, Scenario};
use geosphere_core::{geosphere_decoder, DetectorTier, FsdDetector, MmseDetector};
use gs_channel::noise_variance_for_snr_db;
use gs_modulation::Constellation;
use gs_phy::{decode_frame_batched_into, FrameWorkspace, PhyConfig};
use gs_runtime::{
    DetectorLadder, FrameStream, PinnedPolicy, StreamConfig, TrySubmitError, UplinkFrame,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The frame shape every campaign scenario decodes: the paper's 48-
/// subcarrier rate-1/2 16-QAM configuration with a small payload, so one
/// scenario costs milliseconds and a campaign of thousands stays CI-sized.
pub fn campaign_phy_config() -> PhyConfig {
    PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qam16) }
}

/// Campaign sizing. Build with [`CampaignConfig::full`] and scale with
/// [`CampaignConfig::at_speedup`] / [`CampaignConfig::from_env`].
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Seed the whole campaign derives from.
    pub base_seed: u64,
    /// Scenarios to run.
    pub scenarios: usize,
    /// Frames per client per scenario.
    pub frames_per_client: usize,
    /// Runner threads (`0` = available parallelism, capped at 8).
    pub runner_threads: usize,
    /// The fidelity divisor this config was scaled by (recorded in the
    /// report).
    pub speedup: u64,
}

/// Full-fidelity scenario count (speedup 1).
const FULL_SCENARIOS: usize = 1024;
/// Full-fidelity frames per client (speedup 1).
const FULL_FRAMES_PER_CLIENT: usize = 32;

impl CampaignConfig {
    /// The full-fidelity campaign: 1024 scenarios × 32 frames/client.
    pub fn full(base_seed: u64) -> Self {
        CampaignConfig {
            base_seed,
            scenarios: FULL_SCENARIOS,
            frames_per_client: FULL_FRAMES_PER_CLIENT,
            runner_threads: 0,
            speedup: 1,
        }
    }

    /// Scales fidelity down by `speedup`: scenario count ÷ speedup
    /// (floor 8), frames per client ÷ √speedup (floor 4). Speedup 16 is
    /// the CI shape: 64 scenarios × 8 frames/client.
    pub fn at_speedup(mut self, speedup: u64) -> Self {
        let s = speedup.max(1);
        self.speedup = s;
        self.scenarios = (FULL_SCENARIOS / s as usize).max(8);
        let sqrt = (s as f64).sqrt().round().max(1.0) as usize;
        self.frames_per_client = (FULL_FRAMES_PER_CLIENT / sqrt).max(4);
        self
    }

    /// The full campaign scaled by the `GS_SPEEDUP` environment knob
    /// (positive integer; unset = 1 = full fidelity; garbage warns and
    /// falls back to full fidelity per the workspace env policy).
    pub fn from_env(base_seed: u64) -> Self {
        let s = gs_linalg::env::env_knob(
            "GS_SPEEDUP",
            "a positive integer fidelity divisor",
            "running the campaign at full fidelity",
            1u64,
            1u64,
            |v| v.parse().ok().filter(|&x| x >= 1),
        );
        CampaignConfig::full(base_seed).at_speedup(s)
    }
}

/// One scenario's verdict, ready for the report.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Campaign index (report order).
    pub index: usize,
    /// The scenario's seed — re-run it with
    /// [`run_one`](run_scenario_by_index).
    pub seed: u64,
    /// Human descriptor of the sampled axes.
    pub descriptor: String,
    /// Channel family name.
    pub channel: &'static str,
    /// Traffic mix name.
    pub traffic: &'static str,
    /// Pinned tier name.
    pub tier: &'static str,
    /// Fault taxonomy name, `"none"` when the scenario is healthy.
    pub fault: String,
    /// Frames the scenario offered.
    pub offered: u64,
    /// Frames delivered with a completion.
    pub delivered: u64,
    /// Frames refused at ingress (slot exhaustion, post-death submits).
    pub refused: u64,
    /// Delivered frames with every client stream CRC-clean.
    pub all_ok: u64,
    /// Delivered frames accounted as deadline misses.
    pub misses: u64,
    /// Whether the armed fault actually fired.
    pub fault_fired: bool,
    /// FNV-1a checksum over every delivered frame's outcome bits, in
    /// global submission order.
    pub checksum: u64,
    /// Invariant violations (empty = scenario passed).
    pub violations: Vec<String>,
    /// Flight-recorder repro recipe, attached only when the scenario
    /// violated an invariant (so passing campaign artifacts stay
    /// byte-identical across runs). Mentions the retained trace dump when
    /// the workspace was built with `--features trace`.
    pub flight_record: Option<String>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// What the driver recorded for one planned frame.
#[derive(Clone, Copy, Default)]
struct FrameRec {
    delivered: bool,
    ok_mask: u64,
    all_ok: bool,
    detections: u64,
    ped_calcs: u64,
    missed: bool,
}

/// Per-thread cache of the last stream, keyed by the scenario shape that
/// determines stream construction. Same-shaped scenarios reuse the warm
/// stream (and its slots/heaps/replicas — zero steady-state allocations);
/// a shape change or a lethal fault rebuilds it.
struct StreamCache {
    key: Option<(usize, usize, usize, usize, u8, u64)>,
    stream: Option<FrameStream>,
}

impl StreamCache {
    fn new() -> Self {
        StreamCache { key: None, stream: None }
    }

    fn shape_key(s: &Scenario) -> (usize, usize, usize, usize, u8, u64) {
        (
            s.clients,
            s.workers,
            s.shards,
            s.capacity,
            s.tier.index() as u8,
            s.snr.base_db().to_bits(),
        )
    }

    fn get_or_create(&mut self, s: &Scenario) -> &FrameStream {
        let key = Self::shape_key(s);
        let dead = self.stream.as_ref().is_some_and(|st| st.is_dead());
        if self.key != Some(key) || dead {
            let mut sc = StreamConfig::new(s.clients);
            sc.workers = s.workers;
            sc.shards = s.shards;
            sc.capacity = s.capacity;
            let ladder =
                DetectorLadder::geosphere_default(noise_variance_for_snr_db(s.snr.base_db()));
            self.stream = Some(FrameStream::adaptive(
                campaign_phy_config(),
                ladder,
                PinnedPolicy(s.tier),
                sc,
            ));
            self.key = Some(key);
        }
        self.stream.as_ref().expect("stream present")
    }

    fn invalidate(&mut self) {
        self.key = None;
        self.stream = None;
    }
}

/// The deadline instant a [`DeadlineKind`] stamps at submission time.
/// `Expired` backdates (completion strictly after submission ⇒ always a
/// miss); `Generous` is an hour out (never a miss in a CI-scale run).
fn stamp_deadline(kind: DeadlineKind) -> Option<Instant> {
    let now = Instant::now();
    match kind {
        DeadlineKind::Free => None,
        DeadlineKind::Generous => Some(now + Duration::from_secs(3600)),
        DeadlineKind::Expired => Some(now.checked_sub(Duration::from_millis(1)).unwrap_or(now)),
    }
}

fn make_frame(pf: &PlannedFrame, client: usize) -> UplinkFrame {
    let mut f = UplinkFrame::new(client, pf.channel.clone(), pf.snr_db, pf.seed);
    f.deadline = stamp_deadline(pf.deadline);
    f
}

/// Runs one scenario end to end — drive, invariants, serial reference —
/// reusing the caller's workspace and stream cache.
pub fn run_scenario(scenario: &Scenario, index: usize, ws: &mut FrameWorkspace) -> ScenarioOutcome {
    let mut cache = StreamCache::new();
    run_scenario_cached(scenario, index, ws, &mut cache)
}

/// Re-runs campaign scenario `index` of the campaign rooted at
/// `base_seed` — the local-reproduction entry: its rendered line is
/// byte-identical to the same scenario's line in the full campaign
/// report.
pub fn run_scenario_by_index(
    index: usize,
    base_seed: u64,
    frames_per_client: usize,
) -> ScenarioOutcome {
    let scenario = Scenario::sampled(index as u64, base_seed, frames_per_client);
    run_scenario(&scenario, index, &mut FrameWorkspace::new())
}

fn run_scenario_cached(
    scenario: &Scenario,
    index: usize,
    ws: &mut FrameWorkspace,
    cache: &mut StreamCache,
) -> ScenarioOutcome {
    let plan = scenario.plan();
    let n = plan.len();
    let mut violations: Vec<String> = Vec::new();
    let mut records: Vec<FrameRec> = vec![FrameRec::default(); n];

    // Per-client plan indices in submission order: completion k of client
    // c is that client's k-th planned frame (per-client FIFO delivery).
    let mut per_client: Vec<Vec<usize>> = vec![Vec::new(); scenario.clients];
    for (idx, pf) in plan.iter().enumerate() {
        per_client[pf.client].push(idx);
    }

    let stream = cache.get_or_create(scenario);
    let before = stream.stats();

    let mut accepted = 0u64;
    let mut refused = 0u64;
    let mut fault_fired = false;

    // Delivery bookkeeping shared by all drivers. A reused stream's
    // per-client sequence numbers continue across scenarios, so
    // contiguity is checked against the first sequence seen per client.
    let mut counts: Vec<u64> = vec![0; scenario.clients];
    let mut base_seq: Vec<Option<u64>> = vec![None; scenario.clients];
    let mut absorb = |done: gs_runtime::Completed<'_>,
                      records: &mut [FrameRec],
                      violations: &mut Vec<String>| {
        let client = done.client();
        let k = counts[client];
        match base_seq[client] {
            None => base_seq[client] = Some(done.seq()),
            Some(b) => {
                if done.seq() != b + k {
                    violations.push(format!(
                        "out-of-order delivery for client {client}: seq {} after base {b} + {k}",
                        done.seq()
                    ));
                }
            }
        }
        counts[client] += 1;
        let Some(&plan_idx) = per_client[client].get(k as usize) else {
            violations.push(format!("client {client} delivered more frames than planned"));
            return;
        };
        if done.tier() != scenario.tier {
            violations.push(format!(
                "frame {plan_idx} decoded at {} instead of the pinned {}",
                done.tier().name(),
                scenario.tier.name()
            ));
        }
        let out = done.outcome();
        let mut mask = 0u64;
        for (i, &ok) in out.client_ok.iter().enumerate() {
            if ok {
                mask |= 1 << (i as u64 & 63);
            }
        }
        records[plan_idx] = FrameRec {
            delivered: true,
            ok_mask: mask,
            all_ok: out.client_ok.iter().all(|&ok| ok),
            detections: out.detections,
            ped_calcs: out.stats.ped_calcs,
            missed: done.missed_deadline(),
        };
    };

    match scenario.fault {
        Some(FaultSpec::WorkerPanic { after_frames })
        | Some(FaultSpec::ShardLoss { after_frames, .. }) => {
            // Lockstep drive: exactly one frame in flight, so pool pop k
            // belongs to frame k on every shard and the armed ordinal
            // kills a known frame.
            let shard = match scenario.fault {
                Some(FaultSpec::ShardLoss { shard, .. }) => shard,
                _ => 0,
            };
            stream.inject_worker_panic_after(shard, after_frames + 1);
            for pf in &plan {
                let frame = make_frame(pf, pf.client);
                if stream.submit(frame).is_err() {
                    refused += 1;
                    continue;
                }
                accepted += 1;
                match stream.recv() {
                    Ok(done) => absorb(done, &mut records, &mut violations),
                    Err(_) => fault_fired = true,
                }
            }
            let delivered_now: u64 = records.iter().filter(|r| r.delivered).count() as u64;
            if !fault_fired {
                violations
                    .push(format!("lethal fault armed after {after_frames} frames never fired"));
            } else if delivered_now != after_frames {
                violations.push(format!(
                    "lethal fault killed the wrong frame: {delivered_now} delivered, \
                     expected {after_frames}"
                ));
            }
        }
        Some(FaultSpec::SlotExhaustion { burst }) => {
            // Stalled-consumer burst: admissions must cap at the slot
            // pool's capacity, the rest refused — bounded memory under
            // overload, no hangs, no loss of admitted frames.
            let burst_n = burst.min(n);
            for pf in &plan[..burst_n] {
                match stream.try_submit(make_frame(pf, pf.client)) {
                    Ok(()) => accepted += 1,
                    Err(TrySubmitError::Full(_)) => refused += 1,
                    Err(TrySubmitError::Dead(_)) => {
                        violations.push("stream died during a slot-exhaustion burst".into())
                    }
                }
            }
            let expect = burst_n.min(scenario.capacity) as u64;
            if accepted != expect {
                violations.push(format!(
                    "slot pool admitted {accepted} of a {burst_n}-frame burst, expected {expect}"
                ));
            }
            fault_fired = refused > 0;
            for _ in 0..accepted {
                match stream.recv() {
                    Ok(done) => absorb(done, &mut records, &mut violations),
                    Err(_) => {
                        violations.push("stream died draining the exhaustion burst".into());
                        break;
                    }
                }
            }
            // The tail (if the burst did not cover the plan) runs through
            // the normal interleaved driver below via this shared loop.
            let mut received = 0usize;
            let mut submitted = burst_n;
            let mut delivered_tail = 0usize;
            while received < n - burst_n {
                if submitted < n {
                    match stream.try_submit(make_frame(&plan[submitted], plan[submitted].client)) {
                        Ok(()) => {
                            submitted += 1;
                            accepted += 1;
                            continue;
                        }
                        Err(TrySubmitError::Full(_)) => {}
                        Err(TrySubmitError::Dead(_)) => {
                            violations.push("stream died without a lethal fault".into());
                            break;
                        }
                    }
                }
                match stream.recv() {
                    Ok(done) => absorb(done, &mut records, &mut violations),
                    Err(_) => {
                        violations.push("stream died without a lethal fault".into());
                        break;
                    }
                }
                received += 1;
                delivered_tail += 1;
            }
            let _ = delivered_tail;
        }
        _ => {
            // Healthy / deadline-storm drive: admit until the pool
            // refuses, then consume one — the pipeline stays full, slots
            // recycle mid-scenario, and every offered frame is delivered.
            let mut submitted = 0usize;
            let mut received = 0usize;
            while received < n {
                if submitted < n {
                    match stream.try_submit(make_frame(&plan[submitted], plan[submitted].client)) {
                        Ok(()) => {
                            submitted += 1;
                            accepted += 1;
                            continue;
                        }
                        Err(TrySubmitError::Full(_)) => {}
                        Err(TrySubmitError::Dead(_)) => {
                            violations.push("stream died without a lethal fault".into());
                            break;
                        }
                    }
                }
                match stream.recv() {
                    Ok(done) => absorb(done, &mut records, &mut violations),
                    Err(_) => {
                        violations.push("stream died without a lethal fault".into());
                        break;
                    }
                }
                received += 1;
            }
        }
    }

    // --- Post-drive invariants ---------------------------------------

    let delivered: u64 = records.iter().filter(|r| r.delivered).count() as u64;
    let all_ok: u64 = records.iter().filter(|r| r.delivered && r.all_ok).count() as u64;
    let misses: u64 = records.iter().filter(|r| r.delivered && r.missed).count() as u64;

    // A deadline storm "fires" when its expired window actually lands
    // misses (the lethal and exhaustion drivers set the flag themselves).
    if let Some(FaultSpec::DeadlineStorm { start, len }) = scenario.fault {
        fault_fired = records[start.min(records.len())..(start + len).min(records.len())]
            .iter()
            .any(|r| r.delivered && r.missed);
    }

    // Deadline regimes are wall-clock independent by construction:
    // pre-expired windows always miss, generous/free frames never do.
    for (idx, (pf, rec)) in plan.iter().zip(&records).enumerate() {
        if !rec.delivered {
            continue;
        }
        match pf.deadline {
            DeadlineKind::Expired if !rec.missed => {
                violations.push(format!("frame {idx} had an expired deadline but was not a miss"))
            }
            DeadlineKind::Generous | DeadlineKind::Free if rec.missed => {
                violations.push(format!("frame {idx} missed an unmissable deadline"))
            }
            _ => {}
        }
    }

    // Stats deltas must agree exactly with the driver's own accounting.
    let stats = stream.stats();
    if stats.submitted - before.submitted != accepted {
        violations.push(format!(
            "stats.submitted moved by {} but the driver admitted {accepted}",
            stats.submitted - before.submitted
        ));
    }
    if stats.completed - before.completed != delivered {
        violations.push(format!(
            "stats.completed moved by {} but the driver received {delivered}",
            stats.completed - before.completed
        ));
    }
    if stats.deadline_misses - before.deadline_misses != misses {
        violations.push(format!(
            "stats.deadline_misses moved by {} but the driver counted {misses}",
            stats.deadline_misses - before.deadline_misses
        ));
    }

    // Bit-identity: every delivered frame equals the serial reference
    // decode at the pinned tier. The reference uses the same concrete
    // detectors (same parameters) the stream's default ladder holds.
    let cfg = campaign_phy_config();
    let sigma2 = noise_variance_for_snr_db(scenario.snr.base_db());
    for (idx, (pf, rec)) in plan.iter().zip(&records).enumerate() {
        if !rec.delivered {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(pf.seed);
        let serial = match scenario.tier {
            DetectorTier::Sphere => decode_frame_batched_into(
                &cfg,
                &pf.channel,
                &geosphere_decoder(),
                pf.snr_db,
                &mut rng,
                1,
                ws,
            ),
            DetectorTier::Fsd => decode_frame_batched_into(
                &cfg,
                &pf.channel,
                &FsdDetector::new(),
                pf.snr_db,
                &mut rng,
                1,
                ws,
            ),
            DetectorTier::Mmse => decode_frame_batched_into(
                &cfg,
                &pf.channel,
                &MmseDetector::new(sigma2),
                pf.snr_db,
                &mut rng,
                1,
                ws,
            ),
        };
        let mut serial_mask = 0u64;
        for (i, &ok) in serial.client_ok.iter().enumerate() {
            if ok {
                serial_mask |= 1 << (i as u64 & 63);
            }
        }
        if serial_mask != rec.ok_mask
            || serial.detections != rec.detections
            || serial.stats.ped_calcs != rec.ped_calcs
        {
            violations.push(format!(
                "frame {idx} diverges from the serial reference \
                 (ok {serial_mask:#x} vs {:#x}, detections {} vs {}, ped {} vs {})",
                rec.ok_mask,
                serial.detections,
                rec.detections,
                serial.stats.ped_calcs,
                rec.ped_calcs
            ));
        }
    }

    // A dead stream must not be reused by the next scenario.
    if stream.is_dead() {
        cache.invalidate();
    }

    // Checksum over the plan in global submission order: the scenario's
    // byte-reproducibility boils down to this number plus the counters.
    let mut checksum = fnv_fold(FNV_OFFSET, scenario.seed);
    for rec in &records {
        checksum = fnv_fold(checksum, rec.delivered as u64);
        if rec.delivered {
            checksum = fnv_fold(checksum, rec.ok_mask);
            checksum = fnv_fold(checksum, rec.detections);
            checksum = fnv_fold(checksum, rec.ped_calcs);
            checksum = fnv_fold(checksum, rec.missed as u64);
        }
    }

    // An invariant violation is a flight-recorder anomaly: fire the
    // trigger (always counted; captures a ring dump when the workspace is
    // built with `--features trace` and the recorder is armed) and attach
    // a repro recipe to the failing outcome. Green scenarios attach
    // nothing, so the passing campaign artifact stays byte-identical.
    let flight_record = if violations.is_empty() {
        None
    } else {
        use gs_prof::trace as gtrace;
        let captured = gtrace::trigger(gtrace::Trigger::Violation, gtrace::NO_FRAME);
        let mut recipe = format!(
            "repro: run_scenario_by_index(index {index}, seed {}) [{}]",
            scenario.seed,
            scenario.descriptor()
        );
        if captured {
            if let Some(dump) = gtrace::recent_dumps().last() {
                let _ = write!(
                    recipe,
                    "; trace dump seq {} retained ({} events, {} frame timelines) — \
                     serve /trace or /trace/latest to inspect",
                    dump.seq,
                    dump.events.len(),
                    dump.timelines.len()
                );
            }
        }
        Some(recipe)
    };

    ScenarioOutcome {
        index,
        seed: scenario.seed,
        descriptor: scenario.descriptor(),
        channel: scenario.channel.name(),
        traffic: scenario.traffic.name(),
        tier: scenario.tier.name(),
        fault: scenario.fault.map_or_else(|| "none".into(), |f| f.name().to_string()),
        offered: n as u64,
        delivered,
        refused,
        all_ok,
        misses,
        fault_fired,
        checksum,
        violations,
        flight_record,
    }
}

/// The campaign verdict: every scenario outcome (index order) plus the
/// config that produced them.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The sizing the campaign ran at.
    pub config: CampaignConfig,
    /// Per-scenario outcomes, sorted by campaign index.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl CampaignReport {
    /// Total invariant violations across all scenarios.
    pub fn total_violations(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// Campaign-wide checksum: FNV-1a over the per-scenario checksums in
    /// index order.
    pub fn checksum(&self) -> u64 {
        self.outcomes
            .iter()
            .fold(fnv_fold(FNV_OFFSET, self.config.base_seed), |h, o| fnv_fold(h, o.checksum))
    }

    /// Counts outcomes per value of `key` (used for the aggregate
    /// distributions in the JSON).
    fn distribution(&self, key: impl Fn(&ScenarioOutcome) -> &str) -> Vec<(String, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for o in &self.outcomes {
            *map.entry(key(o).to_string()).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }

    /// Renders the deterministic campaign artifact: integers, names, and
    /// checksums only — **no wall-clock fields** — scenario entries in
    /// index order. Byte-identical across re-runs, thread counts, and
    /// machines for the same `(base_seed, speedup)`.
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        let agg = |f: fn(&ScenarioOutcome) -> u64| -> u64 { self.outcomes.iter().map(f).sum() };
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"campaign\": \"geosphere_scenario_campaign\",");
        let _ = writeln!(s, "  \"schema\": 1,");
        let _ = writeln!(s, "  \"base_seed\": {},", self.config.base_seed);
        let _ = writeln!(s, "  \"speedup\": {},", self.config.speedup);
        let _ = writeln!(s, "  \"scenario_count\": {},", self.outcomes.len());
        let _ = writeln!(s, "  \"frames_per_client\": {},", self.config.frames_per_client);
        let _ = writeln!(s, "  \"checksum\": \"{:#018x}\",", self.checksum());
        let _ = writeln!(s, "  \"aggregate\": {{");
        let _ = writeln!(s, "    \"frames_offered\": {},", agg(|o| o.offered));
        let _ = writeln!(s, "    \"frames_delivered\": {},", agg(|o| o.delivered));
        let _ = writeln!(s, "    \"frames_refused\": {},", agg(|o| o.refused));
        let _ = writeln!(s, "    \"frames_all_ok\": {},", agg(|o| o.all_ok));
        let _ = writeln!(s, "    \"deadline_misses\": {},", agg(|o| o.misses));
        let _ = writeln!(
            s,
            "    \"faults_injected\": {},",
            self.outcomes.iter().filter(|o| o.fault != "none").count()
        );
        let _ = writeln!(
            s,
            "    \"faults_fired\": {},",
            self.outcomes.iter().filter(|o| o.fault_fired).count()
        );
        let _ = writeln!(s, "    \"violations\": {},", self.total_violations());
        let mut dist = |name: &str, entries: Vec<(String, usize)>, comma: &str| {
            let _ = write!(s, "    \"{name}\": {{");
            let mut first = true;
            for (k, v) in entries {
                let _ = write!(s, "{}\"{k}\": {v}", if first { "" } else { ", " });
                first = false;
            }
            let _ = writeln!(s, "}}{comma}");
        };
        dist("by_channel", self.distribution(|o| o.channel), ",");
        dist("by_traffic", self.distribution(|o| o.traffic), ",");
        dist("by_tier", self.distribution(|o| o.tier), ",");
        dist("by_fault", self.distribution(|o| &o.fault), "");
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"scenarios\": [");
        for (i, o) in self.outcomes.iter().enumerate() {
            let comma = if i + 1 == self.outcomes.len() { "" } else { "," };
            let _ = write!(
                s,
                "    {{\"index\": {}, \"seed\": {}, \"descriptor\": \"{}\", \
                 \"offered\": {}, \"delivered\": {}, \"refused\": {}, \"all_ok\": {}, \
                 \"misses\": {}, \"fault_fired\": {}, \"checksum\": \"{:#018x}\", \
                 \"violations\": [",
                o.index,
                o.seed,
                o.descriptor,
                o.offered,
                o.delivered,
                o.refused,
                o.all_ok,
                o.misses,
                o.fault_fired,
                o.checksum,
            );
            for (j, v) in o.violations.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(s, "{sep}\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
            }
            let _ = write!(s, "]");
            // Only failing scenarios carry a flight record — the field is
            // absent (not null) on the deterministic passing path.
            if let Some(fr) = &o.flight_record {
                let _ = write!(
                    s,
                    ", \"flight_record\": \"{}\"",
                    fr.replace('\\', "\\\\").replace('"', "\\\"")
                );
            }
            let _ = writeln!(s, "}}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }
}

/// Runs the campaign: expands `config.scenarios` seeded scenarios and
/// executes them across runner threads. Each thread reuses one
/// [`FrameWorkspace`] and one cached [`FrameStream`] across its
/// scenarios; outcomes land in index order regardless of scheduling, so
/// the report is thread-count independent.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let threads = if config.runner_threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
    } else {
        config.runner_threads
    };
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<ScenarioOutcome>>> =
        (0..config.scenarios).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut ws = FrameWorkspace::new();
                let mut cache = StreamCache::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= config.scenarios {
                        break;
                    }
                    let scenario =
                        Scenario::sampled(i as u64, config.base_seed, config.frames_per_client);
                    let outcome = run_scenario_cached(&scenario, i, &mut ws, &mut cache);
                    *results[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                        Some(outcome);
                }
            });
        }
    });

    let outcomes = results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every scenario index was claimed and completed")
        })
        .collect();
    CampaignReport { config: config.clone(), outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ChannelSpec, DeadlineSpec, SnrSpec};
    use crate::traffic::TrafficMix;
    use gs_runtime::DetectorTier;

    fn small(seed: u64) -> Scenario {
        Scenario::new(seed).clients(2).frames_per_client(4).topology(2, 1, 3)
    }

    #[test]
    fn healthy_scenario_passes_all_invariants() {
        let s = small(11)
            .channel(ChannelSpec::IidRayleigh)
            .snr(SnrSpec::Fixed(24.0))
            .deadlines(DeadlineSpec::Generous)
            .tier(DetectorTier::Sphere);
        let out = run_scenario(&s, 0, &mut FrameWorkspace::new());
        assert_eq!(out.violations, Vec::<String>::new());
        assert_eq!(out.offered, 8);
        assert_eq!(out.delivered, 8);
        assert_eq!(out.refused, 0);
        assert_eq!(out.misses, 0);
        assert!(!out.fault_fired);
    }

    #[test]
    fn expired_window_misses_are_exact() {
        let s = small(12).deadlines(DeadlineSpec::ExpiredWindow { start: 2, len: 3 });
        let out = run_scenario(&s, 0, &mut FrameWorkspace::new());
        assert_eq!(out.violations, Vec::<String>::new());
        assert_eq!(out.delivered, 8, "expired deadlines never drop frames");
        assert_eq!(out.misses, 3, "exactly the window misses");
    }

    #[test]
    fn worker_panic_is_a_recorded_outcome_not_an_abort() {
        let s = small(13).fault(FaultSpec::WorkerPanic { after_frames: 3 });
        let out = run_scenario(&s, 0, &mut FrameWorkspace::new());
        assert_eq!(out.violations, Vec::<String>::new());
        assert!(out.fault_fired);
        assert_eq!(out.delivered, 3);
        assert!(out.refused >= 1, "post-death submissions are refused, not lost");
    }

    #[test]
    fn shard_loss_kills_the_armed_shard() {
        let s =
            small(14).topology(2, 2, 3).fault(FaultSpec::ShardLoss { shard: 1, after_frames: 2 });
        let out = run_scenario(&s, 0, &mut FrameWorkspace::new());
        assert_eq!(out.violations, Vec::<String>::new());
        assert!(out.fault_fired);
        assert_eq!(out.delivered, 2);
    }

    #[test]
    fn slot_exhaustion_caps_at_capacity() {
        let s = small(15).fault(FaultSpec::SlotExhaustion { burst: 8 });
        let out = run_scenario(&s, 0, &mut FrameWorkspace::new());
        assert_eq!(out.violations, Vec::<String>::new());
        assert!(out.fault_fired);
        assert_eq!(out.delivered, 3, "capacity-many frames survive the burst");
        assert_eq!(out.refused, 5, "the rest are refused, not lost");
    }

    #[test]
    fn scenario_outcomes_are_reproducible() {
        let s = small(16)
            .channel(ChannelSpec::BlockFading {
                trajectory: gs_channel::DopplerTrajectory::Constant(0.05),
            })
            .traffic(TrafficMix::Pareto { rate_hz: 900.0, alpha: 1.9 })
            .fault(FaultSpec::WorkerPanic { after_frames: 5 });
        let a = run_scenario(&s, 0, &mut FrameWorkspace::new());
        let b = run_scenario(&s, 0, &mut FrameWorkspace::new());
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.misses, b.misses);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn campaign_report_is_thread_count_invariant() {
        let mut cfg = CampaignConfig::full(2014).at_speedup(64);
        cfg.scenarios = 12; // keep the unit test fast; the integration
                            // suite runs the full CI shape
        cfg.frames_per_client = 4;
        let mut one = cfg.clone();
        one.runner_threads = 1;
        let mut four = cfg.clone();
        four.runner_threads = 4;
        let a = run_campaign(&one);
        let b = run_campaign(&four);
        assert_eq!(a.total_violations(), 0, "{:?}", collect_violations(&a));
        assert_eq!(a.render_json(), b.render_json(), "report must not depend on thread count");
    }

    fn collect_violations(r: &CampaignReport) -> Vec<&String> {
        r.outcomes.iter().flat_map(|o| o.violations.iter()).collect()
    }

    #[test]
    fn speedup_scales_both_axes() {
        let full = CampaignConfig::full(1);
        assert_eq!((full.scenarios, full.frames_per_client), (1024, 32));
        let ci = CampaignConfig::full(1).at_speedup(16);
        assert_eq!((ci.scenarios, ci.frames_per_client), (64, 8));
        let floor = CampaignConfig::full(1).at_speedup(100_000);
        assert!(floor.scenarios >= 8 && floor.frames_per_client >= 4);
    }
}
