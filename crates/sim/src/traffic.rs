//! Poisson multi-client traffic driving the streaming runtime.
//!
//! The paper's evaluation decodes frames one at a time; a base station
//! serves *arrival processes*. This module generates the classic open-loop
//! model — each client submits frames as an independent Poisson process —
//! and pushes it through a [`FrameStream`], measuring delivered
//! throughput, deadline behaviour, and loss under the runtime's bounded
//! admission.
//!
//! Two regimes, one knob ([`PoissonParams::rate_hz`]):
//!
//! * **Paced** (finite rate): exponential inter-arrival gaps per client,
//!   merged into one global arrival schedule. Submission uses
//!   [`FrameStream::try_submit`] — an arrival that finds every slot
//!   occupied is *dropped and counted*, the standard loss model for an
//!   overloaded ingress.
//! * **Saturation** (`f64::INFINITY`): no pacing; submission uses blocking
//!   [`FrameStream::submit`], measuring the pipeline's sustained
//!   frames/sec under backpressure.
//!
//! Channels are realized per frame from the caller's [`ChannelModel`]
//! before the clock starts, so the driver's hot loop is pacing + submit.

use gs_channel::ChannelModel;
use gs_runtime::{FrameStream, UplinkFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Traffic-shape parameters for [`run_poisson_uplink`].
#[derive(Clone, Debug)]
pub struct PoissonParams {
    /// Concurrent traffic sources. Must match (or not exceed) the
    /// stream's configured client-lane count.
    pub clients: usize,
    /// Frames each client offers.
    pub frames_per_client: usize,
    /// Mean per-client arrival rate in frames/sec; `f64::INFINITY` (or
    /// any non-finite / non-positive value) selects saturation mode.
    pub rate_hz: f64,
    /// Operating SNR for every frame.
    pub snr_db: f64,
    /// Relative completion deadline applied to each frame at submission
    /// (`None` = deadline-free).
    pub deadline: Option<Duration>,
    /// Seed for arrival gaps, channel realizations, and frame seeds.
    pub seed: u64,
}

/// What the traffic run observed.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// Frames offered (`clients × frames_per_client`).
    pub offered: u64,
    /// Frames admitted (offered minus ingress drops).
    pub submitted: u64,
    /// Frames offered but refused at a full ingress (paced mode only).
    pub dropped: u64,
    /// Frames delivered with every client stream CRC-verified.
    pub frames_all_ok: u64,
    /// Delivered frames that missed their deadline.
    pub deadline_misses: u64,
    /// Wall-clock from first submission to last completion.
    pub elapsed: Duration,
    /// `submitted / elapsed` — delivered throughput.
    pub frames_per_sec: f64,
}

/// One scheduled arrival.
struct Arrival {
    at: Duration,
    client: usize,
    frame: UplinkFrame,
}

/// Drives `params.clients` Poisson sources through `stream` and drains
/// every completion, returning the aggregate [`TrafficReport`].
///
/// The submitting side runs on a scoped thread ("many concurrent sources"
/// collapsed onto one pacing thread — arrival times are already merged);
/// the calling thread consumes completions, so backpressure and delivery
/// ordering are exercised exactly as a deployment would.
pub fn run_poisson_uplink<M: ChannelModel>(
    stream: &FrameStream,
    model: &M,
    params: &PoissonParams,
) -> TrafficReport {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let paced = params.rate_hz.is_finite() && params.rate_hz > 0.0;

    // Build the merged arrival schedule (channel realizations included)
    // before the clock starts.
    let mut arrivals: Vec<Arrival> = Vec::with_capacity(params.clients * params.frames_per_client);
    for client in 0..params.clients {
        let mut t = Duration::ZERO;
        for k in 0..params.frames_per_client {
            if paced {
                let u: f64 = rng.gen::<f64>();
                let gap = -(1.0 - u).ln() / params.rate_hz;
                t += Duration::from_secs_f64(gap);
            }
            let channel = Arc::new(model.realize(&mut rng));
            let seed = params
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((client * params.frames_per_client + k) as u64);
            let mut frame = UplinkFrame::new(client, channel, params.snr_db, seed);
            frame.payload_bits = None;
            arrivals.push(Arrival { at: t, client, frame });
        }
    }
    arrivals.sort_by(|a, b| a.at.cmp(&b.at).then(a.client.cmp(&b.client)));

    let offered = arrivals.len() as u64;
    let start = Instant::now();
    let mut dropped = 0u64;
    let mut submitted = 0u64;
    let mut frames_all_ok = 0u64;
    let mut deadline_misses = 0u64;

    // Admissions the consumer may safely block on: every admitted frame
    // eventually completes, so `recv` below never over-waits.
    let admitted = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        let submitter = scope.spawn(|| {
            let mut dropped = 0u64;
            for Arrival { at, frame, .. } in arrivals {
                if paced {
                    let due = start + at;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                let mut frame = frame;
                frame.deadline = params.deadline.map(|d| Instant::now() + d);
                let accepted = if paced {
                    stream.try_submit(frame).is_ok()
                } else {
                    stream.submit(frame);
                    true
                };
                if accepted {
                    admitted.fetch_add(1, std::sync::atomic::Ordering::Release);
                } else {
                    dropped += 1;
                }
            }
            dropped
        });

        // Drain on the calling thread: block on `recv` for frames known to
        // be admitted, idle briefly (no busy spin — the detection workers
        // own the cores) while the submitter is still pacing.
        let mut received = 0u64;
        let mut absorb = |done: gs_runtime::Completed<'_>| {
            if done.outcome().client_ok.iter().all(|&ok| ok) {
                frames_all_ok += 1;
            }
            if done.missed_deadline() {
                deadline_misses += 1;
            }
        };
        loop {
            if received < admitted.load(std::sync::atomic::Ordering::Acquire) {
                absorb(stream.recv());
                received += 1;
            } else if submitter.is_finished() {
                break;
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        dropped = submitter.join().expect("traffic submitter panicked");
        submitted = offered - dropped;
        while received < submitted {
            absorb(stream.recv());
            received += 1;
        }
    });

    let elapsed = start.elapsed();
    TrafficReport {
        offered,
        submitted,
        dropped,
        frames_all_ok,
        deadline_misses,
        elapsed,
        frames_per_sec: submitted as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geosphere_core::geosphere_decoder;
    use gs_channel::RayleighChannel;
    use gs_modulation::Constellation;
    use gs_phy::PhyConfig;
    use gs_runtime::StreamConfig;

    #[test]
    fn saturation_delivers_every_frame() {
        let cfg = PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qam16) };
        let mut sc = StreamConfig::new(3);
        sc.workers = 2;
        sc.capacity = 4;
        let stream = FrameStream::new(cfg, geosphere_decoder(), sc);
        let model = RayleighChannel::new(4, 2);
        let params = PoissonParams {
            clients: 3,
            frames_per_client: 4,
            rate_hz: f64::INFINITY,
            snr_db: 24.0,
            deadline: None,
            seed: 7,
        };
        let report = run_poisson_uplink(&stream, &model, &params);
        assert_eq!(report.offered, 12);
        assert_eq!(report.submitted, 12, "saturation mode never drops");
        assert_eq!(report.dropped, 0);
        assert!(report.frames_all_ok > 0, "24 dB 16-QAM should deliver frames");
        assert!(report.frames_per_sec > 0.0);
        assert_eq!(stream.stats().completed, 12);
    }

    #[test]
    fn paced_mode_keeps_loss_accounting_consistent() {
        let cfg = PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qpsk) };
        let mut sc = StreamConfig::new(2);
        sc.workers = 1;
        sc.capacity = 2;
        let stream = FrameStream::new(cfg, geosphere_decoder(), sc);
        let model = RayleighChannel::new(2, 2);
        // A deliberately absurd offered rate over a tiny slot pool: some
        // arrivals must drop, and offered = submitted + dropped must hold.
        let params = PoissonParams {
            clients: 2,
            frames_per_client: 6,
            rate_hz: 1e6,
            snr_db: 20.0,
            deadline: Some(Duration::from_millis(200)),
            seed: 11,
        };
        let report = run_poisson_uplink(&stream, &model, &params);
        assert_eq!(report.offered, 12);
        assert_eq!(report.submitted + report.dropped, report.offered);
        assert_eq!(stream.stats().completed as u64, report.submitted);
        assert!(report.deadline_misses <= report.submitted);
    }
}
