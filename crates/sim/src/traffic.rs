//! Multi-client traffic mixes driving the streaming runtime.
//!
//! The paper's evaluation decodes frames one at a time; a base station
//! serves *arrival processes*. This module generates open-loop traffic —
//! each client submits frames from an independent arrival process — and
//! pushes it through a [`FrameStream`], measuring delivered throughput,
//! deadline behaviour, and loss under the runtime's bounded admission.
//!
//! [`TrafficMix`] names the process family; the classic Poisson driver is
//! one member:
//!
//! * **Poisson** — exponential inter-arrival gaps, the memoryless
//!   baseline.
//! * **Bursty** — a Markov-modulated Poisson process: a client alternates
//!   between a calm and a burst state with different rates, producing the
//!   clumped arrivals that stress admission and EDF ordering.
//! * **Pareto** — heavy-tailed inter-arrivals (mean matched to the
//!   requested rate): long silences punctuated by dense clusters, the
//!   classic self-similar traffic shape.
//! * **Diurnal** — a sinusoidally rate-modulated Poisson process: load
//!   sweeps between quiet and peak phases within one run.
//! * **Saturation** — no pacing; submission uses blocking
//!   [`FrameStream::submit`], measuring the pipeline's sustained
//!   frames/sec under backpressure.
//!
//! Paced mixes submit with [`FrameStream::try_submit`] — an arrival that
//! finds every slot occupied is *dropped and counted*, the standard loss
//! model for an overloaded ingress. Channels are realized per frame from
//! the caller's [`ChannelModel`] before the clock starts, so the driver's
//! hot loop is pacing + submit. Every schedule is a pure function of the
//! seed, which is what lets the campaign layer ([`crate::campaign`])
//! replay a mix's arrival *order* without its wall-clock pacing.

use gs_channel::ChannelModel;
use gs_runtime::{FrameStream, TrySubmitError, UplinkFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An open-loop per-client arrival process family. See the module docs
/// for the members' shapes; all are parameterized in frames/sec and
/// sampled deterministically from the driving RNG.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficMix {
    /// Unpaced: every frame is offered immediately, blocking submission
    /// (maximum backpressure).
    Saturation,
    /// Memoryless arrivals at `rate_hz` frames/sec.
    Poisson {
        /// Mean per-client arrival rate.
        rate_hz: f64,
    },
    /// Markov-modulated Poisson: calm periods at `calm_hz`, bursts at
    /// `burst_hz`, switching states after each arrival with the given
    /// probabilities (geometric sojourns).
    Bursty {
        /// Arrival rate in the calm state.
        calm_hz: f64,
        /// Arrival rate inside a burst (≫ `calm_hz`).
        burst_hz: f64,
        /// Probability an arrival in the calm state enters a burst.
        p_enter: f64,
        /// Probability an arrival inside a burst returns to calm.
        p_exit: f64,
    },
    /// Heavy-tailed Pareto inter-arrivals with tail index `alpha` (> 1)
    /// and mean gap `1 / rate_hz`.
    Pareto {
        /// Mean per-client arrival rate.
        rate_hz: f64,
        /// Tail index (> 1; smaller = heavier tail, 1.5–2.5 typical).
        alpha: f64,
    },
    /// Sinusoidally modulated Poisson: instantaneous rate
    /// `rate_hz · (1 + swing·sin(2πt/period))`, sweeping between quiet
    /// and peak load across the run.
    Diurnal {
        /// Mean per-client arrival rate.
        rate_hz: f64,
        /// Relative modulation depth in `[0, 1)`.
        swing: f64,
        /// Period of one quiet→peak→quiet sweep.
        period: Duration,
    },
}

impl TrafficMix {
    /// Short name for reports and scenario descriptors.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficMix::Saturation => "saturation",
            TrafficMix::Poisson { .. } => "poisson",
            TrafficMix::Bursty { .. } => "bursty",
            TrafficMix::Pareto { .. } => "pareto",
            TrafficMix::Diurnal { .. } => "diurnal",
        }
    }

    /// Whether arrivals are paced on the wall clock (everything but
    /// saturation).
    pub fn is_paced(&self) -> bool {
        !matches!(self, TrafficMix::Saturation)
    }

    /// One client's arrival offsets (monotone, `frames` entries), drawn
    /// from `rng`. Saturation yields all-zero offsets: every frame is due
    /// immediately, ordered by submission sequence alone.
    pub fn schedule<R: Rng + ?Sized>(&self, frames: usize, rng: &mut R) -> Vec<Duration> {
        let mut out = Vec::with_capacity(frames);
        let mut t = Duration::ZERO;
        // Bursty-state flag lives across arrivals of one schedule.
        let mut in_burst = false;
        for _ in 0..frames {
            let gap = match *self {
                TrafficMix::Saturation => 0.0,
                TrafficMix::Poisson { rate_hz } => exp_gap(rng, rate_hz),
                TrafficMix::Bursty { calm_hz, burst_hz, p_enter, p_exit } => {
                    let flip: f64 = rng.gen();
                    in_burst = if in_burst { flip >= p_exit } else { flip < p_enter };
                    exp_gap(rng, if in_burst { burst_hz } else { calm_hz })
                }
                TrafficMix::Pareto { rate_hz, alpha } => {
                    // Pareto(x_m, α) has mean α·x_m/(α−1); choose x_m so
                    // the mean gap is 1/rate. Inverse-CDF: x_m / u^{1/α}.
                    let scale = (alpha - 1.0) / (alpha * rate_hz.max(1e-9));
                    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
                    scale / u.powf(1.0 / alpha)
                }
                TrafficMix::Diurnal { rate_hz, swing, period } => {
                    let phase = 2.0 * std::f64::consts::PI * t.as_secs_f64()
                        / period.as_secs_f64().max(1e-9);
                    let rate = rate_hz * (1.0 + swing * phase.sin());
                    exp_gap(rng, rate.max(rate_hz * (1.0 - swing).max(1e-3)))
                }
            };
            t += Duration::from_secs_f64(gap);
            out.push(t);
        }
        out
    }
}

/// One exponential inter-arrival gap at `rate_hz`.
fn exp_gap<R: Rng + ?Sized>(rng: &mut R, rate_hz: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate_hz.max(1e-9)
}

/// Traffic-shape parameters for [`run_traffic_uplink`].
#[derive(Clone, Debug)]
pub struct TrafficParams {
    /// Concurrent traffic sources. Must match (or not exceed) the
    /// stream's configured client-lane count.
    pub clients: usize,
    /// Frames each client offers.
    pub frames_per_client: usize,
    /// The arrival process family.
    pub mix: TrafficMix,
    /// Operating SNR for every frame.
    pub snr_db: f64,
    /// Relative completion deadline applied to each frame at submission
    /// (`None` = deadline-free).
    pub deadline: Option<Duration>,
    /// Seed for arrival gaps, channel realizations, and frame seeds.
    pub seed: u64,
}

/// Traffic-shape parameters for [`run_poisson_uplink`] — the original
/// Poisson-only surface, kept as the stable entry the storm scenarios and
/// benches drive.
#[derive(Clone, Debug)]
pub struct PoissonParams {
    /// Concurrent traffic sources. Must match (or not exceed) the
    /// stream's configured client-lane count.
    pub clients: usize,
    /// Frames each client offers.
    pub frames_per_client: usize,
    /// Mean per-client arrival rate in frames/sec; `f64::INFINITY` (or
    /// any non-finite / non-positive value) selects saturation mode.
    pub rate_hz: f64,
    /// Operating SNR for every frame.
    pub snr_db: f64,
    /// Relative completion deadline applied to each frame at submission
    /// (`None` = deadline-free).
    pub deadline: Option<Duration>,
    /// Seed for arrival gaps, channel realizations, and frame seeds.
    pub seed: u64,
}

impl PoissonParams {
    /// The equivalent [`TrafficParams`]: finite positive rates are
    /// Poisson pacing, anything else saturation.
    pub fn traffic(&self) -> TrafficParams {
        let mix = if self.rate_hz.is_finite() && self.rate_hz > 0.0 {
            TrafficMix::Poisson { rate_hz: self.rate_hz }
        } else {
            TrafficMix::Saturation
        };
        TrafficParams {
            clients: self.clients,
            frames_per_client: self.frames_per_client,
            mix,
            snr_db: self.snr_db,
            deadline: self.deadline,
            seed: self.seed,
        }
    }
}

/// What the traffic run observed.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// Frames offered (`clients × frames_per_client`).
    pub offered: u64,
    /// Frames admitted (offered minus ingress drops).
    pub submitted: u64,
    /// Frames offered but refused at a full ingress (paced mixes only).
    pub dropped: u64,
    /// Frames delivered with every client stream CRC-verified.
    pub frames_all_ok: u64,
    /// Delivered frames that missed their deadline.
    pub deadline_misses: u64,
    /// Wall-clock from first submission to last completion.
    pub elapsed: Duration,
    /// `submitted / elapsed` — delivered throughput.
    pub frames_per_sec: f64,
}

/// One scheduled arrival.
struct Arrival {
    at: Duration,
    client: usize,
    frame: UplinkFrame,
}

/// Builds the merged multi-client arrival schedule for `params`:
/// per-client offsets from the mix, channel realizations from `model`,
/// per-frame seeds derived from the run seed — all before any clock
/// starts, and a pure function of `params.seed`.
fn build_arrivals<M: ChannelModel>(model: &M, params: &TrafficParams) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut arrivals: Vec<Arrival> = Vec::with_capacity(params.clients * params.frames_per_client);
    for client in 0..params.clients {
        let offsets = params.mix.schedule(params.frames_per_client, &mut rng);
        for (k, at) in offsets.into_iter().enumerate() {
            let channel = Arc::new(model.realize(&mut rng));
            let seed = params
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((client * params.frames_per_client + k) as u64);
            let frame = UplinkFrame::new(client, channel, params.snr_db, seed);
            arrivals.push(Arrival { at, client, frame });
        }
    }
    // Stable sort: same-instant arrivals keep client order, and one
    // client's frames keep submission order.
    arrivals.sort_by(|a, b| a.at.cmp(&b.at).then(a.client.cmp(&b.client)));
    arrivals
}

/// Drives `params.clients` sources of the configured [`TrafficMix`]
/// through `stream` and drains every completion, returning the aggregate
/// [`TrafficReport`].
///
/// The submitting side runs on a scoped thread ("many concurrent sources"
/// collapsed onto one pacing thread — arrival times are already merged);
/// the calling thread consumes completions, so backpressure and delivery
/// ordering are exercised exactly as a deployment would.
///
/// # Panics
/// Panics when the stream dies mid-run (a worker or stage-thread panic is
/// an infrastructure failure here, not a scenario outcome — the
/// fault-injection campaigns use their own lockstep driver).
pub fn run_traffic_uplink<M: ChannelModel>(
    stream: &FrameStream,
    model: &M,
    params: &TrafficParams,
) -> TrafficReport {
    let paced = params.mix.is_paced();
    let arrivals = build_arrivals(model, params);

    let offered = arrivals.len() as u64;
    let start = Instant::now();
    let mut dropped = 0u64;
    let mut submitted = 0u64;
    let mut frames_all_ok = 0u64;
    let mut deadline_misses = 0u64;

    // Admissions the consumer may safely block on: every admitted frame
    // eventually completes, so `recv` below never over-waits.
    let admitted = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        let submitter = scope.spawn(|| {
            let mut dropped = 0u64;
            for Arrival { at, frame, .. } in arrivals {
                if paced {
                    let due = start + at;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                let mut frame = frame;
                frame.deadline = params.deadline.map(|d| Instant::now() + d);
                let accepted = if paced {
                    match stream.try_submit(frame) {
                        Ok(()) => true,
                        Err(TrySubmitError::Full(_)) => false,
                        Err(TrySubmitError::Dead(_)) => {
                            panic!("stream died under the traffic driver")
                        }
                    }
                } else {
                    stream.submit(frame).expect("stream died under the traffic driver");
                    true
                };
                if accepted {
                    admitted.fetch_add(1, std::sync::atomic::Ordering::Release);
                } else {
                    dropped += 1;
                }
            }
            dropped
        });

        // Drain on the calling thread: block on `recv` for frames known to
        // be admitted, idle briefly (no busy spin — the detection workers
        // own the cores) while the submitter is still pacing.
        let mut received = 0u64;
        let mut absorb = |done: gs_runtime::Completed<'_>| {
            if done.outcome().client_ok.iter().all(|&ok| ok) {
                frames_all_ok += 1;
            }
            if done.missed_deadline() {
                deadline_misses += 1;
            }
        };
        loop {
            if received < admitted.load(std::sync::atomic::Ordering::Acquire) {
                absorb(stream.recv().expect("stream died mid-drain"));
                received += 1;
            } else if submitter.is_finished() {
                break;
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        dropped = submitter.join().expect("traffic submitter panicked");
        submitted = offered - dropped;
        while received < submitted {
            absorb(stream.recv().expect("stream died mid-drain"));
            received += 1;
        }
    });

    let elapsed = start.elapsed();
    TrafficReport {
        offered,
        submitted,
        dropped,
        frames_all_ok,
        deadline_misses,
        elapsed,
        frames_per_sec: submitted as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// Drives `params.clients` Poisson sources through `stream` — the
/// original Poisson-only entry, now a thin wrapper over
/// [`run_traffic_uplink`].
pub fn run_poisson_uplink<M: ChannelModel>(
    stream: &FrameStream,
    model: &M,
    params: &PoissonParams,
) -> TrafficReport {
    run_traffic_uplink(stream, model, &params.traffic())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geosphere_core::geosphere_decoder;
    use gs_channel::RayleighChannel;
    use gs_modulation::Constellation;
    use gs_phy::PhyConfig;
    use gs_runtime::StreamConfig;

    #[test]
    fn saturation_delivers_every_frame() {
        let cfg = PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qam16) };
        let mut sc = StreamConfig::new(3);
        sc.workers = 2;
        sc.capacity = 4;
        let stream = FrameStream::new(cfg, geosphere_decoder(), sc);
        let model = RayleighChannel::new(4, 2);
        let params = PoissonParams {
            clients: 3,
            frames_per_client: 4,
            rate_hz: f64::INFINITY,
            snr_db: 24.0,
            deadline: None,
            seed: 7,
        };
        let report = run_poisson_uplink(&stream, &model, &params);
        assert_eq!(report.offered, 12);
        assert_eq!(report.submitted, 12, "saturation mode never drops");
        assert_eq!(report.dropped, 0);
        assert!(report.frames_all_ok > 0, "24 dB 16-QAM should deliver frames");
        assert!(report.frames_per_sec > 0.0);
        assert_eq!(stream.stats().completed, 12);
    }

    #[test]
    fn paced_mode_keeps_loss_accounting_consistent() {
        let cfg = PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qpsk) };
        let mut sc = StreamConfig::new(2);
        sc.workers = 1;
        sc.capacity = 2;
        let stream = FrameStream::new(cfg, geosphere_decoder(), sc);
        let model = RayleighChannel::new(2, 2);
        // A deliberately absurd offered rate over a tiny slot pool: some
        // arrivals must drop, and offered = submitted + dropped must hold.
        let params = PoissonParams {
            clients: 2,
            frames_per_client: 6,
            rate_hz: 1e6,
            snr_db: 20.0,
            deadline: Some(Duration::from_millis(200)),
            seed: 11,
        };
        let report = run_poisson_uplink(&stream, &model, &params);
        assert_eq!(report.offered, 12);
        assert_eq!(report.submitted + report.dropped, report.offered);
        assert_eq!(stream.stats().completed as u64, report.submitted);
        assert!(report.deadline_misses <= report.submitted);
    }

    #[test]
    fn schedules_are_monotone_and_seed_deterministic() {
        let mixes = [
            TrafficMix::Poisson { rate_hz: 500.0 },
            TrafficMix::Bursty { calm_hz: 100.0, burst_hz: 2000.0, p_enter: 0.2, p_exit: 0.3 },
            TrafficMix::Pareto { rate_hz: 500.0, alpha: 1.8 },
            TrafficMix::Diurnal { rate_hz: 500.0, swing: 0.8, period: Duration::from_millis(100) },
        ];
        for mix in &mixes {
            let draw = |seed| mix.schedule(64, &mut StdRng::seed_from_u64(seed));
            let a = draw(5);
            assert_eq!(a, draw(5), "{} schedule must be a pure function of its seed", mix.name());
            assert_ne!(a, draw(6), "{} schedule must vary with the seed", mix.name());
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{} schedule monotone", mix.name());
            assert!(mix.is_paced());
        }
        let sat = TrafficMix::Saturation.schedule(8, &mut StdRng::seed_from_u64(1));
        assert!(sat.iter().all(|&t| t == Duration::ZERO));
    }

    #[test]
    fn mix_mean_rates_land_near_nominal() {
        // 4000 arrivals at nominal 1 kHz: the empirical mean gap of every
        // paced mix must land within ~15% of 1 ms (Pareto included — its
        // scale is chosen to match the mean).
        for mix in [
            TrafficMix::Poisson { rate_hz: 1000.0 },
            TrafficMix::Pareto { rate_hz: 1000.0, alpha: 2.2 },
            TrafficMix::Diurnal { rate_hz: 1000.0, swing: 0.5, period: Duration::from_millis(50) },
        ] {
            let sched = mix.schedule(4000, &mut StdRng::seed_from_u64(17));
            let total = sched.last().unwrap().as_secs_f64();
            let mean_gap = total / 4000.0;
            assert!(
                (mean_gap - 1e-3).abs() < 0.25e-3,
                "{}: mean gap {mean_gap:.2e}s, expected ~1e-3s",
                mix.name()
            );
        }
    }

    #[test]
    fn bursty_mix_actually_clusters() {
        // Compare gap dispersion: bursty arrivals must have a much higher
        // coefficient of variation than Poisson at the same mean load.
        let cv = |sched: &[Duration]| {
            let gaps: Vec<f64> = sched
                .windows(2)
                .map(|w| (w[1] - w[0]).as_secs_f64())
                .chain(std::iter::once(sched[0].as_secs_f64()))
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let poisson =
            TrafficMix::Poisson { rate_hz: 500.0 }.schedule(2000, &mut StdRng::seed_from_u64(23));
        let bursty =
            TrafficMix::Bursty { calm_hz: 50.0, burst_hz: 5000.0, p_enter: 0.1, p_exit: 0.05 }
                .schedule(2000, &mut StdRng::seed_from_u64(23));
        assert!(
            cv(&bursty) > 1.5 * cv(&poisson),
            "bursty CV {:.2} must exceed Poisson CV {:.2}",
            cv(&bursty),
            cv(&poisson)
        );
    }
}
