//! Deadline-storm and drain-recovery scenarios for the adaptive control
//! plane.
//!
//! Two questions about `gs-runtime`'s closed loop, asked the way the
//! bench gate (and CI) asks them:
//!
//! * **Storm** ([`run_deadline_storm`]): under a saturating Poisson load
//!   where every frame carries a deadline, does the adaptive ladder
//!   (sphere → FSD → MMSE under pressure) deliver a *lower miss rate*
//!   than a pipeline welded to sphere decoding? Both pipelines see the
//!   same offered traffic (same seed, same channel draws).
//! * **Drain** ([`run_drain_recovery`]): after the storm passes and the
//!   queue drains, does the policy climb back to the top tier — i.e. is
//!   the degradation a *mode*, not a ratchet?
//!
//! Scenarios are built on [`run_poisson_uplink`]; the storm uses
//! saturation mode (blocking submission, maximum backpressure) so the
//! miss-rate comparison is about detection speed, not ingress loss.

use crate::traffic::{run_poisson_uplink, PoissonParams, TrafficReport};
use geosphere_core::geosphere_decoder;
use gs_channel::{noise_variance_for_snr_db, ChannelModel};
use gs_phy::PhyConfig;
use gs_runtime::{
    DetectorLadder, DetectorTier, FrameStream, HysteresisPolicy, StreamConfig, UplinkFrame,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Shape of a deadline storm: a saturating multi-client load where every
/// frame must complete within `deadline` of its submission.
#[derive(Clone, Debug)]
pub struct StormConfig {
    /// Concurrent traffic sources.
    pub clients: usize,
    /// Frames each client offers.
    pub frames_per_client: usize,
    /// Operating SNR for every frame.
    pub snr_db: f64,
    /// Relative completion deadline for every frame.
    pub deadline: Duration,
    /// Detection workers for each pipeline under test.
    pub workers: usize,
    /// Detection shards (`0` = per memory domain).
    pub shards: usize,
    /// Slot-pool bound for each pipeline under test.
    pub capacity: usize,
    /// Seed for channel realizations and frame payloads.
    pub seed: u64,
}

impl StormConfig {
    fn stream_config(&self) -> StreamConfig {
        let mut sc = StreamConfig::new(self.clients);
        sc.workers = self.workers;
        sc.shards = self.shards;
        sc.capacity = self.capacity;
        sc
    }

    fn poisson(&self) -> PoissonParams {
        PoissonParams {
            clients: self.clients,
            frames_per_client: self.frames_per_client,
            rate_hz: f64::INFINITY,
            snr_db: self.snr_db,
            deadline: Some(self.deadline),
            seed: self.seed,
        }
    }

    /// The default adaptive ladder at this storm's operating SNR.
    pub fn default_ladder(&self) -> DetectorLadder {
        DetectorLadder::geosphere_default(noise_variance_for_snr_db(self.snr_db))
    }
}

/// The storm verdict: the same offered load through a static-sphere
/// pipeline and through the default adaptive control plane.
#[derive(Clone, Debug)]
pub struct StormComparison {
    /// The static pipeline (sphere decoding for every frame).
    pub static_sphere: TrafficReport,
    /// The adaptive pipeline ([`HysteresisPolicy`] over the default
    /// ladder).
    pub adaptive: TrafficReport,
    /// The adaptive run's admissions per tier — evidence the ladder
    /// actually moved (a storm that never degrades is not a storm).
    pub adaptive_tier_admissions: [u64; DetectorTier::COUNT],
}

impl StormComparison {
    /// Deadline misses as a fraction of submitted frames, static pipeline.
    pub fn static_miss_rate(&self) -> f64 {
        miss_rate(&self.static_sphere)
    }

    /// Deadline misses as a fraction of submitted frames, adaptive
    /// pipeline.
    pub fn adaptive_miss_rate(&self) -> f64 {
        miss_rate(&self.adaptive)
    }
}

fn miss_rate(report: &TrafficReport) -> f64 {
    if report.submitted == 0 {
        0.0
    } else {
        report.deadline_misses as f64 / report.submitted as f64
    }
}

/// Runs the same deadline storm through a static-sphere pipeline and the
/// default adaptive pipeline, returning both reports.
///
/// The two runs are sequential (not concurrent), so they do not contend
/// for cores; both use saturation-mode submission, so neither drops at
/// ingress — every offered frame is decoded and accounted.
pub fn run_deadline_storm<M: ChannelModel>(
    cfg: &PhyConfig,
    model: &M,
    storm: &StormConfig,
) -> StormComparison {
    let params = storm.poisson();

    let static_stream = FrameStream::new(*cfg, geosphere_decoder(), storm.stream_config());
    let static_sphere = run_poisson_uplink(&static_stream, model, &params);
    drop(static_stream);

    let adaptive_stream = FrameStream::adaptive(
        *cfg,
        storm.default_ladder(),
        HysteresisPolicy::new(),
        storm.stream_config(),
    );
    let adaptive = run_poisson_uplink(&adaptive_stream, model, &params);
    let adaptive_tier_admissions = adaptive_stream.stats().tier_admissions;

    StormComparison { static_sphere, adaptive, adaptive_tier_admissions }
}

/// What [`run_drain_recovery`] observed.
#[derive(Clone, Debug)]
pub struct DrainRecoveryReport {
    /// The storm phase, through the adaptive pipeline.
    pub storm: TrafficReport,
    /// Whether the storm drove at least one admission below the top tier.
    pub degraded: bool,
    /// The tier of each trickle frame, in submission order.
    pub trickle_tiers: Vec<DetectorTier>,
    /// Whether the final trickle admission was back at
    /// [`DetectorTier::Sphere`].
    pub recovered: bool,
}

/// Storm → drain → trickle: drives a deadline storm through an adaptive
/// stream, lets the queue drain for `idle`, then submits `trickle`
/// deadline-free frames one at a time, recording the tier each decoded
/// at. Recovery means the ladder climbed back to sphere by the last
/// trickle frame.
///
/// `idle` must exceed the control plane's one-second miss-rate window for
/// stale storm misses to age out; the trickle needs enough frames for the
/// policy's dwell to allow two climbs (MMSE → FSD → sphere).
pub fn run_drain_recovery<M: ChannelModel>(
    cfg: &PhyConfig,
    model: &M,
    storm: &StormConfig,
    idle: Duration,
    trickle: usize,
) -> DrainRecoveryReport {
    let stream = FrameStream::adaptive(
        *cfg,
        storm.default_ladder(),
        HysteresisPolicy::new(),
        storm.stream_config(),
    );
    let storm_report = run_poisson_uplink(&stream, model, &storm.poisson());
    let after_storm = stream.stats();
    let degraded =
        after_storm.tier_admissions[DetectorTier::Sphere.index()] < after_storm.submitted;

    std::thread::sleep(idle);

    let mut rng = StdRng::seed_from_u64(storm.seed ^ 0xD5A1_4EC0);
    let mut trickle_tiers = Vec::with_capacity(trickle);
    for k in 0..trickle {
        let channel = Arc::new(model.realize(&mut rng));
        let frame =
            UplinkFrame::new(k % storm.clients, channel, storm.snr_db, storm.seed ^ (k as u64));
        stream.submit(frame).expect("stream died during the trickle phase");
        let done = stream.recv().expect("stream died during the trickle phase");
        trickle_tiers.push(done.tier());
    }
    let recovered = trickle_tiers.last() == Some(&DetectorTier::Sphere);

    DrainRecoveryReport { storm: storm_report, degraded, trickle_tiers, recovered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_channel::RayleighChannel;
    use gs_modulation::Constellation;

    fn storm_config() -> StormConfig {
        StormConfig {
            clients: 3,
            frames_per_client: 12,
            snr_db: 24.0,
            // Tight against sphere decoding at saturation with 2 workers,
            // roomy for the MMSE floor.
            deadline: Duration::from_millis(4),
            workers: 2,
            shards: 1,
            capacity: 6,
            seed: 2014,
        }
    }

    #[test]
    fn storm_degrades_and_both_pipelines_account_consistently() {
        let cfg = PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qam16) };
        let model = RayleighChannel::new(4, 4);
        let report = run_deadline_storm(&cfg, &model, &storm_config());
        for r in [&report.static_sphere, &report.adaptive] {
            assert_eq!(r.offered, 36);
            assert_eq!(r.submitted, 36, "saturation mode never drops");
            assert_eq!(r.dropped, 0);
        }
        let total: u64 = report.adaptive_tier_admissions.iter().sum();
        assert_eq!(total, 36, "every admission is attributed to a tier");
        // A storm this tight must push the adaptive ladder off the top
        // rung at least once.
        assert!(
            report.adaptive_tier_admissions[DetectorTier::Sphere.index()] < 36,
            "storm never degraded: {:?}",
            report.adaptive_tier_admissions
        );
    }

    #[test]
    fn drained_stream_recovers_the_top_tier() {
        let cfg = PhyConfig { payload_bits: 256, ..PhyConfig::new(Constellation::Qam16) };
        let model = RayleighChannel::new(4, 4);
        let report =
            run_drain_recovery(&cfg, &model, &storm_config(), Duration::from_millis(1200), 16);
        assert_eq!(report.storm.submitted, 36);
        assert!(report.degraded, "the storm phase must degrade at least one admission");
        assert!(
            report.recovered,
            "after the drain the ladder must climb back to sphere: {:?}",
            report.trickle_tiers
        );
        // The climb is monotone: tiers never degrade during the trickle.
        assert!(
            report.trickle_tiers.windows(2).all(|w| w[1] <= w[0]),
            "trickle tiers must only climb: {:?}",
            report.trickle_tiers
        );
    }
}
