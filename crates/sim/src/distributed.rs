//! Distributed MIMO: multiple APs jointly receiving over a wired backhaul.
//!
//! The paper's Figure 1 and keywords place Geosphere in a *distributed*
//! MIMO setting: "clients may simply send their own information streams to
//! the access points (APs), which are connected by a wired network
//! backhaul". This module builds that system: several testbed APs pool
//! their antennas into one tall virtual array, per-AP radio impairments
//! (independent oscillator phase and small residual CFO) are applied, and
//! the joint channel feeds any [`geosphere_core::MimoDetector`]. Joint
//! detection across APs both adds receive antennas *and* improves
//! conditioning — the angular separation between APs is what breaks the
//! Fig. 2(b) geometry.

use gs_channel::{ChannelModel, MimoChannel, Testbed};
use gs_linalg::{Complex, Matrix};
use rand::Rng;

/// A set of APs cooperating over the backhaul.
#[derive(Clone, Debug)]
pub struct DistributedCluster {
    /// Indices of the participating APs in the testbed.
    pub aps: Vec<usize>,
    /// Antennas used per AP.
    pub antennas_per_ap: usize,
    /// Standard deviation of the per-AP residual carrier phase (radians)
    /// after backhaul synchronization. 0 = perfect sync.
    pub phase_jitter_std: f64,
}

impl DistributedCluster {
    /// A perfectly synchronized cluster.
    pub fn synchronized(aps: Vec<usize>, antennas_per_ap: usize) -> Self {
        DistributedCluster { aps, antennas_per_ap, phase_jitter_std: 0.0 }
    }

    /// A cluster with residual per-AP phase jitter (imperfect backhaul
    /// sync; ~0.1 rad is a realistic post-correction residual).
    pub fn with_phase_jitter(mut self, std: f64) -> Self {
        self.phase_jitter_std = std;
        self
    }

    /// Total virtual antennas.
    pub fn total_antennas(&self) -> usize {
        self.aps.len() * self.antennas_per_ap
    }
}

/// A channel model producing the stacked multi-AP channel for a fixed
/// client group: rows = all APs' antennas concatenated.
#[derive(Clone, Debug)]
pub struct DistributedChannel {
    testbed: Testbed,
    cluster: DistributedCluster,
    clients: Vec<usize>,
}

impl DistributedChannel {
    /// Builds the joint channel model.
    pub fn new(testbed: Testbed, cluster: DistributedCluster, clients: Vec<usize>) -> Self {
        DistributedChannel { testbed, cluster, clients }
    }
}

impl ChannelModel for DistributedChannel {
    fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> MimoChannel {
        let per_ap: Vec<MimoChannel> = self
            .cluster
            .aps
            .iter()
            .map(|&ap| {
                self.testbed.channel(ap, &self.clients, self.cluster.antennas_per_ap).realize(rng)
            })
            .collect();
        let n_sc = per_ap[0].num_subcarriers();
        let na = self.cluster.antennas_per_ap;
        let nc = self.clients.len();
        // Per-AP phase offsets (common to all of an AP's antennas — one
        // oscillator per radio).
        let phases: Vec<Complex> = self
            .cluster
            .aps
            .iter()
            .map(|_| {
                if self.cluster.phase_jitter_std > 0.0 {
                    Complex::cis(gs_channel::sample_gaussian(rng) * self.cluster.phase_jitter_std)
                } else {
                    Complex::ONE
                }
            })
            .collect();

        let mats = (0..n_sc)
            .map(|k| {
                Matrix::from_fn(self.cluster.total_antennas(), nc, |r, c| {
                    let ap_idx = r / na;
                    per_ap[ap_idx].subcarrier(k)[(r % na, c)] * phases[ap_idx]
                })
            })
            .collect();
        MimoChannel::new(mats)
    }

    fn num_rx(&self) -> usize {
        self.cluster.total_antennas()
    }

    fn num_tx(&self) -> usize {
        self.clients.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_channel::lambda_max_db;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Testbed, Vec<usize>) {
        (Testbed::office(), vec![4, 6, 7, 9])
    }

    #[test]
    fn stacked_dimensions() {
        let (tb, clients) = setup();
        let cluster = DistributedCluster::synchronized(vec![0, 1], 4);
        let model = DistributedChannel::new(tb, cluster, clients);
        let mut rng = StdRng::seed_from_u64(951);
        let ch = model.realize(&mut rng);
        assert_eq!(ch.num_rx(), 8);
        assert_eq!(ch.num_tx(), 4);
        assert_eq!(ch.num_subcarriers(), 48);
    }

    #[test]
    fn joint_reception_improves_conditioning() {
        // The distributed-MIMO payoff: two APs at different bearings see
        // the clients from different angles, breaking the common-angle
        // degeneracy a single AP suffers.
        let (tb, clients) = setup();
        let mut rng = StdRng::seed_from_u64(952);
        let trials = 25;

        let single = DistributedChannel::new(
            tb.clone(),
            DistributedCluster::synchronized(vec![0], 4),
            clients.clone(),
        );
        let joint =
            DistributedChannel::new(tb, DistributedCluster::synchronized(vec![0, 2], 4), clients);

        let avg_lambda = |m: &DistributedChannel, rng: &mut StdRng| -> f64 {
            (0..trials).map(|_| lambda_max_db(m.realize(rng).subcarrier(24))).sum::<f64>()
                / trials as f64
        };
        let l_single = avg_lambda(&single, &mut rng);
        let l_joint = avg_lambda(&joint, &mut rng);
        assert!(
            l_joint < l_single - 3.0,
            "joint APs should improve Λ by several dB: single {l_single:.1}, joint {l_joint:.1}"
        );
    }

    #[test]
    fn phase_jitter_preserves_column_power() {
        // A common per-AP phase rotation is power-neutral (it is absorbed
        // by the detector's CSI); the model must not change channel energy.
        let (tb, clients) = setup();
        let mut rng = StdRng::seed_from_u64(953);
        let cluster = DistributedCluster::synchronized(vec![0, 1], 4).with_phase_jitter(0.3);
        let model = DistributedChannel::new(tb, cluster, clients);
        let ch = model.realize(&mut rng);
        assert!((ch.average_entry_power() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn joint_detection_end_to_end() {
        use geosphere_core::geosphere_decoder;
        use gs_modulation::Constellation;
        use gs_phy::{uplink_frame, PhyConfig};

        let (tb, clients) = setup();
        let mut rng = StdRng::seed_from_u64(954);
        let model =
            DistributedChannel::new(tb, DistributedCluster::synchronized(vec![0, 1], 4), clients);
        let ch = model.realize(&mut rng);
        let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(Constellation::Qam16) };
        let out = uplink_frame(&cfg, &ch, &geosphere_decoder(), 25.0, &mut rng);
        assert!(
            out.client_ok.iter().all(|&ok| ok),
            "8-antenna joint reception at 25 dB must deliver all 4 clients"
        );
    }
}
