//! The scenario DSL for seeded campaigns.
//!
//! A [`Scenario`] is one fully-specified stress test of the streaming
//! runtime, composed from orthogonal axes:
//!
//! * **channel** ([`ChannelSpec`]) — per-frame i.i.d. Rayleigh (the
//!   paper's simulation model), AR(1) correlated block fading under a
//!   mobility/Doppler trajectory, block fading with bursty co-channel
//!   interference, or the frequency-selective indoor testbed emulation;
//! * **traffic** ([`TrafficMix`]) — which arrival process orders the
//!   clients' frames (the campaign replays the *order*, not the
//!   wall-clock pacing, so outcomes stay time-independent);
//! * **SNR** ([`SnrSpec`]) — fixed operating point or a bounded
//!   per-client random walk;
//! * **deadlines** ([`DeadlineSpec`]) — deadline-free, uniformly
//!   generous (never missable), or a window of pre-expired deadlines
//!   (always missed, by construction — wall-clock independent either
//!   way);
//! * **topology** — clients, detection workers, shards, slot-pool
//!   capacity;
//! * **detector** — a pinned [`DetectorTier`], so every frame's outcome
//!   is bit-comparable against the serial reference decode;
//! * **fault** ([`FaultSpec`]) — at most one injected failure.
//!
//! Everything — channel draws, arrival order, frame payloads, fault
//! position — derives from the scenario's one `u64` seed, so a scenario
//! is its seed: re-running it reproduces the identical report, and a
//! campaign of thousands is just a seed range.
//!
//! [`Scenario::sampled`] is the campaign's generator: it spreads
//! scenarios across the full cross product of the axes above.
//! [`presets`] holds the named scenarios shared with the bench gate, so
//! `bench_gate --mode deadline_storm` and the campaign's storm scenarios
//! agree on one definition.

use crate::faults::FaultSpec;
use crate::storm::StormConfig;
use crate::traffic::TrafficMix;
use gs_channel::{
    ChannelModel, DopplerTrajectory, FadingProcess, InterferenceBurst, MimoChannel,
    RayleighChannel, SelectiveRayleighChannel, SnrWalk,
};
use gs_runtime::DetectorTier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64 — the seed-spreading hash used to derive independent
/// sub-seeds (per client, per frame, per axis) from one scenario seed.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The channel family a scenario draws its per-frame channels from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChannelSpec {
    /// Per-frame i.i.d. Rayleigh — the paper's §5.2 simulation model.
    IidRayleigh,
    /// AR(1) Gauss–Markov correlated block fading whose coherence follows
    /// a mobility trajectory (see [`FadingProcess`]).
    BlockFading {
        /// Normalized-Doppler trajectory across the scenario.
        trajectory: DopplerTrajectory,
    },
    /// Correlated block fading plus a Markov-modulated co-channel
    /// interferer that knocks `penalty_db` off the operating SNR while a
    /// burst is on.
    BurstyInterference {
        /// Normalized-Doppler trajectory across the scenario.
        trajectory: DopplerTrajectory,
        /// Per-frame probability a burst starts.
        p_on: f64,
        /// Per-frame probability an ongoing burst ends.
        p_off: f64,
        /// SNR penalty while the interferer is on, in dB.
        penalty_db: f64,
    },
    /// The frequency-selective emulated indoor office testbed.
    SelectiveIndoor,
}

impl ChannelSpec {
    /// Stable name for reports and descriptors.
    pub fn name(&self) -> &'static str {
        match self {
            ChannelSpec::IidRayleigh => "iid_rayleigh",
            ChannelSpec::BlockFading { .. } => "block_fading",
            ChannelSpec::BurstyInterference { .. } => "bursty_interference",
            ChannelSpec::SelectiveIndoor => "selective_indoor",
        }
    }
}

/// How a scenario's operating SNR evolves per client.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SnrSpec {
    /// One fixed operating point for every frame.
    Fixed(f64),
    /// A bounded per-client random walk (see [`SnrWalk`]).
    Walk {
        /// Starting SNR in dB.
        start_db: f64,
        /// Maximum per-frame step in dB.
        step_db: f64,
        /// Lower reflection bound in dB.
        min_db: f64,
        /// Upper reflection bound in dB.
        max_db: f64,
    },
}

impl SnrSpec {
    /// The SNR the scenario's detector ladder is parameterized at.
    pub fn base_db(&self) -> f64 {
        match *self {
            SnrSpec::Fixed(db) => db,
            SnrSpec::Walk { start_db, .. } => start_db,
        }
    }

    /// Stable name for reports and descriptors.
    pub fn name(&self) -> &'static str {
        match self {
            SnrSpec::Fixed(_) => "fixed",
            SnrSpec::Walk { .. } => "walk",
        }
    }
}

/// The deadline regime frames are submitted under. Campaign scenarios
/// only use regimes whose miss/hit outcome is wall-clock independent:
/// `Generous` deadlines are never missable, `ExpiredWindow` deadlines are
/// always missed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlineSpec {
    /// Deadline-free submission.
    None,
    /// Every frame carries a far-future deadline (exercises the EDF path
    /// without ever missing).
    Generous,
    /// Frames `start .. start + len` (global submission order) carry
    /// already-expired deadlines; the rest are generous.
    ExpiredWindow {
        /// First frame of the expired window.
        start: usize,
        /// Window length in frames.
        len: usize,
    },
}

impl DeadlineSpec {
    /// Stable name for reports and descriptors.
    pub fn name(&self) -> &'static str {
        match self {
            DeadlineSpec::None => "none",
            DeadlineSpec::Generous => "generous",
            DeadlineSpec::ExpiredWindow { .. } => "expired_window",
        }
    }
}

/// The deadline a planned frame is stamped with at submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlineKind {
    /// No deadline.
    Free,
    /// Far in the future — delivered frames can never miss it.
    Generous,
    /// Already expired at submission — delivered frames always miss it.
    Expired,
}

/// One frame of a planned scenario, in global submission order.
#[derive(Clone, Debug)]
pub struct PlannedFrame {
    /// Submitting client lane.
    pub client: usize,
    /// The frame's payload/noise seed.
    pub seed: u64,
    /// Operating SNR for this frame (after walks and interference).
    pub snr_db: f64,
    /// The realized channel.
    pub channel: Arc<MimoChannel>,
    /// The deadline regime this frame is stamped with.
    pub deadline: DeadlineKind,
}

/// One fully-specified campaign scenario. Construct with
/// [`Scenario::new`] and the builder methods, or sample the cross
/// product with [`Scenario::sampled`].
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The scenario's identity: every random draw derives from this.
    pub seed: u64,
    /// Concurrent client lanes.
    pub clients: usize,
    /// Frames each client offers.
    pub frames_per_client: usize,
    /// Detection workers.
    pub workers: usize,
    /// Detection shards.
    pub shards: usize,
    /// Slot-pool capacity.
    pub capacity: usize,
    /// Receive antennas per frame.
    pub num_rx: usize,
    /// Spatial streams per frame.
    pub num_streams: usize,
    /// Channel family.
    pub channel: ChannelSpec,
    /// Arrival process ordering the clients' frames.
    pub traffic: TrafficMix,
    /// SNR evolution.
    pub snr: SnrSpec,
    /// Deadline regime.
    pub deadlines: DeadlineSpec,
    /// Pinned detector tier.
    pub tier: DetectorTier,
    /// At most one injected fault.
    pub fault: Option<FaultSpec>,
}

impl Scenario {
    /// A minimal healthy scenario: 2 clients × 8 frames, 4×2 i.i.d.
    /// Rayleigh at 24 dB, Poisson order, deadline-free, sphere tier,
    /// no fault.
    pub fn new(seed: u64) -> Self {
        Scenario {
            seed,
            clients: 2,
            frames_per_client: 8,
            workers: 2,
            shards: 1,
            capacity: 4,
            num_rx: 4,
            num_streams: 2,
            channel: ChannelSpec::IidRayleigh,
            traffic: TrafficMix::Poisson { rate_hz: 1000.0 },
            snr: SnrSpec::Fixed(24.0),
            deadlines: DeadlineSpec::None,
            tier: DetectorTier::Sphere,
            fault: None,
        }
    }

    /// Sets the client count.
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n.max(1);
        self
    }

    /// Sets frames per client.
    pub fn frames_per_client(mut self, n: usize) -> Self {
        self.frames_per_client = n.max(1);
        self
    }

    /// Sets workers, shards, and slot-pool capacity.
    pub fn topology(mut self, workers: usize, shards: usize, capacity: usize) -> Self {
        self.workers = workers.max(1);
        self.shards = shards.max(1);
        self.capacity = capacity.max(1);
        self
    }

    /// Sets the channel family.
    pub fn channel(mut self, spec: ChannelSpec) -> Self {
        self.channel = spec;
        self
    }

    /// Sets the arrival process.
    pub fn traffic(mut self, mix: TrafficMix) -> Self {
        self.traffic = mix;
        self
    }

    /// Sets the SNR evolution.
    pub fn snr(mut self, spec: SnrSpec) -> Self {
        self.snr = spec;
        self
    }

    /// Sets the deadline regime.
    pub fn deadlines(mut self, spec: DeadlineSpec) -> Self {
        self.deadlines = spec;
        self
    }

    /// Pins the detector tier.
    pub fn tier(mut self, tier: DetectorTier) -> Self {
        self.tier = tier;
        self
    }

    /// Injects a fault.
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Total frames the scenario offers.
    pub fn total_frames(&self) -> usize {
        self.clients * self.frames_per_client
    }

    /// Compact human descriptor, e.g.
    /// `ch=block_fading tr=bursty snr=fixed dl=generous tier=fsd fault=worker_panic@3`.
    pub fn descriptor(&self) -> String {
        format!(
            "ch={} tr={} snr={} dl={} tier={} fault={}",
            self.channel.name(),
            self.traffic.name(),
            self.snr.name(),
            self.deadlines.name(),
            self.tier.name(),
            self.fault.map_or_else(|| "none".into(), |f| f.describe()),
        )
    }

    /// The effective deadline regime of global frame `idx`, after folding
    /// a [`FaultSpec::DeadlineStorm`] window over the base spec.
    fn deadline_kind(&self, idx: usize) -> DeadlineKind {
        if let Some(FaultSpec::DeadlineStorm { start, len }) = self.fault {
            if idx >= start && idx < start + len {
                return DeadlineKind::Expired;
            }
        }
        match self.deadlines {
            DeadlineSpec::None => DeadlineKind::Free,
            DeadlineSpec::Generous => DeadlineKind::Generous,
            DeadlineSpec::ExpiredWindow { start, len } => {
                if idx >= start && idx < start + len {
                    DeadlineKind::Expired
                } else {
                    DeadlineKind::Generous
                }
            }
        }
    }

    /// Expands the scenario into its frame plan: channels realized,
    /// per-frame SNRs walked, arrival order merged, deadline kinds
    /// stamped — a pure function of the scenario (and therefore of its
    /// seed).
    pub fn plan(&self) -> Vec<PlannedFrame> {
        let (na, nc) = (self.num_rx, self.num_streams);
        let mut per_client: Vec<Vec<PlannedFrame>> = Vec::with_capacity(self.clients);
        for client in 0..self.clients {
            // Independent streams per client and per concern, so the
            // channel draws are invariant to traffic order and clients
            // are invariant to each other.
            let mut ch_rng =
                StdRng::seed_from_u64(splitmix64(self.seed ^ 0xC4A2 ^ (client as u64) << 8));
            let mut snr_rng =
                StdRng::seed_from_u64(splitmix64(self.seed ^ 0x54A1 ^ (client as u64) << 8));
            let mut fading = match self.channel {
                ChannelSpec::BlockFading { trajectory }
                | ChannelSpec::BurstyInterference { trajectory, .. } => {
                    Some(FadingProcess::new(na, nc, trajectory))
                }
                _ => None,
            };
            let mut burst = match self.channel {
                ChannelSpec::BurstyInterference { p_on, p_off, penalty_db, .. } => {
                    Some(InterferenceBurst::new(p_on, p_off, penalty_db))
                }
                _ => None,
            };
            let mut walk = match self.snr {
                SnrSpec::Fixed(_) => None,
                SnrSpec::Walk { start_db, step_db, min_db, max_db } => {
                    Some(SnrWalk::new(start_db, step_db, min_db, max_db))
                }
            };
            let frames = (0..self.frames_per_client)
                .map(|k| {
                    let channel = match self.channel {
                        ChannelSpec::IidRayleigh => {
                            RayleighChannel::new(na, nc).realize(&mut ch_rng)
                        }
                        ChannelSpec::SelectiveIndoor => {
                            SelectiveRayleighChannel::indoor(na, nc).realize(&mut ch_rng)
                        }
                        ChannelSpec::BlockFading { .. }
                        | ChannelSpec::BurstyInterference { .. } => fading
                            .as_mut()
                            .expect("fading process present")
                            .advance(self.frames_per_client, &mut ch_rng),
                    };
                    let mut snr_db = match (&mut walk, self.snr) {
                        (Some(w), _) => w.advance(&mut snr_rng),
                        (None, SnrSpec::Fixed(db)) => db,
                        (None, SnrSpec::Walk { start_db, .. }) => start_db,
                    };
                    if let Some(b) = burst.as_mut() {
                        snr_db -= b.advance(&mut snr_rng);
                    }
                    PlannedFrame {
                        client,
                        seed: splitmix64(
                            self.seed ^ ((client as u64) << 32) ^ (k as u64).wrapping_add(1),
                        ),
                        snr_db,
                        channel: Arc::new(channel),
                        deadline: DeadlineKind::Free, // stamped after the merge
                    }
                })
                .collect();
            per_client.push(frames);
        }

        // Merge into global submission order by the traffic mix's virtual
        // arrival times (stable: ties keep client order, per-client
        // sequence preserved).
        let mut tr_rng = StdRng::seed_from_u64(splitmix64(self.seed ^ 0x007A_FF1C));
        let mut merged: Vec<(Duration, usize, PlannedFrame)> =
            Vec::with_capacity(self.total_frames());
        for (client, frames) in per_client.into_iter().enumerate() {
            let at = self.traffic.schedule(self.frames_per_client, &mut tr_rng);
            for (t, f) in at.into_iter().zip(frames) {
                merged.push((t, client, f));
            }
        }
        merged.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

        merged
            .into_iter()
            .enumerate()
            .map(|(idx, (_, _, mut f))| {
                f.deadline = self.deadline_kind(idx);
                f
            })
            .collect()
    }

    /// Samples scenario `index` of a campaign rooted at `base_seed`,
    /// spreading indices across the cross product of channel families ×
    /// traffic mixes × SNR specs × deadline regimes × detector tiers ×
    /// fault/no-fault. `frames_per_client` is the campaign's fidelity
    /// knob. Every 16th scenario is the shared deadline-storm preset
    /// ([`presets::campaign_storm`]).
    pub fn sampled(index: u64, base_seed: u64, frames_per_client: usize) -> Self {
        let seed = splitmix64(base_seed ^ splitmix64(index.wrapping_add(1)));
        if index % 16 == 15 {
            return presets::campaign_storm(seed, frames_per_client);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        fn pick(rng: &mut StdRng, n: usize) -> usize {
            ((rng.gen::<f64>() * n as f64) as usize).min(n - 1)
        }

        let clients = 1 + pick(&mut rng, 3);
        let workers = 1 + pick(&mut rng, 3);
        let shards = 1 + pick(&mut rng, 2.min(workers));
        let capacity = 2 + pick(&mut rng, 5);
        let frames_per_client = frames_per_client.max(2);
        let total = clients * frames_per_client;

        let channel = match pick(&mut rng, 4) {
            0 => ChannelSpec::IidRayleigh,
            1 => ChannelSpec::BlockFading {
                trajectory: match pick(&mut rng, 3) {
                    0 => DopplerTrajectory::Constant(0.01 + 0.2 * rng.gen::<f64>()),
                    1 => DopplerTrajectory::Ramp { from: 0.005, to: 0.3 },
                    _ => DopplerTrajectory::Orbit { center: 0.1, swing: 0.08, period: 16 },
                },
            },
            2 => ChannelSpec::BurstyInterference {
                trajectory: DopplerTrajectory::Constant(0.02 + 0.1 * rng.gen::<f64>()),
                p_on: 0.15,
                p_off: 0.35,
                penalty_db: 4.0 + 6.0 * rng.gen::<f64>(),
            },
            _ => ChannelSpec::SelectiveIndoor,
        };
        let traffic = match pick(&mut rng, 4) {
            0 => TrafficMix::Poisson { rate_hz: 1000.0 },
            1 => {
                TrafficMix::Bursty { calm_hz: 200.0, burst_hz: 5000.0, p_enter: 0.15, p_exit: 0.3 }
            }
            2 => TrafficMix::Pareto { rate_hz: 1000.0, alpha: 1.6 + rng.gen::<f64>() },
            _ => TrafficMix::Diurnal {
                rate_hz: 1000.0,
                swing: 0.7,
                period: Duration::from_millis(20),
            },
        };
        let snr = match pick(&mut rng, 2) {
            0 => SnrSpec::Fixed(18.0 + 10.0 * rng.gen::<f64>()),
            _ => SnrSpec::Walk {
                start_db: 22.0,
                step_db: 1.0 + 2.0 * rng.gen::<f64>(),
                min_db: 14.0,
                max_db: 30.0,
            },
        };
        let deadlines = match pick(&mut rng, 3) {
            0 => DeadlineSpec::None,
            1 => DeadlineSpec::Generous,
            _ => {
                let len = 1 + pick(&mut rng, total.max(2) - 1);
                DeadlineSpec::ExpiredWindow { start: pick(&mut rng, total - len + 1), len }
            }
        };
        let tier =
            DetectorTier::from_index(pick(&mut rng, DetectorTier::COUNT)).expect("tier index");
        // Roughly half the scenarios carry a fault, spread over the
        // taxonomy; lethal faults need at least one survivable frame.
        let fault = match pick(&mut rng, 8) {
            0 => {
                Some(FaultSpec::WorkerPanic { after_frames: 1 + pick(&mut rng, total - 1) as u64 })
            }
            1 => Some(FaultSpec::ShardLoss {
                shard: 1,
                after_frames: 1 + pick(&mut rng, total - 1) as u64,
            }),
            2 | 3 => {
                let len = 1 + pick(&mut rng, total.max(2) - 1);
                Some(FaultSpec::DeadlineStorm { start: pick(&mut rng, total - len + 1), len })
            }
            4 => Some(FaultSpec::SlotExhaustion { burst: total }),
            _ => None,
        };
        // A shard-loss fault needs a second shard to lose (and a worker
        // to run it).
        let (workers, shards) = if matches!(fault, Some(FaultSpec::ShardLoss { .. })) {
            (workers.max(2), 2)
        } else {
            (workers, shards)
        };

        Scenario {
            seed,
            clients,
            frames_per_client,
            workers,
            shards,
            capacity,
            num_rx: 4,
            num_streams: 2,
            channel,
            traffic,
            snr,
            deadlines,
            tier,
            fault,
        }
    }
}

/// Named scenarios shared between the campaign and the bench gate, so a
/// stress shape is defined once. `bench_gate --mode deadline_storm`
/// builds its [`StormConfig`] from [`presets::deadline_storm`]; the
/// campaign's periodic storm scenarios come from
/// [`presets::campaign_storm`] with the same topology and SNR.
pub mod presets {
    use super::*;

    /// Concurrent sources in the canonical deadline storm.
    pub const STORM_CLIENTS: usize = 3;
    /// Frames per source in the canonical (bench-gate) storm.
    pub const STORM_FRAMES_PER_CLIENT: usize = 16;
    /// Operating SNR of the storm: low enough that the sphere search
    /// deepens sharply while the MMSE floor stays cheap, keeping the
    /// deadline corridor between the tiers wide.
    pub const STORM_SNR_DB: f64 = 18.0;
    /// Detection workers in the storm pipelines.
    pub const STORM_WORKERS: usize = 2;
    /// Detection shards in the storm pipelines.
    pub const STORM_SHARDS: usize = 1;
    /// Slot-pool bound in the storm pipelines — also the queue depth the
    /// bench gate multiplies its calibrated per-frame time by.
    pub const STORM_CAPACITY: usize = 6;

    /// The canonical deadline-storm [`StormConfig`]: the wall-clock
    /// adaptive-vs-static comparison run by `bench_gate --mode
    /// deadline_storm` and `gs_sim::run_deadline_storm`. The deadline is
    /// the caller's (the bench calibrates a machine-relative one).
    pub fn deadline_storm(deadline: Duration, seed: u64) -> StormConfig {
        StormConfig {
            clients: STORM_CLIENTS,
            frames_per_client: STORM_FRAMES_PER_CLIENT,
            snr_db: STORM_SNR_DB,
            deadline,
            workers: STORM_WORKERS,
            shards: STORM_SHARDS,
            capacity: STORM_CAPACITY,
            seed,
        }
    }

    /// The campaign's deterministic variant of the same storm: identical
    /// topology and SNR, saturation order, every frame in a pre-expired
    /// deadline window (so misses are exact, not wall-clock-dependent),
    /// sphere tier pinned.
    pub fn campaign_storm(seed: u64, frames_per_client: usize) -> Scenario {
        let frames_per_client = frames_per_client.max(2);
        let total = STORM_CLIENTS * frames_per_client;
        Scenario::new(seed)
            .clients(STORM_CLIENTS)
            .frames_per_client(frames_per_client)
            .topology(STORM_WORKERS, STORM_SHARDS, STORM_CAPACITY)
            .channel(ChannelSpec::SelectiveIndoor)
            .traffic(TrafficMix::Saturation)
            .snr(SnrSpec::Fixed(STORM_SNR_DB))
            .tier(DetectorTier::Sphere)
            .fault(FaultSpec::DeadlineStorm { start: 0, len: total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_the_seed() {
        let build = || {
            Scenario::new(42)
                .clients(3)
                .frames_per_client(5)
                .channel(ChannelSpec::BlockFading {
                    trajectory: DopplerTrajectory::Ramp { from: 0.01, to: 0.2 },
                })
                .traffic(TrafficMix::Pareto { rate_hz: 800.0, alpha: 1.7 })
                .snr(SnrSpec::Walk { start_db: 22.0, step_db: 1.5, min_db: 16.0, max_db: 28.0 })
                .deadlines(DeadlineSpec::ExpiredWindow { start: 4, len: 6 })
        };
        let a = build().plan();
        let b = build().plan();
        assert_eq!(a.len(), 15);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.snr_db, y.snr_db);
            assert_eq!(x.deadline, y.deadline);
            assert_eq!(x.channel.average_entry_power(), y.channel.average_entry_power());
        }
        // A different seed moves everything.
        let c = Scenario { seed: 43, ..build() }.plan();
        assert!(a.iter().zip(&c).any(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn deadline_windows_stamp_the_right_frames() {
        let s = Scenario::new(7)
            .clients(1)
            .frames_per_client(10)
            .deadlines(DeadlineSpec::ExpiredWindow { start: 3, len: 4 });
        let plan = s.plan();
        for (idx, f) in plan.iter().enumerate() {
            let expect =
                if (3..7).contains(&idx) { DeadlineKind::Expired } else { DeadlineKind::Generous };
            assert_eq!(f.deadline, expect, "frame {idx}");
        }
        // A deadline-storm fault overrides a deadline-free base.
        let s = Scenario::new(7)
            .clients(1)
            .frames_per_client(10)
            .fault(FaultSpec::DeadlineStorm { start: 8, len: 2 });
        let plan = s.plan();
        assert_eq!(plan[7].deadline, DeadlineKind::Free);
        assert_eq!(plan[8].deadline, DeadlineKind::Expired);
        assert_eq!(plan[9].deadline, DeadlineKind::Expired);
    }

    #[test]
    fn plan_preserves_per_client_order_and_counts() {
        let s = Scenario::new(99).clients(4).frames_per_client(6).traffic(TrafficMix::Bursty {
            calm_hz: 100.0,
            burst_hz: 4000.0,
            p_enter: 0.2,
            p_exit: 0.25,
        });
        let plan = s.plan();
        assert_eq!(plan.len(), 24);
        let mut counts = [0usize; 4];
        let mut last_seed = [None::<u64>; 4];
        for f in &plan {
            counts[f.client] += 1;
            // Per-client seeds must appear in their per-client sequence
            // order: recompute the expected seed from the count.
            let k = counts[f.client] - 1;
            let expect = splitmix64(s.seed ^ ((f.client as u64) << 32) ^ (k as u64 + 1));
            assert_eq!(f.seed, expect);
            last_seed[f.client] = Some(f.seed);
        }
        assert!(counts.iter().all(|&c| c == 6));
    }

    #[test]
    fn sampled_scenarios_cover_the_axes() {
        let mut channels = std::collections::BTreeSet::new();
        let mut traffics = std::collections::BTreeSet::new();
        let mut tiers = std::collections::BTreeSet::new();
        let mut faults = std::collections::BTreeSet::new();
        let mut with_fault = 0usize;
        for i in 0..64 {
            let s = Scenario::sampled(i, 2014, 6);
            channels.insert(s.channel.name());
            traffics.insert(s.traffic.name());
            tiers.insert(s.tier.name());
            if let Some(f) = s.fault {
                faults.insert(f.name());
                with_fault += 1;
                if let FaultSpec::ShardLoss { shard, .. } = f {
                    assert!(shard < s.shards, "shard-loss fault must target a real shard");
                    assert!(s.workers >= 2);
                }
            }
            assert!(s.total_frames() >= 2);
            assert!(s.shards <= s.workers.max(s.shards)); // shards sampled sanely
        }
        assert!(channels.len() >= 3, "≥3 channel models required, got {channels:?}");
        assert!(traffics.len() >= 3, "≥3 traffic mixes required, got {traffics:?}");
        assert_eq!(tiers.len(), 3, "all tiers sampled: {tiers:?}");
        assert_eq!(faults.len(), 4, "full fault taxonomy sampled: {faults:?}");
        assert!((16..=48).contains(&with_fault), "fault/no-fault mix: {with_fault}/64");
    }

    #[test]
    fn storm_preset_matches_the_bench_gate_shape() {
        let sc = presets::deadline_storm(Duration::from_millis(4), 2014);
        assert_eq!(sc.clients, presets::STORM_CLIENTS);
        assert_eq!(sc.frames_per_client, presets::STORM_FRAMES_PER_CLIENT);
        assert_eq!(sc.snr_db, presets::STORM_SNR_DB);
        assert_eq!((sc.workers, sc.shards, sc.capacity), (2, 1, 6));

        let s = presets::campaign_storm(1, 4);
        assert_eq!(s.clients, presets::STORM_CLIENTS);
        assert_eq!((s.workers, s.shards, s.capacity), (2, 1, 6));
        assert_eq!(s.snr.base_db(), presets::STORM_SNR_DB);
        // Every frame of the campaign storm sits in the expired window.
        assert!(s.plan().iter().all(|f| f.deadline == DeadlineKind::Expired));
    }
}
