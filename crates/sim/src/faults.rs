//! The fault taxonomy for seeded scenario campaigns.
//!
//! A campaign scenario may carry exactly one [`FaultSpec`]: a deliberate,
//! deterministic failure injected into the streaming runtime so the
//! campaign can assert that faults degrade into *recorded outcomes* —
//! never aborts, hangs, or silent loss. Each spec maps onto a concrete
//! runtime mechanism:
//!
//! * [`FaultSpec::WorkerPanic`] — arms
//!   `FrameStream::inject_worker_panic_after` on shard 0: a detection
//!   worker panics mid-task, the `ShardedDetectionPool` poisons itself,
//!   and every later `submit`/`recv` reports `StreamDead`.
//! * [`FaultSpec::ShardLoss`] — the same hook armed on a non-zero shard
//!   of a multi-shard pool: one memory domain's worker dies while the
//!   others keep draining, modelling the loss of a whole detection shard.
//! * [`FaultSpec::DeadlineStorm`] — a contiguous window of frames is
//!   submitted with already-expired deadlines: every frame in the window
//!   *must* be delivered and *must* be accounted as a miss (deadlines are
//!   scheduling hints, not admission control).
//! * [`FaultSpec::SlotExhaustion`] — a burst of `try_submit` calls with
//!   the consumer stalled: admissions beyond the slot-pool capacity must
//!   be refused (bounded memory), and every admitted frame must still be
//!   delivered once the consumer resumes.
//!
//! Faults are part of the scenario's identity: the same seed arms the
//! same fault at the same frame, so a scenario report — including where
//! the fault fired and how many frames survived — is byte-reproducible.

/// One injected failure inside a campaign scenario. See the module docs
/// for the runtime mechanism behind each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// A detection worker on shard 0 panics after `after_frames` frames
    /// have completed; the frame that would have been next dies with the
    /// worker.
    WorkerPanic {
        /// Frames guaranteed to complete before the fault fires.
        after_frames: u64,
    },
    /// A worker on shard `shard` (> 0, multi-shard topologies) panics
    /// after `after_frames` frames, killing that shard's domain.
    ShardLoss {
        /// The shard whose worker dies.
        shard: usize,
        /// Frames guaranteed to complete before the fault fires.
        after_frames: u64,
    },
    /// Frames `start .. start + len` (global submission order) carry
    /// already-expired deadlines: all delivered, all accounted as misses.
    DeadlineStorm {
        /// First frame of the expired window (global submission index).
        start: usize,
        /// Number of frames in the window.
        len: usize,
    },
    /// `burst` frames offered via `try_submit` while the consumer is
    /// stalled: admissions are capped at the slot-pool capacity, the rest
    /// refused and counted.
    SlotExhaustion {
        /// Frames offered in the stalled burst.
        burst: usize,
    },
}

impl FaultSpec {
    /// The taxonomy name (stable — used in campaign reports and CI
    /// aggregation).
    pub fn name(&self) -> &'static str {
        match self {
            FaultSpec::WorkerPanic { .. } => "worker_panic",
            FaultSpec::ShardLoss { .. } => "shard_loss",
            FaultSpec::DeadlineStorm { .. } => "deadline_storm",
            FaultSpec::SlotExhaustion { .. } => "slot_exhaustion",
        }
    }

    /// Full descriptor including the fault's position, e.g.
    /// `worker_panic@4` or `deadline_storm@2+5`.
    pub fn describe(&self) -> String {
        match *self {
            FaultSpec::WorkerPanic { after_frames } => format!("worker_panic@{after_frames}"),
            FaultSpec::ShardLoss { shard, after_frames } => {
                format!("shard_loss(s{shard})@{after_frames}")
            }
            FaultSpec::DeadlineStorm { start, len } => format!("deadline_storm@{start}+{len}"),
            FaultSpec::SlotExhaustion { burst } => format!("slot_exhaustion@{burst}"),
        }
    }

    /// Whether this fault kills the stream (worker/shard loss) rather
    /// than degrading service (storms, exhaustion).
    pub fn is_lethal(&self) -> bool {
        matches!(self, FaultSpec::WorkerPanic { .. } | FaultSpec::ShardLoss { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_are_stable() {
        assert_eq!(FaultSpec::WorkerPanic { after_frames: 4 }.describe(), "worker_panic@4");
        assert_eq!(
            FaultSpec::ShardLoss { shard: 1, after_frames: 2 }.describe(),
            "shard_loss(s1)@2"
        );
        assert_eq!(FaultSpec::DeadlineStorm { start: 2, len: 5 }.describe(), "deadline_storm@2+5");
        assert_eq!(FaultSpec::SlotExhaustion { burst: 9 }.describe(), "slot_exhaustion@9");
        assert!(FaultSpec::WorkerPanic { after_frames: 0 }.is_lethal());
        assert!(FaultSpec::ShardLoss { shard: 1, after_frames: 0 }.is_lethal());
        assert!(!FaultSpec::DeadlineStorm { start: 0, len: 1 }.is_lethal());
        assert!(!FaultSpec::SlotExhaustion { burst: 1 }.is_lethal());
    }
}
