//! Practical (non-oracle) rate adaptation.
//!
//! The paper sidesteps rate adaptation by reporting the best constellation
//! per operating point ("this emulates ideal bit rate adaptation and makes
//! the results independent of the rate adaptation method employed", §5.2).
//! This module provides the practical counterpart: an **effective-SNR**
//! adapter that corrects the link SNR by the detector's expected loss on
//! the measured channel — zero for ML detection, the Λ degradation (§5.1)
//! for zero-forcing — and picks the densest constellation whose decoding
//! threshold fits. Tests check it tracks the oracle.

use crate::experiments::DetectorKind;
use gs_channel::{lambda_max_db, MimoChannel};
use gs_modulation::Constellation;

/// Minimum effective per-stream SNR (dB) at which each rate-1/2 coded
/// constellation sustains a low frame error rate over a fading MIMO link.
/// Derived from the workspace's own FER sweeps (conservative side).
pub fn decoding_threshold_db(c: Constellation) -> f64 {
    match c {
        Constellation::Qpsk => 8.0,
        Constellation::Qam16 => 15.0,
        Constellation::Qam64 => 21.5,
        Constellation::Qam256 => 28.0,
    }
}

/// The effective-SNR rate adapter.
#[derive(Clone, Copy, Debug)]
pub struct RateAdapter {
    /// Additional back-off margin (dB) applied before threshold lookup.
    pub margin_db: f64,
}

impl Default for RateAdapter {
    fn default() -> Self {
        RateAdapter { margin_db: 1.0 }
    }
}

impl RateAdapter {
    /// Effective SNR of a link under a given detector: the raw SNR minus
    /// the detector-specific degradation on this channel.
    ///
    /// - ML-exact detectors (Geosphere, ETH-SD) lose nothing.
    /// - Zero-forcing loses the worst-stream Λ (the §5.1 metric),
    ///   evaluated at the center subcarrier.
    /// - MMSE/MMSE-SIC sit between; we charge them half of Λ, a standard
    ///   engineering approximation.
    pub fn effective_snr_db(
        &self,
        channel: &MimoChannel,
        detector: DetectorKind,
        snr_db: f64,
    ) -> f64 {
        let mid = channel.num_subcarriers() / 2;
        let lambda = lambda_max_db(channel.subcarrier(mid));
        // Excess receive antennas contribute array gain ≈ 10·log10(na/nc).
        let array_gain = 10.0 * (channel.num_rx() as f64 / channel.num_tx() as f64).log10();
        let loss = match detector {
            DetectorKind::Geosphere | DetectorKind::GeosphereZigzagOnly | DetectorKind::EthSd => {
                0.0
            }
            DetectorKind::Zf => lambda,
            DetectorKind::Mmse | DetectorKind::MmseSic => lambda / 2.0,
        };
        snr_db + array_gain - loss - self.margin_db
    }

    /// Picks the densest constellation whose threshold fits the effective
    /// SNR; falls back to QPSK when nothing fits (the link will likely
    /// fail, but QPSK maximizes the chance).
    pub fn select(
        &self,
        channel: &MimoChannel,
        detector: DetectorKind,
        snr_db: f64,
    ) -> Constellation {
        let eff = self.effective_snr_db(channel, detector, snr_db);
        Constellation::ALL
            .into_iter()
            .rev()
            .find(|&c| decoding_threshold_db(c) <= eff)
            .unwrap_or(Constellation::Qpsk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_channel::{ChannelModel, RayleighChannel, Testbed};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn thresholds_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for c in Constellation::ALL {
            let t = decoding_threshold_db(c);
            assert!(t > prev, "{c:?}");
            prev = t;
        }
    }

    #[test]
    fn higher_snr_never_sparser() {
        let mut rng = StdRng::seed_from_u64(901);
        let adapter = RateAdapter::default();
        let ch = RayleighChannel::new(4, 2).realize(&mut rng);
        let mut prev_size = 0;
        for snr in [5.0, 12.0, 20.0, 28.0, 36.0] {
            let c = adapter.select(&ch, DetectorKind::Geosphere, snr);
            assert!(c.size() >= prev_size, "at {snr} dB picked {c:?}");
            prev_size = c.size();
        }
    }

    #[test]
    fn zf_backs_off_on_ill_conditioned_channels() {
        // The same link at the same SNR: ZF should often pick a sparser
        // constellation than Geosphere because Λ eats its margin.
        let tb = Testbed::office();
        let adapter = RateAdapter::default();
        let mut rng = StdRng::seed_from_u64(902);
        let mut zf_bits = 0usize;
        let mut geo_bits = 0usize;
        for subset in tb.client_subsets(4).into_iter().step_by(97).take(12) {
            let ch = tb.channel(0, &subset, 4).realize(&mut rng);
            zf_bits += adapter.select(&ch, DetectorKind::Zf, 25.0).bits_per_symbol();
            geo_bits += adapter.select(&ch, DetectorKind::Geosphere, 25.0).bits_per_symbol();
        }
        assert!(
            zf_bits < geo_bits,
            "ZF should adapt down on office 4x4 channels: {zf_bits} vs {geo_bits}"
        );
    }

    #[test]
    fn adapter_tracks_oracle_throughput() {
        // The adapter's pick must achieve a decent fraction of the oracle's
        // measured throughput for Geosphere on a good channel.
        use gs_phy::{measure, PhyConfig};
        let mut rng = StdRng::seed_from_u64(903);
        let model = RayleighChannel::new(4, 2);
        let snr = 22.0;
        let adapter = RateAdapter::default();
        let pick = adapter.select(&model.realize(&mut rng), DetectorKind::Geosphere, snr);

        let mut best = 0.0f64;
        let mut picked_tp = 0.0f64;
        for c in Constellation::ALL {
            let cfg = PhyConfig { payload_bits: 512, ..PhyConfig::new(c) };
            let mut rng2 = StdRng::seed_from_u64(904);
            let m = measure(&cfg, &model, &geosphere_core::geosphere_decoder(), snr, 6, &mut rng2);
            if m.throughput_mbps > best {
                best = m.throughput_mbps;
            }
            if c == pick {
                picked_tp = m.throughput_mbps;
            }
        }
        assert!(
            picked_tp >= 0.6 * best,
            "adapter pick {pick:?} got {picked_tp:.1} vs oracle {best:.1} Mbps"
        );
    }
}
