//! # gs-sim
//!
//! The multi-user uplink network simulator behind the Geosphere paper's
//! evaluation (§5): SNR-band user selection over the emulated office
//! testbed, oracle rate adaptation, and one runner per figure — throughput
//! comparisons (Figs. 11–13), complexity comparisons (Figs. 14–15), and the
//! channel-conditioning CDFs (Figs. 9–10). Beyond the paper, [`traffic`]
//! drives Poisson multi-client arrivals through the `gs-runtime` streaming
//! engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod distributed;
pub mod experiments;
pub mod faults;
pub mod rate_adapt;
pub mod scenario;
pub mod selection;
pub mod storm;
pub mod traffic;

pub use campaign::{
    run_campaign, run_scenario, run_scenario_by_index, CampaignConfig, CampaignReport,
    ScenarioOutcome,
};
pub use distributed::{DistributedChannel, DistributedCluster};
pub use experiments::{
    complexity_at_target_fer, conditioning_cdfs, rayleigh_throughput, testbed_throughput,
    ComplexityPoint, DetectorKind, ExperimentParams, ThroughputPoint, PAPER_CONFIGS, PAPER_SNRS,
};
pub use faults::FaultSpec;
pub use rate_adapt::{decoding_threshold_db, RateAdapter};
pub use scenario::{ChannelSpec, DeadlineSpec, PlannedFrame, Scenario, SnrSpec};
pub use selection::{select_groups, UserGroup};
pub use storm::{
    run_deadline_storm, run_drain_recovery, DrainRecoveryReport, StormComparison, StormConfig,
};
pub use traffic::{
    run_poisson_uplink, run_traffic_uplink, PoissonParams, TrafficMix, TrafficParams, TrafficReport,
};
